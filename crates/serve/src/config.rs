//! Serving-layer configuration and the deterministic workload generator.
//!
//! A [`ServeConfig`] describes a fleet of viewer *sessions* grouped into
//! *tenants*: each session walks a contiguous window of the standard
//! walkthrough starting at a seeded pose, so two sessions whose windows
//! overlap request identical poses — the overlap the strip cache exploits.
//! Everything is derived from the config and its seed; two runs of the
//! same config observe byte-identical admissions, sheds and cache events.

use scc_core::RunConfig;

/// One tenant: a weight class plus its offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Label used in telemetry and reports.
    pub name: String,
    /// Weighted-fair share (≥ 1). Frame slots in contended rounds are
    /// split proportionally to weights.
    pub weight: u32,
    /// Sessions this tenant offers over the run.
    pub sessions: u32,
    /// Frames each of this tenant's sessions requests (≥ 1).
    pub frames_per_session: u32,
}

impl TenantSpec {
    pub fn new(name: &str, weight: u32, sessions: u32, frames_per_session: u32) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            weight,
            sessions,
            frames_per_session,
        }
    }
}

/// Full serving-layer configuration.
///
/// `run` is the pipeline facade config the pool members execute: its
/// renderer mode, frame geometry, pipeline count and seed define the data
/// path (and the cache key); its `verify` flag arms the session-ledger
/// invariant and its `telemetry` flag arms the `scc_serve_*` series.
/// The `frames` field of `run` is ignored — per-session frame counts come
/// from the tenant specs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Pipeline unit-of-work config (renderer, geometry, seed, flags).
    pub run: RunConfig,
    /// Tenant mix. Must be non-empty with ≥ 1 session in total.
    pub tenants: Vec<TenantSpec>,
    /// Frontend shards (thread-per-core model); sessions are assigned
    /// round-robin by id. Each shard spends `batch_frames` slots/round.
    pub shards: u32,
    /// Pipeline-pool instances render jobs are charged against (and the
    /// fan-out width of the round's render burst).
    pub pool: u32,
    /// Strip-cache capacity in strips; `0` disables the cache.
    pub cache_capacity: u32,
    /// Hash-bucket count of the cache. Kept configurable so tests can
    /// force collisions into full-key comparison.
    pub cache_buckets: u32,
    /// Per-tenant bound on concurrently active sessions; arrivals beyond
    /// it are shed with [`ShedReason::TenantQueueFull`].
    pub queue_depth: u32,
    /// Global bound on concurrently active sessions; arrivals beyond it
    /// are shed with [`ShedReason::SessionCap`].
    pub max_sessions: u32,
    /// Frame slots each shard may dispatch per scheduling round.
    pub batch_frames: u32,
    /// Distinct start poses the workload draws from. Small spans create
    /// heavy pose overlap across sessions (the cache-friendly regime).
    pub pose_span: u64,
    /// Sessions that arrive per tenant per round (arrival pacing).
    pub arrival_burst: u32,
    /// Workload seed (start poses). Independent of `run.seed`, which
    /// feeds the filter chain.
    pub seed: u64,
    /// Retain every rendered frame in the outcome (tests); when false
    /// only per-frame checksums are kept.
    pub keep_films: bool,
}

pub use crate::session::ShedReason;

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            run: RunConfig::default(),
            tenants: vec![TenantSpec::new("default", 1, 4, 4)],
            shards: 2,
            pool: 2,
            cache_capacity: 64,
            cache_buckets: 64,
            queue_depth: 8,
            max_sessions: 64,
            batch_frames: 4,
            pose_span: 8,
            arrival_burst: 4,
            seed: 0x5EC5_E55,
            keep_films: false,
        }
    }
}

impl ServeConfig {
    /// Total sessions offered across all tenants.
    pub fn offered_sessions(&self) -> u64 {
        self.tenants.iter().map(|t| t.sessions as u64).sum()
    }

    /// Validate the serving knobs plus the embedded pipeline config.
    pub fn validate(&self) -> Result<(), String> {
        self.run.validate()?;
        if self.tenants.is_empty() {
            return Err("serve: at least one tenant required".into());
        }
        for t in &self.tenants {
            if t.weight == 0 {
                return Err(format!("serve: tenant {} has zero weight", t.name));
            }
            if t.frames_per_session == 0 {
                return Err(format!("serve: tenant {} has zero frames per session", t.name));
            }
        }
        if self.offered_sessions() == 0 {
            return Err("serve: zero sessions offered".into());
        }
        if self.shards == 0 {
            return Err("serve: shards must be >= 1".into());
        }
        if self.pool == 0 {
            return Err("serve: pool must be >= 1".into());
        }
        if self.cache_buckets == 0 {
            return Err("serve: cache_buckets must be >= 1".into());
        }
        if self.queue_depth == 0 {
            return Err("serve: queue_depth must be >= 1".into());
        }
        if self.max_sessions == 0 {
            return Err("serve: max_sessions must be >= 1".into());
        }
        if self.batch_frames == 0 {
            return Err("serve: batch_frames must be >= 1".into());
        }
        if self.pose_span == 0 {
            return Err("serve: pose_span must be >= 1".into());
        }
        if self.arrival_burst == 0 {
            return Err("serve: arrival_burst must be >= 1".into());
        }
        Ok(())
    }
}

/// SplitMix64 — the workload's only randomness source. Pure function of
/// the seed, so workloads are reproducible by construction.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One generated session: a window into the shared walkthrough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSpec {
    /// Global session id (also the shard assignment key).
    pub id: u32,
    /// Index into `cfg.tenants`.
    pub tenant: u32,
    /// First walkthrough pose this session requests.
    pub start_pose: u64,
    /// Frames requested (poses `start_pose .. start_pose + frames`).
    pub frames: u32,
    /// Scheduling round at which the session arrives at the frontend.
    pub arrive_round: u64,
}

/// Expand the tenant mix into the deterministic session arrival list,
/// ordered by (arrive_round, id). Session ids interleave tenants in
/// arrival order so shard assignment (`id % shards`) spreads every
/// tenant across every shard.
pub fn generate_sessions(cfg: &ServeConfig) -> Vec<SessionSpec> {
    let mut out = Vec::new();
    let mut id = 0u32;
    let max_burst: u32 = cfg.arrival_burst;
    let most = cfg.tenants.iter().map(|t| t.sessions).max().unwrap_or(0);
    let rounds = most.div_ceil(max_burst);
    for round in 0..rounds.max(1) {
        for (ti, t) in cfg.tenants.iter().enumerate() {
            let lo = round * max_burst;
            let hi = (lo + max_burst).min(t.sessions);
            for s in lo..hi.max(lo) {
                let h = splitmix64(cfg.seed ^ ((ti as u64) << 40) ^ (s as u64));
                out.push(SessionSpec {
                    id,
                    tenant: ti as u32,
                    start_pose: h % cfg.pose_span,
                    frames: t.frames_per_session,
                    arrive_round: round as u64,
                });
                id += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let cfg = ServeConfig::default();
        assert_eq!(generate_sessions(&cfg), generate_sessions(&cfg));
    }

    #[test]
    fn workload_counts_match_offered_load() {
        let cfg = ServeConfig {
            tenants: vec![
                TenantSpec::new("a", 4, 10, 3),
                TenantSpec::new("b", 1, 1, 3),
            ],
            ..ServeConfig::default()
        };
        let sessions = generate_sessions(&cfg);
        assert_eq!(sessions.len() as u64, cfg.offered_sessions());
        let a = sessions.iter().filter(|s| s.tenant == 0).count();
        let b = sessions.iter().filter(|s| s.tenant == 1).count();
        assert_eq!((a, b), (10, 1));
        // Arrival rounds never decrease in generation order.
        assert!(sessions.windows(2).all(|w| w[0].arrive_round <= w[1].arrive_round));
        // Ids are dense and unique.
        let mut ids: Vec<u32> = sessions.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..sessions.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_pose_span_forces_overlap() {
        let cfg = ServeConfig {
            tenants: vec![TenantSpec::new("a", 1, 32, 4)],
            pose_span: 2,
            ..ServeConfig::default()
        };
        let sessions = generate_sessions(&cfg);
        let distinct: std::collections::BTreeSet<u64> =
            sessions.iter().map(|s| s.start_pose).collect();
        assert!(distinct.len() <= 2, "pose span bound violated");
    }

    #[test]
    fn validate_rejects_degenerate_knobs() {
        let ok = ServeConfig::default();
        assert!(ok.validate().is_ok());
        for breaker in [
            |c: &mut ServeConfig| c.tenants.clear(),
            |c: &mut ServeConfig| c.tenants[0].weight = 0,
            |c: &mut ServeConfig| c.shards = 0,
            |c: &mut ServeConfig| c.pool = 0,
            |c: &mut ServeConfig| c.cache_buckets = 0,
            |c: &mut ServeConfig| c.queue_depth = 0,
            |c: &mut ServeConfig| c.max_sessions = 0,
            |c: &mut ServeConfig| c.batch_frames = 0,
            |c: &mut ServeConfig| c.pose_span = 0,
        ] {
            let mut bad = ok.clone();
            breaker(&mut bad);
            assert!(bad.validate().is_err());
        }
    }
}
