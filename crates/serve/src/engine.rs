//! The round-based serving engine.
//!
//! All *observable decisions* — admission, shedding, weighted-fair slot
//! allocation, cache hits/misses/evictions, the session ledger, frame
//! latencies — are made by a deterministic virtual-time control loop, so
//! two runs of one config agree bit-for-bit. Pixel production inside a
//! round may fan out over real threads (the `Renderer` is `&self`-only
//! over `Arc`s), but every job writes into a pre-assigned slot and the
//! results are folded back in job order, so parallelism never leaks into
//! the decisions.
//!
//! One round:
//!  1. **admit** this round's arrivals (per-tenant queue bound, global
//!     session cap; refusals are recorded [`ShedEvent`]s — never silent);
//!  2. **allocate** `batch_frames` slots per shard across tenants by
//!     largest-remainder weighted fair queuing, round-robin within a
//!     tenant;
//!  3. **resolve** each scheduled frame's strips against the
//!     content-addressed cache; misses become render jobs, de-duplicated
//!     across sessions (two viewers at one pose render once);
//!  4. **render** the job burst on up to `pool` threads, charge each
//!     pool instance virtual cycles from the shared [`CostModel`], and
//!     advance virtual time by the slowest instance;
//!  5. **deliver**: insert new strips (LRU-bounded), assemble frames,
//!     record ready→delivered latency, retire finished sessions into the
//!     ledger.

use crate::cache::{fnv1a, CacheStats, StripCache, StripKey, FNV_PRIME};
use crate::config::{generate_sessions, ServeConfig};
use crate::session::{ActiveSession, SessionFilm, ShedEvent, ShedReason};
use scc_core::cost::cycles_to_secs;
use scc_core::spec::RendererMode;
use scc_core::CostModel;
use scc_filters::{standard_chain, FrameCtx, Image, StripInfo};
use scc_render::{Renderer, Scene, Walkthrough};
use scc_telemetry::{names, TelemetrySink, SECONDS_BUCKETS};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The SCC's P54C cores run at 533 MHz (§II); all pool cost charging is
/// anchored there, matching the simulator's clock.
pub const P54C_HZ: u64 = 533_000_000;

/// Fixed per-round control overhead (admission + scheduling bookkeeping)
/// so virtual time advances even in all-hit rounds.
const ROUND_OVERHEAD_SECS: f64 = 50.0e-6;

/// Livelock guard: no sane config needs this many rounds.
const MAX_ROUNDS: u64 = 10_000_000;

/// Order statistics over the recorded frame latencies (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    pub count: u64,
    pub p50: f64,
    pub p99: f64,
    pub max: f64,
}

impl LatencyStats {
    fn from_samples(samples: &mut Vec<f64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = samples.len();
        LatencyStats {
            count: n as u64,
            p50: samples[(n - 1) / 2],
            p99: samples[(n - 1) * 99 / 100],
            max: samples[n - 1],
        }
    }
}

/// Per-tenant slice of the serving report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    pub name: String,
    pub weight: u32,
    /// Sessions the tenant offered (== its ledger's `admitted`).
    pub offered: u64,
    pub shed: u64,
    pub completed_sessions: u64,
    pub frames_completed: u64,
    /// Frames won in *contended* shard-rounds (every tenant could have
    /// consumed the whole slot budget) — the weighted-fair envelope is
    /// asserted over these.
    pub contended_frames: u64,
    /// Deepest active-session queue observed for this tenant.
    pub max_queue_depth: u64,
}

/// Everything a serving run reports (deterministic for a given config).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Sessions the frontend took responsibility for (all arrivals).
    pub admitted: u64,
    /// Sessions that delivered every requested frame.
    pub completed: u64,
    /// Sessions refused by admission control (`shed ⊂ admitted`).
    pub shed: u64,
    pub shed_events: Vec<ShedEvent>,
    pub frames_served: u64,
    /// Render jobs actually executed (after cache hits and cross-session
    /// de-duplication).
    pub unique_renders: u64,
    pub rounds: u64,
    /// Shard-rounds in which every tenant's backlog exceeded the slot
    /// budget (the regime where the weighted-fair envelope is exact).
    pub contended_rounds: u64,
    pub contended_frames_total: u64,
    pub cache: CacheStats,
    pub per_tenant: Vec<TenantReport>,
    /// Virtual seconds from first arrival to last delivery.
    pub virtual_secs: f64,
    pub sessions_per_sec: f64,
    pub frames_per_sec: f64,
    pub latency: LatencyStats,
    /// FNV fold of every completed session's frame checksums, in session
    /// id order — the cache-transparency fingerprint.
    pub film_hash: u64,
}

/// A finished serving run: the report plus (optionally) the films and
/// the telemetry snapshot for the exporters.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    pub report: ServeReport,
    /// Completed sessions in id order; `film` is populated only under
    /// `keep_films`, checksums always.
    pub films: Vec<SessionFilm>,
    /// `Some` when `cfg.run.telemetry` was set.
    pub snapshot: Option<scc_telemetry::Snapshot>,
}

fn mode_tag(mode: RendererMode) -> u8 {
    match mode {
        RendererMode::SingleRenderer => 0,
        RendererMode::PerPipelineRenderer => 1,
        RendererMode::McpcRenderer => 2,
    }
}

/// Largest-remainder weighted-fair allocation of `slots` over tenants
/// with the given backlogs; allocations are capped by backlog and the
/// leftover re-distributed among still-hungry tenants until either the
/// slots or the backlog run out. Ties break toward the lower tenant
/// index, so the split is deterministic.
pub fn wfq_allocate(slots: u64, pending: &[u64], weights: &[u32]) -> Vec<u64> {
    assert_eq!(pending.len(), weights.len());
    let mut alloc = vec![0u64; pending.len()];
    let mut left = slots;
    loop {
        let hungry: Vec<usize> = (0..pending.len())
            .filter(|&i| alloc[i] < pending[i])
            .collect();
        if hungry.is_empty() || left == 0 {
            break;
        }
        let w_total: u64 = hungry.iter().map(|&i| weights[i] as u64).sum();
        // Integer largest-remainder split of `left` proportional to the
        // hungry tenants' weights.
        let mut base = 0u64;
        let mut shares: Vec<(usize, u64, u64)> = hungry
            .iter()
            .map(|&i| {
                let num = left * weights[i] as u64;
                let q = num / w_total;
                let r = num % w_total;
                base += q;
                (i, q, r)
            })
            .collect();
        let mut extra = left - base;
        // Largest remainder first; ties toward the lower tenant index.
        shares.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        for s in shares.iter_mut() {
            if extra == 0 {
                break;
            }
            s.1 += 1;
            extra -= 1;
        }
        let mut granted_any = false;
        for &(i, q, _) in &shares {
            let grant = q.min(pending[i] - alloc[i]);
            if grant > 0 {
                granted_any = true;
            }
            alloc[i] += grant;
            left -= grant;
        }
        if !granted_any {
            break;
        }
    }
    alloc
}

/// Serve the configured workload against `scene`.
///
/// Panics on an invalid config, and — via the core invariant machinery —
/// if the session ledger fails to balance while `cfg.run.verify` is set.
pub fn serve(cfg: &ServeConfig, scene: &Arc<Scene>) -> ServeOutcome {
    if let Err(e) = cfg.validate() {
        panic!("serve: invalid config: {e}");
    }
    let run = &cfg.run;
    let per_strip_mode = run.renderer == RendererMode::PerPipelineRenderer;
    let tag = mode_tag(run.renderer);
    let renderer = Renderer::new(scene.clone());
    let walk = Walkthrough::standard(run.width as f32 / run.height as f32);
    let chain = standard_chain();
    let bounds = Image::strip_bounds(run.height, run.pipelines);
    let model = CostModel::default();
    let mut cache = StripCache::new(cfg.cache_capacity, cfg.cache_buckets);

    let arrivals = generate_sessions(cfg);
    let mut next_arrival = 0usize;
    let mut active: Vec<ActiveSession> = Vec::new();
    let mut finished: Vec<SessionFilm> = Vec::new();
    let mut shed_events: Vec<ShedEvent> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();

    let nt = cfg.tenants.len();
    let mut tenant_active = vec![0u64; nt];
    let mut tenant_shed = vec![0u64; nt];
    let mut tenant_completed_sessions = vec![0u64; nt];
    let mut tenant_frames = vec![0u64; nt];
    let mut tenant_contended = vec![0u64; nt];
    let mut tenant_max_depth = vec![0u64; nt];
    let weights: Vec<u32> = cfg.tenants.iter().map(|t| t.weight).collect();

    let mut vtime = 0.0f64;
    let mut round = 0u64;
    let mut contended_rounds = 0u64;
    let mut contended_total = 0u64;
    let mut frames_served = 0u64;
    let mut unique_renders = 0u64;

    loop {
        // ---- 1. admissions --------------------------------------------
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrive_round <= round {
            let spec = arrivals[next_arrival];
            next_arrival += 1;
            let ti = spec.tenant as usize;
            let reason = if tenant_active[ti] >= cfg.queue_depth as u64 {
                Some(ShedReason::TenantQueueFull)
            } else if active.len() as u64 >= cfg.max_sessions as u64 {
                Some(ShedReason::SessionCap)
            } else {
                None
            };
            match reason {
                Some(reason) => {
                    tenant_shed[ti] += 1;
                    shed_events.push(ShedEvent {
                        round,
                        session: spec.id,
                        tenant: spec.tenant,
                        reason,
                    });
                }
                None => {
                    tenant_active[ti] += 1;
                    tenant_max_depth[ti] = tenant_max_depth[ti].max(tenant_active[ti]);
                    active.push(ActiveSession {
                        id: spec.id,
                        tenant: spec.tenant,
                        shard: spec.id % cfg.shards,
                        start_pose: spec.start_pose,
                        frames: spec.frames,
                        next_frame: 0,
                        ready_vtime: vtime,
                        checksums: Vec::with_capacity(spec.frames as usize),
                        film: Vec::new(),
                    });
                }
            }
        }
        if active.is_empty() {
            if next_arrival >= arrivals.len() {
                break;
            }
            // Idle gap before the next arrival burst.
            vtime += ROUND_OVERHEAD_SECS;
            round += 1;
            continue;
        }

        // ---- 2. weighted-fair slot allocation per shard ---------------
        // `scheduled` holds indices into `active`, in dispatch order.
        let mut scheduled: Vec<usize> = Vec::new();
        for shard in 0..cfg.shards {
            // Tenant backlogs on this shard: one schedulable frame per
            // active session (frames within a session are in-order).
            let mut pending = vec![0u64; nt];
            for s in active.iter() {
                if s.shard == shard {
                    pending[s.tenant as usize] += 1;
                }
            }
            let slots = cfg.batch_frames as u64;
            if pending.iter().sum::<u64>() == 0 {
                continue;
            }
            let contended = pending.iter().all(|&p| p >= slots);
            if contended {
                contended_rounds += 1;
            }
            let alloc = wfq_allocate(slots, &pending, &weights);
            for (ti, &take) in alloc.iter().enumerate() {
                if take == 0 {
                    continue;
                }
                // Sessions of this tenant on this shard, id order, with a
                // round-rotating start so no session camps on the slots.
                let mut members: Vec<usize> = active
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.shard == shard && s.tenant as usize == ti)
                    .map(|(i, _)| i)
                    .collect();
                members.sort_by_key(|&i| active[i].id);
                let rot = (round as usize) % members.len();
                members.rotate_left(rot);
                for &ai in members.iter().take(take as usize) {
                    scheduled.push(ai);
                    if contended {
                        tenant_contended[ti] += 1;
                        contended_total += 1;
                    }
                }
            }
        }

        // ---- 3. cache resolution + cross-session de-duplication ------
        // Round-local strip store: (pose, strip) → filtered strip.
        let mut store: BTreeMap<(u64, u32), (StripInfo, Image)> = BTreeMap::new();
        let mut needed: BTreeSet<(u64, u32)> = BTreeSet::new();
        let mut hit_count_this_round = 0u64;
        for &ai in &scheduled {
            let pose = active[ai].pose();
            for (si, _) in bounds.iter().enumerate() {
                let si = si as u32;
                if store.contains_key(&(pose, si)) || needed.contains(&(pose, si)) {
                    continue;
                }
                let key = StripKey {
                    mode: tag,
                    width: run.width,
                    height: run.height,
                    pipelines: run.pipelines,
                    run_seed: run.seed,
                    pose,
                    strip: si,
                };
                match cache.get(&key) {
                    Some((info, img)) => {
                        hit_count_this_round += 1;
                        store.insert((pose, si), (info, img));
                    }
                    None => {
                        needed.insert((pose, si));
                    }
                }
            }
        }
        // Job list: per-strip mode renders exactly the missing strips;
        // the full-frame modes render each missing pose once and split.
        let jobs: Vec<(u64, Option<u32>)> = if per_strip_mode {
            needed.iter().map(|&(p, s)| (p, Some(s))).collect()
        } else {
            let poses: BTreeSet<u64> = needed.iter().map(|&(p, _)| p).collect();
            poses.into_iter().map(|p| (p, None)).collect()
        };
        unique_renders += jobs.len() as u64;

        // ---- 4. render burst (parallel, deterministic fold) -----------
        let run_job = |&(pose, strip): &(u64, Option<u32>)| -> Vec<(u32, StripInfo, Image)> {
            let cam = walk.camera(pose);
            let raw: Vec<(StripInfo, Image)> = match strip {
                Some(si) => {
                    let (y0, h) = bounds[si as usize];
                    let (img, _) = renderer.render_strip(&cam, run.width, run.height, y0, h);
                    let info = StripInfo {
                        index: si,
                        count: bounds.len() as u32,
                        y0,
                        height: h,
                        full_height: run.height,
                    };
                    vec![(info, img)]
                }
                None => {
                    let (img, _) = renderer.render_full(&cam, run.width, run.height);
                    img.split_strips(run.pipelines)
                }
            };
            raw.into_iter()
                .map(|(mut info, mut img)| {
                    let si = info.index;
                    let ctx = FrameCtx {
                        frame_id: pose,
                        run_seed: run.seed,
                        strip: info,
                        full_width: run.width,
                    };
                    for f in &chain {
                        f.apply(&mut img, &ctx);
                    }
                    info = scc_filters::vswap::mirrored_info(info);
                    (si, info, img)
                })
                .collect()
        };
        let threads = (cfg.pool as usize).min(jobs.len());
        let mut outputs: Vec<(usize, Vec<(u32, StripInfo, Image)>)> = if threads <= 1 {
            jobs.iter().enumerate().map(|(j, job)| (j, run_job(job))).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|tid| {
                        let jobs = &jobs;
                        let run_job = &run_job;
                        scope.spawn(move || {
                            jobs.iter()
                                .enumerate()
                                .skip(tid)
                                .step_by(threads)
                                .map(|(j, job)| (j, run_job(job)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("serve: render worker panicked"))
                    .collect()
            })
        };
        outputs.sort_by_key(|&(j, _)| j);

        // ---- virtual-time charging ------------------------------------
        let mut busy = vec![0.0f64; cfg.pool as usize];
        for (j, strips) in outputs.iter() {
            let (pose, strip) = jobs[*j];
            let render_cycles = match strip {
                Some(si) => {
                    let (_, h) = bounds[si as usize];
                    model.render_base_cycles
                        + model.render_strip_adjust_cycles
                        + model.render_fill_cycles
                            * model.nrend_fill_multiplier
                            * (run.width as f64 * h as f64)
                }
                None => {
                    model.render_base_cycles
                        + model.render_fill_cycles * (run.width as f64 * run.height as f64)
                        + model.split_cycles(run.width as u64 * run.height as u64, run.pipelines)
                }
            };
            let render_secs = if run.renderer == RendererMode::McpcRenderer {
                model.mcpc_render_seconds(render_cycles)
            } else {
                cycles_to_secs(render_cycles, P54C_HZ)
            };
            let mut filter_cycles = 0.0;
            for (_, info, img) in strips {
                let ctx = FrameCtx {
                    frame_id: pose,
                    run_seed: run.seed,
                    strip: *info,
                    full_width: run.width,
                };
                for f in &chain {
                    filter_cycles += model.filter_cycles(f.as_ref(), img, &ctx);
                }
            }
            busy[*j % cfg.pool as usize] += render_secs + cycles_to_secs(filter_cycles, P54C_HZ);
        }
        // Cache hits cost one strip transfer each; delivered frames cost
        // one assemble each. Both are charged round-robin over the pool.
        let strip_px = run.width as u64 * (run.height as u64 / run.pipelines as u64).max(1);
        for h in 0..hit_count_this_round {
            busy[(h % cfg.pool as u64) as usize] +=
                cycles_to_secs(model.assemble_cycles(strip_px), P54C_HZ);
        }
        for (i, _) in scheduled.iter().enumerate() {
            busy[i % cfg.pool as usize] += cycles_to_secs(
                model.assemble_cycles(run.width as u64 * run.height as u64),
                P54C_HZ,
            );
        }
        let round_secs = busy.iter().cloned().fold(0.0f64, f64::max) + ROUND_OVERHEAD_SECS;
        vtime += round_secs;

        // ---- 5. delivery ----------------------------------------------
        for (j, strips) in outputs {
            let (pose, _) = jobs[j];
            for (si, info, img) in strips {
                // Only strips a session asked for enter the cache; the
                // split of a full frame also yields strips nobody missed.
                if needed.contains(&(pose, si)) {
                    cache.insert(
                        StripKey {
                            mode: tag,
                            width: run.width,
                            height: run.height,
                            pipelines: run.pipelines,
                            run_seed: run.seed,
                            pose,
                            strip: si,
                        },
                        info,
                        img.clone(),
                    );
                }
                store.entry((pose, si)).or_insert((info, img));
            }
        }
        for &ai in &scheduled {
            let pose = active[ai].pose();
            let strips: Vec<(StripInfo, Image)> = (0..bounds.len() as u32)
                .map(|si| store.get(&(pose, si)).expect("strip resolved").clone())
                .collect();
            let frame = Image::assemble(&strips);
            let s = &mut active[ai];
            s.checksums.push(fnv1a(frame.as_bytes()));
            if cfg.keep_films {
                s.film.push(frame);
            }
            latencies.push(vtime - s.ready_vtime);
            s.ready_vtime = vtime;
            s.next_frame += 1;
            tenant_frames[s.tenant as usize] += 1;
            frames_served += 1;
        }
        // Retire completed sessions into the ledger.
        let mut i = 0;
        while i < active.len() {
            if active[i].done() {
                let s = active.remove(i);
                let ti = s.tenant as usize;
                tenant_active[ti] -= 1;
                tenant_completed_sessions[ti] += 1;
                finished.push(SessionFilm {
                    id: s.id,
                    tenant: s.tenant,
                    start_pose: s.start_pose,
                    checksums: s.checksums,
                    film: s.film,
                });
            } else {
                i += 1;
            }
        }

        round += 1;
        assert!(round < MAX_ROUNDS, "serve: round livelock (config bug)");
    }

    finished.sort_by_key(|f| f.id);

    // ---- ledger + report ---------------------------------------------
    let admitted = arrivals.len() as u64;
    let completed = finished.len() as u64;
    let shed = shed_events.len() as u64;
    let violations = scc_core::check_session_ledger(admitted, completed, shed);
    if run.verify {
        scc_core::enforce(run, &violations);
    }

    let mut film_hash = crate::cache::FNV_OFFSET;
    for f in &finished {
        for &c in &f.checksums {
            film_hash ^= c;
            film_hash = film_hash.wrapping_mul(FNV_PRIME);
        }
    }

    let virtual_secs = vtime.max(f64::MIN_POSITIVE);
    let latency = LatencyStats::from_samples(&mut latencies);
    let per_tenant: Vec<TenantReport> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(ti, t)| TenantReport {
            name: t.name.clone(),
            weight: t.weight,
            offered: t.sessions as u64,
            shed: tenant_shed[ti],
            completed_sessions: tenant_completed_sessions[ti],
            frames_completed: tenant_frames[ti],
            contended_frames: tenant_contended[ti],
            max_queue_depth: tenant_max_depth[ti],
        })
        .collect();

    let report = ServeReport {
        admitted,
        completed,
        shed,
        shed_events,
        frames_served,
        unique_renders,
        rounds: round,
        contended_rounds,
        contended_frames_total: contended_total,
        cache: cache.stats,
        per_tenant,
        virtual_secs,
        sessions_per_sec: completed as f64 / virtual_secs,
        frames_per_sec: frames_served as f64 / virtual_secs,
        latency,
        film_hash,
    };

    let sink = TelemetrySink::from_enabled(run.telemetry);
    record_telemetry(&sink, cfg, &report, &latencies);
    ServeOutcome {
        snapshot: sink.snapshot(),
        report,
        films: finished,
    }
}

/// Serve against the facade's default city scene.
pub fn serve_default(cfg: &ServeConfig) -> ServeOutcome {
    serve(cfg, &scc_core::default_scene())
}

fn record_telemetry(sink: &TelemetrySink, cfg: &ServeConfig, r: &ServeReport, lat: &[f64]) {
    if !sink.is_enabled() {
        return;
    }
    sink.count(names::SERVE_SESSIONS_ADMITTED_TOTAL, &[], r.admitted);
    sink.count(names::SERVE_SESSIONS_COMPLETED_TOTAL, &[], r.completed);
    for reason in [ShedReason::TenantQueueFull, ShedReason::SessionCap] {
        let n = r
            .shed_events
            .iter()
            .filter(|e| e.reason == reason)
            .count() as u64;
        if n > 0 {
            sink.count(
                names::SERVE_SESSIONS_SHED_TOTAL,
                &[("reason", reason.name())],
                n,
            );
        }
    }
    sink.count(names::SERVE_FRAMES_TOTAL, &[], r.frames_served);
    sink.count(names::SERVE_CACHE_HITS_TOTAL, &[], r.cache.hits);
    sink.count(names::SERVE_CACHE_MISSES_TOTAL, &[], r.cache.misses);
    sink.count(names::SERVE_CACHE_EVICTIONS_TOTAL, &[], r.cache.evictions);
    sink.gauge(names::SERVE_CACHE_HIT_RATIO, &[], r.cache.hit_ratio());
    for (t, tr) in cfg.tenants.iter().zip(&r.per_tenant) {
        sink.gauge(
            names::SERVE_TENANT_QUEUE_DEPTH,
            &[("tenant", t.name.as_str())],
            tr.max_queue_depth as f64,
        );
    }
    for &v in lat {
        sink.observe(
            names::SERVE_FRAME_LATENCY_SECONDS,
            &[],
            SECONDS_BUCKETS,
            v,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TenantSpec;
    use scc_core::RunConfig;
    use scc_render::CityConfig;

    fn tiny_scene() -> Arc<Scene> {
        Arc::new(Scene::city(CityConfig {
            side: 4,
            spacing: 8.0,
            seed: 3,
        }))
    }

    fn tiny_cfg() -> ServeConfig {
        ServeConfig {
            run: RunConfig {
                pipelines: 2,
                width: 32,
                height: 24,
                frames: 1,
                seed: 11,
                verify: true,
                ..RunConfig::default()
            },
            tenants: vec![TenantSpec::new("a", 2, 4, 3), TenantSpec::new("b", 1, 2, 3)],
            shards: 2,
            pool: 2,
            cache_capacity: 32,
            cache_buckets: 16,
            queue_depth: 4,
            max_sessions: 8,
            batch_frames: 3,
            pose_span: 3,
            arrival_burst: 2,
            seed: 99,
            keep_films: false,
        }
    }

    #[test]
    fn serve_is_deterministic() {
        let scene = tiny_scene();
        let a = serve(&tiny_cfg(), &scene);
        let b = serve(&tiny_cfg(), &scene);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn ledger_balances_and_all_frames_serve() {
        let cfg = tiny_cfg();
        let out = serve(&cfg, &tiny_scene());
        let r = &out.report;
        assert_eq!(r.admitted, 6);
        assert_eq!(r.completed + r.shed, r.admitted);
        assert_eq!(r.frames_served, r.completed * 3);
        assert!(r.virtual_secs > 0.0);
        assert!(r.sessions_per_sec > 0.0);
        assert_eq!(r.latency.count, r.frames_served);
        assert!(r.latency.p50 <= r.latency.p99 && r.latency.p99 <= r.latency.max);
    }

    #[test]
    fn overlap_produces_cache_hits_and_fewer_renders() {
        let mut cfg = tiny_cfg();
        cfg.pose_span = 1; // all sessions share every pose
        let out = serve(&cfg, &tiny_scene());
        assert!(out.report.cache.hits > 0, "full overlap must hit");
        // 6 sessions × 3 frames = 18 frames but only 3 distinct poses.
        assert!(out.report.unique_renders <= 3 * cfg.run.pipelines as u64);
    }

    #[test]
    fn cache_off_is_byte_identical() {
        let scene = tiny_scene();
        let on = serve(&tiny_cfg(), &scene);
        let mut cfg = tiny_cfg();
        cfg.cache_capacity = 0;
        let off = serve(&cfg, &scene);
        assert_eq!(on.report.film_hash, off.report.film_hash);
        assert_eq!(off.report.cache.hits, 0);
    }

    #[test]
    fn overload_sheds_deterministically_and_never_silently() {
        let mut cfg = tiny_cfg();
        cfg.queue_depth = 1;
        cfg.max_sessions = 2;
        let a = serve(&cfg, &tiny_scene());
        let b = serve(&cfg, &tiny_scene());
        assert!(!a.report.shed_events.is_empty(), "overload must shed");
        assert_eq!(a.report.shed_events, b.report.shed_events);
        assert_eq!(
            a.report.completed + a.report.shed,
            a.report.admitted,
            "sheds are ledgered, never silent"
        );
    }

    #[test]
    fn telemetry_snapshot_present_when_enabled() {
        let mut cfg = tiny_cfg();
        cfg.run.telemetry = true;
        let out = serve(&cfg, &tiny_scene());
        let snap = out.snapshot.expect("telemetry snapshot");
        let admitted = snap
            .counters
            .iter()
            .find(|c| c.name == names::SERVE_SESSIONS_ADMITTED_TOTAL)
            .expect("admitted counter");
        assert_eq!(admitted.value, out.report.admitted);
    }

    #[test]
    fn wfq_allocation_is_weight_proportional_and_capped() {
        assert_eq!(wfq_allocate(6, &[10, 10], &[2, 1]), vec![4, 2]);
        assert_eq!(wfq_allocate(6, &[1, 10], &[2, 1]), vec![1, 5]);
        assert_eq!(wfq_allocate(0, &[5, 5], &[1, 1]), vec![0, 0]);
        assert_eq!(wfq_allocate(10, &[2, 1], &[1, 1]), vec![2, 1]);
        // Deterministic tie-break toward the lower index.
        assert_eq!(wfq_allocate(1, &[5, 5], &[1, 1]), vec![1, 0]);
    }
}
