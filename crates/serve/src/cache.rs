//! Content-addressed strip cache.
//!
//! Keys are the full provenance of a rendered-and-filtered strip: the
//! renderer mode, frame geometry, strip decomposition, filter seed, pose
//! and strip index. Because the filter chain draws its randomness from
//! `(frame_id, run_seed)` — never wall clock — a strip is a pure function
//! of its key, so any two sessions requesting the same pose may share
//! bytes. The map is bucketed FNV with **full-key comparison** inside a
//! bucket (a colliding hash can never alias pixels) and bounded by a
//! deterministic tick-based LRU.

use scc_filters::{Image, StripInfo};

pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub const FNV_PRIME: u64 = 0x100_0000_01B3;

/// FNV-1a over a byte slice (same parameters as `scc-verify`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Full provenance of one cached strip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StripKey {
    /// Renderer mode discriminant (modes never share entries even though
    /// single-renderer and MCPC produce identical pixels — conservative).
    pub mode: u8,
    pub width: u32,
    pub height: u32,
    /// Strip decomposition arity (changes strip geometry and blur seams).
    pub pipelines: u32,
    /// Filter-chain seed (`RunConfig::seed`).
    pub run_seed: u64,
    /// Walkthrough pose (the reference frame id).
    pub pose: u64,
    /// Strip index within the decomposition.
    pub strip: u32,
}

impl StripKey {
    /// FNV-1a over the key's canonical little-endian encoding.
    pub fn hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(37);
        bytes.push(self.mode);
        bytes.extend_from_slice(&self.width.to_le_bytes());
        bytes.extend_from_slice(&self.height.to_le_bytes());
        bytes.extend_from_slice(&self.pipelines.to_le_bytes());
        bytes.extend_from_slice(&self.run_seed.to_le_bytes());
        bytes.extend_from_slice(&self.pose.to_le_bytes());
        bytes.extend_from_slice(&self.strip.to_le_bytes());
        fnv1a(&bytes)
    }
}

/// Cache observability counters (all deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Lookups that probed a bucket holding at least one *different* key
    /// — the collisions full-key comparison disambiguated.
    pub collisions: u64,
    pub insertions: u64,
}

impl CacheStats {
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    key: StripKey,
    info: StripInfo,
    img: Image,
    last_used: u64,
}

/// Bounded, bucketed, LRU strip cache. `capacity == 0` disables it:
/// every lookup misses and inserts are dropped, so the serving engine
/// runs the exact same control flow cache-on and cache-off.
#[derive(Debug, Clone)]
pub struct StripCache {
    buckets: Vec<Vec<Entry>>,
    capacity: usize,
    tick: u64,
    len: usize,
    pub stats: CacheStats,
}

impl StripCache {
    pub fn new(capacity: u32, buckets: u32) -> StripCache {
        StripCache {
            buckets: vec![Vec::new(); buckets.max(1) as usize],
            capacity: capacity as usize,
            tick: 0,
            len: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, key: &StripKey) -> usize {
        (key.hash() % self.buckets.len() as u64) as usize
    }

    /// Look up a strip; a hit refreshes its LRU tick and clones the
    /// bytes out (entries stay shareable).
    pub fn get(&mut self, key: &StripKey) -> Option<(StripInfo, Image)> {
        if !self.enabled() {
            self.stats.misses += 1;
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let b = self.bucket_of(key);
        let bucket = &mut self.buckets[b];
        if bucket.iter().any(|e| e.key != *key) {
            self.stats.collisions += 1;
        }
        for e in bucket.iter_mut() {
            if e.key == *key {
                e.last_used = tick;
                self.stats.hits += 1;
                return Some((e.info, e.img.clone()));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Insert a strip, evicting the least-recently-used entry (smallest
    /// tick; ties broken by bucket then slot order, so eviction is
    /// deterministic) when at capacity. Re-inserting an existing key
    /// refreshes it in place.
    pub fn insert(&mut self, key: StripKey, info: StripInfo, img: Image) {
        if !self.enabled() {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let b = self.bucket_of(&key);
        if let Some(e) = self.buckets[b].iter_mut().find(|e| e.key == key) {
            e.last_used = tick;
            return;
        }
        if self.len >= self.capacity {
            self.evict_lru();
        }
        self.buckets[b].push(Entry {
            key,
            info,
            img,
            last_used: tick,
        });
        self.len += 1;
        self.stats.insertions += 1;
    }

    fn evict_lru(&mut self) {
        let mut victim: Option<(usize, usize, u64)> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (ei, e) in bucket.iter().enumerate() {
                let better = match victim {
                    None => true,
                    Some((_, _, t)) => e.last_used < t,
                };
                if better {
                    victim = Some((bi, ei, e.last_used));
                }
            }
        }
        if let Some((bi, ei, _)) = victim {
            self.buckets[bi].remove(ei);
            self.len -= 1;
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(pose: u64, strip: u32) -> StripKey {
        StripKey {
            mode: 0,
            width: 16,
            height: 16,
            pipelines: 2,
            run_seed: 7,
            pose,
            strip,
        }
    }

    fn strip(tag: u8) -> (StripInfo, Image) {
        let mut img = Image::new(16, 8);
        img.set(0, 0, [tag, tag, tag, 255]);
        (
            StripInfo {
                index: 0,
                count: 2,
                y0: 0,
                height: 8,
                full_height: 16,
            },
            img,
        )
    }

    #[test]
    fn hit_returns_exact_bytes() {
        let mut c = StripCache::new(4, 4);
        let (info, img) = strip(9);
        c.insert(key(1, 0), info, img.clone());
        let (_, got) = c.get(&key(1, 0)).expect("hit");
        assert_eq!(got.as_bytes(), img.as_bytes());
        assert_eq!(c.stats.hits, 1);
    }

    #[test]
    fn zero_capacity_disables_without_panics() {
        let mut c = StripCache::new(0, 4);
        assert!(!c.enabled());
        let (info, img) = strip(1);
        c.insert(key(1, 0), info, img);
        assert!(c.get(&key(1, 0)).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn single_bucket_collisions_resolved_by_full_key() {
        // One bucket: every key collides; lookups must still return the
        // right bytes for each key.
        let mut c = StripCache::new(8, 1);
        for pose in 0..4u64 {
            let (info, img) = strip(pose as u8);
            c.insert(key(pose, 0), info, img);
        }
        for pose in 0..4u64 {
            let (_, got) = c.get(&key(pose, 0)).expect("hit");
            assert_eq!(got.get(0, 0)[0], pose as u8, "collision aliased pixels");
        }
        assert!(c.stats.collisions > 0, "one bucket must collide");
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let mut c = StripCache::new(2, 4);
        let (info, img) = strip(0);
        c.insert(key(0, 0), info, img.clone());
        c.insert(key(1, 0), info, img.clone());
        assert!(c.get(&key(0, 0)).is_some()); // refresh 0 → 1 is now LRU
        c.insert(key(2, 0), info, img.clone());
        assert_eq!(c.stats.evictions, 1);
        assert!(c.get(&key(1, 0)).is_none(), "LRU entry should be gone");
        assert!(c.get(&key(0, 0)).is_some());
        assert!(c.get(&key(2, 0)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut c = StripCache::new(2, 4);
        let (info, img) = strip(0);
        c.insert(key(0, 0), info, img.clone());
        c.insert(key(0, 0), info, img.clone());
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats.insertions, 1);
    }
}
