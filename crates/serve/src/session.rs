//! Session lifecycle bookkeeping: the exactly-once ledger.
//!
//! Every arriving session is *admitted* into the ledger (the frontend
//! takes responsibility for it) and then reaches exactly one terminal
//! state: *completed* (all frames delivered) or *shed* (rejected by
//! admission control, with the reason recorded). `completed + shed ==
//! admitted` is enforced through `scc_core::invariant::check_session_ledger`
//! — sheds are never silent.

/// Why admission control refused to activate a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The session's tenant already had `queue_depth` active sessions.
    TenantQueueFull,
    /// The global `max_sessions` concurrency cap was reached.
    SessionCap,
}

impl ShedReason {
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::TenantQueueFull => "tenant-queue-full",
            ShedReason::SessionCap => "session-cap",
        }
    }
}

/// One recorded shed decision (never silent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedEvent {
    /// Scheduling round at which the arrival was refused.
    pub round: u64,
    /// Global session id of the refused arrival.
    pub session: u32,
    /// Tenant index of the refused arrival.
    pub tenant: u32,
    pub reason: ShedReason,
}

/// Live state of an admitted-and-activated session.
#[derive(Debug, Clone)]
pub struct ActiveSession {
    pub id: u32,
    pub tenant: u32,
    pub shard: u32,
    pub start_pose: u64,
    pub frames: u32,
    /// Next frame index (0-based) awaiting a slot.
    pub next_frame: u32,
    /// Virtual time the next frame became ready (admission for frame 0,
    /// previous frame's completion afterwards). Frame latency is
    /// `completion − ready`: it includes slot-queueing under overload.
    pub ready_vtime: f64,
    /// Per-frame FNV checksums, in frame order.
    pub checksums: Vec<u64>,
    /// Rendered frames, only retained under `keep_films`.
    pub film: Vec<scc_filters::Image>,
}

impl ActiveSession {
    pub fn pose(&self) -> u64 {
        self.start_pose + self.next_frame as u64
    }

    pub fn done(&self) -> bool {
        self.next_frame >= self.frames
    }
}

/// Terminal record of a finished session, kept in id order for the
/// outcome's deterministic film digest.
#[derive(Debug, Clone)]
pub struct SessionFilm {
    pub id: u32,
    pub tenant: u32,
    pub start_pose: u64,
    pub checksums: Vec<u64>,
    pub film: Vec<scc_filters::Image>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_reasons_have_stable_names() {
        assert_eq!(ShedReason::TenantQueueFull.name(), "tenant-queue-full");
        assert_eq!(ShedReason::SessionCap.name(), "session-cap");
    }
}
