//! # scc-serve — multi-session serving over pooled pipelines
//!
//! The paper renders one film for one implicit client; this crate turns
//! the pipeline into a shared service. A sharded frontend admits
//! thousands of concurrent walkthrough *sessions* (grouped into weighted
//! *tenants*), schedules their frame requests onto a bounded pool of
//! pipeline instances, batches identical poses across sessions, and
//! content-addresses rendered strips in a bounded LRU cache so a pose
//! any viewer already saw renders exactly once:
//!
//! * [`config`] — [`ServeConfig`]/[`TenantSpec`] and the deterministic
//!   seeded workload generator;
//! * [`cache`] — the content-addressed [`StripCache`]: bucketed FNV with
//!   full-key comparison (collisions can never alias pixels) and
//!   deterministic tick-LRU eviction;
//! * [`session`] — the exactly-once session ledger
//!   (`completed + shed == admitted`, enforced through
//!   `scc_core::check_session_ledger`) and recorded [`ShedEvent`]s;
//! * [`engine`] — the round-based virtual-time engine: weighted-fair
//!   slot allocation, cross-session render de-duplication, `CostModel`
//!   charging of the pool, `scc_serve_*` telemetry.
//!
//! The cache is *semantically transparent*: every session's film is
//! byte-identical with the cache on, off, or thrashing, because strips
//! are pure functions of their content-address (the filter chain draws
//! randomness only from `(pose, run_seed)`). The serving/cache test
//! suites (`tests/serve_cache.rs`, `tests/serve_conformance.rs`) and the
//! `scc-verify` fuzzer hold that line.

pub mod cache;
pub mod config;
pub mod engine;
pub mod session;

pub use cache::{fnv1a, CacheStats, StripCache, StripKey};
pub use config::{generate_sessions, splitmix64, ServeConfig, SessionSpec, TenantSpec};
pub use engine::{serve, serve_default, wfq_allocate, LatencyStats, ServeOutcome, ServeReport, TenantReport};
pub use session::{ActiveSession, SessionFilm, ShedEvent, ShedReason};
