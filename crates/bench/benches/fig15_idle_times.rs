//! Figure 15 regenerator bench: per-stage idle-time quartile collection
//! with seven MCPC-fed pipelines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scc_core::{Arrangement, Fidelity, RendererMode, RunConfig, SimRunner, StageKind};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("idle_quartiles_7_pipelines", |b| {
        let cfg = RunConfig {
            renderer: RendererMode::McpcRenderer,
            arrangement: Arrangement::Ordered,
            pipelines: 7,
            frames: 40,
            fidelity: Fidelity::TimingOnly,
            trace: false,
            fault: None,
            ..RunConfig::default()
        };
        b.iter(|| {
            let r = SimRunner::new(cfg.clone(), Arc::clone(&scene)).run();
            let rows: Vec<_> = StageKind::PIPELINE_FILTERS
                .iter()
                .map(|k| r.stage(*k, Some(0)).and_then(|s| s.idle_ms))
                .collect();
            black_box(rows)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
