//! Platform-model microbenchmarks: cost of booking transfers through the
//! mesh, the memory controllers and the partition-message path. These are
//! simulator-implementation benchmarks (host nanoseconds per modelled
//! operation), guarding the sweep runtimes of the figure regenerators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scc_sim::platform::MemOp;
use scc_sim::{CoreId, SccConfig, SccPlatform, SimTime};

fn bench_message_path(c: &mut Criterion) {
    c.bench_function("platform_message_64k", |b| {
        let mut platform = SccPlatform::new(SccConfig::default());
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t = platform.message(CoreId::new(0), CoreId::new(47), t, 64 * 1024);
            black_box(t)
        })
    });
}

fn bench_mem_stream(c: &mut Criterion) {
    c.bench_function("platform_mem_stream_640k", |b| {
        let mut platform = SccPlatform::new(SccConfig::default());
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t = platform.mem_stream(CoreId::new(4), t, MemOp::Read, 640_000);
            black_box(t)
        })
    });
}

fn bench_contended_quadrant(c: &mut Criterion) {
    c.bench_function("platform_six_streams_one_quadrant", |b| {
        let mut platform = SccPlatform::new(SccConfig::default());
        let mut t = SimTime::ZERO;
        b.iter(|| {
            for core in [0u8, 2, 4, 12, 14, 16] {
                black_box(platform.mem_stream(CoreId::new(core), t, MemOp::Write, 640_000));
            }
            t += SimTime::from_ms(50);
        })
    });
}

criterion_group!(
    benches,
    bench_message_path,
    bench_mem_stream,
    bench_contended_quadrant
);
criterion_main!(benches);
