//! Renderer substrate microbenchmarks: octree construction, frustum
//! culling, strip rendering and the coverage estimator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scc_render::{CityConfig, Octree, OctreeConfig, Renderer, Scene, Walkthrough};
use std::sync::Arc;

fn bench_octree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("octree_build");
    for side in [8u32, 16, 24] {
        let scene = Scene::city(CityConfig {
            side,
            spacing: 8.0,
            seed: 1,
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(scene.triangle_count()),
            &scene,
            |b, s| b.iter(|| black_box(Octree::build(&s.triangles, OctreeConfig::default()))),
        );
    }
    group.finish();
}

fn bench_cull(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let renderer = Renderer::new(scene);
    let cam = Walkthrough::standard(1.0).camera(13);
    c.bench_function("cull_full_frame", |b| {
        b.iter(|| black_box(renderer.cull_strip(&cam, 400, 400, 0, 400)))
    });
    c.bench_function("cull_one_of_seven_strips", |b| {
        b.iter(|| black_box(renderer.cull_strip(&cam, 400, 400, 114, 57)))
    });
}

fn bench_render_strip(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let renderer = Renderer::new(scene);
    let cam = Walkthrough::standard(1.0).camera(29);
    let mut group = c.benchmark_group("render");
    group.sample_size(20);
    group.bench_function("full_400x400", |b| {
        b.iter(|| black_box(renderer.render_full(&cam, 400, 400)))
    });
    group.bench_function("strip_400x100", |b| {
        b.iter(|| black_box(renderer.render_strip(&cam, 400, 400, 100, 100)))
    });
    group.finish();
}

criterion_group!(benches, bench_octree_build, bench_cull, bench_render_strip);
criterion_main!(benches);
