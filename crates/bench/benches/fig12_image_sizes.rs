//! Figure 12 regenerator bench: one MCPC-fed pipeline over increasing
//! image side lengths (the "no cache cliff" experiment).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scc_core::{Arrangement, Fidelity, RendererMode, RunConfig, SimRunner};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for side in [100u32, 200, 400] {
        g.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let cfg = RunConfig {
                renderer: RendererMode::McpcRenderer,
                arrangement: Arrangement::Ordered,
                pipelines: 1,
                width: side,
                height: side,
                frames: 40,
                fidelity: Fidelity::TimingOnly,
                trace: false,
                fault: None,
                ..RunConfig::default()
            };
            b.iter(|| {
                black_box(
                    SimRunner::new(cfg.clone(), Arc::clone(&scene))
                        .run()
                        .total_secs,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
