//! Microbenchmarks of the five filter stages on one strip — native
//! throughput of the kernels themselves (useful for comparing hosts and
//! for sanity-checking the relative weights the cost model assumes:
//! blur >> sepia > flicker > swap > scratch).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scc_filters::{Blur, Flicker, FrameCtx, Image, ImageFilter, Scratch, Sepia, VSwap};

fn strip() -> Image {
    let mut img = Image::new(400, 100);
    for y in 0..100 {
        for x in 0..400 {
            img.set(x, y, [(x % 256) as u8, (y * 2 % 256) as u8, 128, 255]);
        }
    }
    img
}

fn bench_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("filters");
    let base = strip();
    let ctx = FrameCtx::whole_frame(7, 42, 400, 100);
    group.throughput(Throughput::Bytes(base.byte_len()));
    let filters: Vec<(&str, Box<dyn ImageFilter>)> = vec![
        ("sepia", Box::new(Sepia)),
        ("blur", Box::new(Blur::default())),
        ("scratch", Box::new(Scratch::default())),
        ("flicker", Box::new(Flicker::default())),
        ("swap", Box::new(VSwap)),
    ];
    for (name, filter) in &filters {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut img| {
                    filter.apply(&mut img, &ctx);
                    black_box(img)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_blur_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("blur_radius");
    let base = strip();
    let ctx = FrameCtx::whole_frame(0, 0, 400, 100);
    for radius in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(radius), &radius, |b, &r| {
            let blur = Blur::new(r);
            b.iter_batched(
                || base.clone(),
                |mut img| {
                    blur.apply(&mut img, &ctx);
                    black_box(img)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_strip_split(c: &mut Criterion) {
    let img = strip();
    c.bench_function("split_assemble_4_strips", |b| {
        b.iter(|| {
            let strips = black_box(&img).split_strips(4);
            black_box(Image::assemble(&strips))
        })
    });
}

criterion_group!(benches, bench_filters, bench_blur_radius, bench_strip_split);
criterion_main!(benches);
