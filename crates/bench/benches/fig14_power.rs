//! Figure 14 regenerator bench: power-trace extraction for the MCPC
//! configuration across core counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scc_core::{Arrangement, Fidelity, RendererMode, RunConfig, SimRunner};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    for pipelines in [1u32, 4, 8] {
        let cpus = RendererMode::McpcRenderer.cores_needed(pipelines);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{cpus}cpus")),
            &pipelines,
            |b, &p| {
                let cfg = RunConfig {
                    renderer: RendererMode::McpcRenderer,
                    arrangement: Arrangement::Flipped,
                    pipelines: p,
                    frames: 40,
                    fidelity: Fidelity::TimingOnly,
                    trace: false,
                    fault: None,
                    ..RunConfig::default()
                };
                b.iter(|| {
                    let r = SimRunner::new(cfg.clone(), Arc::clone(&scene)).run();
                    black_box((r.power_trace.len(), r.scc_energy_joules))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
