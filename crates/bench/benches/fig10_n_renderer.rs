//! Figure 10 regenerator bench: one renderer per pipeline, 1..7 pipelines.
//!
//! The `experiments` binary prints the full figure; this bench times its
//! regeneration on a shortened walkthrough at the paper's geometry.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scc_core::{Arrangement, Fidelity, RendererMode, RunConfig, SimRunner};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let mut g = c.benchmark_group("fig10_n_renderer");
    g.sample_size(10);
    for pipelines in [1u32, 3, 5, 7] {
        g.bench_with_input(
            BenchmarkId::from_parameter(pipelines),
            &pipelines,
            |b, &p| {
                let cfg = RunConfig {
                    renderer: RendererMode::PerPipelineRenderer,
                    arrangement: Arrangement::Ordered,
                    pipelines: p,
                    frames: 40,
                    fidelity: Fidelity::TimingOnly,
                    trace: false,
                    fault: None,
                    ..RunConfig::default()
                };
                b.iter(|| {
                    black_box(
                        SimRunner::new(cfg.clone(), Arc::clone(&scene))
                            .run()
                            .total_secs,
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
