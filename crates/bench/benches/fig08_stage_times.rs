//! Figure 8 regenerator bench: the single-core baseline (all stages on
//! one core). `cargo run -p scc-bench --bin experiments fig8` prints the
//! actual figure; this bench times its regeneration on a shortened
//! walkthrough.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scc_core::{run_baseline, RunConfig};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let cfg = RunConfig {
        frames: 40,
        ..RunConfig::default()
    };
    let mut g = c.benchmark_group("fig08");
    g.sample_size(10);
    g.bench_function("single_core_baseline_40_frames", |b| {
        b.iter(|| black_box(run_baseline(&cfg, Arc::clone(&scene))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
