//! RCCE-style communicator benchmarks on real threads: ping-pong latency
//! and pipeline-pattern throughput.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scc_rcce::{communicator, MpbConfig};
use std::thread;

fn bench_ping_pong(c: &mut Criterion) {
    let mut group = c.benchmark_group("rcce_ping_pong");
    for size in [64usize, 8 * 1024, 256 * 1024] {
        group.throughput(Throughput::Bytes(size as u64 * 2));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut eps = communicator(2, 2, MpbConfig::default());
            let b1 = eps.pop().unwrap();
            let a = eps.pop().unwrap();
            let echo = thread::spawn(move || {
                while let Ok(m) = b1.recv(0) {
                    if m.is_empty() {
                        break;
                    }
                    b1.send(0, m).unwrap();
                }
            });
            let payload = Bytes::from(vec![7u8; size]);
            b.iter(|| {
                a.send(1, payload.clone()).unwrap();
                black_box(a.recv(1).unwrap());
            });
            a.send(1, Bytes::new()).unwrap();
            echo.join().unwrap();
        });
    }
    group.finish();
}

fn bench_chain_throughput(c: &mut Criterion) {
    // A 5-stage relay chain, the shape of one macro pipeline.
    c.bench_function("rcce_5_stage_relay_64k", |b| {
        let size = 64 * 1024;
        let n = 6;
        let mut eps = communicator(n, 2, MpbConfig::default());
        let last = eps.pop().unwrap();
        let mut relays = Vec::new();
        for rank in (1..n - 1).rev() {
            let ep = eps.remove(rank);
            relays.push(thread::spawn(move || {
                let (src, dst) = (rank - 1, rank + 1);
                while let Ok(m) = ep.recv(src) {
                    let stop = m.is_empty();
                    ep.send(dst, m).unwrap();
                    if stop {
                        break;
                    }
                }
            }));
        }
        let first = eps.remove(0);
        let payload = Bytes::from(vec![3u8; size]);
        b.iter(|| {
            first.send(1, payload.clone()).unwrap();
            black_box(last.recv(n - 2).unwrap());
        });
        first.send(1, Bytes::new()).unwrap();
        last.recv(n - 2).unwrap();
        for r in relays {
            r.join().unwrap();
        }
    });
}

criterion_group!(benches, bench_ping_pong, bench_chain_throughput);
criterion_main!(benches);
