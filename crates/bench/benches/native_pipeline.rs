//! End-to-end native pipeline throughput on the host: real threads, real
//! pixels. Demonstrates actual pipeline-parallel speed-up of the macro
//! pipeline implementation (this is host-dependent, unlike the simulated
//! figures).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scc_core::{run_native, Fidelity, RunConfig};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn bench_native_scaling(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig {
        side: 10,
        spacing: 8.0,
        seed: 5,
    }));
    let mut group = c.benchmark_group("native_pipeline");
    group.sample_size(10);
    for pipelines in [1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(pipelines),
            &pipelines,
            |b, &p| {
                let cfg = RunConfig::builder()
                    .pipelines(p)
                    .size(160, 120)
                    .frames(12)
                    .seed(3)
                    .fidelity(Fidelity::Full)
                    .build()
                    .expect("valid config");
                b.iter(|| black_box(run_native(&cfg, Arc::clone(&scene))))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_native_scaling);
criterion_main!(benches);
