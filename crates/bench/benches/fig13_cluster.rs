//! Figure 13 regenerator bench: the walkthrough on the Mogon-like
//! cluster, all three configurations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scc_cluster::{cluster_walkthrough, ClusterMode};
use scc_core::RunConfig;
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let cfg = RunConfig {
        frames: 40,
        ..RunConfig::default()
    };
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    for (mode, name) in [
        (ClusterMode::ExternalRenderer, "external"),
        (ClusterMode::SingleRenderer, "single"),
        (ClusterMode::ParallelRenderer, "parallel"),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 7), &mode, |b, &mode| {
            b.iter(|| black_box(cluster_walkthrough(mode, 7, &cfg, Arc::clone(&scene))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
