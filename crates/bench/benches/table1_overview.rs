//! Table I regenerator bench: one representative cell per configuration
//! class (the `experiments table1` binary prints the full 12x7 table).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scc_cluster::{cluster_walkthrough, ClusterMode};
use scc_core::{Arrangement, Fidelity, RendererMode, RunConfig, SimRunner};
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    let cfg = |mode, p| RunConfig {
        renderer: mode,
        arrangement: Arrangement::Ordered,
        pipelines: p,
        frames: 40,
        fidelity: Fidelity::TimingOnly,
        trace: false,
        fault: None,
        ..RunConfig::default()
    };
    for (label, mode, p) in [
        ("1rend_7pl", RendererMode::SingleRenderer, 7u32),
        ("nrend_7pl", RendererMode::PerPipelineRenderer, 7),
        ("mcpc_5pl", RendererMode::McpcRenderer, 5),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(mode, p),
            |b, &(m, p)| {
                b.iter(|| {
                    black_box(
                        SimRunner::new(cfg(m, p), Arc::clone(&scene))
                            .run()
                            .total_secs,
                    )
                })
            },
        );
    }
    g.bench_function("hpc_parallel_7pl", |b| {
        let rc = RunConfig {
            frames: 40,
            ..RunConfig::default()
        };
        b.iter(|| {
            black_box(cluster_walkthrough(
                ClusterMode::ParallelRenderer,
                7,
                &rc,
                Arc::clone(&scene),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
