//! Figure 17 regenerator bench: power traces under the three DVFS
//! variants (§VI-D), using the island-aware placement of Figure 18.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scc_core::runner::sim::DvfsPlan;
use scc_core::{
    place_dvfs_single_pipeline, CostModel, Fidelity, RendererMode, RunConfig, SimRunner,
};
use scc_render::{CityConfig, Scene};
use scc_sim::{CoreId, FreqMHz, IslandId, SccConfig, SccPlatform};
use std::sync::Arc;

fn settings(variant: &str) -> Vec<(CoreId, FreqMHz)> {
    let placement = place_dvfs_single_pipeline(RendererMode::McpcRenderer);
    let blur = placement.pipelines[0][1];
    match variant {
        "all533" => vec![],
        "blur800" => vec![(blur, FreqMHz::F800)],
        _ => {
            let island = IslandId::of_tile(placement.pipelines[0][2].tile());
            let mut v = vec![(blur, FreqMHz::F800)];
            for tile in island.tiles() {
                v.push((tile.cores()[0], FreqMHz::F400));
            }
            v
        }
    }
}

fn bench(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    for variant in ["all533", "blur800", "mixed"] {
        g.bench_with_input(BenchmarkId::from_parameter(variant), &variant, |b, v| {
            let cfg = RunConfig {
                renderer: RendererMode::McpcRenderer,
                pipelines: 1,
                frames: 40,
                fidelity: Fidelity::TimingOnly,
                trace: false,
                fault: None,
                ..RunConfig::default()
            };
            b.iter(|| {
                let r = SimRunner::with_parts(
                    cfg.clone(),
                    Arc::clone(&scene),
                    place_dvfs_single_pipeline(RendererMode::McpcRenderer),
                    SccPlatform::new(SccConfig::default()),
                    CostModel::default(),
                    DvfsPlan {
                        settings: settings(v),
                    },
                )
                .run();
                black_box((r.power_trace.len(), r.mean_power()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
