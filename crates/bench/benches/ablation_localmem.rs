//! Ablation bench for the conclusion's local-memory what-if: the same
//! blur-bound configuration on the stock SCC and with 256 KiB per-core
//! banks (Cell-style direct messaging).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scc_core::runner::sim::DvfsPlan;
use scc_core::{place, Arrangement, CostModel, Fidelity, RendererMode, RunConfig, SimRunner};
use scc_render::{CityConfig, Scene};
use scc_sim::{SccConfig, SccPlatform};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scene = Arc::new(Scene::city(CityConfig::default()));
    let mut g = c.benchmark_group("ablation_localmem");
    g.sample_size(10);
    for (label, bank) in [("real_scc", 0u64), ("with_256k_banks", 256 * 1024)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &bank, |b, &bank| {
            let config = RunConfig {
                renderer: RendererMode::McpcRenderer,
                arrangement: Arrangement::Ordered,
                pipelines: 3,
                frames: 40,
                fidelity: Fidelity::TimingOnly,
                ..RunConfig::default()
            };
            b.iter(|| {
                let placement = place(config.renderer, config.arrangement, config.pipelines);
                let scc = SccConfig {
                    local_memory_bytes: bank,
                    ..SccConfig::default()
                };
                black_box(
                    SimRunner::with_parts(
                        config.clone(),
                        Arc::clone(&scene),
                        placement,
                        SccPlatform::new(scc),
                        CostModel::default(),
                        DvfsPlan::default(),
                    )
                    .run()
                    .total_secs,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
