//! Plain-text rendering of experiment results (the same rows/series the
//! paper's figures and Table I report).

use crate::experiments::{EnergyComparison, IdleRow, PowerCurve, ScalePoint, SizePoint, TableRow};
use scc_core::{Arrangement, BaselineReport};

/// Figure 8 as a labelled bar list.
pub fn render_fig8(r: &BaselineReport) -> String {
    let mut s = String::new();
    s.push_str("Overall stage running time using one SCC core\n");
    for (kind, secs) in &r.stage_secs {
        s.push_str(&format!("  {:<9} {:>8.1} s\n", kind.name(), secs));
    }
    s.push_str(&format!("  {:<9} {:>8.1} s\n", "TOTAL", r.total_secs));
    s.push_str(&format!(
        "  render only: {:.1} s, render+transfer: {:.1} s\n",
        r.render_only_secs, r.render_transfer_secs
    ));
    s
}

/// A scaling figure (Figures 9-11) as a table: pipelines × arrangements.
pub fn render_scaling(title: &str, points: &[ScalePoint]) -> String {
    let mut s = format!("{title}\n  pl   unordered   ordered   flipped\n");
    let max_p = points.iter().map(|p| p.pipelines).max().unwrap_or(0);
    for p in 1..=max_p {
        let find = |arr: Arrangement| {
            points
                .iter()
                .find(|x| x.pipelines == p && x.arrangement == arr)
                .map(|x| format!("{:>8.1}s", x.secs))
                .unwrap_or_else(|| "       -".into())
        };
        s.push_str(&format!(
            "  {:>2}  {}  {}  {}\n",
            p,
            find(Arrangement::Unordered),
            find(Arrangement::Ordered),
            find(Arrangement::Flipped),
        ));
    }
    s
}

/// Figure 12's series.
pub fn render_fig12(points: &[SizePoint]) -> String {
    let mut s =
        String::from("Rendering time with increasing image sizes\n  side(data)      time\n");
    for p in points {
        s.push_str(&format!(
            "  {:>3}({:>3}kb)  {:>8.1} s\n",
            p.side, p.kilobytes, p.secs
        ));
    }
    s
}

/// Table I.
pub fn render_table1(rows: &[TableRow]) -> String {
    let mut s = String::from("Overview of the results\n");
    s.push_str(&format!("{:<22}", ""));
    for p in 1..=7 {
        s.push_str(&format!("{:>8}", format!("{p} pl.")));
    }
    s.push('\n');
    for row in rows {
        s.push_str(&format!("{:<22}", row.label));
        for v in &row.secs {
            if v.is_nan() {
                s.push_str(&format!("{:>8}", "-"));
            } else {
                s.push_str(&format!("{:>7.0}s", v));
            }
        }
        s.push('\n');
    }
    s
}

/// Figure 14/17-style power curves, decimated for terminal output.
pub fn render_power_curves(title: &str, curves: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut s = format!("{title}\n");
    for (label, samples) in curves {
        let avg = if samples.is_empty() {
            0.0
        } else {
            samples.iter().map(|(_, w)| w).sum::<f64>() / samples.len() as f64
        };
        let max = samples.iter().map(|(_, w)| *w).fold(0.0, f64::max);
        s.push_str(&format!(
            "  {:<28} avg {:>5.1} W   peak {:>5.1} W   ({} samples)\n",
            label,
            avg,
            max,
            samples.len()
        ));
    }
    s
}

/// Figure 14 wrapper.
pub fn render_fig14(curves: &[PowerCurve]) -> String {
    let list: Vec<(String, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|c| (c.label.clone(), c.samples.clone()))
        .collect();
    render_power_curves("SCC power consumption with MCPC for rendering", &list)
}

/// Figure 15's box-plot data.
pub fn render_fig15(rows: &[IdleRow]) -> String {
    let mut s = String::from("Idle times with MCPC renderer and seven pipelines (per frame, ms)\n");
    s.push_str("  stage      q1      median  q3\n");
    for r in rows {
        s.push_str(&format!(
            "  {:<9} {:>7.1} {:>7.1} {:>7.1}\n",
            r.stage.name(),
            r.quartiles.q1,
            r.quartiles.median,
            r.quartiles.q3
        ));
    }
    s
}

/// §VI-B energy comparison.
pub fn render_energy(e: &EnergyComparison) -> String {
    format!(
        "Energy comparison (§VI-B)\n\
         hybrid (MCPC + 5 pl.): {:.1} s at {:.1} W mean, MCPC renders {:.1} s -> {:.0} J\n\
         n-renderer (7 pl.):    {:.1} s at {:.1} W mean                     -> {:.0} J\n",
        e.hybrid_secs,
        e.hybrid_mean_power,
        e.hybrid_mcpc_render_secs,
        e.hybrid_energy_joules,
        e.nrend_secs,
        e.nrend_mean_power,
        e.nrend_energy_joules
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_core::StageKind;
    use scc_sim::stats::Quartiles;

    #[test]
    fn scaling_table_renders_all_points() {
        let pts = vec![
            ScalePoint {
                pipelines: 1,
                arrangement: Arrangement::Ordered,
                secs: 100.0,
            },
            ScalePoint {
                pipelines: 2,
                arrangement: Arrangement::Flipped,
                secs: 55.0,
            },
        ];
        let s = render_scaling("t", &pts);
        assert!(s.contains("100.0s"));
        assert!(s.contains("55.0s"));
        assert!(s.contains("-"), "missing cells dashed");
    }

    #[test]
    fn table1_handles_nan() {
        let rows = vec![TableRow {
            label: "n rend., ordered".into(),
            secs: vec![100.0, 50.0, f64::NAN],
        }];
        let s = render_table1(&rows);
        assert!(s.contains("100s"));
        assert!(s.contains("-"));
    }

    #[test]
    fn fig15_renders_quartiles() {
        let rows = vec![IdleRow {
            stage: StageKind::Blur,
            quartiles: Quartiles {
                min: 1.0,
                q1: 2.0,
                median: 3.0,
                q3: 4.0,
                max: 5.0,
            },
        }];
        let s = render_fig15(&rows);
        assert!(s.contains("blur"));
        assert!(s.contains("3.0"));
    }
}

/// CSV rendering of a scaling figure: `pipelines,unordered,ordered,flipped`.
pub fn csv_scaling(points: &[ScalePoint]) -> String {
    let mut s = String::from("pipelines,unordered,ordered,flipped\n");
    let max_p = points.iter().map(|p| p.pipelines).max().unwrap_or(0);
    for p in 1..=max_p {
        let find = |arr: Arrangement| {
            points
                .iter()
                .find(|x| x.pipelines == p && x.arrangement == arr)
                .map(|x| format!("{:.3}", x.secs))
                .unwrap_or_default()
        };
        s.push_str(&format!(
            "{},{},{},{}\n",
            p,
            find(Arrangement::Unordered),
            find(Arrangement::Ordered),
            find(Arrangement::Flipped)
        ));
    }
    s
}

/// CSV rendering of Figure 12: `side,kilobytes,seconds`.
pub fn csv_fig12(points: &[SizePoint]) -> String {
    let mut s = String::from("side,kilobytes,seconds\n");
    for p in points {
        s.push_str(&format!("{},{},{:.3}\n", p.side, p.kilobytes, p.secs));
    }
    s
}

/// CSV rendering of power curves: `seconds,watts` per labelled block,
/// long format: `label,seconds,watts`.
pub fn csv_power_curves(curves: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut s = String::from("label,seconds,watts\n");
    for (label, samples) in curves {
        for (t, w) in samples {
            s.push_str(&format!("{label},{t:.1},{w:.3}\n"));
        }
    }
    s
}

/// CSV rendering of Figure 15: `stage,q1,median,q3`.
pub fn csv_fig15(rows: &[IdleRow]) -> String {
    let mut s = String::from("stage,q1,median,q3\n");
    for r in rows {
        s.push_str(&format!(
            "{},{:.2},{:.2},{:.2}\n",
            r.stage.name(),
            r.quartiles.q1,
            r.quartiles.median,
            r.quartiles.q3
        ));
    }
    s
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_scaling_is_rectangular() {
        let pts = vec![
            ScalePoint {
                pipelines: 1,
                arrangement: Arrangement::Ordered,
                secs: 10.0,
            },
            ScalePoint {
                pipelines: 2,
                arrangement: Arrangement::Ordered,
                secs: 5.0,
            },
        ];
        let csv = csv_scaling(&pts);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("pipelines,"));
        assert_eq!(lines[1].split(',').count(), 4);
        assert!(lines[2].contains("5.000"));
    }

    #[test]
    fn csv_fig12_rows() {
        let csv = csv_fig12(&[SizePoint {
            side: 400,
            kilobytes: 640,
            secs: 204.0,
        }]);
        assert!(csv.contains("400,640,204.000"));
    }
}
