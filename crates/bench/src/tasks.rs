//! Task-runtime load-balance measurement — the `BENCH_tasks.json`
//! trajectory.
//!
//! The claim behind [`scc_core::spec::Runtime::Tasks`] is Figure 15's
//! complaint inverted: the static placement leaves cheap-stage cores idle
//! at the bottleneck's rate, and work stealing should flatten that. This
//! sweep runs every renderer mode twice in virtual time — static pipeline
//! vs task runtime, same seed, same frames — and records the per-core
//! *idle-fraction* quartiles across the filter cores
//! (`idle = total − busy`, normalised by the run's makespan). The gate is
//! twofold: the task run's quartile spread (Q3 − Q1) must come in
//! strictly below the static run's, and the delivered film must hash
//! bit-identical — load balance is worthless if it moves a pixel.
//! The exactly-once ledger (spawned/completed/steals/re-queues) rides
//! along so the trajectory also tracks how much stealing the balance
//! cost.

use scc_core::spec::{RendererMode, Runtime, StageKind};
use scc_core::viz::frame_checksum;
use scc_core::{RunConfig, SimRunner, WalkthroughReport};
use scc_render::Scene;
use scc_telemetry::Json;
use std::fmt::Write as _;
use std::sync::Arc;

/// Quartiles of the per-filter-core idle fraction of one run.
#[derive(Debug, Clone, Copy)]
pub struct IdleSpread {
    pub q1: f64,
    pub q2: f64,
    pub q3: f64,
}

impl IdleSpread {
    /// Interquartile spread — the quantity the gate compares.
    pub fn spread(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Linear-interpolation quartiles over the filter cores' idle
    /// fractions: `idle_i = 1 − busy_i / makespan`.
    pub fn of(report: &WalkthroughReport) -> IdleSpread {
        let mut fractions: Vec<f64> = report
            .stage_reports
            .iter()
            .filter(|s| StageKind::PIPELINE_FILTERS.contains(&s.kind))
            .map(|s| 1.0 - s.busy_secs / report.total_secs)
            .collect();
        assert!(!fractions.is_empty(), "no filter stages in the report");
        fractions.sort_by(|a, b| a.partial_cmp(b).expect("finite fractions"));
        let at = |q: f64| -> f64 {
            let pos = q * (fractions.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            fractions[lo] * (1.0 - frac) + fractions[hi] * frac
        };
        IdleSpread {
            q1: at(0.25),
            q2: at(0.5),
            q3: at(0.75),
        }
    }
}

/// One renderer mode, measured static-vs-tasks.
#[derive(Debug, Clone)]
pub struct TasksPoint {
    pub mode: RendererMode,
    pub static_secs: f64,
    pub tasks_secs: f64,
    pub static_idle: IdleSpread,
    pub tasks_idle: IdleSpread,
    /// True when the task run's film hashed identical to the static
    /// run's, frame for frame.
    pub bit_identical: bool,
    /// The task run's exactly-once ledger.
    pub stats: scc_core::TaskStats,
}

impl TasksPoint {
    /// Percent reduction of the idle-quartile spread under Tasks.
    pub fn spread_reduction_pct(&self) -> f64 {
        (1.0 - self.tasks_idle.spread() / self.static_idle.spread()) * 100.0
    }
}

/// The full sweep, ready to render as `BENCH_tasks.json`.
#[derive(Debug, Clone)]
pub struct TasksReport {
    pub config: RunConfig,
    pub points: Vec<TasksPoint>,
}

impl TasksReport {
    /// True when every mode delivered the static film bit-for-bit.
    pub fn output_consistent(&self) -> bool {
        self.points.iter().all(|p| p.bit_identical)
    }

    /// True when every mode's spread came in strictly below static's.
    pub fn spread_reduced(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.tasks_idle.spread() < p.static_idle.spread())
    }

    /// True when no mode lost a task (`completed + degraded == spawned`).
    pub fn no_lost_tasks(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.stats.completed + p.stats.degraded == p.stats.spawned)
    }
}

/// Run the sweep: each renderer mode once under the static pipeline and
/// once under the task runtime, full fidelity, same seed.
pub fn measure_tasks(base: &RunConfig, scene: &Arc<Scene>) -> TasksReport {
    let mut points = Vec::new();
    for mode in [
        RendererMode::SingleRenderer,
        RendererMode::PerPipelineRenderer,
        RendererMode::McpcRenderer,
    ] {
        let mut st = base.clone();
        st.renderer = mode;
        st.runtime = Runtime::Static;
        st.trace = false;
        let static_report = SimRunner::new(st.clone(), Arc::clone(scene)).run();
        let static_film: Vec<u64> = static_report
            .outputs
            .as_ref()
            .expect("full fidelity")
            .iter()
            .map(frame_checksum)
            .collect();

        let mut tk = st.clone();
        tk.runtime = Runtime::Tasks;
        let tasks_report = SimRunner::new(tk, Arc::clone(scene)).run();
        let tasks_film: Vec<u64> = tasks_report
            .outputs
            .as_ref()
            .expect("full fidelity")
            .iter()
            .map(frame_checksum)
            .collect();

        points.push(TasksPoint {
            mode,
            static_secs: static_report.total_secs,
            tasks_secs: tasks_report.total_secs,
            static_idle: IdleSpread::of(&static_report),
            tasks_idle: IdleSpread::of(&tasks_report),
            bit_identical: static_film == tasks_film,
            stats: tasks_report.task_stats.expect("task ledger present"),
        });
    }
    TasksReport {
        config: base.clone(),
        points,
    }
}

impl TasksReport {
    /// Render the report as the `BENCH_tasks.json` document.
    pub fn to_json(&self) -> String {
        let config = Json::obj()
            .field("pipelines", Json::U64(u64::from(self.config.pipelines)))
            .field("width", Json::U64(u64::from(self.config.width)))
            .field("height", Json::U64(u64::from(self.config.height)))
            .field("frames", Json::U64(self.config.frames))
            .field("seed", Json::U64(self.config.seed))
            .field(
                "queue_capacity",
                Json::U64(u64::from(self.config.task_tuning.queue_capacity)),
            )
            .field(
                "steal_timeout_us",
                Json::U64(self.config.task_tuning.steal_timeout_us),
            )
            .field(
                "steal_retries",
                Json::U64(u64::from(self.config.task_tuning.steal_retries)),
            );
        let idle = |s: &IdleSpread| {
            Json::obj()
                .field("q1", Json::F64(s.q1))
                .field("q2", Json::F64(s.q2))
                .field("q3", Json::F64(s.q3))
                .field("spread", Json::F64(s.spread()))
        };
        let points = Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    Json::obj()
                        .field("mode", Json::str(p.mode.name()))
                        .field("static_secs", Json::F64(p.static_secs))
                        .field("tasks_secs", Json::F64(p.tasks_secs))
                        .field("static_idle", idle(&p.static_idle))
                        .field("tasks_idle", idle(&p.tasks_idle))
                        .field("spread_reduction_pct", Json::F64(p.spread_reduction_pct()))
                        .field("bit_identical", Json::Bool(p.bit_identical))
                        .field("spawned", Json::U64(p.stats.spawned))
                        .field("completed", Json::U64(p.stats.completed))
                        .field("executed", Json::U64(p.stats.executed))
                        .field("requeued", Json::U64(p.stats.requeued))
                        .field("steal_attempts", Json::U64(p.stats.steal_attempts))
                        .field("steals", Json::U64(p.stats.steals))
                        .field(
                            "backpressure_stalls",
                            Json::U64(p.stats.backpressure_stalls),
                        )
                        .field("max_queue_depth", Json::U64(p.stats.max_queue_depth))
                })
                .collect(),
        );
        Json::obj()
            .field("bench", Json::str("tasks"))
            .field("config", config)
            .field(
                "note",
                Json::str(
                    "virtual-time sweep: static pipeline vs dependency-driven \
                     task runtime per renderer mode; idle quartiles are \
                     per-filter-core idle fractions (1 - busy/makespan), the \
                     spread gate is Q3 - Q1 strictly lower under Tasks at a \
                     bit-identical film",
                ),
            )
            .field("points", points)
            .render()
    }

    /// Plain-text table for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "task runtime vs static — p={} {}x{} f={} (qcap={} steal={}us retries={})",
            self.config.pipelines,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.task_tuning.queue_capacity,
            self.config.task_tuning.steal_timeout_us,
            self.config.task_tuning.steal_retries,
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>10} {:>12} {:>12} {:>9} {:>7} {:>8}",
            "mode",
            "static_s",
            "tasks_s",
            "static_iqr",
            "tasks_iqr",
            "reduce%",
            "steals",
            "requeue"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>8} {:>10.3} {:>10.3} {:>12.4} {:>12.4} {:>8.1}% {:>7} {:>8}",
                p.mode.name(),
                p.static_secs,
                p.tasks_secs,
                p.static_idle.spread(),
                p.tasks_idle.spread(),
                p.spread_reduction_pct(),
                p.stats.steals,
                p.stats.requeued,
            );
        }
        let _ = writeln!(
            out,
            "film {}; idle spread {}; tasks {}",
            if self.output_consistent() {
                "bit-identical in every mode"
            } else {
                "DIVERGED — the steal scheduler moved a pixel!"
            },
            if self.spread_reduced() {
                "strictly reduced in every mode"
            } else {
                "NOT reduced — stealing failed to balance the cores"
            },
            if self.no_lost_tasks() {
                "all conserved"
            } else {
                "LOST — the ledger does not balance!"
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_core::Fidelity;
    use scc_render::CityConfig;

    #[test]
    fn sweep_reduces_spread_at_identical_film() {
        let cfg = RunConfig::builder()
            .pipelines(2)
            .size(48, 48)
            .frames(6)
            .seed(5)
            .fidelity(Fidelity::Full)
            .build()
            .expect("valid config");
        let scene = Arc::new(Scene::city(CityConfig {
            side: 4,
            spacing: 8.0,
            seed: 1,
        }));
        let report = measure_tasks(&cfg, &scene);
        assert_eq!(report.points.len(), 3);
        assert!(report.output_consistent(), "a mode moved a pixel");
        assert!(report.no_lost_tasks(), "a mode lost a task");
        assert!(
            report.spread_reduced(),
            "idle spread not reduced: {}",
            report.render_text()
        );
        let json = report.to_json();
        for key in [
            "\"bench\": \"tasks\"",
            "\"spread_reduction_pct\"",
            "\"bit_identical\": true",
            "\"steals\"",
            "\"max_queue_depth\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
