//! Wall-clock benchmark runner: measures host-native pipeline throughput
//! and writes `BENCH_native_pipeline.json` so every PR has a perf
//! trajectory to compare against. The `recovery` mode instead sweeps the
//! supervised fail-stop scenario (kill time × arrangement, virtual time)
//! and writes `BENCH_recovery.json`.
//!
//! Usage:
//!   bench [--smoke] [--out PATH] [--frames N] [--size WxH]
//!         [--pipelines P] [--threads 1,2,4,8]
//!   bench recovery [--smoke] [--out PATH] [--frames N] [--size WxH]
//!                  [--pipelines P] [--kills 10,50,150]
//!   bench autoplace [--smoke] [--out PATH] [--frames N] [--size WxH]
//!                   [--pipelines P]
//!   bench kernels [--smoke] [--out PATH] [--frames N] [--size WxH]
//!                 [--threads 1,2,4]
//!   bench tasks [--smoke] [--out PATH] [--frames N] [--size WxH]
//!               [--pipelines P]
//!   bench serving [--smoke] [--out PATH] [--size WxH] [--pipelines P]
//!                 [--sessions 8,16,32]
//!   bench dvfs [--smoke] [--out PATH] [--frames N] [--size WxH]
//!
//! `--smoke` shrinks everything to a seconds-long configuration for CI;
//! the defaults measure the paper's 400×400 silent-film geometry.
//! `autoplace` sweeps the stage-graph scheduler's placement against the
//! three fixed arrangements in virtual time and writes
//! `BENCH_autoplace.json`. `kernels` isolates the filter kernels
//! (scalar/simd × fused/unfused × threads, no render or transport) and
//! writes `BENCH_kernels.json`.

use scc_bench::autoplace::measure_autoplace;
use scc_bench::dvfs::measure_dvfs;
use scc_bench::kernels::measure_kernels;
use scc_bench::native_throughput::measure_native_throughput;
use scc_bench::recovery::measure_recovery;
use scc_bench::serving::measure_serving;
use scc_bench::standard_scene;
use scc_bench::tasks::measure_tasks;
use scc_core::{Fidelity, RunConfig};

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let recovery_mode = args.first().map(|a| a == "recovery").unwrap_or(false);
    let autoplace_mode = args.first().map(|a| a == "autoplace").unwrap_or(false);
    let kernels_mode = args.first().map(|a| a == "kernels").unwrap_or(false);
    let tasks_mode = args.first().map(|a| a == "tasks").unwrap_or(false);
    let serving_mode = args.first().map(|a| a == "serving").unwrap_or(false);
    let dvfs_mode = args.first().map(|a| a == "dvfs").unwrap_or(false);
    if recovery_mode || autoplace_mode || kernels_mode || tasks_mode || serving_mode || dvfs_mode {
        args.remove(0);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = parse_flag(&args, "--out").unwrap_or_else(|| {
        if recovery_mode {
            "BENCH_recovery.json".into()
        } else if autoplace_mode {
            "BENCH_autoplace.json".into()
        } else if kernels_mode {
            "BENCH_kernels.json".into()
        } else if tasks_mode {
            "BENCH_tasks.json".into()
        } else if serving_mode {
            "BENCH_serving.json".into()
        } else if dvfs_mode {
            "BENCH_dvfs.json".into()
        } else {
            "BENCH_native_pipeline.json".into()
        }
    });

    let (mut width, mut height) = if smoke { (64, 64) } else { (400, 400) };
    if let Some(size) = parse_flag(&args, "--size") {
        let (w, h) = size.split_once('x').expect("--size WxH");
        width = w.parse().expect("width");
        height = h.parse().expect("height");
    }
    let frames: u64 = parse_flag(&args, "--frames")
        .map(|v| v.parse().expect("--frames N"))
        .unwrap_or(if smoke { 4 } else { 48 });
    let pipelines: u32 = parse_flag(&args, "--pipelines")
        .map(|v| v.parse().expect("--pipelines P"))
        .unwrap_or(if recovery_mode { 3 } else { 2 });
    let threads: Vec<u32> = parse_flag(&args, "--threads")
        .map(|v| {
            v.split(',')
                .map(|t| t.trim().parse().expect("--threads a,b,c"))
                .collect()
        })
        .unwrap_or_else(|| if smoke { vec![1, 2] } else { vec![1, 2, 4] });

    if kernels_mode {
        eprintln!(
            "measuring filter kernels: {}x{} f={} threads={threads:?}{}",
            width,
            height,
            frames,
            if smoke { " (smoke)" } else { "" },
        );
        let report = measure_kernels(width, height, frames, 0x51CC_F11F, &threads);
        print!("{}", report.render_text());
        std::fs::write(&out_path, report.to_json()).expect("write bench json");
        println!("wrote {out_path}");
        if !report.output_consistent {
            eprintln!("FATAL: a kernel variant changed pixels");
            std::process::exit(1);
        }
        return;
    }

    let cfg = RunConfig::builder()
        .pipelines(pipelines)
        .size(width, height)
        .frames(frames)
        .seed(0x51CC_F11F)
        .fidelity(Fidelity::Full)
        .build()
        .expect("bench configuration");

    if serving_mode {
        let session_counts: Vec<u32> = parse_flag(&args, "--sessions")
            .map(|v| {
                v.split(',')
                    .map(|t| t.trim().parse().expect("--sessions a,b,c"))
                    .collect()
            })
            .unwrap_or_else(|| if smoke { vec![4, 8] } else { vec![16, 32, 64] });
        eprintln!(
            "measuring serving layer: {}x{} p={} sessions={session_counts:?}{}",
            width,
            height,
            pipelines,
            if smoke { " (smoke)" } else { "" },
        );
        let scene = standard_scene();
        let report = measure_serving(&cfg, &scene, &session_counts);
        print!("{}", report.render_text());
        std::fs::write(&out_path, report.to_json()).expect("write bench json");
        println!("wrote {out_path}");
        if !report.cache_transparent() {
            eprintln!("FATAL: the strip cache changed a pixel");
            std::process::exit(1);
        }
        if !report.cache_speeds_up() {
            eprintln!("FATAL: sessions/s not strictly higher with the cache on");
            std::process::exit(1);
        }
        if !report.ledger_balanced() {
            eprintln!("FATAL: the session ledger does not balance (silent shed)");
            std::process::exit(1);
        }
        return;
    }

    if dvfs_mode {
        eprintln!(
            "measuring dvfs power plane: film {}x{} f={} + wavefront{}",
            width,
            height,
            frames,
            if smoke { " (smoke)" } else { "" },
        );
        let scene = standard_scene();
        let report = measure_dvfs(&cfg, &scene);
        print!("{}", report.render_text());
        std::fs::write(&out_path, report.to_json()).expect("write bench json");
        println!("wrote {out_path}");
        if !report.film_output_consistent {
            eprintln!("FATAL: a power plan changed a film pixel");
            std::process::exit(1);
        }
        if !report.wavefront_digest_consistent {
            eprintln!("FATAL: a power plan or backend drifted the wavefront digest");
            std::process::exit(1);
        }
        if !report.decision_parity {
            eprintln!("FATAL: governed decision traces split between sim and des");
            std::process::exit(1);
        }
        if !report.governed_not_dominated {
            eprintln!("FATAL: the governor lost to every static split on time and energy");
            std::process::exit(1);
        }
        return;
    }

    if tasks_mode {
        eprintln!(
            "measuring task runtime vs static pipeline: {}x{} f={} p={}{}",
            width,
            height,
            frames,
            pipelines,
            if smoke { " (smoke)" } else { "" },
        );
        let scene = standard_scene();
        let report = measure_tasks(&cfg, &scene);
        print!("{}", report.render_text());
        std::fs::write(&out_path, report.to_json()).expect("write bench json");
        println!("wrote {out_path}");
        if !report.output_consistent() {
            eprintln!("FATAL: the task runtime changed a pixel");
            std::process::exit(1);
        }
        if !report.no_lost_tasks() {
            eprintln!("FATAL: the task ledger does not balance (lost tasks)");
            std::process::exit(1);
        }
        if !report.spread_reduced() {
            eprintln!("FATAL: idle-quartile spread not reduced vs static");
            std::process::exit(1);
        }
        return;
    }

    if autoplace_mode {
        eprintln!(
            "measuring auto-placement vs fixed arrangements: {}x{} f={} p={}{}",
            width,
            height,
            frames,
            pipelines,
            if smoke { " (smoke)" } else { "" },
        );
        let scene = standard_scene();
        let report = measure_autoplace(&cfg, &scene);
        print!("{}", report.render_text());
        std::fs::write(&out_path, report.to_json()).expect("write bench json");
        println!("wrote {out_path}");
        if !report.output_consistent {
            eprintln!("FATAL: the scheduler placement changed a pixel");
            std::process::exit(1);
        }
        if report.speedup_vs_best_fixed < 0.99 {
            eprintln!(
                "FATAL: auto placement lost to a fixed arrangement \
                 ({:.3}x)",
                report.speedup_vs_best_fixed
            );
            std::process::exit(1);
        }
        return;
    }

    if recovery_mode {
        let kills: Vec<u64> = parse_flag(&args, "--kills")
            .map(|v| {
                v.split(',')
                    .map(|t| t.trim().parse().expect("--kills a,b,c"))
                    .collect()
            })
            .unwrap_or_else(|| if smoke { vec![1, 5] } else { vec![10, 50, 150] });
        eprintln!(
            "measuring supervised recovery: {}x{} f={} p={} kills={kills:?} ms{}",
            width,
            height,
            frames,
            pipelines,
            if smoke { " (smoke)" } else { "" },
        );
        let scene = standard_scene();
        let report = measure_recovery(&cfg, &scene, &kills);
        print!("{}", report.render_text());
        std::fs::write(&out_path, report.to_json()).expect("write bench json");
        println!("wrote {out_path}");
        if report.points.iter().any(|p| !p.bit_identical) {
            eprintln!("FATAL: recovery damaged a frame");
            std::process::exit(1);
        }
        return;
    }

    eprintln!(
        "measuring native throughput: {}x{} f={} p={} threads={threads:?}{}",
        width,
        height,
        frames,
        pipelines,
        if smoke { " (smoke)" } else { "" },
    );
    let scene = standard_scene();
    let report = measure_native_throughput(&cfg, &scene, &threads);
    print!("{}", report.render_text());

    std::fs::write(&out_path, report.to_json()).expect("write bench json");
    println!("wrote {out_path}");
    if !report.output_consistent {
        eprintln!("FATAL: tuning variants produced different pixels");
        std::process::exit(1);
    }
}
