//! Regenerate the paper's tables and figures.
//!
//! Usage: `experiments [fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|
//! fig16|fig17|table1|energy|speedups|all]`

use scc_bench::report;
use scc_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let scene = standard_scene();

    // `experiments csv <dir>`: write machine-readable series for every
    // plot (consumed by docs/plots/paper_figures.gp).
    if what == "csv" {
        let dir = args.get(1).cloned().unwrap_or_else(|| "target/csv".into());
        std::fs::create_dir_all(&dir).expect("create csv dir");
        let w = |name: &str, data: String| {
            let path = format!("{dir}/{name}");
            std::fs::write(&path, data).expect("write csv");
            println!("wrote {path}");
        };
        w("fig09.csv", report::csv_scaling(&fig9(&scene)));
        w("fig10.csv", report::csv_scaling(&fig10(&scene)));
        w("fig11.csv", report::csv_scaling(&fig11(&scene)));
        w("fig12.csv", report::csv_fig12(&fig12(&scene)));
        w("fig15.csv", report::csv_fig15(&fig15(&scene)));
        let f14: Vec<(String, Vec<(f64, f64)>)> = fig14(&scene, 100.0)
            .into_iter()
            .map(|c| (c.label, c.samples))
            .collect();
        w("fig14.csv", report::csv_power_curves(&f14));
        let f17: Vec<(String, Vec<(f64, f64)>)> = fig17(&scene, 100.0)
            .into_iter()
            .map(|(v, s)| (v.label().to_string(), s))
            .collect();
        w("fig17.csv", report::csv_power_curves(&f17));
        return;
    }

    let run_one = |name: &str| match name {
        "fig8" => {
            println!("== Figure 8 ==");
            println!(
                "{}",
                report::render_fig8(&fig8(std::sync::Arc::clone(&scene)))
            );
        }
        "fig9" => {
            println!("== Figure 9 ==");
            println!(
                "{}",
                report::render_scaling("Rendering time with 1 Renderer", &fig9(&scene))
            );
        }
        "fig10" => {
            println!("== Figure 10 ==");
            println!(
                "{}",
                report::render_scaling("Rendering time with n Renderer", &fig10(&scene))
            );
        }
        "fig11" => {
            println!("== Figure 11 ==");
            println!(
                "{}",
                report::render_scaling("Rendering time with MCPC for rendering", &fig11(&scene))
            );
        }
        "fig12" => {
            println!("== Figure 12 ==");
            println!("{}", report::render_fig12(&fig12(&scene)));
        }
        "fig13" => {
            println!("== Figure 13 ==");
            println!("{}", scc_bench::render_fig13(&scene));
        }
        "fig14" => {
            println!("== Figure 14 ==");
            println!("{}", report::render_fig14(&fig14(&scene, 100.0)));
        }
        "fig15" => {
            println!("== Figure 15 ==");
            println!("{}", report::render_fig15(&fig15(&scene)));
        }
        "fig16" => {
            println!("== Figure 16 ==");
            for (v, t) in fig16(&scene) {
                println!("  {:<28} {:>7.1} s", v.label(), t);
            }
            println!();
        }
        "fig17" => {
            println!("== Figure 17 ==");
            let curves: Vec<(String, Vec<(f64, f64)>)> = fig17(&scene, 100.0)
                .into_iter()
                .map(|(v, s)| (v.label().to_string(), s))
                .collect();
            println!(
                "{}",
                report::render_power_curves("SCC power consumption with fast blur stage", &curves)
            );
        }
        "table1" => {
            println!("== Table I ==");
            let mut rows = table1_scc(&scene);
            rows.extend(scc_bench::table1_cluster(&scene));
            println!("{}", report::render_table1(&rows));
        }
        "trace" => {
            println!("== Stage timeline trace ==");
            let config = scc_core::RunConfig::builder()
                .renderer(scc_core::RendererMode::McpcRenderer)
                .arrangement(scc_core::Arrangement::Ordered)
                .pipelines(3)
                .frames(25)
                .trace(true)
                .build()
                .expect("valid config");
            let r = scc_core::SimRunner::new(config, std::sync::Arc::clone(&scene)).run();
            let log = r.trace.expect("trace enabled");
            let path = "target/pipeline_trace.json";
            std::fs::create_dir_all("target").ok();
            std::fs::write(path, log.to_chrome_json()).expect("write trace");
            println!(
                "  wrote {} spans to {path} (open in chrome://tracing or Perfetto)",
                log.events().len()
            );
            println!(
                "  blur compute total {:.1}s, blur wait total {:.1}s\n",
                log.phase_total(scc_core::StageKind::Blur, scc_core::trace::Phase::Compute)
                    .as_secs_f64(),
                log.phase_total(scc_core::StageKind::Blur, scc_core::trace::Phase::Wait)
                    .as_secs_f64()
            );
        }
        "freq" => {
            println!("== Uniform frequency sweep ==");
            println!("{}", render_freq(&freq_sweep(&scene)));
        }
        "sensitivity" => {
            println!("== Calibration sensitivity ==");
            println!("{}", render_sensitivity(&sensitivity(&scene)));
        }
        "whatif" => {
            println!("== Local-memory what-if (conclusion) ==");
            println!("{}", render_whatif(&whatif(&scene)));
        }
        "energy" => {
            println!("== Energy (§VI-B) ==");
            println!("{}", report::render_energy(&energy_comparison(&scene)));
        }
        "speedups" => {
            println!("== Speed-ups (§VI-A) ==");
            let base = fig8(std::sync::Arc::clone(&scene)).total_secs;
            for mode in [
                scc_core::RendererMode::SingleRenderer,
                scc_core::RendererMode::PerPipelineRenderer,
                scc_core::RendererMode::McpcRenderer,
            ] {
                let s = speedup_summary(mode, &scene, base);
                println!(
                    "  {:<14} best {} pl.: {:>6.1}s  speedup {:.2}x vs core, {:.2}x vs 1 pl.",
                    mode.name(),
                    s.best_pipelines,
                    s.best_secs,
                    s.speedup_vs_core,
                    s.speedup_vs_pipeline
                );
            }
            println!();
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    };

    if what == "all" {
        for name in [
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "table1",
            "energy",
            "speedups",
            "whatif",
            "sensitivity",
            "freq",
            "trace",
        ] {
            run_one(name);
        }
    } else {
        run_one(what);
    }
}
