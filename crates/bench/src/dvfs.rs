//! Closed-loop DVFS measurement — the `BENCH_dvfs.json` trajectory.
//!
//! Sweeps the power plane on two workloads:
//!
//! * the **film** (§VI-D setup: MCPC renderer, one pipeline) under the
//!   static default, the paper's hand-tuned splits, and the governor;
//! * the irregular **wavefront** workload under the static default, the
//!   splits a human would try (expand raised, commit throttled), and the
//!   governor — on both virtual-time backends.
//!
//! Besides the numbers, the sweep enforces the PR's hard gates: no power
//! plan may change a pixel of the film or a bit of the wavefront's
//! output digest, the governed decision trace must be identical across
//! the sim and DES schedulers, and the governor must not be dominated
//! (slower *and* hungrier) by every static split it competes with.

use scc_core::viz::frame_checksum;
use scc_core::{
    run, Backend, BackendReport, GovernorAction, GovernorTuning, PowerConfig, RendererMode,
    RunConfig, StageKind, WavefrontSpec, Workload,
};
use scc_sim::{CoreId, FreqMHz};
use scc_telemetry::Json;
use std::fmt::Write as _;

/// One measured operating point of one workload.
#[derive(Debug, Clone)]
pub struct DvfsPoint {
    /// "film" or "wavefront".
    pub workload: String,
    /// Power-plan label ("default", "blur800", ..., "governed",
    /// "governed-des").
    pub plan: String,
    pub total_secs: f64,
    pub energy_joules: f64,
    pub mean_power: f64,
    /// Folded frame checksums (film) or the propagation digest
    /// (wavefront) — equal within a workload or the gate trips.
    pub output_checksum: u64,
    pub raises: u64,
    pub throttles: u64,
}

/// The sweep, ready to render as `BENCH_dvfs.json`.
#[derive(Debug, Clone)]
pub struct DvfsReport {
    pub film_config: RunConfig,
    pub wavefront_seed: u64,
    pub points: Vec<DvfsPoint>,
    /// Every film plan delivered byte-identical frames.
    pub film_output_consistent: bool,
    /// Every wavefront run (plans × backends) produced the same digest.
    pub wavefront_digest_consistent: bool,
    /// The governed decision trace is identical under sim and DES.
    pub decision_parity: bool,
    /// Per workload, at least one static split fails to beat the
    /// governor on both time and energy.
    pub governed_not_dominated: bool,
}

fn film_fold(frames: &[scc_filters::Image]) -> u64 {
    frames
        .iter()
        .map(frame_checksum)
        .fold(0xcbf2_9ce4_8422_2325, |acc, c| {
            (acc ^ c).wrapping_mul(0x1000_0000_01b3)
        })
}

fn count_actions(decisions: &[scc_core::GovernorDecision]) -> (u64, u64) {
    let raises = decisions
        .iter()
        .filter(|d| matches!(d.action, GovernorAction::Raise { .. }))
        .count() as u64;
    let throttles = decisions
        .iter()
        .filter(|d| matches!(d.action, GovernorAction::Throttle { .. }))
        .count() as u64;
    (raises, throttles)
}

/// `governed` survives when at least one static point fails to beat it
/// on *both* axes (strict domination by the whole field is the failure).
fn not_dominated(points: &[DvfsPoint], workload: &str) -> bool {
    let Some(gov) = points
        .iter()
        .find(|p| p.workload == workload && p.plan == "governed")
    else {
        return false;
    };
    points
        .iter()
        .filter(|p| p.workload == workload && !p.plan.starts_with("governed"))
        .any(|s| s.total_secs >= gov.total_secs || s.energy_joules >= gov.energy_joules)
}

/// Run the sweep. `film_base` supplies geometry/frames/seed; the film
/// leg forces the §VI-D configuration (MCPC renderer, one pipeline).
pub fn measure_dvfs(film_base: &RunConfig, scene: &std::sync::Arc<scc_render::Scene>) -> DvfsReport {
    let film_cfg = |power: PowerConfig| -> RunConfig {
        let mut c = film_base.clone();
        c.renderer = RendererMode::McpcRenderer;
        c.pipelines = 1;
        c.power = power;
        c
    };
    let film_run = |power: PowerConfig| -> scc_core::WalkthroughReport {
        let out = scc_core::run_with_scene(&film_cfg(power), Backend::Sim, scene.clone());
        let BackendReport::Sim(r) = out.report else {
            unreachable!("sim runs return the walkthrough report")
        };
        r
    };

    let mut points = Vec::new();
    let default_film = film_run(PowerConfig::default());
    let stage_core = |r: &scc_core::WalkthroughReport, kind: StageKind| -> CoreId {
        CoreId::new(
            r.stage_reports
                .iter()
                .find(|s| s.kind == kind)
                .expect("film stage present")
                .core_id,
        )
    };
    let sepia = stage_core(&default_film, StageKind::Sepia);
    let blur = stage_core(&default_film, StageKind::Blur);
    let film_point = |plan: &str, r: &scc_core::WalkthroughReport| DvfsPoint {
        workload: "film".into(),
        plan: plan.into(),
        total_secs: r.total_secs,
        energy_joules: r.scc_energy_joules,
        mean_power: r.mean_power(),
        output_checksum: film_fold(r.outputs.as_ref().expect("full fidelity")),
        raises: count_actions(&r.dvfs_decisions).0,
        throttles: count_actions(&r.dvfs_decisions).1,
    };
    points.push(film_point("default", &default_film));
    let blur800 = film_run(PowerConfig::Static(vec![(blur, FreqMHz::F800)]));
    points.push(film_point("blur800", &blur800));
    let split = film_run(PowerConfig::Static(vec![
        (sepia, FreqMHz::F800),
        (blur, FreqMHz::F800),
    ]));
    points.push(film_point("sepia+blur800", &split));
    let governed_film = film_run(PowerConfig::Governed(GovernorTuning::default()));
    points.push(film_point("governed", &governed_film));
    let film_sum = points[0].output_checksum;
    let film_output_consistent = points.iter().all(|p| p.output_checksum == film_sum);

    // The wavefront leg: same spec through both backends.
    let wave_cfg = |power: PowerConfig| -> RunConfig {
        let mut c = RunConfig::builder()
            .seed(film_base.seed)
            .workload(Workload::Wavefront(WavefrontSpec::default()))
            .build()
            .expect("valid wavefront config");
        c.power = power;
        c
    };
    let wave_run = |power: PowerConfig, backend: Backend| -> scc_core::GenericReport {
        let out = run(&wave_cfg(power), backend);
        let BackendReport::Generic(r) = out.report else {
            unreachable!("workload runs return the generic report")
        };
        r
    };
    let wave_point = |plan: &str, r: &scc_core::GenericReport| DvfsPoint {
        workload: "wavefront".into(),
        plan: plan.into(),
        total_secs: r.total_secs,
        energy_joules: r.energy_joules,
        mean_power: r.mean_power,
        output_checksum: r.output_digest,
        raises: count_actions(&r.dvfs_decisions).0,
        throttles: count_actions(&r.dvfs_decisions).1,
    };
    let wave_default = wave_run(PowerConfig::default(), Backend::Sim);
    points.push(wave_point("default", &wave_default));
    // The splits a human would try, addressed by the reported group
    // cores (island-major placement: one island per group).
    let group_core = |r: &scc_core::GenericReport, name: &str| -> CoreId {
        CoreId::new(r.stage(name).expect("wavefront group").core_id)
    };
    let expand = group_core(&wave_default, "expand");
    let commit = group_core(&wave_default, "commit");
    let expand800 = wave_run(
        PowerConfig::Static(vec![(expand, FreqMHz::F800)]),
        Backend::Sim,
    );
    points.push(wave_point("expand800", &expand800));
    let expand_commit = wave_run(
        PowerConfig::Static(vec![(expand, FreqMHz::F800), (commit, FreqMHz::F400)]),
        Backend::Sim,
    );
    points.push(wave_point("expand800+commit400", &expand_commit));
    let governed_wave = wave_run(PowerConfig::Governed(GovernorTuning::default()), Backend::Sim);
    points.push(wave_point("governed", &governed_wave));
    let governed_wave_des =
        wave_run(PowerConfig::Governed(GovernorTuning::default()), Backend::Des);
    points.push(wave_point("governed-des", &governed_wave_des));

    let wave_sum = wave_default.output_digest;
    let wavefront_digest_consistent = points
        .iter()
        .filter(|p| p.workload == "wavefront")
        .all(|p| p.output_checksum == wave_sum);
    let decision_parity = governed_wave.dvfs_decisions == governed_wave_des.dvfs_decisions;
    let governed_not_dominated =
        not_dominated(&points, "film") && not_dominated(&points, "wavefront");

    DvfsReport {
        film_config: film_cfg(PowerConfig::default()),
        wavefront_seed: film_base.seed,
        points,
        film_output_consistent,
        wavefront_digest_consistent,
        decision_parity,
        governed_not_dominated,
    }
}

impl DvfsReport {
    /// Render the report as the `BENCH_dvfs.json` document.
    pub fn to_json(&self) -> String {
        let config = Json::obj()
            .field("renderer", Json::str(self.film_config.renderer.name()))
            .field("pipelines", Json::U64(u64::from(self.film_config.pipelines)))
            .field("width", Json::U64(u64::from(self.film_config.width)))
            .field("height", Json::U64(u64::from(self.film_config.height)))
            .field("frames", Json::U64(self.film_config.frames))
            .field("seed", Json::U64(self.film_config.seed))
            .field("wavefront_seed", Json::U64(self.wavefront_seed));
        let points = Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    Json::obj()
                        .field("workload", Json::str(p.workload.clone()))
                        .field("plan", Json::str(p.plan.clone()))
                        .field("total_secs", Json::F64(p.total_secs))
                        .field("energy_joules", Json::F64(p.energy_joules))
                        .field("mean_power", Json::F64(p.mean_power))
                        .field("output_checksum", Json::U64(p.output_checksum))
                        .field("raises", Json::U64(p.raises))
                        .field("throttles", Json::U64(p.throttles))
                })
                .collect(),
        );
        Json::obj()
            .field("bench", Json::str("dvfs"))
            .field("config", config)
            .field(
                "note",
                Json::str(
                    "virtual-time power-plane sweep: static frequency \
                     splits vs the closed-loop governor on the film and \
                     the irregular wavefront workload, both backends",
                ),
            )
            .field("points", points)
            .field(
                "film_output_consistent",
                Json::Bool(self.film_output_consistent),
            )
            .field(
                "wavefront_digest_consistent",
                Json::Bool(self.wavefront_digest_consistent),
            )
            .field("decision_parity", Json::Bool(self.decision_parity))
            .field(
                "governed_not_dominated",
                Json::Bool(self.governed_not_dominated),
            )
            .render()
    }

    /// Plain-text table for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "power-plane sweep — film {}x{} f={} / wavefront seed={:#x}",
            self.film_config.width,
            self.film_config.height,
            self.film_config.frames,
            self.wavefront_seed,
        );
        let _ = writeln!(
            out,
            "{:>10} {:>20} {:>11} {:>10} {:>8} {:>7} {:>9}",
            "workload", "plan", "total_secs", "energy_J", "mean_W", "raises", "throttles"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>10} {:>20} {:>11.4} {:>10.2} {:>8.2} {:>7} {:>9}",
                p.workload, p.plan, p.total_secs, p.energy_joules, p.mean_power, p.raises,
                p.throttles
            );
        }
        let _ = writeln!(
            out,
            "film output {}; wavefront digest {}; decision parity {}; governed {}",
            if self.film_output_consistent {
                "bit-identical"
            } else {
                "DIVERGED"
            },
            if self.wavefront_digest_consistent {
                "stable"
            } else {
                "DRIFTED"
            },
            if self.decision_parity { "sim==des" } else { "SPLIT" },
            if self.governed_not_dominated {
                "competitive"
            } else {
                "DOMINATED by every static split"
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_core::Fidelity;
    use scc_render::{CityConfig, Scene};
    use std::sync::Arc;

    #[test]
    fn sweep_passes_its_own_gates_and_json_well_formed() {
        let cfg = RunConfig::builder()
            .size(64, 48)
            .frames(24)
            .seed(0x51CC_F11F)
            .fidelity(Fidelity::Full)
            .build()
            .expect("valid config");
        let scene = Arc::new(Scene::city(CityConfig {
            side: 4,
            spacing: 8.0,
            seed: 1,
        }));
        let report = measure_dvfs(&cfg, &scene);
        assert!(report.film_output_consistent);
        assert!(report.wavefront_digest_consistent);
        assert!(report.decision_parity);
        assert!(report.governed_not_dominated);
        assert_eq!(report.points.len(), 9);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"dvfs\""));
        assert!(json.contains("governed-des"));
        assert!(report.render_text().contains("sim==des"));
    }
}
