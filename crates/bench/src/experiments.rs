//! One entry point per paper table/figure.

use scc_core::runner::sim::DvfsPlan;
use scc_core::{
    place, place_dvfs_single_pipeline, run_baseline, Arrangement, BaselineReport, CostModel,
    RendererMode, RunConfig, SimRunner, StageKind, WalkthroughReport,
};
use scc_render::{CityConfig, Scene};
use scc_sim::power::McpcPower;
use scc_sim::stats::Quartiles;
use scc_sim::{FreqMHz, SccConfig, SccPlatform};
use std::sync::Arc;

/// The standard evaluation scene.
pub fn standard_scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig::default()))
}

/// The paper's standard walkthrough configuration.
pub fn standard_config() -> RunConfig {
    RunConfig::default()
}

fn cfg(mode: RendererMode, arr: Arrangement, p: u32) -> RunConfig {
    RunConfig::builder()
        .renderer(mode)
        .arrangement(arr)
        .pipelines(p)
        .build()
        .expect("valid config")
}

/// Run one walkthrough and return the report.
pub fn run(config: RunConfig, scene: Arc<Scene>) -> WalkthroughReport {
    SimRunner::new(config, scene).run()
}

// ---------------------------------------------------------------- Fig. 8

/// Figure 8: per-stage running time with the whole pipeline on one core.
pub fn fig8(scene: Arc<Scene>) -> BaselineReport {
    run_baseline(&standard_config(), scene)
}

// ------------------------------------------------------------ Figs. 9-11

/// One point of a scaling figure.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub pipelines: u32,
    pub arrangement: Arrangement,
    pub secs: f64,
}

/// Processing time vs pipeline count for all three arrangements.
pub fn scaling_curve(
    mode: RendererMode,
    scene: &Arc<Scene>,
    max_pipelines: u32,
) -> Vec<ScalePoint> {
    let mut out = Vec::new();
    for arr in Arrangement::all() {
        for p in 1..=max_pipelines.min(mode.max_pipelines()) {
            let r = run(cfg(mode, arr, p), Arc::clone(scene));
            out.push(ScalePoint {
                pipelines: p,
                arrangement: arr,
                secs: r.total_secs,
            });
        }
    }
    out
}

/// Figure 9: one renderer, 1..8 pipelines, three arrangements.
pub fn fig9(scene: &Arc<Scene>) -> Vec<ScalePoint> {
    scaling_curve(RendererMode::SingleRenderer, scene, 8)
}

/// Figure 10: one renderer per pipeline (max 7).
pub fn fig10(scene: &Arc<Scene>) -> Vec<ScalePoint> {
    scaling_curve(RendererMode::PerPipelineRenderer, scene, 7)
}

/// Figure 11: MCPC renders, 1..8 pipelines.
pub fn fig11(scene: &Arc<Scene>) -> Vec<ScalePoint> {
    scaling_curve(RendererMode::McpcRenderer, scene, 8)
}

// ---------------------------------------------------------------- Fig. 12

/// Figure 12: one MCPC-fed pipeline, image side length 50..400.
#[derive(Debug, Clone)]
pub struct SizePoint {
    pub side: u32,
    pub kilobytes: u64,
    pub secs: f64,
}

pub fn fig12(scene: &Arc<Scene>) -> Vec<SizePoint> {
    (1..=8)
        .map(|i| {
            let side = 50 * i;
            let mut c = cfg(RendererMode::McpcRenderer, Arrangement::Ordered, 1);
            c.width = side;
            c.height = side;
            let r = run(c, Arc::clone(scene));
            SizePoint {
                side,
                kilobytes: (side as u64 * side as u64 * 4) / 1000,
                secs: r.total_secs,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Table I

/// A full Table I: rows = configuration × arrangement (+ cluster rows
/// appended by the caller), columns = 1..7 pipelines.
#[derive(Debug, Clone)]
pub struct TableRow {
    pub label: String,
    pub secs: Vec<f64>,
}

pub fn table1_scc(scene: &Arc<Scene>) -> Vec<TableRow> {
    let mut rows = Vec::new();
    for (mode, tag) in [
        (RendererMode::SingleRenderer, "1 rend."),
        (RendererMode::PerPipelineRenderer, "n rend."),
        (RendererMode::McpcRenderer, "MCPC"),
    ] {
        for arr in Arrangement::all() {
            let secs: Vec<f64> = (1..=7u32)
                .map(|p| {
                    if p > mode.max_pipelines() {
                        f64::NAN
                    } else {
                        run(cfg(mode, arr, p), Arc::clone(scene)).total_secs
                    }
                })
                .collect();
            rows.push(TableRow {
                label: format!("{tag}, {}", arr.name()),
                secs,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- Fig. 14

/// Figure 14: SCC power traces for the MCPC configuration at various core
/// counts (pipeline counts) and arrangements.
#[derive(Debug, Clone)]
pub struct PowerCurve {
    pub label: String,
    pub cpus: u32,
    /// (seconds, watts) samples.
    pub samples: Vec<(f64, f64)>,
}

pub fn fig14(scene: &Arc<Scene>, horizon_secs: f64) -> Vec<PowerCurve> {
    let mut out = Vec::new();
    for arr in Arrangement::all() {
        for p in (1..=8u32).step_by(1) {
            let r = run(cfg(RendererMode::McpcRenderer, arr, p), Arc::clone(scene));
            let cpus = RendererMode::McpcRenderer.cores_needed(p);
            let samples = r
                .power_trace
                .iter()
                .map(|s| (s.t.as_secs_f64(), s.watts))
                .filter(|(t, _)| *t <= horizon_secs)
                .collect();
            out.push(PowerCurve {
                label: format!("{cpus} CPUs {}", arr.name()),
                cpus,
                samples,
            });
        }
    }
    out
}

/// §VI-B: energy comparison between the best hybrid (MCPC, 5 pipelines)
/// and the best n-renderer (7 pipelines) configurations.
#[derive(Debug, Clone)]
pub struct EnergyComparison {
    pub hybrid_secs: f64,
    pub hybrid_mean_power: f64,
    pub hybrid_mcpc_render_secs: f64,
    pub hybrid_energy_joules: f64,
    pub nrend_secs: f64,
    pub nrend_mean_power: f64,
    pub nrend_energy_joules: f64,
}

pub fn energy_comparison(scene: &Arc<Scene>) -> EnergyComparison {
    let mcpc = McpcPower::default();
    let hybrid = run(
        cfg(RendererMode::McpcRenderer, Arrangement::Ordered, 5),
        Arc::clone(scene),
    );
    let nrend = run(
        cfg(RendererMode::PerPipelineRenderer, Arrangement::Ordered, 7),
        Arc::clone(scene),
    );
    EnergyComparison {
        hybrid_secs: hybrid.total_secs,
        hybrid_mean_power: hybrid.mean_power(),
        hybrid_mcpc_render_secs: hybrid.mcpc_busy_secs,
        hybrid_energy_joules: hybrid.active_energy_joules(&mcpc),
        nrend_secs: nrend.total_secs,
        nrend_mean_power: nrend.mean_power(),
        nrend_energy_joules: nrend.active_energy_joules(&mcpc),
    }
}

// ---------------------------------------------------------------- Fig. 15

/// Figure 15: per-stage idle-time quartiles, MCPC renderer, 7 pipelines.
#[derive(Debug, Clone)]
pub struct IdleRow {
    pub stage: StageKind,
    pub quartiles: Quartiles,
}

pub fn fig15(scene: &Arc<Scene>) -> Vec<IdleRow> {
    let r = run(
        cfg(RendererMode::McpcRenderer, Arrangement::Ordered, 7),
        Arc::clone(scene),
    );
    StageKind::PIPELINE_FILTERS
        .iter()
        .map(|kind| {
            // Aggregate idle samples over all pipelines by pooling the
            // per-pipeline quartile medians (the paper plots one box per
            // stage across pipelines/frames).
            let medians: Vec<f64> = (0..7)
                .filter_map(|p| {
                    r.stage(*kind, Some(p))
                        .and_then(|s| s.idle_ms.map(|q| q.median))
                })
                .collect();
            // Use the first pipeline's full quartiles as representative —
            // variance across pipelines is tiny (as the paper notes).
            let q = r
                .stage(*kind, Some(0))
                .and_then(|s| s.idle_ms)
                .unwrap_or(Quartiles {
                    min: 0.0,
                    q1: 0.0,
                    median: 0.0,
                    q3: 0.0,
                    max: 0.0,
                });
            let _ = medians;
            IdleRow {
                stage: *kind,
                quartiles: q,
            }
        })
        .collect()
}

// ------------------------------------------------------------ Figs. 16-17

/// The three DVFS variants of §VI-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DvfsVariant {
    /// Everything at 533 MHz / 1.1 V.
    All533,
    /// Blur tile at 800 MHz / 1.3 V.
    Blur800,
    /// Blur at 800 MHz; scratch/flicker/swap/transfer island at 400 MHz /
    /// 0.7 V.
    Mixed800_400,
}

impl DvfsVariant {
    pub fn label(self) -> &'static str {
        match self {
            DvfsVariant::All533 => "all stages 533MHz",
            DvfsVariant::Blur800 => "blur stage 800MHz",
            DvfsVariant::Mixed800_400 => "533MHz, 800MHz, 400MHz",
        }
    }
}

/// Run the single-pipeline MCPC-rendered walkthrough under a DVFS variant
/// using the island-aware placement of Figure 18.
pub fn dvfs_run(variant: DvfsVariant, scene: &Arc<Scene>) -> WalkthroughReport {
    let config = cfg(RendererMode::McpcRenderer, Arrangement::Ordered, 1);
    let placement = place_dvfs_single_pipeline(RendererMode::McpcRenderer);
    let blur = placement.pipelines[0][1];
    let downstream = [
        placement.pipelines[0][2],
        placement.pipelines[0][3],
        placement.pipelines[0][4],
        placement.transfer,
    ];
    let mut settings = Vec::new();
    match variant {
        DvfsVariant::All533 => {}
        DvfsVariant::Blur800 => settings.push((blur, FreqMHz::F800)),
        DvfsVariant::Mixed800_400 => {
            settings.push((blur, FreqMHz::F800));
            // Drop the whole downstream voltage island to 400 MHz / 0.7 V;
            // the island's unused tiles come along (the same granularity
            // constraint that forces the blur island up to 1.3 V).
            use scc_sim::IslandId;
            let island = IslandId::of_tile(downstream[0].tile());
            for tile in island.tiles() {
                settings.push((tile.cores()[0], FreqMHz::F400));
            }
        }
    }
    SimRunner::with_parts(
        config,
        Arc::clone(scene),
        placement,
        SccPlatform::new(SccConfig::default()),
        CostModel::default(),
        DvfsPlan { settings },
    )
    .run()
}

/// Figure 16: walkthrough times of the three DVFS variants.
pub fn fig16(scene: &Arc<Scene>) -> Vec<(DvfsVariant, f64)> {
    [
        DvfsVariant::All533,
        DvfsVariant::Blur800,
        DvfsVariant::Mixed800_400,
    ]
    .into_iter()
    .map(|v| (v, dvfs_run(v, scene).total_secs))
    .collect()
}

/// Figure 17: power traces of the three DVFS variants over the first
/// `horizon_secs` seconds.
pub fn fig17(scene: &Arc<Scene>, horizon_secs: f64) -> Vec<(DvfsVariant, Vec<(f64, f64)>)> {
    [
        DvfsVariant::All533,
        DvfsVariant::Blur800,
        DvfsVariant::Mixed800_400,
    ]
    .into_iter()
    .map(|v| {
        let r = dvfs_run(v, scene);
        let samples = r
            .power_trace
            .iter()
            .map(|s| (s.t.as_secs_f64(), s.watts))
            .filter(|(t, _)| *t <= horizon_secs)
            .collect();
        (v, samples)
    })
    .collect()
}

/// Convenience: speed-ups quoted in §VI-A for a mode, relative to the
/// one-core baseline and the one-pipeline run.
#[derive(Debug, Clone)]
pub struct SpeedupSummary {
    pub mode: RendererMode,
    pub baseline_secs: f64,
    pub one_pipeline_secs: f64,
    pub best_pipelines: u32,
    pub best_secs: f64,
    pub speedup_vs_core: f64,
    pub speedup_vs_pipeline: f64,
}

pub fn speedup_summary(
    mode: RendererMode,
    scene: &Arc<Scene>,
    baseline_secs: f64,
) -> SpeedupSummary {
    let mut best = (1u32, f64::INFINITY);
    let mut one = f64::NAN;
    for p in 1..=mode.max_pipelines().min(8) {
        let t = run(cfg(mode, Arrangement::Ordered, p), Arc::clone(scene)).total_secs;
        if p == 1 {
            one = t;
        }
        if t < best.1 {
            best = (p, t);
        }
    }
    SpeedupSummary {
        mode,
        baseline_secs,
        one_pipeline_secs: one,
        best_pipelines: best.0,
        best_secs: best.1,
        speedup_vs_core: baseline_secs / best.1,
        speedup_vs_pipeline: one / best.1,
    }
}

// ---------------------------------------------------------------- Fig. 13

/// Figure 13: the walkthrough on the Mogon-like cluster.
pub fn fig13_points(scene: &Arc<Scene>) -> Vec<(scc_cluster::ClusterMode, u32, f64)> {
    use scc_cluster::{cluster_walkthrough, ClusterMode};
    let config = standard_config();
    let mut out = Vec::new();
    for mode in [
        ClusterMode::ExternalRenderer,
        ClusterMode::SingleRenderer,
        ClusterMode::ParallelRenderer,
    ] {
        for p in 1..=8u32 {
            let r = cluster_walkthrough(mode, p, &config, Arc::clone(scene));
            out.push((mode, p, r.total_secs));
        }
    }
    out
}

/// Rendered Figure 13 text.
pub fn render_fig13(scene: &Arc<Scene>) -> String {
    let pts = fig13_points(scene);
    let mut s = String::from(
        "Rendering time with the Mogon Cluster\n  pl   external    single   parallel\n",
    );
    for p in 1..=8u32 {
        let find = |m: scc_cluster::ClusterMode| {
            pts.iter()
                .find(|(mm, pp, _)| *mm == m && *pp == p)
                .map(|(_, _, t)| format!("{t:>8.1}s"))
                .unwrap_or_default()
        };
        s.push_str(&format!(
            "  {:>2}  {}  {}  {}\n",
            p,
            find(scc_cluster::ClusterMode::ExternalRenderer),
            find(scc_cluster::ClusterMode::SingleRenderer),
            find(scc_cluster::ClusterMode::ParallelRenderer),
        ));
    }
    s
}

/// Table I's three HPC rows (1..7 pipelines).
pub fn table1_cluster(scene: &Arc<Scene>) -> Vec<TableRow> {
    use scc_cluster::{cluster_walkthrough, ClusterMode};
    let config = standard_config();
    [
        (ClusterMode::ExternalRenderer, "HPC, external rend."),
        (ClusterMode::SingleRenderer, "HPC, single rend."),
        (ClusterMode::ParallelRenderer, "HPC, parallel rend."),
    ]
    .into_iter()
    .map(|(mode, label)| TableRow {
        label: label.to_string(),
        secs: (1..=7u32)
            .map(|p| cluster_walkthrough(mode, p, &config, Arc::clone(scene)).total_secs)
            .collect(),
    })
    .collect()
}

// ------------------------------------------------------- local-memory what-if

/// The conclusion's what-if: per-core local memory banks (Cell-style)
/// that let messages skip the DRAM-partition round-trip. Compares the
/// real SCC against a hypothetical SCC with 128 KiB banks.
#[derive(Debug, Clone)]
pub struct WhatIfRow {
    pub label: String,
    pub scc_secs: f64,
    pub local_mem_secs: f64,
}

/// Run a configuration on the stock platform and on the local-memory
/// variant.
pub fn whatif(scene: &Arc<Scene>) -> Vec<WhatIfRow> {
    let bank = 256 * 1024;
    let run_on = |config: RunConfig, local: bool, scene: &Arc<Scene>| -> f64 {
        let scc_cfg = if local {
            SccConfig {
                local_memory_bytes: bank,
                ..SccConfig::default()
            }
        } else {
            SccConfig::default()
        };
        let placement = place(config.renderer, config.arrangement, config.pipelines);
        SimRunner::with_parts(
            config,
            Arc::clone(scene),
            placement,
            SccPlatform::new(scc_cfg),
            CostModel::default(),
            scc_core::runner::sim::DvfsPlan::default(),
        )
        .run()
        .total_secs
    };
    [
        (RendererMode::SingleRenderer, 4u32),
        (RendererMode::PerPipelineRenderer, 7),
        (RendererMode::McpcRenderer, 3),
        (RendererMode::McpcRenderer, 5),
        (RendererMode::McpcRenderer, 8),
    ]
    .into_iter()
    .map(|(mode, p)| {
        let config = cfg(mode, Arrangement::Ordered, p);
        WhatIfRow {
            label: format!("{} / {p} pl. (256 KiB banks)", mode.name()),
            scc_secs: run_on(config.clone(), false, scene),
            local_mem_secs: run_on(config, true, scene),
        }
    })
    .collect()
}

/// Rendered what-if table.
pub fn render_whatif(rows: &[WhatIfRow]) -> String {
    let mut s = String::from(
        "Local-memory what-if (the conclusion's proposed SCC improvement)\n\
         configuration                                  real SCC   with banks     gain\n",
    );
    for r in rows {
        s.push_str(&format!(
            "  {:<44} {:>7.1}s {:>10.1}s {:>7.1}%\n",
            r.label,
            r.scc_secs,
            r.local_mem_secs,
            100.0 * (1.0 - r.local_mem_secs / r.scc_secs)
        ));
    }
    s
}

// ----------------------------------------------------- sensitivity ablation

/// One row of the calibration-sensitivity ablation.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    pub parameter: String,
    pub scale: f64,
    pub nrend7_secs: f64,
    pub mcpc5_secs: f64,
}

/// Which calibrated platform parameter to perturb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    McBandwidth,
    CoreMemBandwidth,
    HostLinkBandwidth,
    NocLinkBandwidth,
}

impl Knob {
    pub fn name(self) -> &'static str {
        match self {
            Knob::McBandwidth => "memory-controller bandwidth",
            Knob::CoreMemBandwidth => "per-core memory bandwidth",
            Knob::HostLinkBandwidth => "MCPC link bandwidth",
            Knob::NocLinkBandwidth => "mesh link bandwidth",
        }
    }

    fn apply(self, scale: f64) -> SccConfig {
        let mut c = SccConfig::default();
        let s = |v: u64| ((v as f64) * scale) as u64;
        match self {
            Knob::McBandwidth => c.mem.bandwidth = s(c.mem.bandwidth),
            Knob::CoreMemBandwidth => c.core_mem_bandwidth = s(c.core_mem_bandwidth),
            Knob::HostLinkBandwidth => c.host_link.bandwidth = s(c.host_link.bandwidth),
            Knob::NocLinkBandwidth => c.noc.link_bandwidth = s(c.noc.link_bandwidth),
        }
        c
    }
}

/// Perturb each platform knob ±2x and report the two headline
/// configurations. Shows which resources the results actually depend on
/// (per-core streaming and the host link) and which they do not (mesh
/// bandwidth — the paper's arrangement finding in another guise).
pub fn sensitivity(scene: &Arc<Scene>) -> Vec<SensitivityRow> {
    let run_with = |scc_cfg: SccConfig, mode: RendererMode, p: u32, scene: &Arc<Scene>| -> f64 {
        let config = cfg(mode, Arrangement::Ordered, p);
        let placement = place(config.renderer, config.arrangement, config.pipelines);
        SimRunner::with_parts(
            config,
            Arc::clone(scene),
            placement,
            SccPlatform::new(scc_cfg),
            CostModel::default(),
            scc_core::runner::sim::DvfsPlan::default(),
        )
        .run()
        .total_secs
    };
    let mut rows = Vec::new();
    for knob in [
        Knob::McBandwidth,
        Knob::CoreMemBandwidth,
        Knob::HostLinkBandwidth,
        Knob::NocLinkBandwidth,
    ] {
        for scale in [0.5, 1.0, 2.0] {
            let scc_cfg = knob.apply(scale);
            rows.push(SensitivityRow {
                parameter: knob.name().into(),
                scale,
                nrend7_secs: run_with(scc_cfg.clone(), RendererMode::PerPipelineRenderer, 7, scene),
                mcpc5_secs: run_with(scc_cfg, RendererMode::McpcRenderer, 5, scene),
            });
        }
    }
    rows
}

/// Rendered sensitivity table.
pub fn render_sensitivity(rows: &[SensitivityRow]) -> String {
    let mut s = String::from(
        "Calibration sensitivity (x0.5 / x1 / x2 per platform knob)\n\
         parameter                          scale   n-rend 7pl   MCPC 5pl\n",
    );
    for r in rows {
        s.push_str(&format!(
            "  {:<32} x{:<4} {:>9.1}s {:>9.1}s\n",
            r.parameter, r.scale, r.nrend7_secs, r.mcpc5_secs
        ));
    }
    s
}

// ------------------------------------------------------ frequency sweep

/// Uniform-frequency sweep (§II: "The processors' speed can be changed at
/// runtime from 400 MHz up to 1198 MHz"): run the best heterogeneous
/// configuration with every core at 400 / 533 / 800 MHz and report the
/// time-energy trade-off.
#[derive(Debug, Clone)]
pub struct FreqRow {
    pub freq: FreqMHz,
    pub secs: f64,
    pub mean_watts: f64,
    pub joules: f64,
}

pub fn freq_sweep(scene: &Arc<Scene>) -> Vec<FreqRow> {
    use scc_sim::TileId;
    [FreqMHz::F400, FreqMHz::F533, FreqMHz::F800]
        .into_iter()
        .map(|freq| {
            let config = cfg(RendererMode::McpcRenderer, Arrangement::Ordered, 5);
            let placement = place(config.renderer, config.arrangement, config.pipelines);
            let settings = TileId::all().map(|t| (t.cores()[0], freq)).collect();
            let r = SimRunner::with_parts(
                config,
                Arc::clone(scene),
                placement,
                SccPlatform::new(SccConfig::default()),
                CostModel::default(),
                scc_core::runner::sim::DvfsPlan { settings },
            )
            .run();
            FreqRow {
                freq,
                secs: r.total_secs,
                mean_watts: r.mean_power(),
                joules: r.scc_energy_joules,
            }
        })
        .collect()
}

/// Rendered frequency-sweep table.
pub fn render_freq(rows: &[FreqRow]) -> String {
    let mut s = String::from(
        "Uniform chip frequency sweep (MCPC renderer, 5 pipelines)\n\
         freq       time        power      energy     energy*delay\n",
    );
    for r in rows {
        s.push_str(&format!(
            "  {:>4} MHz {:>8.1}s {:>8.1} W {:>9.0} J {:>12.0} Js\n",
            r.freq.mhz(),
            r.secs,
            r.mean_watts,
            r.joules,
            r.joules * r.secs
        ));
    }
    s
}
