//! # scc-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§VI) from
//! the simulated platform. Each `figN` function returns plain data the
//! `experiments` binary prints; the Criterion benches in `benches/` wrap
//! the same entry points.

pub mod autoplace;
pub mod dvfs;
pub mod experiments;
pub mod kernels;
pub mod native_throughput;
pub mod recovery;
pub mod report;
pub mod serving;
pub mod tasks;

pub use experiments::*;
