//! Host-native throughput measurement — the `BENCH_native_pipeline.json`
//! trajectory.
//!
//! Sweeps the native runner's host tuning knobs (per-stage kernel threads,
//! buffer pooling) over one configuration, records wall-clock frames/s for
//! each point, and verifies every point produced byte-identical output (a
//! perf knob that changes a pixel is a bug, not a speedup). The JSON is
//! built on `scc_telemetry::Json` (the vendored serde shim is a no-op
//! marker), so the schema lives here, in one place, deliberately flat —
//! and when the base config enables telemetry, the baseline point's full
//! metric snapshot is embedded under a `telemetry` key.

use scc_core::viz::frame_checksum;
use scc_core::{run_native, HostTiming, NativeTuning, PoolStats, RunConfig};
use scc_render::Scene;
use scc_telemetry::{snapshot_to_tree, Json, Snapshot};
use std::fmt::Write as _;
use std::sync::Arc;

/// One measured (kernel_threads, buffer_pool) point.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    pub kernel_threads: u32,
    pub buffer_pool: bool,
    pub timing: HostTiming,
    /// Throughput relative to the 1-thread pooled point.
    pub speedup_vs_1thread: f64,
    /// FNV fold of all delivered frame checksums; equal across points.
    pub output_checksum: u64,
    pub pool_stats: PoolStats,
}

/// The full sweep, ready to render as `BENCH_native_pipeline.json`.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    pub config: RunConfig,
    /// Logical CPUs of the measuring host. Kernel-thread speedup is
    /// bounded by this: on a 1-CPU container every curve is flat at ~1×,
    /// and the ≥2× shape only appears with real spare cores.
    pub host_cpus: u32,
    pub points: Vec<ThroughputPoint>,
    /// True when every point delivered bit-identical frames.
    pub output_consistent: bool,
    /// Metric snapshot of the first sweep point's run, captured when the
    /// base config enables telemetry; embedded in the JSON document.
    pub telemetry: Option<Snapshot>,
}

/// Fold per-frame checksums into one digest (FNV-1a over the u64s).
fn fold_checksums(frames: &[scc_filters::Image]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for img in frames {
        for b in frame_checksum(img).to_le_bytes() {
            acc ^= b as u64;
            acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    acc
}

/// Run the sweep: each `thread_counts` entry with pooling on, plus pooling
/// ablations at the first and last counts. The base config's own `tuning`
/// is overridden per point.
pub fn measure_native_throughput(
    base: &RunConfig,
    scene: &Arc<Scene>,
    thread_counts: &[u32],
) -> ThroughputReport {
    assert!(!thread_counts.is_empty(), "no thread counts to sweep");
    let mut variants: Vec<NativeTuning> = thread_counts
        .iter()
        .map(|&t| NativeTuning {
            kernel_threads: t,
            buffer_pool: true,
            ..NativeTuning::default()
        })
        .collect();
    for &t in [thread_counts[0], *thread_counts.last().unwrap()].iter() {
        let unpooled = NativeTuning {
            kernel_threads: t,
            buffer_pool: false,
            ..NativeTuning::default()
        };
        if !variants.contains(&unpooled) {
            variants.push(unpooled);
        }
    }

    let mut points = Vec::with_capacity(variants.len());
    let mut telemetry = None;
    for tuning in variants {
        let mut cfg = base.clone();
        cfg.tuning = tuning;
        let report = run_native(&cfg, Arc::clone(scene));
        if telemetry.is_none() {
            telemetry = report.telemetry.clone();
        }
        points.push(ThroughputPoint {
            kernel_threads: tuning.kernel_threads,
            buffer_pool: tuning.buffer_pool,
            timing: report.host,
            speedup_vs_1thread: 0.0, // filled below
            output_checksum: fold_checksums(&report.frames),
            pool_stats: report.pool_stats,
        });
    }

    let baseline = points
        .iter()
        .find(|p| p.kernel_threads == 1 && p.buffer_pool)
        .unwrap_or(&points[0])
        .timing;
    for p in points.iter_mut() {
        p.speedup_vs_1thread = p.timing.speedup_over(&baseline);
    }
    let output_consistent = points
        .windows(2)
        .all(|w| w[0].output_checksum == w[1].output_checksum);

    ThroughputReport {
        config: base.clone(),
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1),
        points,
        output_consistent,
        telemetry,
    }
}

impl ThroughputReport {
    /// Render the report as the `BENCH_native_pipeline.json` document.
    pub fn to_json(&self) -> String {
        let config = Json::obj()
            .field("renderer", Json::str(self.config.renderer.name()))
            .field("pipelines", Json::U64(u64::from(self.config.pipelines)))
            .field("width", Json::U64(u64::from(self.config.width)))
            .field("height", Json::U64(u64::from(self.config.height)))
            .field("frames", Json::U64(self.config.frames))
            .field("seed", Json::U64(self.config.seed));
        let points = Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    Json::obj()
                        .field("kernel_threads", Json::U64(u64::from(p.kernel_threads)))
                        .field("buffer_pool", Json::Bool(p.buffer_pool))
                        .field("wall_secs", Json::F64(p.timing.wall_secs))
                        .field("frames_per_sec", Json::F64(p.timing.frames_per_sec))
                        .field("mpixels_per_sec", Json::F64(p.timing.mpixels_per_sec))
                        .field("speedup_vs_1thread", Json::F64(p.speedup_vs_1thread))
                        .field(
                            "output_checksum",
                            Json::str(format!("{:#018x}", p.output_checksum)),
                        )
                        .field("pool_recycled", Json::U64(p.pool_stats.recycled))
                        .field("pool_fresh", Json::U64(p.pool_stats.fresh))
                })
                .collect(),
        );
        let mut doc = Json::obj()
            .field("bench", Json::str("native_pipeline"))
            .field("config", config)
            .field("host_cpus", Json::U64(u64::from(self.host_cpus)))
            .field(
                "note",
                Json::str(
                    "kernel-thread speedup is bounded by host_cpus; \
                     on a single-CPU host the curve is flat at ~1x and the >=2x \
                     at 4 threads shape requires >=4 real cores",
                ),
            )
            .field("output_consistent", Json::Bool(self.output_consistent))
            .field("points", points);
        if let Some(snap) = &self.telemetry {
            doc = doc.field("telemetry", snapshot_to_tree(snap));
        }
        doc.render()
    }

    /// Plain-text table for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "native pipeline throughput — {} p={} {}x{} f={} (host cpus: {})",
            self.config.renderer.name(),
            self.config.pipelines,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.host_cpus,
        );
        let _ = writeln!(
            out,
            "{:>14} {:>6} {:>10} {:>10} {:>9} {:>9}",
            "kernel_threads", "pool", "wall_s", "frames/s", "Mpx/s", "speedup"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>14} {:>6} {:>10.3} {:>10.2} {:>9.2} {:>8.2}x",
                p.kernel_threads,
                if p.buffer_pool { "on" } else { "off" },
                p.timing.wall_secs,
                p.timing.frames_per_sec,
                p.timing.mpixels_per_sec,
                p.speedup_vs_1thread,
            );
        }
        let _ = writeln!(
            out,
            "output {}",
            if self.output_consistent {
                "bit-identical across all points"
            } else {
                "DIVERGED — tuning changed pixels!"
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_core::Fidelity;
    use scc_render::CityConfig;

    fn tiny() -> (RunConfig, Arc<Scene>) {
        let cfg = RunConfig::builder()
            .pipelines(2)
            .size(32, 32)
            .frames(2)
            .seed(5)
            .fidelity(Fidelity::Full)
            .build()
            .expect("valid config");
        let scene = Arc::new(Scene::city(CityConfig {
            side: 4,
            spacing: 8.0,
            seed: 1,
        }));
        (cfg, scene)
    }

    #[test]
    fn sweep_is_consistent_and_json_well_formed() {
        let (cfg, scene) = tiny();
        let report = measure_native_throughput(&cfg, &scene, &[1, 2]);
        assert!(report.output_consistent, "tuning changed pixels");
        // 2 pooled points + 2 unpooled ablations.
        assert_eq!(report.points.len(), 4);
        let base = &report.points[0];
        assert_eq!(base.kernel_threads, 1);
        assert!((base.speedup_vs_1thread - 1.0).abs() < 1e-9);
        assert!(base.timing.frames_per_sec > 0.0);
        let json = report.to_json();
        for key in [
            "\"bench\": \"native_pipeline\"",
            "\"host_cpus\"",
            "\"kernel_threads\"",
            "\"speedup_vs_1thread\"",
            "\"output_consistent\": true",
            "\"pool_recycled\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets — cheap malformation guard.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let text = report.render_text();
        assert!(text.contains("bit-identical"));
    }
}
