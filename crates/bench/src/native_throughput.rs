//! Host-native throughput measurement — the `BENCH_native_pipeline.json`
//! trajectory.
//!
//! Sweeps the native runner's host tuning knobs (per-stage kernel threads,
//! buffer pooling) over one configuration, records wall-clock frames/s for
//! each point, and verifies every point produced byte-identical output (a
//! perf knob that changes a pixel is a bug, not a speedup). The JSON this
//! module renders is hand-rolled: the vendored serde shim is a no-op
//! marker, so the schema lives here, in one place, deliberately flat.

use scc_core::viz::frame_checksum;
use scc_core::{run_native, HostTiming, NativeTuning, PoolStats, RunConfig};
use scc_render::Scene;
use std::fmt::Write as _;
use std::sync::Arc;

/// One measured (kernel_threads, buffer_pool) point.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    pub kernel_threads: u32,
    pub buffer_pool: bool,
    pub timing: HostTiming,
    /// Throughput relative to the 1-thread pooled point.
    pub speedup_vs_1thread: f64,
    /// FNV fold of all delivered frame checksums; equal across points.
    pub output_checksum: u64,
    pub pool_stats: PoolStats,
}

/// The full sweep, ready to render as `BENCH_native_pipeline.json`.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    pub config: RunConfig,
    /// Logical CPUs of the measuring host. Kernel-thread speedup is
    /// bounded by this: on a 1-CPU container every curve is flat at ~1×,
    /// and the ≥2× shape only appears with real spare cores.
    pub host_cpus: u32,
    pub points: Vec<ThroughputPoint>,
    /// True when every point delivered bit-identical frames.
    pub output_consistent: bool,
}

/// Fold per-frame checksums into one digest (FNV-1a over the u64s).
fn fold_checksums(frames: &[scc_filters::Image]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for img in frames {
        for b in frame_checksum(img).to_le_bytes() {
            acc ^= b as u64;
            acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    acc
}

/// Run the sweep: each `thread_counts` entry with pooling on, plus pooling
/// ablations at the first and last counts. The base config's own `tuning`
/// is overridden per point.
pub fn measure_native_throughput(
    base: &RunConfig,
    scene: &Arc<Scene>,
    thread_counts: &[u32],
) -> ThroughputReport {
    assert!(!thread_counts.is_empty(), "no thread counts to sweep");
    let mut variants: Vec<NativeTuning> = thread_counts
        .iter()
        .map(|&t| NativeTuning {
            kernel_threads: t,
            buffer_pool: true,
        })
        .collect();
    for &t in [thread_counts[0], *thread_counts.last().unwrap()].iter() {
        let unpooled = NativeTuning {
            kernel_threads: t,
            buffer_pool: false,
        };
        if !variants.contains(&unpooled) {
            variants.push(unpooled);
        }
    }

    let mut points = Vec::with_capacity(variants.len());
    for tuning in variants {
        let mut cfg = base.clone();
        cfg.tuning = tuning;
        let report = run_native(&cfg, Arc::clone(scene));
        points.push(ThroughputPoint {
            kernel_threads: tuning.kernel_threads,
            buffer_pool: tuning.buffer_pool,
            timing: report.host,
            speedup_vs_1thread: 0.0, // filled below
            output_checksum: fold_checksums(&report.frames),
            pool_stats: report.pool_stats,
        });
    }

    let baseline = points
        .iter()
        .find(|p| p.kernel_threads == 1 && p.buffer_pool)
        .unwrap_or(&points[0])
        .timing;
    for p in points.iter_mut() {
        p.speedup_vs_1thread = p.timing.speedup_over(&baseline);
    }
    let output_consistent = points
        .windows(2)
        .all(|w| w[0].output_checksum == w[1].output_checksum);

    ThroughputReport {
        config: base.clone(),
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1),
        points,
        output_consistent,
    }
}

impl ThroughputReport {
    /// Render the report as the `BENCH_native_pipeline.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"native_pipeline\",");
        let _ = writeln!(out, "  \"config\": {{");
        let _ = writeln!(
            out,
            "    \"renderer\": \"{}\",",
            self.config.renderer.name()
        );
        let _ = writeln!(out, "    \"pipelines\": {},", self.config.pipelines);
        let _ = writeln!(out, "    \"width\": {},", self.config.width);
        let _ = writeln!(out, "    \"height\": {},", self.config.height);
        let _ = writeln!(out, "    \"frames\": {},", self.config.frames);
        let _ = writeln!(out, "    \"seed\": {}", self.config.seed);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"host_cpus\": {},", self.host_cpus);
        let _ = writeln!(
            out,
            "  \"note\": \"kernel-thread speedup is bounded by host_cpus; \
             on a single-CPU host the curve is flat at ~1x and the >=2x \
             at 4 threads shape requires >=4 real cores\","
        );
        let _ = writeln!(out, "  \"output_consistent\": {},", self.output_consistent);
        let _ = writeln!(out, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"kernel_threads\": {}, \"buffer_pool\": {}, \
                 \"wall_secs\": {:.6}, \"frames_per_sec\": {:.3}, \
                 \"mpixels_per_sec\": {:.3}, \"speedup_vs_1thread\": {:.3}, \
                 \"output_checksum\": \"{:#018x}\", \
                 \"pool_recycled\": {}, \"pool_fresh\": {}}}{comma}",
                p.kernel_threads,
                p.buffer_pool,
                p.timing.wall_secs,
                p.timing.frames_per_sec,
                p.timing.mpixels_per_sec,
                p.speedup_vs_1thread,
                p.output_checksum,
                p.pool_stats.recycled,
                p.pool_stats.fresh,
            );
        }
        let _ = writeln!(out, "  ]");
        out.push_str("}\n");
        out
    }

    /// Plain-text table for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "native pipeline throughput — {} p={} {}x{} f={} (host cpus: {})",
            self.config.renderer.name(),
            self.config.pipelines,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.host_cpus,
        );
        let _ = writeln!(
            out,
            "{:>14} {:>6} {:>10} {:>10} {:>9} {:>9}",
            "kernel_threads", "pool", "wall_s", "frames/s", "Mpx/s", "speedup"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>14} {:>6} {:>10.3} {:>10.2} {:>9.2} {:>8.2}x",
                p.kernel_threads,
                if p.buffer_pool { "on" } else { "off" },
                p.timing.wall_secs,
                p.timing.frames_per_sec,
                p.timing.mpixels_per_sec,
                p.speedup_vs_1thread,
            );
        }
        let _ = writeln!(
            out,
            "output {}",
            if self.output_consistent {
                "bit-identical across all points"
            } else {
                "DIVERGED — tuning changed pixels!"
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_core::{Arrangement, Fidelity, RendererMode};
    use scc_render::CityConfig;

    fn tiny() -> (RunConfig, Arc<Scene>) {
        let cfg = RunConfig {
            renderer: RendererMode::SingleRenderer,
            arrangement: Arrangement::Ordered,
            pipelines: 2,
            width: 32,
            height: 32,
            frames: 2,
            seed: 5,
            fidelity: Fidelity::Full,
            trace: false,
            verify: false,
            fault: None,
            tuning: NativeTuning::default(),
        };
        let scene = Arc::new(Scene::city(CityConfig {
            side: 4,
            spacing: 8.0,
            seed: 1,
        }));
        (cfg, scene)
    }

    #[test]
    fn sweep_is_consistent_and_json_well_formed() {
        let (cfg, scene) = tiny();
        let report = measure_native_throughput(&cfg, &scene, &[1, 2]);
        assert!(report.output_consistent, "tuning changed pixels");
        // 2 pooled points + 2 unpooled ablations.
        assert_eq!(report.points.len(), 4);
        let base = &report.points[0];
        assert_eq!(base.kernel_threads, 1);
        assert!((base.speedup_vs_1thread - 1.0).abs() < 1e-9);
        assert!(base.timing.frames_per_sec > 0.0);
        let json = report.to_json();
        for key in [
            "\"bench\": \"native_pipeline\"",
            "\"host_cpus\"",
            "\"kernel_threads\"",
            "\"speedup_vs_1thread\"",
            "\"output_consistent\": true",
            "\"pool_recycled\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets — cheap malformation guard.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let text = report.render_text();
        assert!(text.contains("bit-identical"));
    }
}
