//! Auto-placement measurement — the `BENCH_autoplace.json` trajectory.
//!
//! Runs the film workload in virtual time under the stage-graph
//! scheduler (merged cheap stages, replicated bottleneck) and under each
//! of the three fixed arrangements, records the simulated frame rate of
//! every point, verifies the auto film is bit-identical to every fixed
//! film, and embeds the scheduler's decision table so the trajectory
//! shows *why* the placement won. The JSON is built on
//! `scc_telemetry::Json`, flat like the other bench documents.

use scc_core::viz::frame_checksum;
use scc_core::{auto_place, Arrangement, RunConfig, SimRunner};
use scc_render::Scene;
use scc_telemetry::Json;
use std::fmt::Write as _;
use std::sync::Arc;

/// One measured placement point (the auto plan or a fixed arrangement).
#[derive(Debug, Clone)]
pub struct PlacementPoint {
    /// "auto" or the fixed arrangement's name.
    pub label: String,
    pub total_secs: f64,
    pub fps: f64,
    /// FNV fold of all delivered frame checksums; equal across points.
    pub output_checksum: u64,
}

/// The sweep, ready to render as `BENCH_autoplace.json`.
#[derive(Debug, Clone)]
pub struct AutoplaceReport {
    pub config: RunConfig,
    /// The auto point first, then the fixed arrangements.
    pub points: Vec<PlacementPoint>,
    /// Speedup of the auto placement over the *best* fixed arrangement
    /// (>= ~1.0 by the dominance test).
    pub speedup_vs_best_fixed: f64,
    /// True when every point delivered byte-identical frames.
    pub output_consistent: bool,
    /// The scheduler's pinned decision table (stage, class, weight,
    /// group, replicas, cores).
    pub decision_table: String,
}

fn checksum_fold(frames: &[scc_filters::Image]) -> u64 {
    frames
        .iter()
        .map(frame_checksum)
        .fold(0xcbf2_9ce4_8422_2325, |acc, c| {
            (acc ^ c).wrapping_mul(0x1000_0000_01b3)
        })
}

/// Run the sweep: one auto-placed run, then the three fixed
/// arrangements, all on the same scene and geometry.
pub fn measure_autoplace(base: &RunConfig, scene: &Arc<Scene>) -> AutoplaceReport {
    let mut auto_cfg = base.clone();
    auto_cfg.auto_place = true;
    let decision_table = auto_place(&auto_cfg).decision_table();
    let auto_report = SimRunner::new(auto_cfg.clone(), Arc::clone(scene)).run();
    let auto_sum = checksum_fold(auto_report.outputs.as_ref().expect("full fidelity"));
    let mut points = vec![PlacementPoint {
        label: "auto".into(),
        total_secs: auto_report.total_secs,
        fps: base.frames as f64 / auto_report.total_secs,
        output_checksum: auto_sum,
    }];
    let mut consistent = true;
    let mut best_fixed = f64::INFINITY;
    for arr in [
        Arrangement::Unordered,
        Arrangement::Ordered,
        Arrangement::Flipped,
    ] {
        let mut fixed = base.clone();
        fixed.auto_place = false;
        fixed.arrangement = arr;
        let report = SimRunner::new(fixed, Arc::clone(scene)).run();
        let sum = checksum_fold(report.outputs.as_ref().expect("full fidelity"));
        consistent &= sum == auto_sum;
        best_fixed = best_fixed.min(report.total_secs);
        points.push(PlacementPoint {
            label: format!("{arr:?}").to_lowercase(),
            total_secs: report.total_secs,
            fps: base.frames as f64 / report.total_secs,
            output_checksum: sum,
        });
    }
    AutoplaceReport {
        config: base.clone(),
        points,
        speedup_vs_best_fixed: best_fixed / auto_report.total_secs,
        output_consistent: consistent,
        decision_table,
    }
}

impl AutoplaceReport {
    /// Render the report as the `BENCH_autoplace.json` document.
    pub fn to_json(&self) -> String {
        let config = Json::obj()
            .field("renderer", Json::str(self.config.renderer.name()))
            .field("pipelines", Json::U64(u64::from(self.config.pipelines)))
            .field("width", Json::U64(u64::from(self.config.width)))
            .field("height", Json::U64(u64::from(self.config.height)))
            .field("frames", Json::U64(self.config.frames))
            .field("seed", Json::U64(self.config.seed));
        let points = Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    Json::obj()
                        .field("placement", Json::str(p.label.clone()))
                        .field("total_secs", Json::F64(p.total_secs))
                        .field("fps", Json::F64(p.fps))
                        .field("output_checksum", Json::U64(p.output_checksum))
                })
                .collect(),
        );
        Json::obj()
            .field("bench", Json::str("autoplace"))
            .field("config", config)
            .field(
                "note",
                Json::str(
                    "virtual-time sweep: the stage-graph scheduler's \
                     placement (merged tail, replicated bottleneck) vs \
                     the three fixed arrangements on the same workload",
                ),
            )
            .field("points", points)
            .field(
                "speedup_vs_best_fixed",
                Json::F64(self.speedup_vs_best_fixed),
            )
            .field("output_consistent", Json::Bool(self.output_consistent))
            .field("decision_table", Json::str(self.decision_table.clone()))
            .render()
    }

    /// Plain-text table for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "auto-placement vs fixed — {} p={} {}x{} f={}",
            self.config.renderer.name(),
            self.config.pipelines,
            self.config.width,
            self.config.height,
            self.config.frames,
        );
        let _ = writeln!(
            out,
            "{:>10} {:>12} {:>10}",
            "placement", "total_secs", "fps"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>10} {:>12.4} {:>10.2}",
                p.label, p.total_secs, p.fps
            );
        }
        let _ = writeln!(
            out,
            "auto speedup over best fixed: {:.3}x; output {}",
            self.speedup_vs_best_fixed,
            if self.output_consistent {
                "bit-identical across every placement"
            } else {
                "DIVERGED — the scheduler changed a pixel!"
            }
        );
        out.push_str(&self.decision_table);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_core::Fidelity;
    use scc_render::{CityConfig, Scene};

    #[test]
    fn sweep_dominates_and_json_well_formed() {
        let cfg = RunConfig::builder()
            .pipelines(2)
            .size(64, 64)
            .frames(6)
            .seed(5)
            .fidelity(Fidelity::Full)
            .build()
            .expect("valid config");
        let scene = Arc::new(Scene::city(CityConfig {
            side: 4,
            spacing: 8.0,
            seed: 1,
        }));
        let report = measure_autoplace(&cfg, &scene);
        assert_eq!(report.points.len(), 4);
        assert_eq!(report.points[0].label, "auto");
        assert!(report.output_consistent, "scheduler changed the film");
        assert!(
            report.speedup_vs_best_fixed >= 0.99,
            "auto must not lose to fixed: {:.3}x",
            report.speedup_vs_best_fixed
        );
        let json = report.to_json();
        for key in [
            "\"bench\": \"autoplace\"",
            "\"placement\": \"auto\"",
            "\"speedup_vs_best_fixed\"",
            "\"decision_table\"",
            "\"output_consistent\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report
            .render_text()
            .contains("auto speedup over best fixed"));
    }
}
