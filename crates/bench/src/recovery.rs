//! Self-healing recovery measurement — the `BENCH_recovery.json`
//! trajectory.
//!
//! Sweeps the supervised fail-stop scenario over kill time × core
//! arrangement in *virtual* time: for each point one clean run and one
//! killed-with-spare run, recording detection latency, MTTR, the number
//! of replayed strips, and delivered throughput before/after the repair —
//! and verifying the healed film is bit-identical to the clean one. The
//! JSON is built on `scc_telemetry::Json` (the vendored serde shim is a
//! no-op marker), deliberately flat — and when the base config enables
//! telemetry, the first healed run's full metric snapshot (heartbeat
//! misses, migrations, replayed frames) embeds under a `telemetry` key.

use scc_core::viz::frame_checksum;
use scc_core::{Arrangement, FaultSpec, KillSpec, RunConfig, SimRunner};
use scc_render::Scene;
use scc_telemetry::{snapshot_to_tree, Json, Snapshot};
use std::fmt::Write as _;
use std::sync::Arc;

/// One (arrangement, kill time) sweep point.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    pub arrangement: Arrangement,
    pub kill_at_ms: u64,
    /// Virtual seconds from kill to the phi detector firing.
    pub detect_latency_secs: f64,
    /// Virtual seconds from kill to the replayed strip resident on the
    /// spare (detection + provisioning + replay).
    pub mttr_secs: f64,
    pub frames_replayed: u32,
    /// Delivered virtual throughput of the fault-free run.
    pub clean_fps: f64,
    /// Delivered virtual throughput of the killed-and-healed run.
    pub healed_fps: f64,
    /// Walkthrough-time overhead of the repair, in percent (can be
    /// negative: the spare's mesh position may beat the dead core's).
    pub overhead_pct: f64,
    /// True when every healed frame matched the clean run byte-for-byte.
    pub bit_identical: bool,
}

/// The full sweep, ready to render as `BENCH_recovery.json`.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    pub config: RunConfig,
    pub heartbeat_period_us: u64,
    pub phi_dead: f64,
    pub points: Vec<RecoveryPoint>,
    /// Metric snapshot of the first killed-and-healed run, captured when
    /// the base config enables telemetry; embedded in the JSON document.
    pub telemetry: Option<Snapshot>,
}

/// Run the sweep: every arrangement × every kill time, one supervised
/// kill of pipeline 0's scratch stage, spare pool at its default.
pub fn measure_recovery(
    base: &RunConfig,
    scene: &Arc<Scene>,
    kill_times_ms: &[u64],
) -> RecoveryReport {
    assert!(!kill_times_ms.is_empty(), "no kill times to sweep");
    const HEARTBEAT_PERIOD_US: u64 = 10_000;
    const PHI_DEAD: f64 = 3.0;
    let mut points = Vec::new();
    let mut telemetry = None;
    for arr in [
        Arrangement::Unordered,
        Arrangement::Ordered,
        Arrangement::Flipped,
    ] {
        let mut clean = base.clone();
        clean.arrangement = arr;
        clean.fault = None;
        let clean_report = SimRunner::new(clean.clone(), Arc::clone(scene)).run();
        let clean_frames: Vec<u64> = clean_report
            .outputs
            .as_ref()
            .expect("full fidelity")
            .iter()
            .map(frame_checksum)
            .collect();
        let clean_fps = clean.frames as f64 / clean_report.total_secs;
        for &kill_at_ms in kill_times_ms {
            let mut killed = clean.clone();
            killed.fault = Some(FaultSpec {
                kills: vec![KillSpec {
                    pipeline: 0,
                    stage: 2,
                    at_ms: kill_at_ms,
                }],
                heartbeat_period_us: HEARTBEAT_PERIOD_US,
                phi_dead: PHI_DEAD,
                ..FaultSpec::default()
            });
            let report = SimRunner::new(killed, Arc::clone(scene)).run();
            if telemetry.is_none() {
                telemetry = report.telemetry.clone();
            }
            let ev = report
                .recoveries
                .first()
                .expect("the kill must be observed and healed");
            let healed: Vec<u64> = report
                .outputs
                .as_ref()
                .expect("full fidelity")
                .iter()
                .map(frame_checksum)
                .collect();
            points.push(RecoveryPoint {
                arrangement: arr,
                kill_at_ms,
                detect_latency_secs: ev.detected_at_secs - ev.killed_at_secs,
                mttr_secs: ev.mttr_secs,
                frames_replayed: ev.frames_replayed,
                clean_fps,
                healed_fps: clean.frames as f64 / report.total_secs,
                overhead_pct: (report.total_secs / clean_report.total_secs - 1.0) * 100.0,
                bit_identical: healed == clean_frames,
            });
        }
    }
    RecoveryReport {
        config: base.clone(),
        heartbeat_period_us: HEARTBEAT_PERIOD_US,
        phi_dead: PHI_DEAD,
        points,
        telemetry,
    }
}

impl RecoveryReport {
    /// Render the report as the `BENCH_recovery.json` document.
    pub fn to_json(&self) -> String {
        let config = Json::obj()
            .field("renderer", Json::str(self.config.renderer.name()))
            .field("pipelines", Json::U64(u64::from(self.config.pipelines)))
            .field("width", Json::U64(u64::from(self.config.width)))
            .field("height", Json::U64(u64::from(self.config.height)))
            .field("frames", Json::U64(self.config.frames))
            .field("seed", Json::U64(self.config.seed));
        let points = Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    Json::obj()
                        .field("arrangement", Json::str(format!("{:?}", p.arrangement)))
                        .field("kill_at_ms", Json::U64(p.kill_at_ms))
                        .field("detect_latency_ms", Json::F64(p.detect_latency_secs * 1e3))
                        .field("mttr_ms", Json::F64(p.mttr_secs * 1e3))
                        .field("frames_replayed", Json::U64(u64::from(p.frames_replayed)))
                        .field("clean_fps", Json::F64(p.clean_fps))
                        .field("healed_fps", Json::F64(p.healed_fps))
                        .field("overhead_pct", Json::F64(p.overhead_pct))
                        .field("bit_identical", Json::Bool(p.bit_identical))
                })
                .collect(),
        );
        let mut doc = Json::obj()
            .field("bench", Json::str("recovery"))
            .field("config", config)
            .field("heartbeat_period_us", Json::U64(self.heartbeat_period_us))
            .field("phi_dead", Json::F64(self.phi_dead))
            .field(
                "note",
                Json::str(
                    "virtual-time sweep: one supervised kill of pipeline \
                     0's scratch stage per point; MTTR = detection + spare \
                     provisioning + checkpointed replay",
                ),
            )
            .field("points", points);
        if let Some(snap) = &self.telemetry {
            doc = doc.field("telemetry", snapshot_to_tree(snap));
        }
        doc.render()
    }

    /// Plain-text table for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "self-healing recovery — {} p={} {}x{} f={} (heartbeat {} us, phi {})",
            self.config.renderer.name(),
            self.config.pipelines,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.heartbeat_period_us,
            self.phi_dead,
        );
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>10} {:>9} {:>8} {:>10} {:>10} {:>9}",
            "arrange",
            "kill_ms",
            "detect_ms",
            "mttr_ms",
            "replays",
            "clean_fps",
            "healed_fps",
            "overhead"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>10} {:>8} {:>10.2} {:>9.2} {:>8} {:>10.2} {:>10.2} {:>8.2}%",
                format!("{:?}", p.arrangement),
                p.kill_at_ms,
                p.detect_latency_secs * 1e3,
                p.mttr_secs * 1e3,
                p.frames_replayed,
                p.clean_fps,
                p.healed_fps,
                p.overhead_pct,
            );
        }
        let all_intact = self.points.iter().all(|p| p.bit_identical);
        let _ = writeln!(
            out,
            "healed output {}",
            if all_intact {
                "bit-identical to the clean run at every point"
            } else {
                "DIVERGED — recovery damaged a frame!"
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_core::Fidelity;
    use scc_render::CityConfig;

    #[test]
    fn sweep_heals_every_point_and_json_well_formed() {
        let cfg = RunConfig::builder()
            .pipelines(2)
            .size(40, 40)
            .frames(3)
            .seed(5)
            .fidelity(Fidelity::Full)
            .build()
            .expect("valid config");
        let scene = Arc::new(Scene::city(CityConfig {
            side: 4,
            spacing: 8.0,
            seed: 1,
        }));
        let report = measure_recovery(&cfg, &scene, &[1, 5]);
        // 3 arrangements x 2 kill times.
        assert_eq!(report.points.len(), 6);
        for p in &report.points {
            assert!(p.bit_identical, "{p:?} damaged the film");
            assert!(p.mttr_secs > 0.0 && p.mttr_secs.is_finite());
            assert!(p.detect_latency_secs > 0.0);
            assert!(p.frames_replayed >= 1);
        }
        let json = report.to_json();
        for key in [
            "\"bench\": \"recovery\"",
            "\"heartbeat_period_us\": 10000",
            "\"mttr_ms\"",
            "\"frames_replayed\"",
            "\"bit_identical\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets — cheap malformation guard.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.render_text().contains("bit-identical"));
    }
}
