//! Raw filter-kernel throughput sweep — the `BENCH_kernels.json`
//! trajectory.
//!
//! Unlike `native_throughput` (which times the whole pipeline, render
//! and transport included), this sweep isolates the five filter kernels:
//! it synthesises deterministic frames once, then times the standard
//! chain over them for every point of backend (scalar / simd) ×
//! execution (unfused / fused) × kernel-thread count. The oracle is the
//! same as everywhere else in the repo: every point must produce
//! byte-identical pixels to the scalar-unfused single-thread reference —
//! a kernel variant that changes a pixel is a bug, not a speedup.

use scc_core::viz::frame_checksum;
use scc_core::HostTiming;
use scc_filters::{standard_chain, FrameCtx, FusedPass, Image, KernelBackend};
use scc_telemetry::Json;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured (backend, fused, threads) point.
#[derive(Debug, Clone)]
pub struct KernelPoint {
    pub backend: KernelBackend,
    pub fused: bool,
    pub kernel_threads: u32,
    pub timing: HostTiming,
    /// Throughput relative to the scalar / unfused / 1-thread point.
    pub speedup_vs_scalar: f64,
    /// FNV fold of all output frame checksums; equal across points.
    pub output_checksum: u64,
}

/// The full sweep, ready to render as `BENCH_kernels.json`.
#[derive(Debug, Clone)]
pub struct KernelsReport {
    pub width: u32,
    pub height: u32,
    pub frames: u64,
    pub seed: u64,
    pub host_cpus: u32,
    pub points: Vec<KernelPoint>,
    /// True when every point delivered bit-identical frames.
    pub output_consistent: bool,
}

/// Deterministic synthetic frame (xorshift-mixed pixels) so the sweep
/// needs no scene or renderer.
fn synth_frame(width: u32, height: u32, seed: u64, frame: u64) -> Image {
    let mut img = Image::new(width, height);
    let mut s = seed ^ frame.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for y in 0..height {
        for x in 0..width {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            img.set(x, y, [s as u8, (s >> 8) as u8, (s >> 16) as u8, 255]);
        }
    }
    img
}

/// Apply the standard chain to `img` under one sweep point. Fused
/// execution runs the maximal pointwise tail (scratch → flicker → swap)
/// as one traversal; sepia stays standalone because blur (a stencil)
/// breaks its run, exactly like the native runner's segmenter.
fn apply_point(
    img: &mut Image,
    ctx: &FrameCtx,
    backend: KernelBackend,
    fused: Option<&FusedPass>,
    threads: usize,
) {
    let chain = standard_chain();
    match fused {
        None => {
            for f in &chain {
                f.apply_vectored(img, ctx, backend, threads);
            }
        }
        Some(pass) => {
            chain[0].apply_vectored(img, ctx, backend, threads);
            chain[1].apply_vectored(img, ctx, backend, threads);
            pass.apply_chunked(img, ctx, threads);
        }
    }
}

fn fold_checksums(frames: &[Image]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for img in frames {
        for b in frame_checksum(img).to_le_bytes() {
            acc ^= b as u64;
            acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    acc
}

/// Run the sweep over every backend × fused × `thread_counts` point.
pub fn measure_kernels(
    width: u32,
    height: u32,
    frames: u64,
    seed: u64,
    thread_counts: &[u32],
) -> KernelsReport {
    assert!(!thread_counts.is_empty(), "no thread counts to sweep");
    let inputs: Vec<Image> = (0..frames)
        .map(|f| synth_frame(width, height, seed, f))
        .collect();

    let mut points = Vec::new();
    for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
        for fused in [false, true] {
            let pass = fused.then(|| {
                FusedPass::from_standard_indices(&[2, 3, 4], backend)
                    .expect("scratch/flicker/swap are a legal pointwise run")
            });
            for &threads in thread_counts {
                let mut outputs = inputs.clone();
                let start = Instant::now();
                for (f, img) in outputs.iter_mut().enumerate() {
                    let ctx = FrameCtx::whole_frame(f as u64, seed, width, height);
                    apply_point(img, &ctx, backend, pass.as_ref(), threads as usize);
                }
                let wall = start.elapsed().as_secs_f64();
                points.push(KernelPoint {
                    backend,
                    fused,
                    kernel_threads: threads,
                    timing: HostTiming::from_wall(wall, frames, width, height),
                    speedup_vs_scalar: 0.0, // filled below
                    output_checksum: fold_checksums(&outputs),
                });
            }
        }
    }

    let baseline = points
        .iter()
        .find(|p| p.backend == KernelBackend::Scalar && !p.fused && p.kernel_threads == 1)
        .unwrap_or(&points[0])
        .timing;
    for p in points.iter_mut() {
        p.speedup_vs_scalar = p.timing.speedup_over(&baseline);
    }
    let output_consistent = points
        .windows(2)
        .all(|w| w[0].output_checksum == w[1].output_checksum);

    KernelsReport {
        width,
        height,
        frames,
        seed,
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1),
        points,
        output_consistent,
    }
}

impl KernelsReport {
    /// Render the report as the `BENCH_kernels.json` document.
    pub fn to_json(&self) -> String {
        let config = Json::obj()
            .field("width", Json::U64(u64::from(self.width)))
            .field("height", Json::U64(u64::from(self.height)))
            .field("frames", Json::U64(self.frames))
            .field("seed", Json::U64(self.seed));
        let points = Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    Json::obj()
                        .field("backend", Json::str(p.backend.name()))
                        .field("fused", Json::Bool(p.fused))
                        .field("kernel_threads", Json::U64(u64::from(p.kernel_threads)))
                        .field("wall_secs", Json::F64(p.timing.wall_secs))
                        .field("mpixels_per_sec", Json::F64(p.timing.mpixels_per_sec))
                        .field("speedup_vs_scalar", Json::F64(p.speedup_vs_scalar))
                        .field(
                            "output_checksum",
                            Json::str(format!("{:#018x}", p.output_checksum)),
                        )
                })
                .collect(),
        );
        Json::obj()
            .field("bench", Json::str("kernels"))
            .field("config", config)
            .field("host_cpus", Json::U64(u64::from(self.host_cpus)))
            .field(
                "note",
                Json::str(
                    "filter-chain-only throughput (no render/transport); \
                     mpixels_per_sec counts delivered frame pixels per second",
                ),
            )
            .field("output_consistent", Json::Bool(self.output_consistent))
            .field("points", points)
            .render()
    }

    /// Plain-text table for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "filter kernel throughput — {}x{} f={} (host cpus: {})",
            self.width, self.height, self.frames, self.host_cpus,
        );
        let _ = writeln!(
            out,
            "{:>8} {:>6} {:>8} {:>10} {:>9} {:>9}",
            "backend", "fused", "threads", "wall_s", "Mpx/s", "speedup"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>8} {:>6} {:>8} {:>10.4} {:>9.2} {:>8.2}x",
                p.backend.name(),
                if p.fused { "on" } else { "off" },
                p.kernel_threads,
                p.timing.wall_secs,
                p.timing.mpixels_per_sec,
                p.speedup_vs_scalar,
            );
        }
        let _ = writeln!(
            out,
            "output {}",
            if self.output_consistent {
                "bit-identical across all points"
            } else {
                "DIVERGED — a kernel variant changed pixels!"
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_consistent_and_json_well_formed() {
        let report = measure_kernels(48, 36, 3, 0xBEEF, &[1, 2]);
        assert!(report.output_consistent, "a kernel variant changed pixels");
        // 2 backends x 2 fusion settings x 2 thread counts.
        assert_eq!(report.points.len(), 8);
        let base = &report.points[0];
        assert_eq!(base.backend, KernelBackend::Scalar);
        assert!(!base.fused);
        assert!((base.speedup_vs_scalar - 1.0).abs() < 1e-9);
        let json = report.to_json();
        for key in [
            "\"bench\": \"kernels\"",
            "\"backend\"",
            "\"fused\"",
            "\"mpixels_per_sec\"",
            "\"speedup_vs_scalar\"",
            "\"output_consistent\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.render_text().contains("bit-identical"));
    }
}
