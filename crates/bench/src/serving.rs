//! Serving-layer throughput measurement — the `BENCH_serving.json`
//! trajectory.
//!
//! The serving claim is that a content-addressed strip cache turns
//! viewer overlap into throughput: when sessions revisit each other's
//! poses (the workload here guarantees ≥ 50% pose overlap), a cached
//! strip is a transfer instead of a render, so sessions/s must rise and
//! p99 frame latency must not explode with session count. The sweep runs
//! each session count twice — cache on and cache off, identical workload
//! seed — in deterministic virtual time. Three gates:
//!
//! * **transparency** — the film fingerprint is byte-identical cache
//!   on/off at every point (the cache may never move a pixel);
//! * **speedup** — sessions/s strictly higher with the cache on at every
//!   point (the acceptance criterion of the serving layer);
//! * **ledger** — `completed + shed == admitted` at every point (sheds
//!   are recorded, never silent).

use scc_core::RunConfig;
use scc_render::Scene;
use scc_serve::{serve, ServeConfig, ServeReport, TenantSpec};
use scc_telemetry::Json;
use std::fmt::Write as _;
use std::sync::Arc;

/// One (session count, cache on/off) measurement.
#[derive(Debug, Clone)]
pub struct ServingPoint {
    pub sessions: u32,
    pub cache: bool,
    pub report: ServeReport,
}

/// The full sweep, ready to render as `BENCH_serving.json`.
#[derive(Debug, Clone)]
pub struct ServingReport {
    pub config: RunConfig,
    /// Frames each session requests.
    pub frames_per_session: u32,
    pub pool: u32,
    pub cache_capacity: u32,
    pub points: Vec<ServingPoint>,
}

/// Build the sweep's serving config for one session count. Two tenants —
/// a heavy bulk fleet and a light weighted-up interactive tier — so the
/// sweep also exercises admission and weighted fairness. The pose span
/// scales with the session count but stays at half the per-point frame
/// demand, keeping pose overlap at or above 50% at every point.
pub fn sweep_config(
    base: &RunConfig,
    sessions: u32,
    cache: bool,
    frames_per_session: u32,
    pool: u32,
    cache_capacity: u32,
) -> ServeConfig {
    let bulk = (sessions * 3) / 4;
    let vip = sessions - bulk;
    let pose_span = u64::from(sessions.div_ceil(2).max(2));
    ServeConfig {
        run: base.clone(),
        tenants: vec![
            TenantSpec::new("bulk", 1, bulk, frames_per_session),
            TenantSpec::new("vip", 3, vip, frames_per_session),
        ],
        shards: 2,
        pool,
        cache_capacity: if cache { cache_capacity } else { 0 },
        cache_buckets: (cache_capacity / 2).max(1),
        queue_depth: (sessions / 2).max(4),
        max_sessions: sessions.max(4),
        batch_frames: 4,
        pose_span,
        arrival_burst: (sessions / 4).max(2),
        seed: 0x5EC5_E55 ^ u64::from(sessions),
        keep_films: false,
    }
}

/// Run the sweep over `session_counts`, cache off then on per count.
pub fn measure_serving(
    base: &RunConfig,
    scene: &Arc<Scene>,
    session_counts: &[u32],
) -> ServingReport {
    let frames_per_session = 4;
    let pool = 4;
    let cache_capacity = 256;
    let mut points = Vec::new();
    for &sessions in session_counts {
        for cache in [false, true] {
            let cfg = sweep_config(base, sessions, cache, frames_per_session, pool, cache_capacity);
            let out = serve(&cfg, scene);
            points.push(ServingPoint {
                sessions,
                cache,
                report: out.report,
            });
        }
    }
    ServingReport {
        config: base.clone(),
        frames_per_session,
        pool,
        cache_capacity,
        points,
    }
}

impl ServingReport {
    fn pairs(&self) -> impl Iterator<Item = (&ServingPoint, &ServingPoint)> {
        // Points come in (off, on) pairs per session count.
        self.points.chunks(2).filter_map(|c| match c {
            [off, on] if !off.cache && on.cache => Some((off, on)),
            _ => None,
        })
    }

    /// True when every point's film fingerprint matches cache on vs off.
    pub fn cache_transparent(&self) -> bool {
        self.pairs().all(|(off, on)| {
            off.report.film_hash == on.report.film_hash
                && off.report.frames_served == on.report.frames_served
        })
    }

    /// True when sessions/s is strictly higher with the cache at every
    /// session count — the serving acceptance criterion.
    pub fn cache_speeds_up(&self) -> bool {
        self.pairs()
            .all(|(off, on)| on.report.sessions_per_sec > off.report.sessions_per_sec)
    }

    /// True when every point's session ledger balances.
    pub fn ledger_balanced(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.report.completed + p.report.shed == p.report.admitted)
    }

    /// Render the report as the `BENCH_serving.json` document.
    pub fn to_json(&self) -> String {
        let config = Json::obj()
            .field("pipelines", Json::U64(u64::from(self.config.pipelines)))
            .field("width", Json::U64(u64::from(self.config.width)))
            .field("height", Json::U64(u64::from(self.config.height)))
            .field("seed", Json::U64(self.config.seed))
            .field(
                "frames_per_session",
                Json::U64(u64::from(self.frames_per_session)),
            )
            .field("pool", Json::U64(u64::from(self.pool)))
            .field("cache_capacity", Json::U64(u64::from(self.cache_capacity)));
        let points = Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    let r = &p.report;
                    Json::obj()
                        .field("sessions", Json::U64(u64::from(p.sessions)))
                        .field("cache", Json::Bool(p.cache))
                        .field("admitted", Json::U64(r.admitted))
                        .field("completed", Json::U64(r.completed))
                        .field("shed", Json::U64(r.shed))
                        .field("frames", Json::U64(r.frames_served))
                        .field("unique_renders", Json::U64(r.unique_renders))
                        .field("cache_hits", Json::U64(r.cache.hits))
                        .field("cache_evictions", Json::U64(r.cache.evictions))
                        .field("hit_ratio", Json::F64(r.cache.hit_ratio()))
                        .field("virtual_secs", Json::F64(r.virtual_secs))
                        .field("sessions_per_sec", Json::F64(r.sessions_per_sec))
                        .field("frames_per_sec", Json::F64(r.frames_per_sec))
                        .field("latency_p50_ms", Json::F64(r.latency.p50 * 1e3))
                        .field("latency_p99_ms", Json::F64(r.latency.p99 * 1e3))
                        .field("film_hash", Json::str(&format!("{:#018x}", r.film_hash)))
                })
                .collect(),
        );
        Json::obj()
            .field("bench", Json::str("serving"))
            .field("config", config)
            .field(
                "note",
                Json::str(
                    "virtual-time serving sweep: sessions/s and p99 frame \
                     latency vs session count, cache off/on per count at a \
                     >= 50% pose-overlap workload; gates are byte-identical \
                     films (transparency), strictly higher sessions/s with \
                     the cache, and a balanced session ledger",
                ),
            )
            .field("points", points)
            .render()
    }

    /// Plain-text table for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serving sweep — p={} {}x{} f/sess={} pool={} cache_cap={}",
            self.config.pipelines,
            self.config.width,
            self.config.height,
            self.frames_per_session,
            self.pool,
            self.cache_capacity,
        );
        let _ = writeln!(
            out,
            "{:>9} {:>6} {:>9} {:>6} {:>8} {:>8} {:>10} {:>9} {:>9}",
            "sessions", "cache", "complete", "shed", "renders", "hit%", "sess/s", "p50ms", "p99ms"
        );
        for p in &self.points {
            let r = &p.report;
            let _ = writeln!(
                out,
                "{:>9} {:>6} {:>9} {:>6} {:>8} {:>7.1}% {:>10.2} {:>9.2} {:>9.2}",
                p.sessions,
                if p.cache { "on" } else { "off" },
                r.completed,
                r.shed,
                r.unique_renders,
                100.0 * r.cache.hit_ratio(),
                r.sessions_per_sec,
                r.latency.p50 * 1e3,
                r.latency.p99 * 1e3,
            );
        }
        let _ = writeln!(
            out,
            "films {}; cache {}; ledger {}",
            if self.cache_transparent() {
                "byte-identical cache on/off at every point"
            } else {
                "DIVERGED — the cache moved a pixel!"
            },
            if self.cache_speeds_up() {
                "strictly faster at every point"
            } else {
                "NOT faster — overlap failed to pay"
            },
            if self.ledger_balanced() {
                "balanced (completed + shed == admitted)"
            } else {
                "UNBALANCED — sessions lost silently!"
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_render::CityConfig;

    #[test]
    fn sweep_gates_hold_on_a_smoke_run() {
        let cfg = RunConfig::builder()
            .pipelines(2)
            .size(48, 32)
            .seed(7)
            .build()
            .expect("valid config");
        let scene = Arc::new(Scene::city(CityConfig {
            side: 4,
            spacing: 8.0,
            seed: 1,
        }));
        let report = measure_serving(&cfg, &scene, &[4, 8]);
        assert_eq!(report.points.len(), 4);
        assert!(report.cache_transparent(), "{}", report.render_text());
        assert!(report.cache_speeds_up(), "{}", report.render_text());
        assert!(report.ledger_balanced(), "{}", report.render_text());
        let json = report.to_json();
        for key in [
            "\"bench\": \"serving\"",
            "\"sessions_per_sec\"",
            "\"latency_p99_ms\"",
            "\"hit_ratio\"",
            "\"film_hash\"",
            "\"unique_renders\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
