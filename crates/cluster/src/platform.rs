//! Cluster platform parameters.

use scc_sim::SimTime;

/// Calibration of the Mogon-like node (see DESIGN.md for provenance: the
/// effective per-core speed-up over a 533 MHz P54C combines the 3.94×
/// clock ratio the paper quotes with the micro-architectural advantage of
/// an out-of-order core; the renderer gains more because rasterisation
/// vectorises well).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Filter/transfer stage speed-up over the 533 MHz P54C.
    pub core_speedup: f64,
    /// Render-stage speed-up (modern cores rasterise far better).
    pub render_speedup: f64,
    /// Per-message software latency (MPI over shared memory / IB).
    pub msg_latency: SimTime,
    /// Intra-node message bandwidth (shared memory copy).
    pub msg_bandwidth: u64,
    /// Off-node link bandwidth for the external renderer feed (the
    /// slower front-end path of the paper's "external rend." rows).
    pub feed_bandwidth: u64,
    /// Off-node link bandwidth towards the visualisation client.
    pub viewer_bandwidth: u64,
    /// Per-packet overhead on the external links.
    pub external_packet: (u64, SimTime),
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            core_speedup: 6.9,
            render_speedup: 25.0,
            msg_latency: SimTime::from_us(80),
            msg_bandwidth: 2_500_000_000,
            feed_bandwidth: 15_000_000,
            viewer_bandwidth: 150_000_000,
            external_packet: (8 * 1024, SimTime::from_us(20)),
        }
    }
}

impl ClusterConfig {
    /// Duration of an intra-node message of `bytes`.
    pub fn message_time(&self, bytes: u64) -> SimTime {
        self.msg_latency + SimTime::from_bytes_at(bytes.max(1), self.msg_bandwidth)
    }

    /// Duration of a renderer-feed transfer of `bytes` (off-node).
    pub fn feed_time(&self, bytes: u64) -> SimTime {
        let (pkt, overhead) = self.external_packet;
        let packets = bytes.div_ceil(pkt).max(1);
        overhead * packets + SimTime::from_bytes_at(bytes.max(1), self.feed_bandwidth)
    }

    /// Duration of a viewer-bound transfer of `bytes` (off-node).
    pub fn viewer_time(&self, bytes: u64) -> SimTime {
        let (pkt, overhead) = self.external_packet;
        let packets = bytes.div_ceil(pkt).max(1);
        overhead * packets + SimTime::from_bytes_at(bytes.max(1), self.viewer_bandwidth)
    }

    /// Seconds for work costing `p54c_cycles` at 533 MHz on a cluster
    /// core, for a render (`true`) or filter (`false`) stage.
    pub fn stage_seconds(&self, p54c_cycles: f64, render: bool) -> f64 {
        let s = if render {
            self.render_speedup
        } else {
            self.core_speedup
        };
        p54c_cycles / (533.0e6 * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_cores_are_much_faster() {
        let c = ClusterConfig::default();
        // The paper's quoted clock ratio is a lower bound on the speed-up.
        assert!(c.core_speedup > 3.94);
        assert!(c.render_speedup > c.core_speedup);
        assert!(c.stage_seconds(533.0e6, false) < 0.2);
    }

    #[test]
    fn messaging_is_far_cheaper_than_scc_partitions() {
        let c = ClusterConfig::default();
        // 640 KB strip: sub-millisecond inside the node.
        let t = c.message_time(640_000);
        assert!(t < SimTime::from_ms(1), "intra-node message {t}");
    }

    #[test]
    fn feed_link_is_the_slow_path() {
        let c = ClusterConfig::default();
        let feed = c.feed_time(640_000);
        let int = c.message_time(640_000);
        assert!(feed > int * 10, "feed {feed} vs internal {int}");
        // A full frame over the feed ≈ 45 ms: the Figure 13
        // external-renderer plateau (~18 s / 400 frames).
        assert!(
            feed > SimTime::from_ms(30) && feed < SimTime::from_ms(60),
            "{feed}"
        );
        // The viewer link is much faster and never dominates.
        assert!(c.viewer_time(640_000) < SimTime::from_ms(10));
    }
}
