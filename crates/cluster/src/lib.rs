//! # scc-cluster — Mogon-like HPC cluster platform
//!
//! The paper cross-checks the SCC results on the Mogon cluster at Mainz:
//! 64-core nodes with 2.1 GHz modern cores ("roughly 3.94 times higher
//! clock than the SCC's 533 MHz"), node-local memory, and a network hop to
//! the visualisation client (Figure 13, Table I's three HPC rows). This
//! crate runs the same macro pipeline with the same calibrated cost model
//! on that platform: fast cores, cheap shared-memory messaging inside a
//! node (no DRAM-partition round-trip — the very thing the SCC lacks) and
//! a bandwidth-limited external link for the off-node renderer and the
//! viewer.

pub mod platform;
pub mod runner;

pub use platform::ClusterConfig;
pub use runner::{cluster_walkthrough, ClusterMode, ClusterReport};
