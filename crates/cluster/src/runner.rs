//! The macro pipeline on the cluster platform (Figure 13, Table I's HPC
//! rows): same stage structure and rendezvous flow control as the SCC
//! runner, but with fast cores, cheap intra-node messages and no
//! DRAM-partition round-trip.

use crate::platform::ClusterConfig;
use scc_core::cost::{CostModel, RenderWork};
use scc_core::spec::StageKind;
use scc_core::RunConfig;
use scc_filters::{Blur, Flicker, Image, ImageFilter, Scratch, Sepia, VSwap};
use scc_render::{Renderer, Scene, Walkthrough};
use scc_sim::SimTime;
use std::sync::Arc;

/// The three cluster rows of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMode {
    /// Renderer on a different node, frames over the external link
    /// ("HPC, external rend.").
    ExternalRenderer,
    /// One render core on the node ("HPC, single rend.").
    SingleRenderer,
    /// One renderer per pipeline ("HPC, parallel rend.").
    ParallelRenderer,
}

impl ClusterMode {
    pub fn label(self) -> &'static str {
        match self {
            ClusterMode::ExternalRenderer => "External renderer",
            ClusterMode::SingleRenderer => "Single renderer",
            ClusterMode::ParallelRenderer => "Parallel renderer",
        }
    }
}

/// Outcome of a cluster walkthrough.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    pub mode: ClusterMode,
    pub pipelines: u32,
    pub total_secs: f64,
}

struct Stage {
    free: SimTime,
}

/// Run the walkthrough on the cluster.
pub fn cluster_walkthrough(
    mode: ClusterMode,
    pipelines: u32,
    cfg: &RunConfig,
    scene: Arc<Scene>,
) -> ClusterReport {
    cluster_walkthrough_with(mode, pipelines, cfg, scene, &ClusterConfig::default())
}

/// Run with explicit platform parameters.
pub fn cluster_walkthrough_with(
    mode: ClusterMode,
    pipelines: u32,
    cfg: &RunConfig,
    scene: Arc<Scene>,
    cluster: &ClusterConfig,
) -> ClusterReport {
    assert!(pipelines >= 1);
    let cost = CostModel::default();
    let renderer = Renderer::new(scene);
    let walkthrough = Walkthrough::standard(cfg.width as f32 / cfg.height as f32);
    let bounds = Image::strip_bounds(cfg.height, pipelines);
    let p = pipelines as usize;
    let full_px = cfg.width as u64 * cfg.height as u64;
    let full_bytes = cfg.frame_bytes();

    let impls: [Box<dyn ImageFilter>; 5] = [
        Box::new(Sepia),
        Box::new(Blur::default()),
        Box::new(Scratch::default()),
        Box::new(Flicker::default()),
        Box::new(VSwap),
    ];
    let kinds = StageKind::PIPELINE_FILTERS;

    let n_renderers = match mode {
        ClusterMode::ParallelRenderer => p,
        _ => 1,
    };
    let mut renderers: Vec<Stage> = (0..n_renderers)
        .map(|_| Stage {
            free: SimTime::ZERO,
        })
        .collect();
    let mut filters: Vec<Vec<Stage>> = (0..p)
        .map(|_| {
            (0..5)
                .map(|_| Stage {
                    free: SimTime::ZERO,
                })
                .collect()
        })
        .collect();
    let mut transfer = Stage {
        free: SimTime::ZERO,
    };
    let mut finish = SimTime::ZERO;

    for f in 0..cfg.frames {
        let cam = walkthrough.camera(f);
        let mut arrivals: Vec<SimTime> = vec![SimTime::ZERO; p];

        match mode {
            ClusterMode::SingleRenderer | ClusterMode::ExternalRenderer => {
                let r = &mut renderers[0];
                let (_, cull, coverage) =
                    renderer.cull_strip(&cam, cfg.width, cfg.height, 0, cfg.height);
                let work = RenderWork {
                    nodes_visited: cull.nodes_visited,
                    triangles_out: cull.triangles_out,
                    est_coverage: coverage,
                };
                let cycles =
                    cost.render_cycles(&work, false) + cost.split_cycles(full_px, pipelines);
                let dur = SimTime::from_secs_f64(cluster.stage_seconds(cycles, true));
                let mut t = r.free + dur;
                if mode == ClusterMode::ExternalRenderer {
                    // The full frame crosses the network once, then gets
                    // split on-node.
                    let start = t.max(filters[0][0].free);
                    t = start + cluster.feed_time(full_bytes);
                }
                for (i, (_, h)) in bounds.iter().enumerate() {
                    let strip_bytes = cfg.width as u64 * *h as u64 * 4;
                    let start = t.max(filters[i][0].free);
                    let arr = start + cluster.message_time(strip_bytes);
                    arrivals[i] = arr;
                    t = arr;
                }
                r.free = t;
            }
            ClusterMode::ParallelRenderer => {
                // Balanced fill, as in the SCC runner (see runner::sim).
                let (_, _, full_coverage) =
                    renderer.cull_strip(&cam, cfg.width, cfg.height, 0, cfg.height);
                for i in 0..p {
                    let (y0, h) = bounds[i];
                    let r = &mut renderers[i];
                    let (_, cull, _) = renderer.cull_strip(&cam, cfg.width, cfg.height, y0, h);
                    let work = RenderWork {
                        nodes_visited: cull.nodes_visited,
                        triangles_out: cull.triangles_out,
                        est_coverage: full_coverage / p as u64,
                    };
                    // Strip-mode rendering pays the frustum adjust, as on
                    // the SCC.
                    let cycles = cost.render_cycles(&work, true);
                    let dur = SimTime::from_secs_f64(cluster.stage_seconds(cycles, true));
                    let t = r.free + dur;
                    let strip_bytes = cfg.width as u64 * h as u64 * 4;
                    let start = t.max(filters[i][0].free);
                    let arr = start + cluster.message_time(strip_bytes);
                    arrivals[i] = arr;
                    r.free = arr;
                }
            }
        }

        // Filter chains.
        let mut swap_done: Vec<SimTime> = vec![SimTime::ZERO; p];
        for i in 0..p {
            let (_, h) = bounds[i];
            let strip_bytes = cfg.width as u64 * h as u64 * 4;
            let proxy = Image::new(cfg.width, h);
            let ctx = scc_filters::FrameCtx {
                frame_id: f,
                run_seed: cfg.seed,
                strip: scc_filters::StripInfo {
                    index: i as u32,
                    count: pipelines,
                    y0: bounds[i].0,
                    height: h,
                    full_height: cfg.height,
                },
                full_width: cfg.width,
            };
            let mut avail = arrivals[i];
            for j in 0..5 {
                let start = avail.max(filters[i][j].free);
                let cycles = cost.filter_cycles(impls[j].as_ref(), &proxy, &ctx);
                let dur = SimTime::from_secs_f64(cluster.stage_seconds(cycles, false));
                let t = start + dur;
                let next_free = if j + 1 < 5 {
                    filters[i][j + 1].free
                } else {
                    transfer.free
                };
                let send_start = t.max(next_free);
                let arr = send_start + cluster.message_time(strip_bytes);
                filters[i][j].free = arr;
                avail = arr;
                let _ = kinds[j];
            }
            swap_done[i] = avail;
        }

        // Transfer: collect, assemble, ship to the viewer over the network.
        let mut t = transfer.free;
        for &arr in &swap_done {
            t = t.max(arr);
        }
        let assemble =
            SimTime::from_secs_f64(cluster.stage_seconds(cost.assemble_cycles(full_px), false));
        t = t + assemble + cluster.viewer_time(full_bytes);
        transfer.free = t;
        finish = t;
    }

    ClusterReport {
        mode,
        pipelines,
        total_secs: finish.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_render::CityConfig;

    fn scene() -> Arc<Scene> {
        Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 5,
        }))
    }

    fn quick_cfg() -> RunConfig {
        RunConfig {
            width: 120,
            height: 120,
            frames: 20,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_rendering_scales() {
        let cfg = quick_cfg();
        let t1 = cluster_walkthrough(ClusterMode::ParallelRenderer, 1, &cfg, scene()).total_secs;
        let t4 = cluster_walkthrough(ClusterMode::ParallelRenderer, 4, &cfg, scene()).total_secs;
        assert!(t4 < t1 * 0.6, "4 pipelines {t4:.3}s vs 1 {t1:.3}s");
    }

    #[test]
    fn external_renderer_hits_network_floor() {
        // Beyond a few pipelines the external feed dominates; times
        // plateau instead of scaling.
        let cfg = quick_cfg();
        let t4 = cluster_walkthrough(ClusterMode::ExternalRenderer, 4, &cfg, scene()).total_secs;
        let t7 = cluster_walkthrough(ClusterMode::ExternalRenderer, 7, &cfg, scene()).total_secs;
        let floor = 20.0
            * ClusterConfig::default()
                .feed_time(cfg.frame_bytes())
                .as_secs_f64();
        assert!(
            t7 >= floor * 0.9,
            "t7 {t7:.3}s below network floor {floor:.3}s"
        );
        assert!(
            (t7 - t4).abs() < t4 * 0.35,
            "no plateau: {t4:.3} vs {t7:.3}"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = quick_cfg();
        let a = cluster_walkthrough(ClusterMode::SingleRenderer, 3, &cfg, scene()).total_secs;
        let b = cluster_walkthrough(ClusterMode::SingleRenderer, 3, &cfg, scene()).total_secs;
        assert_eq!(a, b);
    }

    #[test]
    fn modes_labelled() {
        assert_eq!(ClusterMode::ExternalRenderer.label(), "External renderer");
        assert_eq!(ClusterMode::SingleRenderer.label(), "Single renderer");
        assert_eq!(ClusterMode::ParallelRenderer.label(), "Parallel renderer");
    }
}
