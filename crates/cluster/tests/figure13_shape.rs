//! Differential test against EXPERIMENTS.md's Figure 13 / Table I HPC
//! rows: the cluster model must keep the published curve *shape* — the
//! on-node configurations scale monotonically down to ~4 s, the
//! external-renderer feed plateaus at ~21 s from two pipelines on — and
//! stay within a few percent of the committed measured values.
//!
//! The published numbers come from the paper's full 400-frame walkthrough
//! (what `experiments fig13` runs). The model is a steady-state cadence
//! simulation, so a quarter-length walkthrough scaled by 4 lands within
//! ~1.5% of the full run — cheap enough for every `cargo test`.

use scc_cluster::{cluster_walkthrough, ClusterMode};
use scc_core::RunConfig;
use scc_render::{CityConfig, Scene};
use std::sync::{Arc, OnceLock};

/// The committed "measured" rows from EXPERIMENTS.md (seconds, p=1..7).
const MEASURED_EXTERNAL: [f64; 7] = [25.7, 21.0, 21.1, 21.1, 21.1, 21.2, 21.2];
const MEASURED_SINGLE: [f64; 7] = [25.7, 12.9, 8.7, 6.5, 5.2, 4.4, 3.8];

/// Frames simulated per point; results are scaled back to the paper's
/// 400-frame walkthrough.
const FRAMES: u64 = 100;
const SCALE: f64 = 400.0 / FRAMES as f64;

fn rows() -> &'static [Vec<f64>; 3] {
    static ROWS: OnceLock<[Vec<f64>; 3]> = OnceLock::new();
    ROWS.get_or_init(|| {
        let cfg = RunConfig {
            frames: FRAMES,
            ..RunConfig::default()
        };
        let scene = Arc::new(Scene::city(CityConfig::default()));
        [
            ClusterMode::ExternalRenderer,
            ClusterMode::SingleRenderer,
            ClusterMode::ParallelRenderer,
        ]
        .map(|mode| {
            (1..=7u32)
                .map(|p| cluster_walkthrough(mode, p, &cfg, Arc::clone(&scene)).total_secs * SCALE)
                .collect()
        })
    })
}

fn row(mode: ClusterMode) -> &'static [f64] {
    match mode {
        ClusterMode::ExternalRenderer => &rows()[0],
        ClusterMode::SingleRenderer => &rows()[1],
        ClusterMode::ParallelRenderer => &rows()[2],
    }
}

#[test]
fn on_node_rows_scale_monotonically() {
    for mode in [ClusterMode::SingleRenderer, ClusterMode::ParallelRenderer] {
        let times = row(mode);
        for p in 1..times.len() {
            assert!(
                times[p] < times[p - 1],
                "{}: adding pipeline {} did not help ({:.1}s -> {:.1}s)",
                mode.label(),
                p + 1,
                times[p - 1],
                times[p]
            );
        }
        // The paper's headline: seven on-node pipelines land around 4 s,
        // a >6x speedup over one pipeline.
        assert!(
            times[0] / times[6] > 6.0,
            "{}: p=7 speedup only {:.2}x",
            mode.label(),
            times[0] / times[6]
        );
    }
}

#[test]
fn external_renderer_plateaus_from_two_pipelines() {
    let times = row(ClusterMode::ExternalRenderer);
    // One extra pipeline helps (the renderer overlaps the feed)...
    assert!(
        times[1] < times[0] * 0.9,
        "no initial gain: {:.1}s -> {:.1}s",
        times[0],
        times[1]
    );
    // ...but from p=2 the network feed is the bottleneck: every further
    // point sits within 5% of the p=2 time. This is the plateau position
    // that distinguishes Figure 13's external row from the on-node rows.
    for (p, &t) in times.iter().enumerate().skip(2) {
        let ratio = t / times[1];
        assert!(
            (0.95..=1.05).contains(&ratio),
            "plateau broken at p={}: {:.2}s vs p=2 {:.2}s",
            p + 1,
            t,
            times[1]
        );
    }
    // And the plateau never approaches the on-node endgame.
    let single = row(ClusterMode::SingleRenderer);
    assert!(
        times[6] > single[6] * 3.0,
        "external p=7 {:.1}s should sit far above on-node {:.1}s",
        times[6],
        single[6]
    );
}

#[test]
fn rows_match_experiments_md_within_tolerance() {
    // Differential pin against the committed numbers: 5% per point (the
    // quarter-length scaling contributes ~1.5% of that). A model change
    // that shifts the curve must update EXPERIMENTS.md too.
    let cases = [
        (ClusterMode::ExternalRenderer, &MEASURED_EXTERNAL),
        (ClusterMode::SingleRenderer, &MEASURED_SINGLE),
        // Table I: the parallel row is indistinguishable from the single
        // row at this geometry.
        (ClusterMode::ParallelRenderer, &MEASURED_SINGLE),
    ];
    for (mode, want) in cases {
        let got = row(mode);
        for (p, (&g, &w)) in got.iter().zip(want.iter()).enumerate() {
            let err = (g - w).abs() / w;
            assert!(
                err < 0.05,
                "{} p={}: got {:.2}s, EXPERIMENTS.md says {:.2}s ({:.1}% off)",
                mode.label(),
                p + 1,
                g,
                w,
                err * 100.0
            );
        }
    }
}
