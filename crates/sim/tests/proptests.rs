//! Property-based tests for the platform substrate.

use proptest::prelude::*;
use scc_sim::bucket::BucketedResource;
use scc_sim::cache::{CacheGeometry, SetAssocCache};
use scc_sim::des::EventQueue;
use scc_sim::dvfs::{DvfsState, FreqMHz, IslandId};
use scc_sim::topology::{xy_route, CoreId, TileId, MESH_H, MESH_W};
use scc_sim::SimTime;

fn arb_tile() -> impl Strategy<Value = TileId> {
    (0..MESH_W as u32, 0..MESH_H as u32).prop_map(|(x, y)| TileId::from_xy(x as u8, y as u8))
}

fn arb_freq() -> impl Strategy<Value = FreqMHz> {
    prop_oneof![
        Just(FreqMHz::F400),
        Just(FreqMHz::F533),
        Just(FreqMHz::F800)
    ]
}

proptest! {
    #[test]
    fn xy_routes_are_minimal_and_continuous(a in arb_tile(), b in arb_tile()) {
        let route = xy_route(a, b);
        prop_assert_eq!(route.len() as u8, a.hops_to(b));
        let mut cur = a;
        for link in &route {
            prop_assert_eq!(link.from, cur);
            cur = link.to();
        }
        prop_assert_eq!(cur, b);
    }

    #[test]
    fn xy_routes_turn_at_most_once(a in arb_tile(), b in arb_tile()) {
        // Dimension-ordered routing: all x-movement precedes y-movement.
        let route = xy_route(a, b);
        let mut seen_vertical = false;
        for link in &route {
            let vertical = link.from.x() == link.to().x();
            if seen_vertical {
                prop_assert!(vertical, "x-hop after y-hop breaks XY order");
            }
            seen_vertical |= vertical;
        }
    }

    #[test]
    fn cache_matches_reference_lru_model(
        addrs in prop::collection::vec(0u64..4096, 1..300)
    ) {
        // 2 sets x 2 ways x 32-byte lines.
        let geo = CacheGeometry { capacity: 128, line: 32, ways: 2 };
        let mut cache = SetAssocCache::new(geo);
        // Reference: per set, a vector of tags in MRU order.
        let sets = geo.sets();
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        for &addr in &addrs {
            let line = addr / geo.line;
            let set = (line % sets) as usize;
            let tag = line / sets;
            let expect_hit = reference[set].contains(&tag);
            let got = cache.access(addr);
            prop_assert_eq!(
                got == scc_sim::cache::Access::Hit,
                expect_hit,
                "divergence at addr {}", addr
            );
            if let Some(pos) = reference[set].iter().position(|&t| t == tag) {
                reference[set].remove(pos);
            } else if reference[set].len() == geo.ways as usize {
                reference[set].pop();
            }
            reference[set].insert(0, tag);
        }
        prop_assert_eq!(cache.accesses(), addrs.len() as u64);
    }

    #[test]
    fn bucket_bookings_never_finish_early(
        jobs in prop::collection::vec((0u64..100, 1u64..50), 1..60)
    ) {
        let mut res = BucketedResource::new(SimTime::from_ms(1));
        let mut total = SimTime::ZERO;
        for (start_ms, service_ms) in jobs {
            let start = SimTime::from_ms(start_ms);
            let service = SimTime::from_ms(service_ms);
            let booking = res.book(start, service);
            prop_assert!(booking.completion >= start + service);
            prop_assert_eq!(booking.wait, booking.completion - (start + service));
            total += service;
        }
        prop_assert_eq!(res.total_busy(), total);
    }

    #[test]
    fn bucket_capacity_is_conserved(
        n in 1usize..30,
        service_us in 1u64..900,
    ) {
        // n identical overlapping jobs at t=0: the last completion must be
        // at least n * service (capacity 1) and the first exactly service.
        let mut res = BucketedResource::new(SimTime::from_ms(1));
        let service = SimTime::from_us(service_us);
        let completions: Vec<SimTime> = (0..n)
            .map(|_| res.book(SimTime::ZERO, service).completion)
            .collect();
        prop_assert_eq!(completions[0], service);
        prop_assert!(*completions.last().unwrap() >= service * n as u64);
    }

    #[test]
    fn event_queue_pops_sorted(
        times in prop::collection::vec(0u64..1_000_000u64, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(*t), i);
        }
        let drained = q.drain_ordered();
        prop_assert_eq!(drained.len(), times.len());
        for w in drained.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    #[test]
    fn island_voltage_is_max_of_members(
        settings in prop::collection::vec((0u8..24, arb_freq()), 0..24)
    ) {
        let mut dvfs = DvfsState::default();
        for (tile, freq) in &settings {
            dvfs.set_tile(TileId::new(*tile), *freq);
        }
        for island in IslandId::all() {
            let expect = island
                .tiles()
                .iter()
                .map(|t| dvfs.tile_freq(*t).required_volts())
                .fold(0.0, f64::max);
            prop_assert_eq!(dvfs.island_volts(island), expect);
        }
        // Collateral cores are exactly those whose own requirement is
        // below their island's supply.
        for c in dvfs.collateral_cores() {
            prop_assert!(dvfs.core_volts(c) > dvfs.core_freq(c).required_volts());
        }
    }

    #[test]
    fn chip_power_monotone_in_busy_set(
        busy_bits in prop::collection::vec(any::<bool>(), 48),
        extra in 0usize..48,
    ) {
        use scc_sim::power::PowerConfig;
        let cfg = PowerConfig::default();
        let dvfs = DvfsState::default();
        let mut busy = [false; 48];
        for (i, b) in busy_bits.iter().enumerate() {
            busy[i] = *b;
        }
        let p1 = cfg.chip_power(&dvfs, &busy);
        let mut more = busy;
        more[extra] = true;
        let p2 = cfg.chip_power(&dvfs, &more);
        prop_assert!(p2 >= p1 - 1e-12, "adding a busy core reduced power");
    }

    #[test]
    fn quadrant_mc_is_nearest_corner(tile in arb_tile()) {
        let mc = tile.memory_controller();
        let my_dist = tile.hops_to(mc.attach_tile());
        for other in scc_sim::McId::all() {
            prop_assert!(
                my_dist <= tile.hops_to(other.attach_tile()),
                "{} should be served by its nearest corner", tile
            );
        }
    }

    #[test]
    fn core_tile_inverse(core_id in 0u8..48) {
        let core = CoreId::new(core_id);
        let tile = core.tile();
        prop_assert!(tile.cores().contains(&core));
    }
}
