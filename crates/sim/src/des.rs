//! Generic discrete-event simulation core.
//!
//! [`EventQueue`] is a deterministic priority queue of `(time, payload)`
//! pairs: ties in time are broken by insertion order, so two runs of the
//! same program always pop events in the same order regardless of the
//! payload type or host.

use crate::fault::FaultPlan;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// An event scheduled at a point in virtual time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic min-heap of timed events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    fault: Option<Arc<FaultPlan>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            fault: None,
        }
    }

    /// Inject deterministic scheduling jitter: each event's timestamp may
    /// be pushed late by `FaultPlan::event_jitter(seq)`. With a quiet plan
    /// (the default), behaviour is identical to an unfaulted queue.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault = Some(plan);
    }

    /// Current virtual time: the timestamp of the most recently popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past (before the last popped event) is a logic
    /// error in the model; it is clamped to `now` with a debug assertion.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < now {:?}",
            self.now
        );
        let mut time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(plan) = &self.fault {
            time += plan.event_jitter(seq);
        }
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Schedule `payload` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pop the earliest event, advancing the virtual clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "clock moved backwards");
        self.now = s.time;
        self.popped += 1;
        Some((s.time, s.payload))
    }

    /// Drain every remaining event in time order (consumes the queue).
    pub fn drain_ordered(mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(5), "c");
        q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(3), "b");
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(2), ());
        q.schedule(SimTime::from_ms(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(2));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(7));
        assert_eq!(q.processed(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(10), 0u32);
        q.pop();
        q.schedule_in(SimTime::from_ms(5), 1u32);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ms(15));
    }

    #[test]
    fn jitter_is_deterministic_and_quiet_plan_is_identity() {
        use crate::fault::{FaultConfig, FaultPlan};

        let jittery = FaultConfig {
            seed: 13,
            delay_rate: 0.5,
            max_delay: SimTime::from_ms(2),
            ..FaultConfig::default()
        };
        let mut a = EventQueue::new();
        a.set_fault_plan(Arc::new(FaultPlan::new(jittery.clone())));
        let mut b = EventQueue::new();
        b.set_fault_plan(Arc::new(FaultPlan::new(jittery)));
        let mut quiet = EventQueue::new();
        quiet.set_fault_plan(Arc::new(FaultPlan::default()));
        let mut plain = EventQueue::new();
        for i in 0..50u32 {
            let t = SimTime::from_ms(u64::from(i % 7));
            a.schedule(t, i);
            b.schedule(t, i);
            quiet.schedule(t, i);
            plain.schedule(t, i);
        }
        assert_eq!(a.drain_ordered(), b.drain_ordered());
        assert_eq!(quiet.drain_ordered(), plain.drain_ordered());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(4)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }
}
