//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a pure function from a seed to a complete fault
//! schedule: whether message *n* between two cores is dropped, corrupted
//! or delayed, which mesh links run at degraded bandwidth, and when a
//! core stalls. Every decision is a hash of `(seed, identity of the
//! event)` — never of a shared mutable RNG — so the schedule is identical
//! no matter in which order the simulator (or the native runner's
//! threads) ask the questions. Two plans built from the same
//! [`FaultConfig`] answer every query identically, which is what makes
//! chaos runs reproducible and bisectable.
//!
//! The plan is wired into three layers:
//! * [`crate::noc`] — per-link bandwidth degradation and per-message
//!   flit delay;
//! * [`crate::platform`] — core stall windows (a stalled core issues no
//!   compute, memory or message operations until the window closes);
//! * [`crate::des`] — optional deterministic scheduling jitter on the
//!   event queue.
//!
//! The retry/timeout *protocol* built on these primitives lives in
//! `scc-rcce` (native, wall-clock) and `scc-core`'s runner (simulated,
//! virtual-time).

use crate::time::SimTime;
use crate::topology::Link;
use serde::Serialize;

/// What happens to one transmission attempt of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MessageOutcome {
    /// The payload arrives intact.
    Deliver,
    /// The payload never arrives; the sender's timeout will fire.
    Drop,
    /// The payload arrives with `xor` folded into the byte at
    /// `offset % len`; a CRC check must catch it.
    Corrupt { offset: u64, xor: u8 },
    /// The payload arrives intact but late by the given amount.
    Delay(SimTime),
}

/// One core stall: the core issues nothing during `[at, at + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CoreStall {
    pub core: u8,
    pub at: SimTime,
    pub duration: SimTime,
}

impl CoreStall {
    /// End of the stall window (saturating: `duration = SimTime::MAX`
    /// models a core that never comes back).
    pub fn until(&self) -> SimTime {
        SimTime::from_ps(self.at.as_ps().saturating_add(self.duration.as_ps()))
    }
}

/// One permanent core failure: from `at` onwards the core executes
/// nothing, acknowledges nothing, and emits no heartbeats — fail-stop.
/// Unlike a [`CoreStall`] it never ends, which is what makes supervised
/// *migration* (rather than patience) the right response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CoreKill {
    pub core: u8,
    pub at: SimTime,
}

/// Seeded description of every fault the plan may inject.
#[derive(Debug, Clone, Serialize)]
pub struct FaultConfig {
    /// Master seed; all decisions derive from it.
    pub seed: u64,
    /// Probability that a message transmission attempt is dropped.
    pub drop_rate: f64,
    /// Probability that an attempt arrives corrupted.
    pub corrupt_rate: f64,
    /// Probability that an attempt (or a NoC message) is delayed.
    pub delay_rate: f64,
    /// Upper bound of an injected delay.
    pub max_delay: SimTime,
    /// Number of mesh links running at degraded bandwidth (chosen by the
    /// seed from the `Link::DENSE_COUNT` directed links).
    pub degraded_links: u32,
    /// Bandwidth multiplier applied to degraded links (0 < f ≤ 1).
    pub degrade_factor: f64,
    /// Core stall windows.
    pub stalls: Vec<CoreStall>,
    /// Permanent fail-stop core kills.
    pub kills: Vec<CoreKill>,
}

impl Default for FaultConfig {
    /// A quiet plan: no faults at all (every query answers "healthy").
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            delay_rate: 0.0,
            max_delay: SimTime::from_us(200),
            degraded_links: 0,
            degrade_factor: 1.0,
            stalls: Vec::new(),
            kills: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// Does this configuration inject per-message faults?
    pub fn perturbs_messages(&self) -> bool {
        self.drop_rate > 0.0 || self.corrupt_rate > 0.0 || self.delay_rate > 0.0
    }
}

// Domain-separation tags so the same seed yields independent streams for
// each decision family.
const TAG_MESSAGE: u64 = 0x4D45_5353_4147_4531;
const TAG_FLIT: u64 = 0x464C_4954_4445_4C41;
const TAG_LINK: u64 = 0x4C49_4E4B_4445_4752;
const TAG_EVENT: u64 = 0x4556_454E_544A_4954;

/// SplitMix64 finaliser: a high-quality 64-bit mixing function.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform value in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The resolved, immutable fault schedule. Cheap to share (`Arc`) between
/// the platform, the NoC, the event queue and native endpoints.
#[derive(Debug, Clone, Serialize)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Bandwidth factor per dense link index (1.0 = healthy).
    link_factors: Vec<f64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(FaultConfig::default())
    }
}

impl FaultPlan {
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        let mut link_factors = vec![1.0; Link::DENSE_COUNT];
        let wanted = (cfg.degraded_links as usize).min(Link::DENSE_COUNT);
        let mut chosen = 0usize;
        let mut round = 0u64;
        while chosen < wanted {
            let idx = (mix(cfg.seed ^ TAG_LINK ^ round) % Link::DENSE_COUNT as u64) as usize;
            round += 1;
            if link_factors[idx] == 1.0 {
                link_factors[idx] = cfg.degrade_factor.clamp(1e-3, 1.0);
                chosen += 1;
            }
        }
        FaultPlan { cfg, link_factors }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Bandwidth multiplier of the link with this dense index.
    pub fn link_factor(&self, dense_index: usize) -> f64 {
        self.link_factors[dense_index]
    }

    /// Extra latency injected into NoC message number `msg_idx`.
    pub fn flit_delay(&self, msg_idx: u64) -> SimTime {
        if self.cfg.delay_rate <= 0.0 {
            return SimTime::ZERO;
        }
        let h = mix(self.cfg.seed ^ TAG_FLIT ^ msg_idx);
        if unit(h) >= self.cfg.delay_rate {
            return SimTime::ZERO;
        }
        SimTime::from_ps((self.cfg.max_delay.as_ps() as f64 * unit(mix(h))) as u64)
    }

    /// Deterministic jitter for event-queue entry `seq` (used by
    /// [`crate::des::EventQueue`] robustness experiments).
    pub fn event_jitter(&self, seq: u64) -> SimTime {
        if self.cfg.delay_rate <= 0.0 {
            return SimTime::ZERO;
        }
        let h = mix(self.cfg.seed ^ TAG_EVENT ^ seq);
        if unit(h) >= self.cfg.delay_rate {
            return SimTime::ZERO;
        }
        SimTime::from_ps((self.cfg.max_delay.as_ps() as f64 * unit(mix(h))) as u64)
    }

    /// Fate of transmission attempt `attempt` of message `seq` from
    /// endpoint `from` to endpoint `to`. Keyed on the attempt number so a
    /// retransmission of a dropped message gets a fresh roll — without
    /// that, a bounded-retry protocol could never recover.
    pub fn message_outcome(&self, from: u64, to: u64, seq: u64, attempt: u32) -> MessageOutcome {
        if !self.cfg.perturbs_messages() {
            return MessageOutcome::Deliver;
        }
        let key = mix(self.cfg.seed ^ TAG_MESSAGE ^ mix(from ^ mix(to ^ mix(seq))))
            ^ mix(attempt as u64 ^ TAG_MESSAGE);
        let u = unit(key);
        if u < self.cfg.drop_rate {
            return MessageOutcome::Drop;
        }
        if u < self.cfg.drop_rate + self.cfg.corrupt_rate {
            let h = mix(key);
            // A zero mask would be a no-op corruption; force at least one
            // flipped bit.
            let xor = ((h >> 8) as u8) | 1;
            return MessageOutcome::Corrupt {
                offset: h % (1 << 24),
                xor,
            };
        }
        if u < self.cfg.drop_rate + self.cfg.corrupt_rate + self.cfg.delay_rate {
            let h = mix(key ^ TAG_FLIT);
            return MessageOutcome::Delay(SimTime::from_ps(
                (self.cfg.max_delay.as_ps() as f64 * unit(h)) as u64,
            ));
        }
        MessageOutcome::Deliver
    }

    /// Remaining stall time of `core` at instant `t` (zero if healthy).
    pub fn stall_remaining(&self, core: u8, t: SimTime) -> SimTime {
        self.cfg
            .stalls
            .iter()
            .filter(|s| s.core == core && t >= s.at && t < s.until())
            .map(|s| s.until().saturating_sub(t))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Earliest instant at or after `t` at which `core` can issue an
    /// operation (identity when the core is not stalled at `t`).
    pub fn stall_adjusted(&self, core: u8, t: SimTime) -> SimTime {
        t + self.stall_remaining(core, t)
    }

    /// The instant `core` fail-stops, if a kill is scheduled for it.
    /// Multiple kills of the same core collapse to the earliest.
    pub fn kill_time(&self, core: u8) -> Option<SimTime> {
        self.cfg
            .kills
            .iter()
            .filter(|k| k.core == core)
            .map(|k| k.at)
            .min()
    }

    /// Is `core` permanently dead at instant `t`?
    pub fn dead_at(&self, core: u8, t: SimTime) -> bool {
        self.kill_time(core).is_some_and(|k| k <= t)
    }

    /// Fold the first `probes` decisions of every family into one value —
    /// a compact fingerprint of the schedule for determinism checks.
    pub fn schedule_digest(&self, probes: u64) -> u64 {
        let mut acc = mix(self.cfg.seed);
        for (i, f) in self.link_factors.iter().enumerate() {
            acc = mix(acc ^ (i as u64) ^ f.to_bits());
        }
        for k in &self.cfg.kills {
            acc = mix(acc ^ k.core as u64 ^ mix(k.at.as_ps()));
        }
        for n in 0..probes {
            acc = mix(acc ^ self.flit_delay(n).as_ps());
            acc = mix(acc ^ self.event_jitter(n).as_ps());
            for attempt in 0..3 {
                let o = self.message_outcome(n % 7, (n + 1) % 11, n, attempt);
                let code = match o {
                    MessageOutcome::Deliver => 1,
                    MessageOutcome::Drop => 2,
                    MessageOutcome::Corrupt { offset, xor } => 3 ^ mix(offset ^ xor as u64),
                    MessageOutcome::Delay(d) => 5 ^ mix(d.as_ps()),
                };
                acc = mix(acc ^ code);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_rate: 0.2,
            corrupt_rate: 0.2,
            delay_rate: 0.2,
            degraded_links: 4,
            degrade_factor: 0.25,
            stalls: vec![CoreStall {
                core: 7,
                at: SimTime::from_ms(3),
                duration: SimTime::from_ms(10),
            }],
            ..FaultConfig::default()
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(lossy(42));
        let b = FaultPlan::new(lossy(42));
        assert_eq!(a.schedule_digest(256), b.schedule_digest(256));
        for n in 0..64 {
            assert_eq!(a.message_outcome(1, 2, n, 0), b.message_outcome(1, 2, n, 0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(lossy(1));
        let b = FaultPlan::new(lossy(2));
        assert_ne!(a.schedule_digest(256), b.schedule_digest(256));
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let p = FaultPlan::default();
        for n in 0..100 {
            assert_eq!(p.message_outcome(0, 1, n, 0), MessageOutcome::Deliver);
            assert_eq!(p.flit_delay(n), SimTime::ZERO);
            assert_eq!(p.event_jitter(n), SimTime::ZERO);
        }
        assert!(p.link_factors.iter().all(|&f| f == 1.0));
        assert_eq!(p.stall_remaining(0, SimTime::from_ms(1)), SimTime::ZERO);
    }

    #[test]
    fn outcome_rates_are_roughly_respected() {
        let p = FaultPlan::new(lossy(9));
        let mut drops = 0;
        let mut corrupts = 0;
        let mut delays = 0;
        let n = 10_000u64;
        for s in 0..n {
            match p.message_outcome(3, 4, s, 0) {
                MessageOutcome::Drop => drops += 1,
                MessageOutcome::Corrupt { xor, .. } => {
                    assert_ne!(xor, 0);
                    corrupts += 1;
                }
                MessageOutcome::Delay(d) => {
                    assert!(d <= p.config().max_delay);
                    delays += 1;
                }
                MessageOutcome::Deliver => {}
            }
        }
        for count in [drops, corrupts, delays] {
            let rate = count as f64 / n as f64;
            assert!((rate - 0.2).abs() < 0.03, "rate {rate} far from 0.2");
        }
    }

    #[test]
    fn retransmission_rolls_fresh_fate() {
        // With a 20% drop rate some first attempts drop, but virtually no
        // message drops on all of 4 attempts.
        let p = FaultPlan::new(lossy(5));
        let mut first_drops = 0;
        let mut all_drops = 0;
        for s in 0..2_000u64 {
            if p.message_outcome(0, 1, s, 0) == MessageOutcome::Drop {
                first_drops += 1;
            }
            if (0..4).all(|a| p.message_outcome(0, 1, s, a) == MessageOutcome::Drop) {
                all_drops += 1;
            }
        }
        assert!(first_drops > 200);
        assert!(all_drops <= 2, "budget-4 retry should almost never fail");
    }

    #[test]
    fn degraded_links_counted_and_bounded() {
        let p = FaultPlan::new(lossy(11));
        let degraded: Vec<f64> = p
            .link_factors
            .iter()
            .copied()
            .filter(|&f| f < 1.0)
            .collect();
        assert_eq!(degraded.len(), 4);
        assert!(degraded.iter().all(|&f| (f - 0.25).abs() < 1e-12));
    }

    #[test]
    fn stall_window_arithmetic() {
        let p = FaultPlan::new(lossy(3));
        // Outside the window: identity.
        assert_eq!(
            p.stall_adjusted(7, SimTime::from_ms(1)),
            SimTime::from_ms(1)
        );
        assert_eq!(
            p.stall_adjusted(7, SimTime::from_ms(20)),
            SimTime::from_ms(20)
        );
        // Inside: pushed to the end of the window.
        assert_eq!(
            p.stall_adjusted(7, SimTime::from_ms(5)),
            SimTime::from_ms(13)
        );
        assert_eq!(
            p.stall_remaining(7, SimTime::from_ms(3)),
            SimTime::from_ms(10)
        );
        // Other cores are unaffected.
        assert_eq!(p.stall_remaining(6, SimTime::from_ms(5)), SimTime::ZERO);
    }

    #[test]
    fn permanent_stall_saturates() {
        let s = CoreStall {
            core: 0,
            at: SimTime::from_ms(1),
            duration: SimTime::MAX,
        };
        assert_eq!(s.until(), SimTime::MAX);
    }

    #[test]
    fn kill_queries() {
        let p = FaultPlan::new(FaultConfig {
            kills: vec![
                CoreKill {
                    core: 9,
                    at: SimTime::from_ms(4),
                },
                CoreKill {
                    core: 9,
                    at: SimTime::from_ms(2),
                },
            ],
            ..FaultConfig::default()
        });
        // Earliest kill wins.
        assert_eq!(p.kill_time(9), Some(SimTime::from_ms(2)));
        assert_eq!(p.kill_time(8), None);
        assert!(!p.dead_at(9, SimTime::from_ms(1)));
        assert!(p.dead_at(9, SimTime::from_ms(2)));
        assert!(p.dead_at(9, SimTime::from_secs(100)));
        assert!(!p.dead_at(8, SimTime::from_secs(100)));
        // Kills never interfere with the transient-stall arithmetic.
        assert_eq!(p.stall_remaining(9, SimTime::from_ms(3)), SimTime::ZERO);
    }

    #[test]
    fn kills_enter_the_schedule_digest() {
        let quiet = FaultPlan::default();
        let killed = FaultPlan::new(FaultConfig {
            kills: vec![CoreKill {
                core: 3,
                at: SimTime::from_ms(1),
            }],
            ..FaultConfig::default()
        });
        assert_ne!(quiet.schedule_digest(16), killed.schedule_digest(16));
    }
}
