//! Time-bucketed capacity booking for contended resources.
//!
//! The pipeline runner computes stage timelines frame-by-frame, so
//! requests reach a shared resource (memory controller, mesh link, host
//! link) out of virtual-time order: stage A's access at t=0.3 s may be
//! issued *after* stage B's access at t=1.2 s was already registered. A
//! naive `busy_until` FIFO would make the earlier request queue behind the
//! later one — nonsense. Instead each resource keeps a ledger of busy time
//! per fixed-width time bucket; a request books its service time into the
//! first buckets with spare capacity at or after its start time. Requests
//! only contend when they genuinely overlap in virtual time, regardless of
//! the order the simulator discovers them in, and results stay fully
//! deterministic.

use crate::time::SimTime;
use std::collections::HashMap;

/// A resource with 1 unit of capacity per unit time, tracked per bucket.
#[derive(Debug, Clone)]
pub struct BucketedResource {
    bucket_ps: u64,
    /// bucket index -> busy picoseconds already booked.
    used: HashMap<u64, u64>,
    total_busy_ps: u64,
    total_wait_ps: u64,
}

/// Outcome of one booking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Booking {
    /// When the booked service completes.
    pub completion: SimTime,
    /// Queueing delay versus an uncontended resource.
    pub wait: SimTime,
}

impl BucketedResource {
    /// `bucket` is the ledger granularity; contention is resolved at this
    /// resolution. 1 ms suits the macro pipeline's millisecond-scale
    /// transfers.
    pub fn new(bucket: SimTime) -> Self {
        assert!(!bucket.is_zero(), "zero bucket width");
        BucketedResource {
            bucket_ps: bucket.as_ps(),
            used: HashMap::new(),
            total_busy_ps: 0,
            total_wait_ps: 0,
        }
    }

    /// Book `service` of busy time starting no earlier than `start`.
    pub fn book(&mut self, start: SimTime, service: SimTime) -> Booking {
        if service.is_zero() {
            return Booking {
                completion: start,
                wait: SimTime::ZERO,
            };
        }
        let mut remaining = service.as_ps();
        let mut t = start.as_ps();
        let mut completion;
        // Cap the walk defensively; with sane configs a booking spans a
        // handful of buckets.
        loop {
            let b = t / self.bucket_ps;
            let bucket_start = b * self.bucket_ps;
            let bucket_end = bucket_start + self.bucket_ps;
            let used = self.used.entry(b).or_insert(0);
            // Earlier bookings occupy the bucket's head; this request can
            // run from whichever is later: its own arrival or the end of
            // the already-booked portion.
            let avail_from = (bucket_start + *used).max(t);
            if avail_from < bucket_end {
                let take = remaining.min(bucket_end - avail_from);
                *used += take;
                remaining -= take;
                completion = avail_from + take;
                if remaining == 0 {
                    break;
                }
            }
            t = bucket_end;
        }
        self.total_busy_ps += service.as_ps();
        let uncontended = start + service;
        let wait = SimTime::from_ps(completion).saturating_sub(uncontended);
        self.total_wait_ps += wait.as_ps();
        Booking {
            completion: SimTime::from_ps(completion),
            wait,
        }
    }

    /// Total service time booked.
    pub fn total_busy(&self) -> SimTime {
        SimTime::from_ps(self.total_busy_ps)
    }

    /// Total queueing delay across bookings.
    pub fn total_wait(&self) -> SimTime {
        SimTime::from_ps(self.total_wait_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res() -> BucketedResource {
        BucketedResource::new(SimTime::from_ms(1))
    }

    #[test]
    fn uncontended_booking_completes_immediately() {
        let mut r = res();
        let b = r.book(SimTime::from_ms(5), SimTime::from_us(200));
        assert_eq!(b.completion, SimTime::from_ms(5) + SimTime::from_us(200));
        assert_eq!(b.wait, SimTime::ZERO);
    }

    #[test]
    fn overlapping_bookings_contend() {
        let mut r = res();
        let t = SimTime::from_ms(10);
        let b1 = r.book(t, SimTime::from_us(600));
        let b2 = r.book(t, SimTime::from_us(600));
        assert_eq!(b1.wait, SimTime::ZERO);
        assert!(b2.wait > SimTime::ZERO, "second must queue");
        assert!(b2.completion > b1.completion);
    }

    #[test]
    fn disjoint_times_do_not_contend_regardless_of_issue_order() {
        // The whole point: a later-issued but earlier-timed request does
        // not queue behind a future booking.
        let mut r = res();
        r.book(SimTime::from_secs(1), SimTime::from_us(500));
        let early = r.book(SimTime::from_ms(1), SimTime::from_us(500));
        assert_eq!(early.wait, SimTime::ZERO);
        assert_eq!(
            early.completion,
            SimTime::from_ms(1) + SimTime::from_us(500)
        );
    }

    #[test]
    fn service_spanning_buckets() {
        let mut r = res();
        let b = r.book(SimTime::ZERO, SimTime::from_ms(3) + SimTime::from_us(500));
        assert_eq!(b.completion, SimTime::from_ms(3) + SimTime::from_us(500));
        assert_eq!(b.wait, SimTime::ZERO);
    }

    #[test]
    fn saturated_bucket_pushes_into_next() {
        let mut r = res();
        // Fill bucket 0 completely.
        r.book(SimTime::ZERO, SimTime::from_ms(1));
        let b = r.book(SimTime::ZERO, SimTime::from_us(100));
        // Must land in bucket 1.
        assert!(b.completion > SimTime::from_ms(1));
        assert!(b.completion <= SimTime::from_ms(1) + SimTime::from_us(100) + SimTime::from_us(1));
    }

    #[test]
    fn zero_service_is_free() {
        let mut r = res();
        let b = r.book(SimTime::from_ms(7), SimTime::ZERO);
        assert_eq!(b.completion, SimTime::from_ms(7));
        assert_eq!(r.total_busy(), SimTime::ZERO);
    }

    #[test]
    fn totals_accumulate() {
        let mut r = res();
        r.book(SimTime::ZERO, SimTime::from_us(400));
        r.book(SimTime::ZERO, SimTime::from_us(400));
        assert_eq!(r.total_busy(), SimTime::from_us(800));
        assert_eq!(r.total_wait(), SimTime::from_us(400));
    }

    #[test]
    fn heavy_overlap_spreads_completions_fairly() {
        let mut r = res();
        let mut completions: Vec<SimTime> = (0..10)
            .map(|_| r.book(SimTime::ZERO, SimTime::from_us(500)).completion)
            .collect();
        completions.sort();
        // 10 × 0.5 ms of work from t=0 finishes no earlier than 5 ms.
        assert!(*completions.last().unwrap() >= SimTime::from_ms(5));
        // Strictly increasing (each later booking queues further).
        for w in completions.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
