//! # scc-sim — a deterministic simulator of the Intel SCC many-core platform
//!
//! This crate is the hardware substrate for the reproduction of *"Parallel
//! Macro Pipelining on the Intel SCC Many-Core Computer"* (Süß et al.,
//! IPDPSW 2013). The real SCC is an experimental 48-core chip that no
//! longer exists outside museums, so everything the paper's evaluation
//! touches is modelled here:
//!
//! * [`topology`] — 24 tiles × 2 P54C cores on a 6×4 mesh, four DDR3
//!   memory controllers on the corners, XY routing;
//! * [`noc`] — per-link FIFO contention on the mesh;
//! * [`memctrl`] — bandwidth/latency queueing at the four controllers;
//! * [`cache`] — exact set-associative L1/L2 models plus the streaming
//!   analytic model (why Figure 12 shows no cache-size cliff);
//! * [`dvfs`] — per-tile frequency, per-island (2×2 tiles) voltage;
//! * [`power`] — analytic chip power calibrated to the paper's numbers;
//! * [`hostlink`] — the chunked MCPC↔SCC UDP/PCIe path;
//! * [`platform`] — the façade the macro-pipeline runner drives;
//! * [`des`]/[`time`] — the deterministic event queue and virtual clock.
//!
//! Nothing in this crate measures host time: identical inputs produce
//! identical virtual-time results on any machine.

pub mod bucket;
pub mod cache;
pub mod des;
pub mod dvfs;
pub mod fault;
pub mod hostlink;
pub mod memctrl;
pub mod noc;
pub mod platform;
pub mod power;
pub mod stats;
pub mod time;
pub mod topology;

pub use des::EventQueue;
pub use dvfs::{DvfsState, FreqMHz, IslandId};
pub use fault::{CoreKill, CoreStall, FaultConfig, FaultPlan, MessageOutcome};
pub use platform::{MemOp, SccConfig, SccPlatform, HEARTBEAT_BYTES};
pub use power::{PowerConfig, PowerMeter, PowerSample};
pub use time::SimTime;
pub use topology::{CoreId, McId, TileId, NUM_CORES, NUM_MCS, NUM_TILES};
