//! Chip power model and power-over-time tracing.
//!
//! The model is analytic, calibrated against every power number the paper
//! publishes (§II, §VI-B, §VI-D):
//!
//! * whole chip idle at 533 MHz / 1.1 V ≈ **22 W**;
//! * MCPC-render configuration with 27 pipeline cores ≈ **50 W**,
//!   n-renderer configuration with 43 cores ≈ **58 W** → a slope of about
//!   0.5 W per pipeline core at ~60 % average stage utilisation on top of
//!   a ~14 W "mesh + memory controllers active" uplift;
//! * raising one tile (and hence its 2×2-tile voltage island) from
//!   1.1 V to 1.3 V costs **4–5 W**; dropping an island to 0.7 V recovers
//!   most of it (Figure 17: ≈40 W all-533 vs ≈44 W blur\@800 vs ≈39 W
//!   with the downstream island at 400 MHz / 0.7 V).
//!
//! The decomposition: `P = uncore_idle + Σ_tiles router(V) +
//! Σ_cores [idle(V) + busy·dyn(f, V)] + uncore_active·[any core busy]`,
//! with an additional per-island static uplift `island_static(V)` that
//! captures the strong voltage dependence of leakage.

use crate::dvfs::{DvfsState, IslandId};
use crate::time::SimTime;
use crate::topology::{CoreId, TileId, NUM_CORES};
use serde::Serialize;

/// Nominal supply voltage (533 MHz operating point).
pub const V_NOM: f64 = 1.1;
/// Nominal frequency in MHz.
pub const F_NOM: f64 = 533.0;

/// Calibration constants for the analytic model. All values in watts.
#[derive(Debug, Clone, Serialize)]
pub struct PowerConfig {
    /// Fixed uncore power (clock distribution, I/O, MCs idling).
    pub uncore_idle: f64,
    /// Additional uncore power while at least one core is busy
    /// (mesh traffic, memory controllers out of power-down).
    pub uncore_active: f64,
    /// Per-tile router power at nominal voltage.
    pub router_nom: f64,
    /// Per-core idle (clock + leakage) power at nominal voltage.
    pub core_idle_nom: f64,
    /// Per-core dynamic power when busy at the nominal operating point.
    pub core_dyn_nom: f64,
    /// Per-island static uplift coefficient: `k * ((V/V_nom)^2 - 1)` watts
    /// is added per island, capturing voltage-dependent leakage of the
    /// whole island.
    pub island_static_k: f64,
    /// Fraction of the dynamic power a *participating* core burns while
    /// spin-waiting for input. RCCE receives poll MPB flags in a tight
    /// loop, so an idle pipeline stage is far from quiescent — this is
    /// why the paper measures power rising linearly with the number of
    /// pipelines even though most stages mostly wait (Figures 14/15).
    pub spin_factor: f64,
    /// Floor on total chip power. The island-static term is a *delta*
    /// model calibrated around the nominal 1.1 V point; undervolting the
    /// whole die would otherwise extrapolate it below physical reality
    /// (I/O, PLLs and the always-on mesh keep the SCC in the teens of
    /// watts even fully undervolted).
    pub min_chip_power: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            uncore_idle: 5.2,
            uncore_active: 14.0,
            router_nom: 0.4,
            core_idle_nom: 0.15,
            core_dyn_nom: 0.85,
            island_static_k: 6.0,
            spin_factor: 0.4,
            min_chip_power: 14.0,
        }
    }
}

impl PowerConfig {
    fn vratio2(v: f64) -> f64 {
        (v / V_NOM) * (v / V_NOM)
    }

    /// Idle power of one core at supply voltage `v`.
    pub fn core_idle(&self, v: f64) -> f64 {
        self.core_idle_nom * Self::vratio2(v)
    }

    /// Additional dynamic power of a busy core at `f_mhz` / `v`.
    pub fn core_dyn(&self, f_mhz: f64, v: f64) -> f64 {
        self.core_dyn_nom * (f_mhz / F_NOM) * Self::vratio2(v)
    }

    /// Router power of one tile at island voltage `v`.
    pub fn router(&self, v: f64) -> f64 {
        self.router_nom * Self::vratio2(v)
    }

    /// Per-island static uplift (can be negative for undervolted islands).
    pub fn island_static(&self, v: f64) -> f64 {
        self.island_static_k * (Self::vratio2(v) - 1.0)
    }

    /// Instantaneous chip power for a given DVFS state and set of busy
    /// cores (`busy[i]` = core `i` currently executing stage work).
    pub fn chip_power(&self, dvfs: &DvfsState, busy: &[bool]) -> f64 {
        debug_assert_eq!(busy.len(), NUM_CORES as usize);
        let mut p = self.uncore_idle;
        let any_busy = busy.iter().any(|&b| b);
        if any_busy {
            p += self.uncore_active;
        }
        for island in IslandId::all() {
            let v = dvfs.island_volts(island);
            p += self.island_static(v);
        }
        for tile in TileId::all() {
            let v = dvfs.island_volts(IslandId::of_tile(tile));
            p += self.router(v);
        }
        for core in CoreId::all() {
            let v = dvfs.core_volts(core);
            p += self.core_idle(v);
            if busy[core.index()] {
                p += self.core_dyn(dvfs.core_freq(core).mhz() as f64, v);
            }
        }
        p.max(self.min_chip_power)
    }

    /// Chip idle power (nothing busy) — ≈22 W at the default state.
    pub fn idle_power(&self, dvfs: &DvfsState) -> f64 {
        self.chip_power(dvfs, &[false; NUM_CORES as usize])
    }
}

/// A busy interval of one core, recorded by the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusySpan {
    pub core: CoreId,
    pub from: SimTime,
    pub to: SimTime,
}

/// Collects busy spans during a simulation and renders them into a power
/// trace / energy total afterwards.
#[derive(Debug, Default)]
pub struct PowerMeter {
    spans: Vec<BusySpan>,
    /// Cores participating in the run: they spin-wait (at
    /// `PowerConfig::spin_factor` of their dynamic power) whenever they
    /// are not busy.
    spinning: Vec<CoreId>,
}

/// One sample of the rendered power trace.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PowerSample {
    pub t: SimTime,
    pub watts: f64,
}

impl PowerMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `core` was busy during `[from, to)`.
    pub fn record(&mut self, core: CoreId, from: SimTime, to: SimTime) {
        if to > from {
            self.spans.push(BusySpan { core, from, to });
        }
    }

    /// Declare which cores participate in the run (and therefore
    /// spin-wait whenever they are not busy).
    pub fn set_spinning(&mut self, cores: Vec<CoreId>) {
        self.spinning = cores;
    }

    pub fn spinning(&self) -> &[CoreId] {
        &self.spinning
    }

    pub fn spans(&self) -> &[BusySpan] {
        &self.spans
    }

    /// Total busy time of one core.
    pub fn busy_time(&self, core: CoreId) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.core == core)
            .map(|s| s.to - s.from)
            .sum()
    }

    /// Render the trace by sampling every `dt` from 0 to `end`.
    ///
    /// Within one `dt` bucket each core contributes its busy *fraction*, so
    /// the sample is the average power over the bucket — which is what a
    /// real power meter reports.
    pub fn trace(
        &self,
        cfg: &PowerConfig,
        dvfs: &DvfsState,
        end: SimTime,
        dt: SimTime,
    ) -> Vec<PowerSample> {
        assert!(!dt.is_zero(), "zero sample interval");
        // Per-core busy time per bucket.
        let buckets = (end.as_ps().div_ceil(dt.as_ps())).max(1) as usize;
        let mut busy_ps = vec![[0u64; NUM_CORES as usize]; buckets];
        for s in &self.spans {
            let mut t = s.from;
            while t < s.to {
                let b = (t.as_ps() / dt.as_ps()) as usize;
                if b >= buckets {
                    break;
                }
                let bucket_end = SimTime::from_ps((b as u64 + 1) * dt.as_ps());
                let seg_end = s.to.min(bucket_end);
                busy_ps[b][s.core.index()] += (seg_end - t).as_ps();
                t = seg_end;
            }
        }
        // Precompute the two extreme chip powers per core-busy pattern is
        // exponential; instead compose the sample from the model's linear
        // structure: idle chip + per-core dynamic * busy_fraction +
        // uncore_active * (any busy fraction, approximated by the max core
        // fraction in the bucket).
        let idle = cfg.idle_power(dvfs);
        let mut is_spinning = [false; NUM_CORES as usize];
        for c in &self.spinning {
            is_spinning[c.index()] = true;
        }
        let mut out = Vec::with_capacity(buckets);
        for (b, per_core) in busy_ps.iter().enumerate() {
            let mut watts = idle;
            let mut max_frac = 0.0f64;
            for core in CoreId::all() {
                let frac = (per_core[core.index()] as f64 / dt.as_ps() as f64).min(1.0);
                let v = dvfs.core_volts(core);
                let f = dvfs.core_freq(core).mhz() as f64;
                let dyn_w = cfg.core_dyn(f, v);
                if frac > 0.0 {
                    watts += dyn_w * frac;
                    max_frac = max_frac.max(frac);
                }
                if is_spinning[core.index()] {
                    watts += dyn_w * cfg.spin_factor * (1.0 - frac);
                    max_frac = 1.0;
                }
            }
            watts += cfg.uncore_active * max_frac.min(1.0);
            out.push(PowerSample {
                t: SimTime::from_ps(b as u64 * dt.as_ps()),
                watts,
            });
        }
        out
    }

    /// Total energy in joules over `[0, end]`, integrating exactly over the
    /// recorded spans (not the sampled trace).
    pub fn energy_joules(&self, cfg: &PowerConfig, dvfs: &DvfsState, end: SimTime) -> f64 {
        let idle = cfg.idle_power(dvfs);
        let mut joules = idle * end.as_secs_f64();
        for s in &self.spans {
            let dur = (s.to.min(end)).saturating_sub(s.from).as_secs_f64();
            let v = dvfs.core_volts(s.core);
            let f = dvfs.core_freq(s.core).mhz() as f64;
            // A spinning core's busy time upgrades it from spin power to
            // full dynamic power; charge the difference here and the spin
            // floor below.
            let spin = if self.spinning.contains(&s.core) {
                cfg.spin_factor
            } else {
                0.0
            };
            joules += cfg.core_dyn(f, v) * dur * (1.0 - spin);
        }
        for core in &self.spinning {
            let v = dvfs.core_volts(*core);
            let f = dvfs.core_freq(*core).mhz() as f64;
            joules += cfg.core_dyn(f, v) * cfg.spin_factor * end.as_secs_f64();
        }
        // Uncore-active term: spinning cores keep the mesh awake for the
        // whole run; otherwise integrate over the union of busy spans.
        if self.spinning.is_empty() {
            joules += cfg.uncore_active * self.union_busy_time(end).as_secs_f64();
        } else {
            joules += cfg.uncore_active * end.as_secs_f64();
        }
        joules
    }

    /// Energy in joules over the window `[from, to)` with the chip held
    /// in one DVFS state — the building block of the piecewise
    /// (governed) accounting. `energy_in_window(cfg, dvfs, 0, end)` is
    /// arithmetic-identical to [`PowerMeter::energy_joules`].
    pub fn energy_in_window(
        &self,
        cfg: &PowerConfig,
        dvfs: &DvfsState,
        from: SimTime,
        to: SimTime,
    ) -> f64 {
        if to <= from {
            return 0.0;
        }
        let dur = (to - from).as_secs_f64();
        let mut joules = cfg.idle_power(dvfs) * dur;
        for s in &self.spans {
            let a = s.from.max(from);
            let b = s.to.min(to);
            if b <= a {
                continue;
            }
            let v = dvfs.core_volts(s.core);
            let f = dvfs.core_freq(s.core).mhz() as f64;
            let spin = if self.spinning.contains(&s.core) {
                cfg.spin_factor
            } else {
                0.0
            };
            joules += cfg.core_dyn(f, v) * (b - a).as_secs_f64() * (1.0 - spin);
        }
        for core in &self.spinning {
            let v = dvfs.core_volts(*core);
            let f = dvfs.core_freq(*core).mhz() as f64;
            joules += cfg.core_dyn(f, v) * cfg.spin_factor * dur;
        }
        if self.spinning.is_empty() {
            joules += cfg.uncore_active * self.union_busy_in(from, to).as_secs_f64();
        } else {
            joules += cfg.uncore_active * dur;
        }
        joules
    }

    /// Total energy over `[0, end]` under a piecewise-constant DVFS
    /// schedule: `schedule[k]` = (instant the state takes effect, state),
    /// sorted by instant with the first entry at 0. This is how a
    /// governed run integrates energy — the chip is in exactly one state
    /// at any instant, and each segment is an exact span integral.
    pub fn energy_joules_piecewise(
        &self,
        cfg: &PowerConfig,
        schedule: &[(SimTime, DvfsState)],
        end: SimTime,
    ) -> f64 {
        assert!(!schedule.is_empty(), "empty DVFS schedule");
        assert!(schedule[0].0.is_zero(), "schedule must start at t=0");
        let mut joules = 0.0;
        for (k, (from, dvfs)) in schedule.iter().enumerate() {
            let to = schedule.get(k + 1).map_or(end, |(t, _)| *t).min(end);
            joules += self.energy_in_window(cfg, dvfs, *from, to);
        }
        joules
    }

    /// [`PowerMeter::trace`] under a piecewise-constant DVFS schedule:
    /// each `dt` bucket is rendered against the state in effect at the
    /// bucket's start.
    pub fn trace_piecewise(
        &self,
        cfg: &PowerConfig,
        schedule: &[(SimTime, DvfsState)],
        end: SimTime,
        dt: SimTime,
    ) -> Vec<PowerSample> {
        assert!(!schedule.is_empty(), "empty DVFS schedule");
        assert!(!dt.is_zero(), "zero sample interval");
        let buckets = (end.as_ps().div_ceil(dt.as_ps())).max(1) as usize;
        let mut busy_ps = vec![[0u64; NUM_CORES as usize]; buckets];
        for s in &self.spans {
            let mut t = s.from;
            while t < s.to {
                let b = (t.as_ps() / dt.as_ps()) as usize;
                if b >= buckets {
                    break;
                }
                let bucket_end = SimTime::from_ps((b as u64 + 1) * dt.as_ps());
                let seg_end = s.to.min(bucket_end);
                busy_ps[b][s.core.index()] += (seg_end - t).as_ps();
                t = seg_end;
            }
        }
        let mut is_spinning = [false; NUM_CORES as usize];
        for c in &self.spinning {
            is_spinning[c.index()] = true;
        }
        let mut out = Vec::with_capacity(buckets);
        for (b, per_core) in busy_ps.iter().enumerate() {
            let t = SimTime::from_ps(b as u64 * dt.as_ps());
            let dvfs = &schedule
                .iter()
                .rev()
                .find(|(at, _)| *at <= t)
                .unwrap_or(&schedule[0])
                .1;
            let idle = cfg.idle_power(dvfs);
            let mut watts = idle;
            let mut max_frac = 0.0f64;
            for core in CoreId::all() {
                let frac = (per_core[core.index()] as f64 / dt.as_ps() as f64).min(1.0);
                let v = dvfs.core_volts(core);
                let f = dvfs.core_freq(core).mhz() as f64;
                let dyn_w = cfg.core_dyn(f, v);
                if frac > 0.0 {
                    watts += dyn_w * frac;
                    max_frac = max_frac.max(frac);
                }
                if is_spinning[core.index()] {
                    watts += dyn_w * cfg.spin_factor * (1.0 - frac);
                    max_frac = 1.0;
                }
            }
            watts += cfg.uncore_active * max_frac.min(1.0);
            out.push(PowerSample { t, watts });
        }
        out
    }

    /// Length of the union of all busy intervals clipped to `[from, to]`.
    fn union_busy_in(&self, from: SimTime, to: SimTime) -> SimTime {
        let mut intervals: Vec<(SimTime, SimTime)> = self
            .spans
            .iter()
            .map(|s| (s.from.max(from).min(to), s.to.max(from).min(to)))
            .filter(|(a, b)| b > a)
            .collect();
        intervals.sort();
        let mut total = SimTime::ZERO;
        let mut cur: Option<(SimTime, SimTime)> = None;
        for (a, b) in intervals {
            match cur {
                None => cur = Some((a, b)),
                Some((ca, cb)) => {
                    if a <= cb {
                        cur = Some((ca, cb.max(b)));
                    } else {
                        total += cb - ca;
                        cur = Some((a, b));
                    }
                }
            }
        }
        if let Some((ca, cb)) = cur {
            total += cb - ca;
        }
        total
    }

    /// Length of the union of all busy intervals clipped to `[0, end]`.
    pub fn union_busy_time(&self, end: SimTime) -> SimTime {
        let mut intervals: Vec<(SimTime, SimTime)> = self
            .spans
            .iter()
            .map(|s| (s.from.min(end), s.to.min(end)))
            .filter(|(a, b)| b > a)
            .collect();
        intervals.sort();
        let mut total = SimTime::ZERO;
        let mut cur: Option<(SimTime, SimTime)> = None;
        for (a, b) in intervals {
            match cur {
                None => cur = Some((a, b)),
                Some((ca, cb)) => {
                    if a <= cb {
                        cur = Some((ca, cb.max(b)));
                    } else {
                        total += cb - ca;
                        cur = Some((a, b));
                    }
                }
            }
        }
        if let Some((ca, cb)) = cur {
            total += cb - ca;
        }
        total
    }
}

/// The paper's MCPC (Xeon X3440 host) power figures: 52 W idle, 80 W while
/// rendering (§II, §VI-B).
#[derive(Debug, Clone, Serialize)]
pub struct McpcPower {
    pub idle: f64,
    pub rendering: f64,
}

impl Default for McpcPower {
    fn default() -> Self {
        McpcPower {
            idle: 52.0,
            rendering: 80.0,
        }
    }
}

impl McpcPower {
    /// Incremental power of the render work itself.
    pub fn render_delta(&self) -> f64 {
        self.rendering - self.idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::FreqMHz;

    #[test]
    fn idle_chip_is_about_22_watts() {
        let cfg = PowerConfig::default();
        let idle = cfg.idle_power(&DvfsState::default());
        assert!(
            (idle - 22.0).abs() < 0.5,
            "idle power {idle:.2} W should calibrate to ~22 W"
        );
    }

    #[test]
    fn busy_cores_add_power_linearly() {
        let cfg = PowerConfig::default();
        let dvfs = DvfsState::default();
        let mut busy = [false; NUM_CORES as usize];
        let p0 = cfg.chip_power(&dvfs, &busy);
        busy[0] = true;
        let p1 = cfg.chip_power(&dvfs, &busy);
        busy[1] = true;
        let p2 = cfg.chip_power(&dvfs, &busy);
        // First busy core pays the uncore-active uplift; the second only
        // its own dynamic power.
        assert!((p1 - p0 - cfg.uncore_active - cfg.core_dyn_nom).abs() < 1e-9);
        assert!((p2 - p1 - cfg.core_dyn_nom).abs() < 1e-9);
    }

    #[test]
    fn raising_an_island_costs_about_four_watts() {
        let cfg = PowerConfig::default();
        let mut busy = [false; NUM_CORES as usize];
        busy[8] = true; // the "blur" core, tile 4, island 2
        let base = cfg.chip_power(&DvfsState::default(), &busy);
        let mut dvfs = DvfsState::default();
        dvfs.set_core_tile(CoreId::new(8), FreqMHz::F800);
        let raised = cfg.chip_power(&dvfs, &busy);
        let delta = raised - base;
        assert!(
            (3.0..6.0).contains(&delta),
            "island uplift {delta:.2} W should land in the paper's 4-5 W band"
        );
    }

    #[test]
    fn undervolting_an_island_saves_power() {
        let cfg = PowerConfig::default();
        let busy = [false; NUM_CORES as usize];
        let base = cfg.chip_power(&DvfsState::default(), &busy);
        let mut dvfs = DvfsState::default();
        for t in IslandId::new(0).tiles() {
            dvfs.set_tile(t, FreqMHz::F400);
        }
        let lowered = cfg.chip_power(&dvfs, &busy);
        assert!(
            lowered < base - 2.0,
            "0.7 V island should save several watts"
        );
    }

    #[test]
    fn meter_energy_matches_hand_computation() {
        let cfg = PowerConfig::default();
        let dvfs = DvfsState::default();
        let mut m = PowerMeter::new();
        // One core busy for the first half of a 10 s run.
        m.record(CoreId::new(0), SimTime::ZERO, SimTime::from_secs(5));
        let e = m.energy_joules(&cfg, &dvfs, SimTime::from_secs(10));
        let idle = cfg.idle_power(&dvfs);
        let expect = idle * 10.0 + (cfg.core_dyn_nom + cfg.uncore_active) * 5.0;
        assert!((e - expect).abs() < 1e-6, "{e} vs {expect}");
    }

    #[test]
    fn union_busy_time_merges_overlaps() {
        let mut m = PowerMeter::new();
        m.record(CoreId::new(0), SimTime::from_secs(1), SimTime::from_secs(4));
        m.record(CoreId::new(1), SimTime::from_secs(2), SimTime::from_secs(6));
        m.record(CoreId::new(2), SimTime::from_secs(8), SimTime::from_secs(9));
        assert_eq!(
            m.union_busy_time(SimTime::from_secs(10)),
            SimTime::from_secs(6)
        );
        // Clipping at end.
        assert_eq!(
            m.union_busy_time(SimTime::from_secs(5)),
            SimTime::from_secs(4)
        );
    }

    #[test]
    fn trace_reflects_busy_fraction() {
        let cfg = PowerConfig::default();
        let dvfs = DvfsState::default();
        let mut m = PowerMeter::new();
        // Busy exactly during the second 1 s bucket.
        m.record(CoreId::new(3), SimTime::from_secs(1), SimTime::from_secs(2));
        let trace = m.trace(&cfg, &dvfs, SimTime::from_secs(3), SimTime::from_secs(1));
        assert_eq!(trace.len(), 3);
        let idle = cfg.idle_power(&dvfs);
        assert!((trace[0].watts - idle).abs() < 1e-9);
        assert!(trace[1].watts > idle + cfg.uncore_active * 0.9);
        assert!((trace[2].watts - idle).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_reports_zero_busy() {
        let m = PowerMeter::new();
        assert_eq!(m.busy_time(CoreId::new(0)), SimTime::ZERO);
        assert_eq!(m.union_busy_time(SimTime::from_secs(1)), SimTime::ZERO);
    }

    #[test]
    fn mcpc_power_defaults() {
        let m = McpcPower::default();
        assert_eq!(m.render_delta(), 28.0, "paper's 80 W - 52 W");
    }

    fn busy_meter() -> PowerMeter {
        let mut m = PowerMeter::new();
        m.record(CoreId::new(0), SimTime::from_secs(1), SimTime::from_secs(4));
        m.record(CoreId::new(8), SimTime::from_secs(2), SimTime::from_secs(9));
        m.set_spinning(vec![CoreId::new(0), CoreId::new(8), CoreId::new(9)]);
        m
    }

    #[test]
    fn single_state_piecewise_matches_legacy_integral() {
        let cfg = PowerConfig::default();
        let dvfs = DvfsState::default();
        let m = busy_meter();
        let end = SimTime::from_secs(10);
        let legacy = m.energy_joules(&cfg, &dvfs, end);
        let windowed = m.energy_in_window(&cfg, &dvfs, SimTime::ZERO, end);
        let piecewise = m.energy_joules_piecewise(&cfg, &[(SimTime::ZERO, dvfs)], end);
        assert!((legacy - windowed).abs() < 1e-9, "{legacy} vs {windowed}");
        assert!((legacy - piecewise).abs() < 1e-9, "{legacy} vs {piecewise}");
    }

    #[test]
    fn windows_partition_the_run() {
        let cfg = PowerConfig::default();
        let dvfs = DvfsState::default();
        let m = busy_meter();
        let end = SimTime::from_secs(10);
        let total = m.energy_in_window(&cfg, &dvfs, SimTime::ZERO, end);
        let split = m.energy_in_window(&cfg, &dvfs, SimTime::ZERO, SimTime::from_secs(3))
            + m.energy_in_window(&cfg, &dvfs, SimTime::from_secs(3), SimTime::from_secs(7))
            + m.energy_in_window(&cfg, &dvfs, SimTime::from_secs(7), end);
        assert!((total - split).abs() < 1e-9, "{total} vs {split}");
    }

    #[test]
    fn piecewise_energy_lands_between_the_pure_states() {
        let cfg = PowerConfig::default();
        let low = DvfsState::default();
        let mut high = DvfsState::default();
        high.set_core_tile(CoreId::new(8), FreqMHz::F800);
        let m = busy_meter();
        let end = SimTime::from_secs(10);
        let e_low = m.energy_joules(&cfg, &low, end);
        let e_high = m.energy_joules(&cfg, &high, end);
        let mixed = m.energy_joules_piecewise(
            &cfg,
            &[(SimTime::ZERO, low), (SimTime::from_secs(5), high)],
            end,
        );
        assert!(
            e_low < mixed && mixed < e_high,
            "{e_low} < {mixed} < {e_high}"
        );
    }

    #[test]
    fn piecewise_trace_switches_floor_at_the_boundary() {
        let cfg = PowerConfig::default();
        let low = DvfsState::default();
        let mut high = DvfsState::default();
        high.set_core_tile(CoreId::new(8), FreqMHz::F800);
        let m = PowerMeter::new();
        let schedule = [(SimTime::ZERO, low.clone()), (SimTime::from_secs(2), high.clone())];
        let trace = m.trace_piecewise(&cfg, &schedule, SimTime::from_secs(4), SimTime::from_secs(1));
        assert_eq!(trace.len(), 4);
        let idle_low = cfg.idle_power(&low);
        let idle_high = cfg.idle_power(&high);
        assert!((trace[0].watts - idle_low).abs() < 1e-9);
        assert!((trace[3].watts - idle_high).abs() < 1e-9);
        assert!(idle_high > idle_low + 3.0, "1.3 V island uplift visible");
    }
}
