//! Small statistics helpers used by the measurement code: exact quantiles
//! over collected samples (for the Figure 15 idle-time box plot) and a
//! simple online mean.

use crate::time::SimTime;
use serde::Serialize;

/// Median and quartiles of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Quartiles {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

/// Linear-interpolation quantile (type 7, the R/NumPy default).
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl Quartiles {
    pub fn from_samples(samples: &[f64]) -> Option<Quartiles> {
        if samples.is_empty() {
            return None;
        }
        let mut s: Vec<f64> = samples.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        Some(Quartiles {
            min: s[0],
            q1: quantile(&s, 0.25),
            median: quantile(&s, 0.5),
            q3: quantile(&s, 0.75),
            max: s[s.len() - 1],
        })
    }

    pub fn from_times(samples: &[SimTime]) -> Option<Quartiles> {
        let ms: Vec<f64> = samples.iter().map(|t| t.as_millis_f64()).collect();
        Quartiles::from_samples(&ms)
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Incremental mean/extremes accumulator.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Running {
    pub n: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Running {
    pub fn push(&mut self, x: f64) {
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        self.sum += x;
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_known_set() {
        let q = Quartiles::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!(q.min, 1.0);
        assert_eq!(q.max, 5.0);
        assert_eq!(q.iqr(), 2.0);
    }

    #[test]
    fn quartiles_interpolate() {
        let q = Quartiles::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((q.median - 2.5).abs() < 1e-12);
        assert!((q.q1 - 1.75).abs() < 1e-12);
        assert!((q.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn quartiles_unsorted_input() {
        let q = Quartiles::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(q.median, 3.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Quartiles::from_samples(&[]).is_none());
        let q = Quartiles::from_samples(&[7.0]).unwrap();
        assert_eq!(q.min, 7.0);
        assert_eq!(q.q1, 7.0);
        assert_eq!(q.max, 7.0);
    }

    #[test]
    fn from_times_converts_to_millis() {
        let q = Quartiles::from_times(&[SimTime::from_ms(10), SimTime::from_ms(20)]).unwrap();
        assert!((q.median - 15.0).abs() < 1e-9);
    }

    #[test]
    fn running_tracks_mean_and_extremes() {
        let mut r = Running::default();
        assert_eq!(r.mean(), 0.0);
        for x in [2.0, 4.0, 6.0] {
            r.push(x);
        }
        assert_eq!(r.mean(), 4.0);
        assert_eq!(r.min, 2.0);
        assert_eq!(r.max, 6.0);
        assert_eq!(r.n, 3);
    }
}

/// Fixed-bin histogram over a closed value range; out-of-range samples
/// clamp to the edge bins.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo, "empty range");
        assert!(bins >= 1, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    pub fn push(&mut self, x: f64) {
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * self.bins.len() as f64) as isize).clamp(0, self.bins.len() as isize - 1)
            as usize;
        self.bins[idx] += 1;
        self.total += 1;
    }

    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Centre value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// The fullest bin, if any samples were recorded.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.bins
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn samples_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.5);
        h.push(5.5);
        h.push(5.6);
        h.push(9.9);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[5], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.mode_bin(), Some(5));
        assert!((h.bin_center(5) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-5.0);
        h.push(99.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[3], 1);
    }

    #[test]
    fn empty_histogram_has_no_mode() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.mode_bin(), None);
        assert_eq!(h.total(), 0);
    }
}
