//! Off-chip link between the MCPC host and the SCC (PCIe carrying the
//! UDP stream the paper uses in its third scenario).
//!
//! Frames do not fit the driver's send/receive buffers, so the paper splits
//! each image into sub-images sent back-to-back (§VI-A, Figure 12's curve is
//! attributed to exactly this chunking overhead). The model reflects that:
//! a transfer of `n` bytes is `ceil(n / packet_bytes)` packets, each paying
//! a fixed protocol overhead, serialised over a bandwidth-limited FIFO.

use crate::bucket::BucketedResource;
use crate::time::SimTime;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct HostLinkConfig {
    /// Sustained payload bandwidth, bytes/second.
    pub bandwidth: u64,
    /// Maximum payload carried per packet (driver buffer size).
    pub packet_bytes: u64,
    /// Fixed cost per packet (syscall, UDP/IP header handling, PCIe
    /// doorbell).
    pub packet_overhead: SimTime,
    /// Contention-resolution granularity.
    pub bucket: SimTime,
}

impl Default for HostLinkConfig {
    fn default() -> Self {
        HostLinkConfig {
            // eMAC/PCIe path to the SCC sustains on the order of 60 MB/s
            // for UDP payload traffic.
            bandwidth: 60_000_000,
            packet_bytes: 8 * 1024,
            packet_overhead: SimTime::from_us(30),
            bucket: SimTime::from_ms(1),
        }
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct HostLinkStats {
    pub transfers: u64,
    pub packets: u64,
    pub bytes: u64,
    pub wait_ps: u64,
}

/// Serialised host link (time-bucketed capacity).
#[derive(Debug)]
pub struct HostLink {
    cfg: HostLinkConfig,
    res: BucketedResource,
    stats: HostLinkStats,
}

impl HostLink {
    pub fn new(cfg: HostLinkConfig) -> Self {
        HostLink {
            res: BucketedResource::new(cfg.bucket),
            cfg,
            stats: HostLinkStats::default(),
        }
    }

    pub fn config(&self) -> &HostLinkConfig {
        &self.cfg
    }

    /// Duration of an uncontended transfer of `bytes`.
    pub fn uncontended(&self, bytes: u64) -> SimTime {
        let packets = bytes.div_ceil(self.cfg.packet_bytes).max(1);
        self.cfg.packet_overhead * packets
            + SimTime::from_bytes_at(bytes.max(1), self.cfg.bandwidth)
    }

    /// Push `bytes` through the link starting no earlier than `now`;
    /// returns the arrival time of the last packet.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let dur = self.uncontended(bytes);
        let booking = self.res.book(now, dur);
        self.stats.transfers += 1;
        self.stats.packets += bytes.div_ceil(self.cfg.packet_bytes).max(1);
        self.stats.bytes += bytes;
        self.stats.wait_ps += booking.wait.as_ps();
        booking.completion
    }

    pub fn stats(&self) -> HostLinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HostLinkConfig {
        HostLinkConfig {
            bandwidth: 1_000_000, // 1 MB/s
            packet_bytes: 1000,
            packet_overhead: SimTime::from_us(10),
            bucket: SimTime::from_ms(1),
        }
    }

    #[test]
    fn packetisation_overhead() {
        let link = HostLink::new(cfg());
        // 2500 bytes -> 3 packets -> 30 us overhead + 2.5 ms payload.
        let t = link.uncontended(2500);
        assert_eq!(t, SimTime::from_us(30) + SimTime::from_us(2500));
        // Tiny message still pays one packet.
        assert_eq!(
            link.uncontended(1),
            SimTime::from_us(10) + SimTime::from_us(1)
        );
    }

    #[test]
    fn fifo_serialisation() {
        let mut link = HostLink::new(cfg());
        let t1 = link.transfer(SimTime::ZERO, 1000);
        let t2 = link.transfer(SimTime::ZERO, 1000);
        assert_eq!(t2, t1 * 2);
        assert!(link.stats().wait_ps > 0);
        assert_eq!(link.stats().transfers, 2);
        assert_eq!(link.stats().packets, 2);
    }

    #[test]
    fn per_byte_cost_decreases_with_size() {
        // Larger transfers amortise packet overhead: cost per byte shrinks,
        // giving Figure 12 its slightly curved shape.
        let link = HostLink::new(cfg());
        let small = link.uncontended(500).as_secs_f64() / 500.0;
        let large = link.uncontended(50_000).as_secs_f64() / 50_000.0;
        assert!(large < small);
    }
}
