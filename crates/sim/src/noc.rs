//! Mesh network-on-chip timing model.
//!
//! Every directed link between adjacent routers is a bandwidth-limited
//! resource; a message serialises over each link of its XY route in turn
//! (virtual cut-through with whole-message serialisation, which is the
//! right granularity for the multi-kilobyte strip payloads the macro
//! pipeline moves around). Contention is resolved with time-bucketed
//! booking ([`crate::bucket`]): messages queue only when they genuinely
//! overlap in virtual time on a link, irrespective of the order the
//! simulator discovers them in.

use crate::bucket::BucketedResource;
use crate::fault::FaultPlan;
use crate::time::SimTime;
use crate::topology::{xy_route, Link, TileId};
use serde::Serialize;
use std::sync::Arc;

/// NoC timing parameters.
#[derive(Debug, Clone, Serialize)]
pub struct NocConfig {
    /// Per-hop router traversal latency (4 cycles at mesh clock on the SCC).
    pub hop_latency: SimTime,
    /// Usable bandwidth of one mesh link, bytes/second. The SCC mesh moves
    /// 16 bytes per cycle at 800 MHz per link in theory; sustained payload
    /// bandwidth seen by RCCE-style transfers is far lower.
    pub link_bandwidth: u64,
    /// Fixed software+protocol overhead charged once per message
    /// (marshalling, flag handling in an RCCE-style library).
    pub message_overhead: SimTime,
    /// Contention-resolution granularity.
    pub bucket: SimTime,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            // 4 mesh cycles at 800 MHz = 5 ns per hop.
            hop_latency: SimTime::from_ns(5),
            // Sustained per-link payload bandwidth ~ 1.6 GB/s.
            link_bandwidth: 1_600_000_000,
            // ~8 us per message of library/software overhead.
            message_overhead: SimTime::from_us(8),
            bucket: SimTime::from_ms(1),
        }
    }
}

/// Per-link accounting.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct LinkStats {
    pub messages: u64,
    pub bytes: u64,
    /// Accumulated time this link spent transmitting.
    pub busy_ps: u64,
    /// Accumulated time messages waited for this link.
    pub wait_ps: u64,
}

/// The mesh interconnect state.
#[derive(Debug)]
pub struct Noc {
    cfg: NocConfig,
    links: Vec<BucketedResource>,
    stats: Vec<LinkStats>,
    total_messages: u64,
    total_bytes: u64,
    /// Flit-conservation ledger: per-link message/byte counts registered
    /// at route-computation time, *before* any booking happens. The
    /// [`Noc::audit`] cross-checks the booked `stats` against these, so a
    /// refactor that books a link twice — or forgets one hop of a route —
    /// is caught rather than silently mis-accounted.
    expected_msgs: Vec<u64>,
    expected_bytes: Vec<u64>,
    /// Transfers whose route was registered in the expectation ledger.
    routed_messages: u64,
    fault: Option<Arc<FaultPlan>>,
}

impl Noc {
    pub fn new(cfg: NocConfig) -> Self {
        Noc {
            links: (0..Link::DENSE_COUNT)
                .map(|_| BucketedResource::new(cfg.bucket))
                .collect(),
            stats: vec![LinkStats::default(); Link::DENSE_COUNT],
            total_messages: 0,
            total_bytes: 0,
            expected_msgs: vec![0; Link::DENSE_COUNT],
            expected_bytes: vec![0; Link::DENSE_COUNT],
            routed_messages: 0,
            fault: None,
            cfg,
        }
    }

    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Inject a deterministic fault schedule: degraded links slow their
    /// serialisation, and individually delayed messages start late.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault = Some(plan);
    }

    /// Move `bytes` from router `from` to router `to` starting no earlier
    /// than `now`. Returns the arrival time at `to`, after any queueing.
    ///
    /// A zero-hop transfer (same tile) still pays the message overhead and
    /// one serialisation: even a tile-local RCCE transfer runs library
    /// code and crosses the router once.
    pub fn transfer(&mut self, now: SimTime, from: TileId, to: TileId, bytes: u64) -> SimTime {
        let msg_idx = self.total_messages;
        self.total_messages += 1;
        self.total_bytes += bytes;
        let serialise = SimTime::from_bytes_at(bytes.max(1), self.cfg.link_bandwidth);
        let mut t = now + self.cfg.message_overhead;
        if let Some(plan) = &self.fault {
            t += plan.flit_delay(msg_idx);
        }
        // Register what this route *should* book before booking anything.
        self.routed_messages += 1;
        for link in xy_route(from, to) {
            let idx = link.dense_index();
            self.expected_msgs[idx] += 1;
            self.expected_bytes[idx] += bytes;
        }
        for link in xy_route(from, to) {
            let idx = link.dense_index();
            // A degraded link transmits at a fraction of nominal bandwidth,
            // so the same payload occupies it proportionally longer.
            let link_serialise = match &self.fault {
                Some(plan) if plan.link_factor(idx) < 1.0 => SimTime::from_bytes_at(
                    bytes.max(1),
                    ((self.cfg.link_bandwidth as f64 * plan.link_factor(idx)) as u64).max(1),
                ),
                _ => serialise,
            };
            let booking = self.links[idx].book(t, link_serialise);
            let s = &mut self.stats[idx];
            s.messages += 1;
            s.bytes += bytes;
            s.busy_ps += link_serialise.as_ps();
            s.wait_ps += booking.wait.as_ps();
            t = booking.completion + self.cfg.hop_latency;
        }
        if from == to {
            t += serialise;
        }
        t
    }

    /// Pure estimate of an uncontended transfer's latency.
    pub fn uncontended_latency(&self, from: TileId, to: TileId, bytes: u64) -> SimTime {
        let hops = from.hops_to(to) as u64;
        let serialise = SimTime::from_bytes_at(bytes.max(1), self.cfg.link_bandwidth);
        let per_hop = serialise + self.cfg.hop_latency;
        self.cfg.message_overhead + per_hop * hops.max(1)
    }

    pub fn stats(&self, link: Link) -> LinkStats {
        self.stats[link.dense_index()]
    }

    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Sum of queueing delay across all links — a congestion indicator.
    pub fn total_wait(&self) -> SimTime {
        SimTime::from_ps(self.stats.iter().map(|s| s.wait_ps).sum())
    }

    /// The most heavily loaded link by bytes, if any traffic has flowed.
    pub fn hottest_link_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes).max().unwrap_or(0)
    }

    /// Flit conservation per link: every message booked on a link must
    /// correspond to exactly one hop of exactly one routed transfer, with
    /// the full payload accounted. Returns a description of the first
    /// discrepancy, if any.
    pub fn audit(&self) -> Result<(), String> {
        if self.routed_messages != self.total_messages {
            return Err(format!(
                "noc routed {} transfers but counted {}",
                self.routed_messages, self.total_messages
            ));
        }
        for idx in 0..Link::DENSE_COUNT {
            let s = &self.stats[idx];
            if s.messages != self.expected_msgs[idx] {
                return Err(format!(
                    "link {idx}: booked {} messages, route ledger expects {}",
                    s.messages, self.expected_msgs[idx]
                ));
            }
            if s.bytes != self.expected_bytes[idx] {
                return Err(format!(
                    "link {idx}: booked {} bytes, route ledger expects {}",
                    s.bytes, self.expected_bytes[idx]
                ));
            }
            if s.messages == 0 && (s.busy_ps != 0 || s.wait_ps != 0) {
                return Err(format!(
                    "link {idx}: time booked ({} ps busy, {} ps wait) with no messages",
                    s.busy_ps, s.wait_ps
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Direction;

    fn cfg() -> NocConfig {
        NocConfig {
            hop_latency: SimTime::from_ns(10),
            link_bandwidth: 1_000_000_000, // 1 GB/s -> 1 ns per byte
            message_overhead: SimTime::from_us(1),
            bucket: SimTime::from_ms(1),
        }
    }

    #[test]
    fn uncontended_transfer_cost_scales_with_hops() {
        let mut noc = Noc::new(cfg());
        let a = TileId::from_xy(0, 0);
        let b = TileId::from_xy(3, 0); // 3 hops
        let t = noc.transfer(SimTime::ZERO, a, b, 1000);
        // overhead + 3 * (serialise 1us + hop 10ns)
        let expect = SimTime::from_us(1) + (SimTime::from_us(1) + SimTime::from_ns(10)) * 3;
        assert_eq!(t, expect);
        assert_eq!(t, noc.uncontended_latency(a, b, 1000));
    }

    #[test]
    fn contention_delays_second_message() {
        let mut noc = Noc::new(cfg());
        let a = TileId::from_xy(0, 0);
        let b = TileId::from_xy(1, 0);
        let t1 = noc.transfer(SimTime::ZERO, a, b, 100_000); // 100 us serialise
        let t2 = noc.transfer(SimTime::ZERO, a, b, 100_000);
        assert!(t2 > t1, "second message must queue behind the first");
        let link = Link {
            from: a,
            dir: Direction::East,
        };
        assert!(noc.stats(link).wait_ps > 0);
        assert_eq!(noc.stats(link).messages, 2);
    }

    #[test]
    fn disjoint_routes_do_not_interact() {
        let mut noc = Noc::new(cfg());
        let t1 = noc.transfer(
            SimTime::ZERO,
            TileId::from_xy(0, 0),
            TileId::from_xy(1, 0),
            50_000,
        );
        let t2 = noc.transfer(
            SimTime::ZERO,
            TileId::from_xy(0, 3),
            TileId::from_xy(1, 3),
            50_000,
        );
        assert_eq!(t1, t2);
        assert_eq!(noc.total_wait(), SimTime::ZERO);
    }

    #[test]
    fn out_of_order_issue_does_not_create_phantom_queueing() {
        let mut noc = Noc::new(cfg());
        let a = TileId::from_xy(2, 1);
        let b = TileId::from_xy(3, 1);
        noc.transfer(SimTime::from_secs(3), a, b, 100_000);
        let early = noc.transfer(SimTime::from_ms(1), a, b, 1000);
        assert_eq!(
            early,
            SimTime::from_ms(1) + noc.uncontended_latency(a, b, 1000)
        );
    }

    #[test]
    fn local_transfer_pays_overhead_and_serialisation() {
        let mut noc = Noc::new(cfg());
        let t = TileId::from_xy(2, 2);
        let done = noc.transfer(SimTime::ZERO, t, t, 1000);
        assert_eq!(done, SimTime::from_us(1) + SimTime::from_us(1));
    }

    #[test]
    fn degraded_link_slows_transfer_and_delay_shifts_start() {
        use crate::fault::{FaultConfig, FaultPlan};
        use std::sync::Arc;

        let a = TileId::from_xy(0, 0);
        let b = TileId::from_xy(1, 0);

        let mut healthy = Noc::new(cfg());
        let base = healthy.transfer(SimTime::ZERO, a, b, 100_000);

        // Degrade every link to half bandwidth: serialisation doubles.
        let mut slow = Noc::new(cfg());
        slow.set_fault_plan(Arc::new(FaultPlan::new(FaultConfig {
            seed: 1,
            degraded_links: Link::DENSE_COUNT as u32,
            degrade_factor: 0.5,
            ..FaultConfig::default()
        })));
        let degraded = slow.transfer(SimTime::ZERO, a, b, 100_000);
        assert!(degraded > base, "degraded link must be slower");

        // Delay every message by up to max_delay: arrival shifts late and
        // the same seed shifts it identically on a replay.
        let delayed_cfg = FaultConfig {
            seed: 7,
            delay_rate: 1.0,
            max_delay: SimTime::from_us(50),
            ..FaultConfig::default()
        };
        let mut d1 = Noc::new(cfg());
        d1.set_fault_plan(Arc::new(FaultPlan::new(delayed_cfg.clone())));
        let mut d2 = Noc::new(cfg());
        d2.set_fault_plan(Arc::new(FaultPlan::new(delayed_cfg)));
        let t1 = d1.transfer(SimTime::ZERO, a, b, 100_000);
        assert_eq!(t1, d2.transfer(SimTime::ZERO, a, b, 100_000));
        assert!(t1 >= base);
    }

    #[test]
    fn totals_accumulate() {
        let mut noc = Noc::new(cfg());
        noc.transfer(
            SimTime::ZERO,
            TileId::from_xy(0, 0),
            TileId::from_xy(5, 3),
            123,
        );
        noc.transfer(
            SimTime::ZERO,
            TileId::from_xy(5, 3),
            TileId::from_xy(0, 0),
            77,
        );
        assert_eq!(noc.total_messages(), 2);
        assert_eq!(noc.total_bytes(), 200);
        assert!(noc.hottest_link_bytes() >= 123);
    }

    #[test]
    fn audit_passes_after_arbitrary_traffic() {
        let mut noc = Noc::new(cfg());
        assert_eq!(noc.audit(), Ok(()), "a fresh mesh is balanced");
        for i in 0..20u32 {
            noc.transfer(
                SimTime::from_us(i as u64),
                TileId::from_xy((i % 6) as u8, (i % 4) as u8),
                TileId::from_xy(((i + 3) % 6) as u8, ((i + 1) % 4) as u8),
                1000 + i as u64,
            );
        }
        // Zero-hop transfers book no links but still count as messages.
        let t = TileId::from_xy(2, 2);
        noc.transfer(SimTime::ZERO, t, t, 555);
        assert_eq!(noc.audit(), Ok(()));
    }

    #[test]
    fn audit_catches_a_cooked_ledger() {
        let mut noc = Noc::new(cfg());
        noc.transfer(
            SimTime::ZERO,
            TileId::from_xy(0, 0),
            TileId::from_xy(2, 0),
            4096,
        );
        // Simulate a booking bug: one link loses a message from its stats.
        let idx = Link {
            from: TileId::from_xy(0, 0),
            dir: Direction::East,
        }
        .dense_index();
        noc.stats[idx].messages -= 1;
        assert!(noc.audit().is_err(), "missing booking must be flagged");
    }
}
