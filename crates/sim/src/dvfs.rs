//! Frequency / voltage scaling model.
//!
//! On the SCC, frequency is settable per tile while voltage is supplied per
//! 2×2-tile *island* (six islands of eight cores). Raising one core's
//! frequency therefore drags its whole island to the higher voltage — the
//! exact inefficiency the paper runs into in §VI-D ("more cores consume a
//! higher amount of energy than necessary", Figure 18).

use crate::topology::{CoreId, TileId, MESH_H, MESH_W, NUM_TILES};
use serde::Serialize;

/// Supported core frequencies (MHz). The RCCE API exposes steps between
/// 400 and 1198 MHz; the paper uses exactly these three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FreqMHz {
    F400,
    F533,
    F800,
}

impl FreqMHz {
    pub const fn mhz(self) -> u32 {
        match self {
            FreqMHz::F400 => 400,
            FreqMHz::F533 => 533,
            FreqMHz::F800 => 800,
        }
    }

    pub const fn hz(self) -> u64 {
        self.mhz() as u64 * 1_000_000
    }

    /// Minimum supply voltage required to run at this frequency (volts),
    /// per the paper: 0.7 V up to 400 MHz, 1.1 V for 533 MHz, 1.3 V for
    /// 800 MHz.
    pub const fn required_volts(self) -> f64 {
        match self {
            FreqMHz::F400 => 0.7,
            FreqMHz::F533 => 1.1,
            FreqMHz::F800 => 1.3,
        }
    }

    pub fn all() -> [FreqMHz; 3] {
        [FreqMHz::F400, FreqMHz::F533, FreqMHz::F800]
    }
}

/// One of the six 2×2-tile voltage islands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct IslandId(u8);

/// Islands per row / column of the island grid.
pub const ISLAND_W: u8 = MESH_W / 2;
pub const ISLAND_H: u8 = MESH_H / 2;
pub const NUM_ISLANDS: u8 = ISLAND_W * ISLAND_H;

impl IslandId {
    pub fn new(id: u8) -> IslandId {
        assert!(id < NUM_ISLANDS, "island id {id} out of range");
        IslandId(id)
    }

    pub fn of_tile(tile: TileId) -> IslandId {
        IslandId((tile.y() / 2) * ISLAND_W + tile.x() / 2)
    }

    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The four tiles of this island.
    pub fn tiles(self) -> [TileId; 4] {
        let bx = (self.0 % ISLAND_W) * 2;
        let by = (self.0 / ISLAND_W) * 2;
        [
            TileId::from_xy(bx, by),
            TileId::from_xy(bx + 1, by),
            TileId::from_xy(bx, by + 1),
            TileId::from_xy(bx + 1, by + 1),
        ]
    }

    pub fn all() -> impl Iterator<Item = IslandId> {
        (0..NUM_ISLANDS).map(IslandId)
    }
}

/// The chip-wide DVFS state: one frequency per tile, voltages derived per
/// island as the minimum that supports the island's fastest tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DvfsState {
    tile_freq: [FreqMHz; NUM_TILES as usize],
}

impl Default for DvfsState {
    /// The paper's default operating point: everything at 533 MHz / 1.1 V.
    fn default() -> Self {
        DvfsState {
            tile_freq: [FreqMHz::F533; NUM_TILES as usize],
        }
    }
}

impl DvfsState {
    pub fn uniform(freq: FreqMHz) -> Self {
        DvfsState {
            tile_freq: [freq; NUM_TILES as usize],
        }
    }

    pub fn set_tile(&mut self, tile: TileId, freq: FreqMHz) {
        self.tile_freq[tile.index()] = freq;
    }

    /// Set the frequency of the tile hosting `core` (both of its cores are
    /// affected — tiles share a clock).
    pub fn set_core_tile(&mut self, core: CoreId, freq: FreqMHz) {
        self.set_tile(core.tile(), freq);
    }

    pub fn tile_freq(&self, tile: TileId) -> FreqMHz {
        self.tile_freq[tile.index()]
    }

    pub fn core_freq(&self, core: CoreId) -> FreqMHz {
        self.tile_freq(core.tile())
    }

    /// Supply voltage of an island: the requirement of its fastest tile.
    pub fn island_volts(&self, island: IslandId) -> f64 {
        island
            .tiles()
            .iter()
            .map(|t| self.tile_freq(*t).required_volts())
            .fold(0.0, f64::max)
    }

    pub fn core_volts(&self, core: CoreId) -> f64 {
        self.island_volts(IslandId::of_tile(core.tile()))
    }

    /// Cores that pay a raised voltage without having asked for the higher
    /// frequency — the collateral the paper complains about.
    pub fn collateral_cores(&self) -> Vec<CoreId> {
        CoreId::all()
            .filter(|c| {
                let v = self.core_volts(*c);
                v > self.core_freq(*c).required_volts() + 1e-9
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_voltage_pairs() {
        assert_eq!(FreqMHz::F400.required_volts(), 0.7);
        assert_eq!(FreqMHz::F533.required_volts(), 1.1);
        assert_eq!(FreqMHz::F800.required_volts(), 1.3);
        assert_eq!(FreqMHz::F533.hz(), 533_000_000);
    }

    #[test]
    fn island_partition_covers_die_exactly() {
        use std::collections::HashSet;
        assert_eq!(NUM_ISLANDS, 6);
        let mut seen = HashSet::new();
        for isl in IslandId::all() {
            for t in isl.tiles() {
                assert_eq!(IslandId::of_tile(t), isl);
                assert!(seen.insert(t), "{t} in two islands");
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn default_is_533_everywhere() {
        let d = DvfsState::default();
        for c in CoreId::all() {
            assert_eq!(d.core_freq(c), FreqMHz::F533);
            assert!((d.core_volts(c) - 1.1).abs() < 1e-12);
        }
        assert!(d.collateral_cores().is_empty());
    }

    #[test]
    fn raising_one_tile_raises_the_whole_island() {
        let mut d = DvfsState::default();
        let blur_tile = TileId::from_xy(2, 1);
        d.set_tile(blur_tile, FreqMHz::F800);
        let isl = IslandId::of_tile(blur_tile);
        assert!((d.island_volts(isl) - 1.3).abs() < 1e-12);
        // The island's three other tiles pay 1.3 V at 533 MHz.
        let collateral = d.collateral_cores();
        assert_eq!(collateral.len(), 6, "3 collateral tiles x 2 cores");
        for c in &collateral {
            assert_eq!(d.core_freq(*c), FreqMHz::F533);
            assert!((d.core_volts(*c) - 1.3).abs() < 1e-12);
        }
    }

    #[test]
    fn lowering_an_island_drops_voltage() {
        let mut d = DvfsState::default();
        let isl = IslandId::new(0);
        for t in isl.tiles() {
            d.set_tile(t, FreqMHz::F400);
        }
        assert!((d.island_volts(isl) - 0.7).abs() < 1e-12);
        // Other islands unaffected.
        assert!((d.island_volts(IslandId::new(1)) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn mixed_island_uses_max_requirement() {
        let mut d = DvfsState::uniform(FreqMHz::F400);
        let isl = IslandId::new(3);
        d.set_tile(isl.tiles()[0], FreqMHz::F800);
        assert!((d.island_volts(isl) - 1.3).abs() < 1e-12);
        d.set_tile(isl.tiles()[0], FreqMHz::F533);
        assert!((d.island_volts(isl) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn set_core_tile_affects_sibling() {
        let mut d = DvfsState::default();
        let c = CoreId::new(10);
        d.set_core_tile(c, FreqMHz::F800);
        let sibling = CoreId::new(11);
        assert_eq!(d.core_freq(sibling), FreqMHz::F800, "tiles share a clock");
    }
}
