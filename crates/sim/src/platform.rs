//! The assembled SCC platform: cores + caches + mesh + memory controllers +
//! DVFS + power metering behind one façade.
//!
//! The pipeline runner drives this object with three kinds of requests —
//! *compute* (cycles on a core), *memory traffic* (streaming reads/writes
//! through the core's quadrant controller) and *messages* (which, true to
//! the real SCC, land in the **receiver's DRAM partition** and must be
//! fetched back out of memory by the receiver; there is no core-local
//! store). All requests return completion times in virtual time and mutate
//! the shared contention state deterministically.

use crate::cache::{CacheGeometry, StreamModel};
use crate::dvfs::{DvfsState, FreqMHz};
use crate::fault::FaultPlan;
use crate::hostlink::{HostLink, HostLinkConfig, HostLinkStats};
use crate::memctrl::{MemConfig, MemorySystem};
use crate::noc::{Noc, NocConfig};
use crate::power::{PowerConfig, PowerMeter, PowerSample};
use crate::time::SimTime;
use crate::topology::{CoreId, McId, TileId};
use serde::Serialize;
use std::sync::Arc;

/// Wire size of one heartbeat datagram (magic + rank + sequence number —
/// the format `scc-rcce`'s health module encodes).
pub const HEARTBEAT_BYTES: u64 = 16;

/// Full platform configuration.
#[derive(Debug, Clone, Serialize)]
pub struct SccConfig {
    pub noc: NocConfig,
    pub mem: MemConfig,
    pub power: PowerConfig,
    pub host_link: HostLinkConfig,
    pub l2: L2Config,
    /// Sustained memory bandwidth one P54C core can extract with its
    /// blocking in-order loads/stores, bytes/second. This — not the
    /// controllers — bounds a single stage's streaming rate, matching the
    /// few-tens-of-MB/s per-core figures measured on the real SCC.
    pub core_mem_bandwidth: u64,
    /// What-if ablation from the paper's conclusion: per-core local
    /// memory banks of this many bytes ("small local and manageable
    /// memory banks per node would be a nice way to reduce the traffic").
    /// Messages that fit go Cell-SPE-style straight over the mesh into
    /// the receiver's local store — no DRAM partition round-trip. 0 (the
    /// default) models the real SCC, which has none.
    pub local_memory_bytes: u64,
    /// The one piece of on-die storage the real SCC *does* have: each
    /// core's 8 KiB message-passing-buffer window. RCCE keeps messages
    /// that fit a single MPB window on-die; only larger payloads (every
    /// frame strip in this workload) take the DRAM-partition round-trip.
    pub mpb_window_bytes: u64,
}

impl Default for SccConfig {
    fn default() -> Self {
        SccConfig {
            noc: NocConfig::default(),
            mem: MemConfig::default(),
            power: PowerConfig::default(),
            host_link: HostLinkConfig::default(),
            l2: L2Config::default(),
            core_mem_bandwidth: 45_000_000,
            local_memory_bytes: 0,
            mpb_window_bytes: 8 * 1024,
        }
    }
}

#[derive(Debug, Clone, Serialize)]
pub struct L2Config {
    pub geometry: CacheGeometry,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            geometry: CacheGeometry::scc_l2(),
        }
    }
}

/// Direction of a streaming memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    Read,
    Write,
}

/// Aggregated platform counters for reports.
#[derive(Debug, Clone, Serialize)]
pub struct PlatformStats {
    pub noc_messages: u64,
    pub noc_bytes: u64,
    pub noc_wait_secs: f64,
    pub mem_bytes: u64,
    /// DRAM bytes served by each of the four quadrant controllers.
    pub mem_bytes_per_mc: [u64; 4],
    pub mem_wait_secs: f64,
    pub mem_imbalance: f64,
    pub host_link: HostLinkStats,
}

/// The simulated chip.
pub struct SccPlatform {
    cfg: SccConfig,
    noc: Noc,
    mem: MemorySystem,
    dvfs: DvfsState,
    meter: PowerMeter,
    stream: StreamModel,
    host_link: HostLink,
    fault: Option<Arc<FaultPlan>>,
}

impl SccPlatform {
    pub fn new(cfg: SccConfig) -> Self {
        SccPlatform {
            noc: Noc::new(cfg.noc.clone()),
            mem: MemorySystem::new(cfg.mem.clone()),
            dvfs: DvfsState::default(),
            meter: PowerMeter::new(),
            stream: StreamModel::new(cfg.l2.geometry),
            host_link: HostLink::new(cfg.host_link.clone()),
            fault: None,
            cfg,
        }
    }

    pub fn config(&self) -> &SccConfig {
        &self.cfg
    }

    /// Inject a deterministic fault schedule. Forwards the plan to the
    /// NoC (link degradation, flit delay); core stalls are applied here —
    /// a stalled core issues no compute, memory or message operation
    /// until its stall window closes.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.noc.set_fault_plan(Arc::clone(&plan));
        self.fault = Some(plan);
    }

    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// Earliest time at or after `now` at which `core` can issue work.
    fn stall_adjust(&self, core: CoreId, now: SimTime) -> SimTime {
        match &self.fault {
            Some(plan) => plan.stall_adjusted(core.raw(), now),
            None => now,
        }
    }

    pub fn dvfs(&self) -> &DvfsState {
        &self.dvfs
    }

    pub fn dvfs_mut(&mut self) -> &mut DvfsState {
        &mut self.dvfs
    }

    /// Set the frequency of the tile hosting `core` (affects its sibling
    /// and, through the voltage island, six more cores' supply voltage).
    pub fn set_core_frequency(&mut self, core: CoreId, freq: FreqMHz) {
        self.dvfs.set_core_tile(core, freq);
    }

    pub fn core_freq_hz(&self, core: CoreId) -> u64 {
        self.dvfs.core_freq(core).hz()
    }

    /// Execute `cycles` of computation on `core` starting at `now`.
    /// Records the busy span for power accounting and returns completion.
    pub fn compute(&mut self, core: CoreId, now: SimTime, cycles: u64) -> SimTime {
        let start = self.stall_adjust(core, now);
        let dur = SimTime::from_cycles(cycles, self.core_freq_hz(core));
        let done = start + dur;
        self.meter.record(core, start, done);
        done
    }

    /// Stream `working_set` bytes through `core`'s cache, fetching whatever
    /// misses from the core's quadrant memory controller over the mesh.
    ///
    /// Returns the completion time. If the working set fits in L2 the data
    /// stays resident across frames and no traffic is generated.
    pub fn mem_stream(
        &mut self,
        core: CoreId,
        now: SimTime,
        op: MemOp,
        working_set: u64,
    ) -> SimTime {
        let bytes = self.stream.bytes_from_memory(working_set);
        if bytes == 0 {
            return now;
        }
        self.mem_raw(core, now, op, bytes)
    }

    /// The issuing core's own streaming limit for `bytes`.
    fn core_paced(&self, start: SimTime, done: SimTime, bytes: u64) -> SimTime {
        done.max(start + SimTime::from_bytes_at(bytes.max(1), self.cfg.core_mem_bandwidth))
    }

    /// Move `bytes` between `core` and its quadrant memory controller,
    /// bypassing the cache model (used for explicit DMA-like transfers).
    pub fn mem_raw(&mut self, core: CoreId, now: SimTime, op: MemOp, bytes: u64) -> SimTime {
        let now = self.stall_adjust(core, now);
        let tile = core.tile();
        let mc = tile.memory_controller();
        let done = match op {
            MemOp::Write => {
                // Data crosses the mesh to the controller, then is written.
                let at_mc = self.noc.transfer(now, tile, mc.attach_tile(), bytes);
                self.mem.access(at_mc, mc, bytes)
            }
            MemOp::Read => {
                // Request reaches the controller (latency is inside the
                // MC model), data crosses back over the mesh.
                let served = self.mem.access(now, mc, bytes);
                self.noc.transfer(served, mc.attach_tile(), tile, bytes)
            }
        };
        // A blocking in-order core cannot stream faster than its own
        // load/store rate, regardless of controller headroom.
        self.core_paced(now, done, bytes)
    }

    /// Memory controller that owns `core`'s private DRAM partition.
    pub fn partition_of(&self, core: CoreId) -> McId {
        core.tile().memory_controller()
    }

    /// Sender half of a core-to-core message: the payload crosses the mesh
    /// from the sender's tile into the *receiver's* DRAM partition.
    /// Returns the time the data is fully resident in the receiver's
    /// partition.
    pub fn send_to_partition(
        &mut self,
        from: CoreId,
        to: CoreId,
        now: SimTime,
        bytes: u64,
    ) -> SimTime {
        let now = self.stall_adjust(from, now);
        if bytes <= self.cfg.local_memory_bytes {
            // What-if: the payload travels straight into the receiver's
            // local bank, like a Cell SPE-to-SPE DMA — no DRAM round-trip
            // and no blocking-load pacing (the DMA engine streams at
            // link rate).
            return self.noc.transfer(now, from.tile(), to.tile(), bytes);
        }
        if bytes <= self.cfg.mpb_window_bytes {
            // Small messages fit one MPB window and stay on-die (flags,
            // barrier tokens). The receiver still copies them out, at
            // core speed.
            let done = self.noc.transfer(now, from.tile(), to.tile(), bytes);
            return self.core_paced(now, done, bytes);
        }
        let dst_mc = self.partition_of(to);
        let at_mc = self
            .noc
            .transfer(now, from.tile(), dst_mc.attach_tile(), bytes);
        let done = self.mem.access(at_mc, dst_mc, bytes);
        self.core_paced(now, done, bytes)
    }

    /// Receiver half: fetch a message of `bytes` from the core's own
    /// partition back through the mesh into its cache. This is the step a
    /// core with local memory (e.g. a Cell SPE) would not need — the paper's
    /// central architectural critique.
    pub fn fetch_from_partition(&mut self, core: CoreId, now: SimTime, bytes: u64) -> SimTime {
        let now = self.stall_adjust(core, now);
        if bytes <= self.cfg.local_memory_bytes.max(self.cfg.mpb_window_bytes) {
            // Already resident on-die (local bank or MPB window).
            return now;
        }
        let mc = self.partition_of(core);
        let served = self.mem.access(now, mc, bytes);
        let done = self
            .noc
            .transfer(served, mc.attach_tile(), core.tile(), bytes);
        self.core_paced(now, done, bytes)
    }

    /// Full message cost (send + fetch) with no overlap — the latency a
    /// blocking RCCE-style `send`/`recv` pair observes when the receiver is
    /// already waiting.
    pub fn message(&mut self, from: CoreId, to: CoreId, now: SimTime, bytes: u64) -> SimTime {
        let resident = self.send_to_partition(from, to, now, bytes);
        self.fetch_from_partition(to, resident, bytes)
    }

    /// Transfer `bytes` from the MCPC host into the chip (arrives at the
    /// connector core's partition) starting at `now`.
    pub fn host_to_chip(&mut self, connector: CoreId, now: SimTime, bytes: u64) -> SimTime {
        let delivered = self.host_link.transfer(now, bytes);
        // The PCIe/eMAC bridge drops the payload into the connector's
        // DRAM partition through its quadrant controller.
        let mc = self.partition_of(connector);
        self.mem.access(delivered, mc, bytes)
    }

    /// One heartbeat datagram from `from` to the MCPC supervisor: across
    /// the mesh to the system interface tile, then the host link. Tiny,
    /// but charged as real traffic so supervision shows up in the NoC and
    /// host-link ledgers like any other message.
    pub fn heartbeat(&mut self, from: CoreId, now: SimTime) -> SimTime {
        let now = self.stall_adjust(from, now);
        let sif = TileId::from_xy(3, 0);
        let on_sif = self.noc.transfer(now, from.tile(), sif, HEARTBEAT_BYTES);
        self.host_link.transfer(on_sif, HEARTBEAT_BYTES)
    }

    /// Uncontended one-way latency of a `bytes` payload from `from` to the
    /// MCPC: mesh hops to the system interface tile plus the host link. A
    /// pure estimate (no ledger mutation) — the failure detector's view of
    /// how stale the freshest possible heartbeat is, which makes detection
    /// latency mesh- and arrangement-dependent.
    pub fn host_path_latency(&self, from: CoreId, bytes: u64) -> SimTime {
        let sif = TileId::from_xy(3, 0);
        self.noc.uncontended_latency(from.tile(), sif, bytes) + self.host_link.uncontended(bytes)
    }

    /// Transfer `bytes` from the chip to the host (visualization client).
    pub fn chip_to_host(&mut self, from: CoreId, now: SimTime, bytes: u64) -> SimTime {
        let now = self.stall_adjust(from, now);
        // Data leaves the sender's partition, crosses the mesh to the
        // system interface (modelled at the bottom-right corner), then the
        // host link.
        let sif = TileId::from_xy(3, 0); // SCC system interface tile
        let on_sif = self.noc.transfer(now, from.tile(), sif, bytes);
        let done = self.host_link.transfer(on_sif, bytes);
        self.core_paced(now, done, bytes)
    }

    /// Record an externally computed busy span (e.g. stage framework
    /// overhead) for power accounting.
    pub fn record_busy(&mut self, core: CoreId, from: SimTime, to: SimTime) {
        self.meter.record(core, from, to);
    }

    /// Declare the cores that participate in the run: they spin-wait on
    /// RCCE flags whenever they are not busy, which costs
    /// `PowerConfig::spin_factor` of their dynamic power.
    pub fn set_spinning(&mut self, cores: Vec<CoreId>) {
        self.meter.set_spinning(cores);
    }

    pub fn meter(&self) -> &PowerMeter {
        &self.meter
    }

    /// Render the power trace for the recorded activity.
    pub fn power_trace(&self, end: SimTime, dt: SimTime) -> Vec<PowerSample> {
        self.meter.trace(&self.cfg.power, &self.dvfs, end, dt)
    }

    /// Total chip energy over `[0, end]` in joules.
    pub fn energy_joules(&self, end: SimTime) -> f64 {
        self.meter.energy_joules(&self.cfg.power, &self.dvfs, end)
    }

    /// Chip idle power at the current DVFS state, watts.
    pub fn idle_power(&self) -> f64 {
        self.cfg.power.idle_power(&self.dvfs)
    }

    /// Chip idle power at an arbitrary DVFS state, watts. Governed runs
    /// report the minimum across their schedule as the power floor.
    pub fn idle_power_for(&self, dvfs: &DvfsState) -> f64 {
        self.cfg.power.idle_power(dvfs)
    }

    /// [`SccPlatform::power_trace`] under a piecewise-constant DVFS
    /// schedule (governed runs).
    pub fn power_trace_piecewise(
        &self,
        schedule: &[(SimTime, DvfsState)],
        end: SimTime,
        dt: SimTime,
    ) -> Vec<PowerSample> {
        self.meter.trace_piecewise(&self.cfg.power, schedule, end, dt)
    }

    /// [`SccPlatform::energy_joules`] under a piecewise-constant DVFS
    /// schedule (governed runs).
    pub fn energy_joules_piecewise(&self, schedule: &[(SimTime, DvfsState)], end: SimTime) -> f64 {
        self.meter.energy_joules_piecewise(&self.cfg.power, schedule, end)
    }

    /// The power-model calibration constants.
    pub fn power_calibration(&self) -> &PowerConfig {
        &self.cfg.power
    }

    /// Replace the whole DVFS state (the governor applies an epoch's
    /// decision in one step).
    pub fn apply_dvfs(&mut self, state: &DvfsState) {
        self.dvfs = state.clone();
    }

    /// Flit conservation across the mesh: cross-check the per-link
    /// booking statistics against the independently registered route
    /// ledger (see [`crate::noc::Noc::audit`]).
    pub fn audit_noc(&self) -> Result<(), String> {
        self.noc.audit()
    }

    pub fn stats(&self) -> PlatformStats {
        PlatformStats {
            noc_messages: self.noc.total_messages(),
            noc_bytes: self.noc.total_bytes(),
            noc_wait_secs: self.noc.total_wait().as_secs_f64(),
            mem_bytes: self.mem.total_bytes(),
            mem_bytes_per_mc: {
                let mut per = [0u64; 4];
                for mc in McId::all() {
                    per[mc.index()] = self.mem.stats(mc).bytes;
                }
                per
            },
            mem_wait_secs: self.mem.total_wait().as_secs_f64(),
            mem_imbalance: self.mem.load_imbalance(),
            host_link: self.host_link.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> SccPlatform {
        SccPlatform::new(SccConfig::default())
    }

    #[test]
    fn compute_time_scales_with_frequency() {
        let mut p = platform();
        let c = CoreId::new(0);
        let t533 = p.compute(c, SimTime::ZERO, 533_000_000);
        assert_eq!(t533, SimTime::from_secs(1));
        p.set_core_frequency(c, FreqMHz::F800);
        let start = t533;
        let t800 = p.compute(c, start, 800_000_000) - start;
        assert_eq!(t800, SimTime::from_secs(1));
        p.set_core_frequency(c, FreqMHz::F400);
        let t400 = p.compute(c, SimTime::from_secs(10), 400_000_000) - SimTime::from_secs(10);
        assert_eq!(t400, SimTime::from_secs(1));
    }

    #[test]
    fn compute_records_busy_span() {
        let mut p = platform();
        let c = CoreId::new(7);
        p.compute(c, SimTime::from_ms(5), 533_000);
        assert_eq!(p.meter().busy_time(c), SimTime::from_ms(1));
    }

    #[test]
    fn small_working_set_generates_no_traffic() {
        let mut p = platform();
        let done = p.mem_stream(CoreId::new(0), SimTime::ZERO, MemOp::Read, 100 * 1024);
        assert_eq!(done, SimTime::ZERO, "fits in 256 KiB L2");
        assert_eq!(p.stats().mem_bytes, 0);
    }

    #[test]
    fn large_working_set_crosses_mesh_and_mc() {
        let mut p = platform();
        let ws = 1024 * 1024;
        let done = p.mem_stream(CoreId::new(0), SimTime::ZERO, MemOp::Read, ws);
        assert!(done > SimTime::ZERO);
        assert_eq!(p.stats().mem_bytes, ws);
        assert!(p.stats().noc_bytes >= ws);
    }

    #[test]
    fn message_goes_through_receiver_partition() {
        let mut p = platform();
        let from = CoreId::new(0); // tile (0,0), mc0
        let to = CoreId::new(46); // tile 23 = (5,3), mc3
        let arrive = p.message(from, to, SimTime::ZERO, 64 * 1024);
        assert!(arrive > SimTime::ZERO);
        // Traffic hits the receiver's controller, not the sender's.
        assert_eq!(p.mem.stats(McId::new(3)).requests, 2, "write + fetch");
        assert_eq!(p.mem.stats(McId::new(0)).requests, 0);
    }

    #[test]
    fn message_cost_exceeds_raw_mesh_cost() {
        // The partition round-trip makes SCC messaging strictly more
        // expensive than a hypothetical direct core-to-core copy.
        let mut direct = platform();
        let mut scc = platform();
        let from = CoreId::new(0);
        let to = CoreId::new(2);
        let bytes = 64 * 1024;
        let t_direct = direct
            .noc
            .transfer(SimTime::ZERO, from.tile(), to.tile(), bytes);
        let t_scc = scc.message(from, to, SimTime::ZERO, bytes);
        assert!(t_scc > t_direct);
    }

    #[test]
    fn contention_from_concurrent_streams() {
        let mut p = platform();
        // Six cores of one quadrant all stream a megabyte at t=0: the
        // shared controller must serialise them.
        let ws = 1024 * 1024;
        let mut dones = Vec::new();
        for c in [0u8, 2, 4, 12, 14, 16] {
            dones.push(p.mem_stream(CoreId::new(c), SimTime::ZERO, MemOp::Read, ws));
        }
        let first = dones.iter().min().unwrap();
        let last = dones.iter().max().unwrap();
        assert!(
            last.as_secs_f64() > first.as_secs_f64() * 2.0,
            "serialisation should spread completions"
        );
        assert!(p.stats().mem_wait_secs > 0.0);
    }

    #[test]
    fn stalled_core_issues_nothing_during_its_window() {
        use crate::fault::{CoreStall, FaultConfig, FaultPlan};
        use std::sync::Arc;

        let mut p = platform();
        p.set_fault_plan(Arc::new(FaultPlan::new(FaultConfig {
            seed: 1,
            stalls: vec![CoreStall {
                core: 3,
                at: SimTime::from_ms(1),
                duration: SimTime::from_ms(4),
            }],
            ..FaultConfig::default()
        })));
        let stalled = CoreId::new(3);
        // Work issued inside the window starts only when it closes.
        let done = p.compute(stalled, SimTime::from_ms(2), 533_000);
        assert_eq!(done, SimTime::from_ms(5) + SimTime::from_ms(1));
        // The sibling core is unaffected.
        let other = p.compute(CoreId::new(4), SimTime::from_ms(2), 533_000);
        assert_eq!(other, SimTime::from_ms(3));
        // Messages from the stalled core wait out the window too.
        let sent = p.send_to_partition(stalled, CoreId::new(9), SimTime::from_ms(2), 64);
        assert!(sent >= SimTime::from_ms(5));
    }

    #[test]
    fn host_roundtrip() {
        let mut p = platform();
        let conn = CoreId::new(0);
        let t_in = p.host_to_chip(conn, SimTime::ZERO, 100_000);
        assert!(t_in > SimTime::ZERO);
        let t_out = p.chip_to_host(CoreId::new(47), t_in, 100_000);
        assert!(t_out > t_in);
        assert_eq!(p.stats().host_link.transfers, 2);
    }

    #[test]
    fn energy_accumulates_idle_floor() {
        let p = platform();
        let e = p.energy_joules(SimTime::from_secs(10));
        // Idle chip for 10 s ≈ 220 J.
        assert!((e - p.idle_power() * 10.0).abs() < 1e-6);
    }
}

#[cfg(test)]
mod local_memory_tests {
    use super::*;

    #[test]
    fn local_banks_remove_the_partition_roundtrip() {
        let mut scc = SccPlatform::new(SccConfig::default());
        let mut what_if = SccPlatform::new(SccConfig {
            local_memory_bytes: 256 * 1024,
            ..SccConfig::default()
        });
        let from = CoreId::new(0);
        let to = CoreId::new(10);
        let bytes = 128 * 1024;
        let t_scc = scc.message(from, to, SimTime::ZERO, bytes);
        let t_local = what_if.message(from, to, SimTime::ZERO, bytes);
        assert!(
            t_local.as_secs_f64() < t_scc.as_secs_f64() * 0.7,
            "local banks should cut messaging cost sharply: {t_local} vs {t_scc}"
        );
        // And no DRAM traffic flows for the message.
        assert_eq!(what_if.stats().mem_bytes, 0);
        assert!(scc.stats().mem_bytes > 0);
    }

    #[test]
    fn oversized_messages_still_go_through_dram() {
        let mut what_if = SccPlatform::new(SccConfig {
            local_memory_bytes: 16 * 1024,
            ..SccConfig::default()
        });
        what_if.message(CoreId::new(0), CoreId::new(2), SimTime::ZERO, 64 * 1024);
        assert!(
            what_if.stats().mem_bytes > 0,
            "a message beyond the bank size must spill to DRAM"
        );
    }
}

#[cfg(test)]
mod mpb_path_tests {
    use super::*;

    #[test]
    fn small_messages_stay_on_die() {
        let mut p = SccPlatform::new(SccConfig::default());
        // A barrier-token-sized message generates no DRAM traffic.
        p.message(CoreId::new(0), CoreId::new(7), SimTime::ZERO, 64);
        assert_eq!(p.stats().mem_bytes, 0, "MPB messages must skip DRAM");
        assert!(p.stats().noc_bytes > 0);
    }

    #[test]
    fn strip_sized_messages_take_the_partition_path() {
        let mut p = SccPlatform::new(SccConfig::default());
        // A frame strip far exceeds the 8 KiB window.
        p.message(CoreId::new(0), CoreId::new(7), SimTime::ZERO, 100_000);
        assert!(p.stats().mem_bytes > 0, "large payloads must hit DRAM");
    }

    #[test]
    fn mpb_cutoff_is_exactly_the_window() {
        let mut a = SccPlatform::new(SccConfig::default());
        let mut b = SccPlatform::new(SccConfig::default());
        let w = a.config().mpb_window_bytes;
        a.message(CoreId::new(0), CoreId::new(2), SimTime::ZERO, w);
        b.message(CoreId::new(0), CoreId::new(2), SimTime::ZERO, w + 1);
        assert_eq!(a.stats().mem_bytes, 0);
        assert!(b.stats().mem_bytes > 0);
    }
}
