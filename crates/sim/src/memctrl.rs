//! Memory-controller timing model.
//!
//! The SCC has no core-local memory: every load miss, store writeback and
//! message transfer ends up at one of four DDR3 controllers. Each
//! controller is a bandwidth-limited resource with a fixed access latency;
//! concurrent requests from many pipeline stages share its capacity
//! through time-bucketed booking ([`crate::bucket`]), which is what makes
//! many concurrent pipeline stages saturate — the central effect the paper
//! reports.

use crate::bucket::BucketedResource;
use crate::time::SimTime;
use crate::topology::{McId, NUM_MCS};
use serde::Serialize;

/// DDR3 controller timing parameters.
#[derive(Debug, Clone, Serialize)]
pub struct MemConfig {
    /// Fixed DRAM access latency per request (row activation etc.).
    pub access_latency: SimTime,
    /// Sustained bandwidth of one controller, bytes/second.
    /// DDR3-800 with a 64-bit channel peaks at 6.4 GB/s; sustained
    /// traffic from many blocking in-order P54Cs lands far lower.
    pub bandwidth: u64,
    /// Contention-resolution granularity.
    pub bucket: SimTime,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            access_latency: SimTime::from_ns(90),
            bandwidth: 100_000_000,
            bucket: SimTime::from_ms(1),
        }
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct McStats {
    pub requests: u64,
    pub bytes: u64,
    pub busy_ps: u64,
    pub wait_ps: u64,
}

/// One memory controller's service state.
#[derive(Debug)]
struct Controller {
    res: BucketedResource,
    stats: McStats,
}

/// The four controllers of the die.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    ctrls: Vec<Controller>,
}

impl MemorySystem {
    pub fn new(cfg: MemConfig) -> Self {
        MemorySystem {
            ctrls: (0..NUM_MCS)
                .map(|_| Controller {
                    res: BucketedResource::new(cfg.bucket),
                    stats: McStats::default(),
                })
                .collect(),
            cfg,
        }
    }

    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Service a request for `bytes` at controller `mc`, arriving at `now`
    /// (already including the mesh traversal). Returns completion time.
    pub fn access(&mut self, now: SimTime, mc: McId, bytes: u64) -> SimTime {
        let c = &mut self.ctrls[mc.index()];
        let service = SimTime::from_bytes_at(bytes.max(1), self.cfg.bandwidth);
        let booking = c.res.book(now, service);
        c.stats.requests += 1;
        c.stats.bytes += bytes;
        c.stats.busy_ps += service.as_ps();
        c.stats.wait_ps += booking.wait.as_ps();
        booking.completion + self.cfg.access_latency
    }

    /// Service time for `bytes` ignoring queueing — used for estimates.
    pub fn uncontended(&self, bytes: u64) -> SimTime {
        self.cfg.access_latency + SimTime::from_bytes_at(bytes.max(1), self.cfg.bandwidth)
    }

    pub fn stats(&self, mc: McId) -> McStats {
        self.ctrls[mc.index()].stats
    }

    pub fn total_bytes(&self) -> u64 {
        self.ctrls.iter().map(|c| c.stats.bytes).sum()
    }

    pub fn total_wait(&self) -> SimTime {
        SimTime::from_ps(self.ctrls.iter().map(|c| c.stats.wait_ps).sum())
    }

    /// Imbalance indicator: max/mean bytes over the four controllers
    /// (1.0 = perfectly balanced). Returns 0 when no traffic has flowed.
    pub fn load_imbalance(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        let max = self.ctrls.iter().map(|c| c.stats.bytes).max().unwrap_or(0);
        max as f64 / (total as f64 / NUM_MCS as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemConfig {
        MemConfig {
            access_latency: SimTime::from_ns(100),
            bandwidth: 1_000_000_000, // 1 byte per ns
            bucket: SimTime::from_ms(1),
        }
    }

    #[test]
    fn single_access_cost() {
        let mut mem = MemorySystem::new(cfg());
        let done = mem.access(SimTime::ZERO, McId::new(0), 1000);
        assert_eq!(done, SimTime::from_ns(100) + SimTime::from_us(1));
        assert_eq!(done, mem.uncontended(1000));
    }

    #[test]
    fn overlapping_requests_queue() {
        let mut mem = MemorySystem::new(cfg());
        let d1 = mem.access(SimTime::ZERO, McId::new(0), 10_000);
        let d2 = mem.access(SimTime::ZERO, McId::new(0), 10_000);
        assert!(d2 > d1);
        assert!(mem.stats(McId::new(0)).wait_ps > 0);
    }

    #[test]
    fn earlier_request_issued_later_does_not_queue() {
        // Frame-major simulation order must not create phantom queueing.
        let mut mem = MemorySystem::new(cfg());
        mem.access(SimTime::from_secs(2), McId::new(0), 500_000);
        let early = mem.access(SimTime::from_ms(1), McId::new(0), 1000);
        assert_eq!(early, SimTime::from_ms(1) + mem.uncontended(1000));
    }

    #[test]
    fn different_controllers_are_independent() {
        let mut mem = MemorySystem::new(cfg());
        let d1 = mem.access(SimTime::ZERO, McId::new(0), 10_000);
        let d2 = mem.access(SimTime::ZERO, McId::new(1), 10_000);
        assert_eq!(d1, d2);
        assert_eq!(mem.total_wait(), SimTime::ZERO);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut mem = MemorySystem::new(cfg());
        let d1 = mem.access(SimTime::ZERO, McId::new(0), 100);
        let later = d1 + SimTime::from_ms(5);
        let d2 = mem.access(later, McId::new(0), 100);
        assert_eq!(d2, later + mem.uncontended(100));
    }

    #[test]
    fn imbalance_metric() {
        let mut mem = MemorySystem::new(cfg());
        assert_eq!(mem.load_imbalance(), 0.0);
        for _ in 0..4 {
            mem.access(SimTime::ZERO, McId::new(2), 1000);
        }
        // All traffic on one of four controllers -> imbalance 4.0.
        assert!((mem.load_imbalance() - 4.0).abs() < 1e-9);
        for mc in [0u8, 1, 3] {
            for _ in 0..4 {
                mem.access(SimTime::ZERO, McId::new(mc), 1000);
            }
        }
        assert!((mem.load_imbalance() - 1.0).abs() < 1e-9);
    }
}
