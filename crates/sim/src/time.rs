//! Virtual time for the discrete-event simulation.
//!
//! Time is kept in integer picoseconds so that every run is deterministic
//! and independent of the host machine. A picosecond granularity leaves
//! headroom for sub-cycle costs at 1.6 GHz mesh clocks while still allowing
//! walkthroughs of several hundred virtual seconds inside a `u64`
//! (`u64::MAX` ps ≈ 213 days).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in picoseconds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant; used as an "idle forever" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// Convert from fractional seconds, saturating at the representable
    /// range and flushing negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ps = s * PS_PER_SEC as f64;
        if ps >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ps as u64)
        }
    }

    /// Duration of `cycles` clock cycles at `freq_hz`.
    pub fn from_cycles(cycles: u64, freq_hz: u64) -> Self {
        debug_assert!(freq_hz > 0, "zero frequency");
        // cycles / freq seconds -> ps. Use u128 to avoid overflow on
        // multi-second compute bursts.
        let ps = (cycles as u128 * PS_PER_SEC as u128) / freq_hz as u128;
        SimTime(ps.min(u64::MAX as u128) as u64)
    }

    /// Time to move `bytes` over a channel of `bytes_per_sec` bandwidth.
    pub fn from_bytes_at(bytes: u64, bytes_per_sec: u64) -> Self {
        debug_assert!(bytes_per_sec > 0, "zero bandwidth");
        let ps = (bytes as u128 * PS_PER_SEC as u128) / bytes_per_sec as u128;
        SimTime(ps.min(u64::MAX as u128) as u64)
    }

    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Panics in debug builds if `rhs > self`; use [`SimTime::saturating_sub`]
    /// when an underflow is expected.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow: {self:?} - {rhs:?}");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if self.0 >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.0 as f64 / PS_PER_US as f64)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1000));
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1000));
    }

    #[test]
    fn cycles_at_frequency() {
        // 533 cycles at 533 MHz is exactly one microsecond.
        let t = SimTime::from_cycles(533, 533_000_000);
        assert_eq!(t, SimTime::from_us(1));
        // One cycle at 1 GHz is one nanosecond.
        assert_eq!(SimTime::from_cycles(1, 1_000_000_000), SimTime::from_ns(1));
    }

    #[test]
    fn bandwidth_time() {
        // 1 GiB/s moving 1 GiB takes one second.
        let gib = 1u64 << 30;
        assert_eq!(SimTime::from_bytes_at(gib, gib), SimTime::from_secs(1));
    }

    #[test]
    fn from_secs_f64_edges() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_ms(1500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(3);
        let b = SimTime::from_ms(1);
        assert_eq!(a - b, SimTime::from_ms(2));
        assert_eq!(a + b, SimTime::from_ms(4));
        assert_eq!(b * 3, a);
        assert_eq!(a / 3, b);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let v = vec![a, b, b];
        assert_eq!(v.into_iter().sum::<SimTime>(), SimTime::from_ms(5));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_ms(2)), "2.000ms");
        assert_eq!(format!("{}", SimTime::from_us(2)), "2.000us");
        assert_eq!(format!("{}", SimTime::from_ps(2)), "2ps");
    }

    #[test]
    fn saturation_not_overflow() {
        let max = SimTime::MAX;
        assert_eq!(max + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(max * 2, SimTime::MAX);
    }
}
