//! Cache models for the P54C cores.
//!
//! Two levels of fidelity:
//!
//! * [`SetAssocCache`] — an exact set-associative LRU simulator, usable on
//!   an address trace. It backs the unit/property tests and the detailed
//!   analysis of the Figure 12 experiment.
//! * [`StreamModel`] — an analytic model for the streaming access patterns
//!   of the filter stages (touch every byte once or twice per frame). For
//!   reuse distances beyond the cache size the hit rate is simply the
//!   spatial locality within a line, independent of the data-set size —
//!   exactly why the paper observes *no* jump when tiles exceed the 256 KiB
//!   L2 (§VI-A, Figure 12).

use serde::Serialize;

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Hit,
    Miss,
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheGeometry {
    /// The SCC core's 16 KiB L1 data cache (32-byte lines, 4-way).
    pub const fn scc_l1() -> Self {
        CacheGeometry {
            capacity: 16 * 1024,
            line: 32,
            ways: 4,
        }
    }

    /// The per-core 256 KiB L2 (32-byte lines, 4-way).
    pub const fn scc_l2() -> Self {
        CacheGeometry {
            capacity: 256 * 1024,
            line: 32,
            ways: 4,
        }
    }

    pub fn sets(&self) -> u64 {
        self.capacity / (self.line * self.ways as u64)
    }
}

/// Exact set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geo: CacheGeometry,
    /// Per set: tags ordered most-recently-used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    pub fn new(geo: CacheGeometry) -> Self {
        assert!(
            geo.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(geo.ways >= 1, "need at least one way");
        let sets = geo.sets();
        assert!(
            sets >= 1 && sets.is_power_of_two(),
            "set count must be a power of two"
        );
        SetAssocCache {
            sets: vec![Vec::with_capacity(geo.ways as usize); sets as usize],
            geo,
            hits: 0,
            misses: 0,
        }
    }

    pub fn geometry(&self) -> CacheGeometry {
        self.geo
    }

    /// Access one byte address; returns hit/miss and updates LRU state.
    pub fn access(&mut self, addr: u64) -> Access {
        let line_addr = addr / self.geo.line;
        let set_idx = (line_addr % self.geo.sets()) as usize;
        let tag = line_addr / self.geo.sets();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.insert(0, t);
            self.hits += 1;
            Access::Hit
        } else {
            if set.len() == self.geo.ways as usize {
                set.pop();
            }
            set.insert(0, tag);
            self.misses += 1;
            Access::Miss
        }
    }

    /// Access a contiguous byte range, touching each line once.
    pub fn access_range(&mut self, start: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let first = start / self.geo.line;
        let last = (start + bytes - 1) / self.geo.line;
        for line in first..=last {
            self.access(line * self.geo.line);
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Drop all cached lines (e.g. on a context switch).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

/// Analytic miss model for streaming stage workloads.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StreamModel {
    pub geo: CacheGeometry,
}

impl StreamModel {
    pub fn new(geo: CacheGeometry) -> Self {
        StreamModel { geo }
    }

    /// Bytes that must be fetched from memory when streaming over a
    /// `working_set`-byte buffer that was last touched a full frame ago.
    ///
    /// If the buffer fits in the cache it stays resident between frames and
    /// only compulsory (first-frame) misses occur — amortised to zero here.
    /// Otherwise every line is a miss: the whole buffer moves over the NoC,
    /// regardless of how much bigger than the cache it is. This is the flat
    /// "no jump" behaviour of Figure 12.
    pub fn bytes_from_memory(&self, working_set: u64) -> u64 {
        if working_set <= self.geo.capacity {
            0
        } else {
            // Round up to whole lines.
            working_set.div_ceil(self.geo.line) * self.geo.line
        }
    }

    /// Miss count for one streaming pass over `working_set` bytes.
    pub fn misses(&self, working_set: u64) -> u64 {
        self.bytes_from_memory(working_set) / self.geo.line
    }

    /// Hit rate of a pure streaming pass at 4-byte word granularity:
    /// one miss per line, hits on the remaining words of the line.
    pub fn streaming_hit_rate(&self, word: u64) -> f64 {
        1.0 - word as f64 / self.geo.line as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheGeometry {
        // 4 sets * 2 ways * 16B lines = 128 B
        CacheGeometry {
            capacity: 128,
            line: 16,
            ways: 2,
        }
    }

    #[test]
    fn scc_geometries() {
        assert_eq!(CacheGeometry::scc_l1().sets(), 128);
        assert_eq!(CacheGeometry::scc_l2().sets(), 2048);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = SetAssocCache::new(tiny());
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(4), Access::Hit); // same 16-byte line
        assert_eq!(c.access(15), Access::Hit);
        assert_eq!(c.access(16), Access::Miss); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new(tiny());
        // Three lines mapping to the same set (stride = sets * line = 64).
        let a = 0u64;
        let b = 64;
        let d = 128;
        c.access(a); // miss, set = [a]
        c.access(b); // miss, set = [b, a]
        c.access(a); // hit,  set = [a, b]
        c.access(d); // miss, evicts b (LRU), set = [d, a]
        assert_eq!(c.access(a), Access::Hit);
        assert_eq!(c.access(b), Access::Miss, "b was the LRU victim");
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let geo = tiny();
        let mut c = SetAssocCache::new(geo);
        c.access_range(0, geo.capacity);
        c.reset_stats();
        c.access_range(0, geo.capacity);
        assert_eq!(c.misses(), 0, "second pass over a resident set is all hits");
        assert_eq!(c.hits(), geo.capacity / geo.line);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let geo = tiny();
        let mut c = SetAssocCache::new(geo);
        let big = geo.capacity * 4;
        c.access_range(0, big);
        c.reset_stats();
        c.access_range(0, big);
        // Sequential sweep larger than the cache: everything evicted
        // before reuse -> all misses again.
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), big / geo.line);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = SetAssocCache::new(tiny());
        c.access(0);
        c.flush();
        c.reset_stats();
        assert_eq!(c.access(0), Access::Miss);
    }

    #[test]
    fn access_range_line_counting() {
        let mut c = SetAssocCache::new(tiny());
        // 1 byte touches 1 line; crossing a boundary touches 2.
        c.access_range(0, 1);
        assert_eq!(c.accesses(), 1);
        c.access_range(15, 2);
        assert_eq!(c.accesses(), 3); // line 0 (hit) + line 1 (miss)
        c.access_range(0, 0);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn stream_model_flat_beyond_capacity() {
        let m = StreamModel::new(CacheGeometry::scc_l2());
        assert_eq!(m.bytes_from_memory(100 * 1024), 0, "fits in 256 KiB L2");
        let just_over = 257 * 1024;
        let far_over = 4 * 1024 * 1024;
        // Per-byte cost identical once over capacity: all bytes fetched.
        assert_eq!(m.bytes_from_memory(just_over), just_over);
        assert_eq!(m.bytes_from_memory(far_over), far_over);
        assert!((m.streaming_hit_rate(4) - 0.875).abs() < 1e-12);
    }
}
