//! Physical layout of the SCC: 48 P54C cores on 24 tiles arranged in a
//! 6×4 mesh, with four DDR3 memory controllers attached at the corners.
//!
//! Geometry follows the SCC External Architecture Specification: two cores
//! share a tile and its router; tiles are indexed row-major with tile 0 at
//! the bottom-left, x growing east (0..6) and y growing north (0..4). Each
//! quadrant of the die is served by the memory controller on its corner,
//! which is the default private-memory mapping used by sccKit.

use serde::Serialize;
use std::fmt;

/// Mesh width in tiles.
pub const MESH_W: u8 = 6;
/// Mesh height in tiles.
pub const MESH_H: u8 = 4;
/// Number of tiles (routers).
pub const NUM_TILES: u8 = MESH_W * MESH_H;
/// Cores per tile.
pub const CORES_PER_TILE: u8 = 2;
/// Total cores on the die.
pub const NUM_CORES: u8 = NUM_TILES * CORES_PER_TILE;
/// Number of memory controllers.
pub const NUM_MCS: u8 = 4;

/// One of the 48 cores, numbered 0..48 in SCC order (core `2t` and `2t+1`
/// live on tile `t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct CoreId(u8);

/// One of the 24 tiles / mesh routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct TileId(u8);

/// One of the four memory controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct McId(u8);

impl CoreId {
    /// Create a core id, panicking if out of range.
    pub fn new(id: u8) -> CoreId {
        assert!(id < NUM_CORES, "core id {id} out of range (0..{NUM_CORES})");
        CoreId(id)
    }

    pub fn try_new(id: u8) -> Option<CoreId> {
        (id < NUM_CORES).then_some(CoreId(id))
    }

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub fn raw(self) -> u8 {
        self.0
    }

    /// The tile this core lives on.
    #[inline]
    pub fn tile(self) -> TileId {
        TileId(self.0 / CORES_PER_TILE)
    }

    /// Which of the two per-tile slots the core occupies (0 or 1).
    #[inline]
    pub fn slot(self) -> u8 {
        self.0 % CORES_PER_TILE
    }

    /// All cores in SCC order.
    pub fn all() -> impl Iterator<Item = CoreId> {
        (0..NUM_CORES).map(CoreId)
    }
}

impl TileId {
    pub fn new(id: u8) -> TileId {
        assert!(id < NUM_TILES, "tile id {id} out of range (0..{NUM_TILES})");
        TileId(id)
    }

    pub fn from_xy(x: u8, y: u8) -> TileId {
        assert!(x < MESH_W && y < MESH_H, "tile ({x},{y}) off the mesh");
        TileId(y * MESH_W + x)
    }

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub fn raw(self) -> u8 {
        self.0
    }

    #[inline]
    pub fn x(self) -> u8 {
        self.0 % MESH_W
    }

    #[inline]
    pub fn y(self) -> u8 {
        self.0 / MESH_W
    }

    /// The two cores on this tile.
    pub fn cores(self) -> [CoreId; 2] {
        [
            CoreId(self.0 * CORES_PER_TILE),
            CoreId(self.0 * CORES_PER_TILE + 1),
        ]
    }

    /// The memory controller serving this tile's private memory
    /// (quadrant mapping: nearest corner).
    pub fn memory_controller(self) -> McId {
        let east = self.x() >= MESH_W / 2;
        let north = self.y() >= MESH_H / 2;
        McId((east as u8) | ((north as u8) << 1))
    }

    /// Manhattan distance between two tiles — the hop count of an XY route.
    pub fn hops_to(self, other: TileId) -> u8 {
        self.x().abs_diff(other.x()) + self.y().abs_diff(other.y())
    }

    pub fn all() -> impl Iterator<Item = TileId> {
        (0..NUM_TILES).map(TileId)
    }
}

impl McId {
    pub fn new(id: u8) -> McId {
        assert!(id < NUM_MCS, "mc id {id} out of range (0..{NUM_MCS})");
        McId(id)
    }

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The mesh tile this controller's router port is attached to
    /// (the corner of its quadrant).
    pub fn attach_tile(self) -> TileId {
        let x = if self.0 & 1 == 0 { 0 } else { MESH_W - 1 };
        let y = if self.0 & 2 == 0 { 0 } else { MESH_H - 1 };
        TileId::from_xy(x, y)
    }

    pub fn all() -> impl Iterator<Item = McId> {
        (0..NUM_MCS).map(McId)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile({},{})", self.x(), self.y())
    }
}

impl fmt::Display for McId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mc{}", self.0)
    }
}

/// A directed mesh link between two adjacent routers, identified by the
/// source tile and direction of travel. Used as an index into the NoC's
/// link-state tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    pub from: TileId,
    pub dir: Direction,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    East,
    West,
    North,
    South,
}

impl Link {
    /// The tile this link leads to.
    pub fn to(self) -> TileId {
        let (x, y) = (self.from.x(), self.from.y());
        match self.dir {
            Direction::East => TileId::from_xy(x + 1, y),
            Direction::West => TileId::from_xy(x - 1, y),
            Direction::North => TileId::from_xy(x, y + 1),
            Direction::South => TileId::from_xy(x, y - 1),
        }
    }

    /// A dense index for table storage: 4 links per tile.
    pub fn dense_index(self) -> usize {
        self.from.index() * 4
            + match self.dir {
                Direction::East => 0,
                Direction::West => 1,
                Direction::North => 2,
                Direction::South => 3,
            }
    }

    /// Number of distinct dense link indices.
    pub const DENSE_COUNT: usize = NUM_TILES as usize * 4;
}

/// The XY (dimension-ordered) route between two tiles: first travel along
/// x, then along y. Returns the links traversed, in order. Deadlock-free
/// and deterministic, matching the SCC's mesh routing.
pub fn xy_route(from: TileId, to: TileId) -> Vec<Link> {
    let mut links = Vec::with_capacity(from.hops_to(to) as usize);
    let mut x = from.x();
    let mut y = from.y();
    while x != to.x() {
        let dir = if to.x() > x {
            Direction::East
        } else {
            Direction::West
        };
        links.push(Link {
            from: TileId::from_xy(x, y),
            dir,
        });
        x = if to.x() > x { x + 1 } else { x - 1 };
    }
    while y != to.y() {
        let dir = if to.y() > y {
            Direction::North
        } else {
            Direction::South
        };
        links.push(Link {
            from: TileId::from_xy(x, y),
            dir,
        });
        y = if to.y() > y { y + 1 } else { y - 1 };
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(NUM_TILES, 24);
        assert_eq!(NUM_CORES, 48);
        assert_eq!(CoreId::all().count(), 48);
        assert_eq!(TileId::all().count(), 24);
    }

    #[test]
    fn core_tile_mapping() {
        assert_eq!(CoreId::new(0).tile(), TileId::new(0));
        assert_eq!(CoreId::new(1).tile(), TileId::new(0));
        assert_eq!(CoreId::new(2).tile(), TileId::new(1));
        assert_eq!(CoreId::new(47).tile(), TileId::new(23));
        assert_eq!(CoreId::new(5).slot(), 1);
        assert_eq!(CoreId::new(4).slot(), 0);
    }

    #[test]
    fn tile_xy_roundtrip() {
        for t in TileId::all() {
            assert_eq!(TileId::from_xy(t.x(), t.y()), t);
        }
        assert_eq!(TileId::new(0).x(), 0);
        assert_eq!(TileId::new(23).x(), 5);
        assert_eq!(TileId::new(23).y(), 3);
    }

    #[test]
    fn quadrant_memory_controllers() {
        // Bottom-left quadrant -> mc0 at (0,0)
        assert_eq!(TileId::from_xy(0, 0).memory_controller(), McId::new(0));
        assert_eq!(TileId::from_xy(2, 1).memory_controller(), McId::new(0));
        // Bottom-right -> mc1 at (5,0)
        assert_eq!(TileId::from_xy(3, 0).memory_controller(), McId::new(1));
        assert_eq!(TileId::from_xy(5, 1).memory_controller(), McId::new(1));
        // Top-left -> mc2 at (0,3)
        assert_eq!(TileId::from_xy(0, 2).memory_controller(), McId::new(2));
        // Top-right -> mc3 at (5,3)
        assert_eq!(TileId::from_xy(5, 3).memory_controller(), McId::new(3));
        // Each quadrant has exactly 6 tiles.
        for mc in McId::all() {
            let n = TileId::all()
                .filter(|t| t.memory_controller() == mc)
                .count();
            assert_eq!(n, 6, "{mc} serves {n} tiles");
        }
    }

    #[test]
    fn mc_attach_tiles_are_corners() {
        assert_eq!(McId::new(0).attach_tile(), TileId::from_xy(0, 0));
        assert_eq!(McId::new(1).attach_tile(), TileId::from_xy(5, 0));
        assert_eq!(McId::new(2).attach_tile(), TileId::from_xy(0, 3));
        assert_eq!(McId::new(3).attach_tile(), TileId::from_xy(5, 3));
        // A controller's attach tile is inside the quadrant it serves.
        for mc in McId::all() {
            assert_eq!(mc.attach_tile().memory_controller(), mc);
        }
    }

    #[test]
    fn xy_route_lengths_and_continuity() {
        let a = TileId::from_xy(1, 1);
        let b = TileId::from_xy(4, 3);
        let route = xy_route(a, b);
        assert_eq!(route.len() as u8, a.hops_to(b));
        // Route is continuous and x-first.
        let mut cur = a;
        for link in &route {
            assert_eq!(link.from, cur);
            cur = link.to();
        }
        assert_eq!(cur, b);
        assert!(matches!(route[0].dir, Direction::East));
    }

    #[test]
    fn xy_route_self_is_empty() {
        let t = TileId::from_xy(3, 2);
        assert!(xy_route(t, t).is_empty());
    }

    #[test]
    fn link_dense_indices_unique() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for t in TileId::all() {
            for dir in [
                Direction::East,
                Direction::West,
                Direction::North,
                Direction::South,
            ] {
                let l = Link { from: t, dir };
                assert!(l.dense_index() < Link::DENSE_COUNT);
                assert!(seen.insert(l.dense_index()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_id_bounds() {
        CoreId::new(48);
    }
}
