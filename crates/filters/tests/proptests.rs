//! Property-based tests of the filter stages and strip decomposition.

use proptest::prelude::*;
use scc_filters::{
    sepia::sepia_pixel, vswap, Blur, Flicker, FrameCtx, Image, ImageFilter, Scratch, Sepia,
    StripInfo, VSwap,
};

/// An arbitrary small image with arbitrary pixels.
fn arb_image(max_w: u32, max_h: u32) -> impl Strategy<Value = Image> {
    (1..=max_w, 1..=max_h).prop_flat_map(|(w, h)| {
        prop::collection::vec(any::<u8>(), (w * h * 4) as usize)
            .prop_map(move |data| Image::from_raw(w, h, data))
    })
}

fn whole(img: &Image, frame: u64, seed: u64) -> FrameCtx {
    FrameCtx::whole_frame(frame, seed, img.width(), img.height())
}

proptest! {
    #[test]
    fn sepia_output_always_channel_ordered(r in 0f32..=1.0, g in 0f32..=1.0, b in 0f32..=1.0) {
        let [or, og, ob] = sepia_pixel(r, g, b);
        prop_assert!(or >= og && og >= ob, "not sepia-toned: ({or},{og},{ob})");
        prop_assert!((0.0..=1.0).contains(&or));
        prop_assert!((0.0..=1.0).contains(&ob));
    }

    #[test]
    fn sepia_is_monotone_in_luminance(
        a in 0f32..=1.0, b in 0f32..=1.0
    ) {
        // Brighter grey input -> brighter sepia output, channel-wise.
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let out_lo = sepia_pixel(lo, lo, lo);
        let out_hi = sepia_pixel(hi, hi, hi);
        for c in 0..3 {
            prop_assert!(out_hi[c] >= out_lo[c] - 1e-6);
        }
    }

    #[test]
    fn swap_is_an_involution(img in arb_image(16, 16)) {
        let ctx = whole(&img, 0, 0);
        let mut twice = img.clone();
        VSwap.apply(&mut twice, &ctx);
        VSwap.apply(&mut twice, &ctx);
        prop_assert_eq!(twice, img);
    }

    #[test]
    fn blur_stays_within_input_range(img in arb_image(12, 12)) {
        // Box blur output channels stay within the min/max of the input.
        let (mut lo, mut hi) = ([255u8; 3], [0u8; 3]);
        for y in 0..img.height() {
            for x in 0..img.width() {
                let p = img.get(x, y);
                for c in 0..3 {
                    lo[c] = lo[c].min(p[c]);
                    hi[c] = hi[c].max(p[c]);
                }
            }
        }
        let mut blurred = img.clone();
        Blur::default().apply(&mut blurred, &whole(&img, 0, 0));
        for y in 0..img.height() {
            for x in 0..img.width() {
                let p = blurred.get(x, y);
                for c in 0..3 {
                    prop_assert!(p[c] >= lo[c] && p[c] <= hi[c]);
                }
            }
        }
    }

    #[test]
    fn flicker_shifts_every_pixel_uniformly(
        img in arb_image(10, 10),
        frame in 0u64..50,
        seed in any::<u64>(),
    ) {
        let f = Flicker::default();
        let ctx = whole(&img, frame, seed);
        let offset = f.offset(&ctx);
        let mut out = img.clone();
        f.apply(&mut out, &ctx);
        let d8 = (offset * 255.0).round();
        for y in 0..img.height() {
            for x in 0..img.width() {
                let a = img.get(x, y);
                let b = out.get(x, y);
                for c in 0..3 {
                    let expect = (a[c] as f32 + d8).clamp(0.0, 255.0);
                    // Allow 1 quantisation step of slack.
                    prop_assert!((b[c] as f32 - expect).abs() <= 1.0);
                }
                prop_assert_eq!(a[3], b[3], "alpha changed");
            }
        }
    }

    #[test]
    fn split_assemble_identity(img in arb_image(16, 16), n in 1u32..8) {
        let n = n.min(img.height());
        let strips = img.split_strips(n);
        prop_assert_eq!(Image::assemble(&strips), img);
    }

    #[test]
    fn strip_processing_equals_whole_frame_for_pixelwise_filters(
        img in arb_image(16, 16),
        n in 1u32..6,
        frame in 0u64..20,
        seed in any::<u64>(),
    ) {
        let n = n.min(img.height());
        let filters: Vec<Box<dyn ImageFilter>> = vec![
            Box::new(Sepia),
            Box::new(Scratch::default()),
            Box::new(Flicker::default()),
        ];
        // Whole frame.
        let mut reference = img.clone();
        let ctx = whole(&img, frame, seed);
        for f in &filters {
            f.apply(&mut reference, &ctx);
        }
        // Strips.
        let mut strips = img.split_strips(n);
        for (info, strip) in &mut strips {
            let ctx = FrameCtx {
                frame_id: frame,
                run_seed: seed,
                strip: *info,
                full_width: img.width(),
            };
            for f in &filters {
                f.apply(strip, &ctx);
            }
        }
        prop_assert_eq!(Image::assemble(&strips), reference);
    }

    #[test]
    fn per_strip_swap_with_mirrored_assembly_is_global_flip(
        img in arb_image(12, 12),
        n in 1u32..6,
    ) {
        let n = n.min(img.height());
        let mut reference = img.clone();
        VSwap.apply(&mut reference, &whole(&img, 0, 0));
        let mut strips = img.split_strips(n);
        for (info, strip) in &mut strips {
            let ctx = FrameCtx {
                frame_id: 0,
                run_seed: 0,
                strip: *info,
                full_width: img.width(),
            };
            VSwap.apply(strip, &ctx);
            *info = vswap::mirrored_info(*info);
        }
        prop_assert_eq!(Image::assemble(&strips), reference);
    }

    #[test]
    fn scratch_plan_independent_of_strip(
        frame in 0u64..100,
        seed in any::<u64>(),
        y0 in 0u32..64,
    ) {
        let s = Scratch::default();
        let whole_ctx = FrameCtx::whole_frame(frame, seed, 128, 128);
        let strip_ctx = FrameCtx {
            frame_id: frame,
            run_seed: seed,
            strip: StripInfo {
                index: 1,
                count: 2,
                y0,
                height: 64,
                full_height: 128,
            },
            full_width: 128,
        };
        prop_assert_eq!(s.plan(&whole_ctx), s.plan(&strip_ctx));
    }

    #[test]
    fn work_units_are_finite_and_nonnegative(
        img in arb_image(12, 12),
        frame in 0u64..20,
    ) {
        let ctx = whole(&img, frame, 5);
        let filters: Vec<Box<dyn ImageFilter>> = vec![
            Box::new(Sepia),
            Box::new(Blur::default()),
            Box::new(Scratch::default()),
            Box::new(Flicker::default()),
            Box::new(VSwap),
        ];
        for f in &filters {
            let w = f.work_units(&img, &ctx);
            prop_assert!(w.is_finite() && w >= 0.0, "{}: {w}", f.name());
            let t = f.traffic(&img, &ctx);
            // Scratch can revisit columns (plans may repeat an x), so the
            // only hard bound is nonnegativity plus a generous ceiling.
            prop_assert!(t.read_bytes <= img.byte_len() * 16);
            prop_assert!(t.write_bytes <= img.byte_len() * 16);
        }
    }
}
