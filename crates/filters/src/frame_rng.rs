//! Deterministic per-frame randomness.
//!
//! The scratch and flicker stages draw random numbers (§IV). For the
//! parallel decomposition to be *consistent* — a scratch must stay one
//! continuous vertical line across all strips, and every strip of a frame
//! must flicker by the same amount — all pipelines must see the same
//! random values for the same frame. We derive one RNG per `(seed, frame)`
//! pair with SplitMix64, so any stage on any core can regenerate the
//! frame's randomness without communication, and whole runs are exactly
//! reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step — a tiny, well-distributed 64-bit mixer.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reproducible RNG for one frame of one run.
pub fn frame_rng(run_seed: u64, frame_id: u64) -> StdRng {
    let mixed = splitmix64(run_seed ^ splitmix64(frame_id));
    StdRng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let a: Vec<u32> = frame_rng(42, 7)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = frame_rng(42, 7)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_frames_different_streams() {
        let a: u64 = frame_rng(42, 1).gen();
        let b: u64 = frame_rng(42, 2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_different_streams() {
        let a: u64 = frame_rng(1, 0).gen();
        let b: u64 = frame_rng(2, 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads_lsbs() {
        // Consecutive inputs should produce wildly different outputs.
        let x = splitmix64(0);
        let y = splitmix64(1);
        assert_ne!(x, y);
        assert!((x ^ y).count_ones() > 10);
    }
}
