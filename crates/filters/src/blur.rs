//! Blur stage (BS): box blur over a square neighbourhood.
//!
//! "Pixels are transformed with respect to the neighboring pixels by
//! calculating the average color of these pixels. To work from the
//! original data, a second buffer is required" (§IV). This is the most
//! expensive filter stage in the paper's measurements — the 3×3 (or
//! larger) gather makes it both compute- and memory-heavy.

use crate::chunk::par_row_chunks;
use crate::filter::{FrameCtx, ImageFilter, Traffic};
use crate::image::{Image, BYTES_PER_PIXEL};

/// Box blur with configurable radius (radius 1 = 3×3 window).
#[derive(Debug, Clone, Copy)]
pub struct Blur {
    pub radius: u32,
}

impl Default for Blur {
    fn default() -> Self {
        Blur { radius: 1 }
    }
}

impl Blur {
    pub fn new(radius: u32) -> Blur {
        assert!(radius >= 1, "radius 0 is a no-op blur");
        Blur { radius }
    }

    fn window(&self) -> u64 {
        let d = (2 * self.radius + 1) as u64;
        d * d
    }
}

/// The shared kernel: average the window around every pixel of row `y`,
/// reading the pristine `src` buffer and writing `out_row` (that row's
/// bytes of the destination). Blur is a pure function of (src, y), so the
/// sequential path and any row chunk of the parallel one run the exact
/// same integer arithmetic.
fn blur_row(src: &Image, y: u32, out_row: &mut [u8], r: i64) {
    let w = src.width();
    let h = src.height();
    for x in 0..w {
        let mut acc = [0u32; 3];
        let mut n = 0u32;
        for dy in -r..=r {
            for dx in -r..=r {
                let sx = x as i64 + dx;
                let sy = y as i64 + dy;
                if sx < 0 || sy < 0 || sx >= w as i64 || sy >= h as i64 {
                    continue;
                }
                let p = src.get(sx as u32, sy as u32);
                acc[0] += p[0] as u32;
                acc[1] += p[1] as u32;
                acc[2] += p[2] as u32;
                n += 1;
            }
        }
        let o = x as usize * BYTES_PER_PIXEL;
        out_row[o] = (acc[0] / n) as u8;
        out_row[o + 1] = (acc[1] / n) as u8;
        out_row[o + 2] = (acc[2] / n) as u8;
        // Alpha stays whatever the destination row held (the source value).
    }
}

impl ImageFilter for Blur {
    fn name(&self) -> &'static str {
        "blur"
    }

    fn apply(&self, img: &mut Image, ctx: &FrameCtx) {
        self.apply_chunked(img, ctx, 1);
    }

    fn apply_chunked(&self, img: &mut Image, _ctx: &FrameCtx, workers: usize) {
        let r = self.radius as i64;
        let row_bytes = img.width() as usize * BYTES_PER_PIXEL;
        // The second buffer the paper describes: blur must read original
        // values, not partially blurred ones — and it is what makes the
        // row decomposition race-free (workers share `src` read-only).
        let src = img.clone();
        par_row_chunks(img, workers, |y0, rows| {
            for (dy, row) in rows.chunks_exact_mut(row_bytes).enumerate() {
                blur_row(&src, y0 + dy as u32, row, r);
            }
        });
    }

    fn work_units(&self, img: &Image, _ctx: &FrameCtx) -> f64 {
        // One unit per pixel per window element gathered: a 3×3 blur is
        // ~9 units/pixel, several times the 1 unit/pixel of sepia —
        // matching its rank as the slowest filter stage (Figure 8).
        img.pixel_count() as f64 * self.window() as f64 * 0.45
    }

    fn traffic(&self, img: &Image, _ctx: &FrameCtx) -> Traffic {
        // Reads the source buffer, writes the second buffer.
        Traffic {
            read_bytes: img.byte_len(),
            write_bytes: img.byte_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(w: u32, h: u32) -> FrameCtx {
        FrameCtx::whole_frame(0, 0, w, h)
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let mut img = Image::new(8, 8);
        img.fill([100, 150, 200, 255]);
        Blur::default().apply(&mut img, &ctx(8, 8));
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(img.get(x, y), [100, 150, 200, 255]);
            }
        }
    }

    #[test]
    fn blur_averages_neighbourhood() {
        // A lone white pixel in black spreads to 255/9 = 28 in its window.
        let mut img = Image::new(5, 5);
        img.set(2, 2, [255, 255, 255, 255]);
        Blur::default().apply(&mut img, &ctx(5, 5));
        assert_eq!(img.get(2, 2)[0], 28);
        assert_eq!(img.get(1, 1)[0], 28);
        assert_eq!(img.get(0, 0)[0], 0, "outside the 3x3 window");
    }

    #[test]
    fn border_uses_partial_window() {
        // A 2x1 image: each pixel averages the two.
        let mut img = Image::new(2, 1);
        img.set(0, 0, [0, 0, 0, 255]);
        img.set(1, 0, [200, 0, 0, 255]);
        Blur::default().apply(&mut img, &ctx(2, 1));
        assert_eq!(img.get(0, 0)[0], 100);
        assert_eq!(img.get(1, 0)[0], 100);
    }

    #[test]
    fn blur_reduces_contrast() {
        let mut img = Image::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                let v = if (x + y) % 2 == 0 { 255 } else { 0 };
                img.set(x, y, [v, v, v, 255]);
            }
        }
        let before_spread = 255;
        Blur::default().apply(&mut img, &ctx(16, 16));
        let mut max = 0u8;
        let mut min = 255u8;
        for y in 0..16 {
            for x in 0..16 {
                let v = img.get(x, y)[0];
                max = max.max(v);
                min = min.min(v);
            }
        }
        assert!((max - min) < before_spread, "contrast must shrink");
    }

    #[test]
    fn larger_radius_is_more_work() {
        let img = Image::new(10, 10);
        let c = ctx(10, 10);
        assert!(Blur::new(2).work_units(&img, &c) > Blur::new(1).work_units(&img, &c));
    }

    #[test]
    fn alpha_preserved() {
        let mut img = Image::new(3, 3);
        img.set(1, 1, [10, 20, 30, 42]);
        Blur::default().apply(&mut img, &ctx(3, 3));
        assert_eq!(img.get(1, 1)[3], 42);
    }

    #[test]
    #[should_panic(expected = "no-op blur")]
    fn zero_radius_rejected() {
        Blur::new(0);
    }
}
