//! Blur stage (BS): box blur over a square neighbourhood.
//!
//! "Pixels are transformed with respect to the neighboring pixels by
//! calculating the average color of these pixels. To work from the
//! original data, a second buffer is required" (§IV). This is the most
//! expensive filter stage in the paper's measurements — the 3×3 (or
//! larger) gather makes it both compute- and memory-heavy.

use crate::backend::KernelBackend;
use crate::chunk::par_row_chunks;
use crate::filter::{FrameCtx, ImageFilter, Traffic};
use crate::image::{Image, BYTES_PER_PIXEL};

/// Box blur with configurable radius (radius 1 = 3×3 window).
#[derive(Debug, Clone, Copy)]
pub struct Blur {
    pub radius: u32,
}

impl Default for Blur {
    fn default() -> Self {
        Blur { radius: 1 }
    }
}

impl Blur {
    pub fn new(radius: u32) -> Blur {
        assert!(radius >= 1, "radius 0 is a no-op blur");
        Blur { radius }
    }

    fn window(&self) -> u64 {
        let d = (2 * self.radius + 1) as u64;
        d * d
    }
}

/// The shared kernel: average the window around every pixel of row `y`,
/// reading the pristine `src` buffer and writing `out_row` (that row's
/// bytes of the destination). Blur is a pure function of (src, y), so the
/// sequential path and any row chunk of the parallel one run the exact
/// same integer arithmetic.
fn blur_row(src: &Image, y: u32, out_row: &mut [u8], r: i64) {
    let w = src.width();
    let h = src.height();
    for x in 0..w {
        let mut acc = [0u32; 3];
        let mut n = 0u32;
        for dy in -r..=r {
            for dx in -r..=r {
                let sx = x as i64 + dx;
                let sy = y as i64 + dy;
                if sx < 0 || sy < 0 || sx >= w as i64 || sy >= h as i64 {
                    continue;
                }
                let p = src.get(sx as u32, sy as u32);
                acc[0] += p[0] as u32;
                acc[1] += p[1] as u32;
                acc[2] += p[2] as u32;
                n += 1;
            }
        }
        let o = x as usize * BYTES_PER_PIXEL;
        out_row[o] = (acc[0] / n) as u8;
        out_row[o + 1] = (acc[1] / n) as u8;
        out_row[o + 2] = (acc[2] / n) as u8;
        // Alpha stays whatever the destination row held (the source value).
    }
}

/// Exact unsigned division by a small run-time constant via the
/// round-up multiply-shift (Granlund–Montgomery): `q = (a·m) >> 32`
/// with `m = ⌊2³²/n⌋ + 1` equals `a / n` for every `a ≤ 255·n` as long
/// as `255·n² < 2³²` (windows up to 63×63). Outside that envelope it
/// falls back to the hardware divide — same quotient either way.
#[derive(Clone, Copy)]
struct ExactDiv {
    n: u32,
    m: u64,
    exact: bool,
}

impl ExactDiv {
    fn new(n: u32) -> ExactDiv {
        ExactDiv {
            n,
            m: (1u64 << 32) / n as u64 + 1,
            exact: 255 * (n as u64) * (n as u64) < (1u64 << 32),
        }
    }

    #[inline]
    fn div(self, a: u32) -> u32 {
        if self.exact {
            ((a as u64 * self.m) >> 32) as u32
        } else {
            a / self.n
        }
    }
}

fn add_row(src: &Image, y: u32, cr: &mut [u32], cg: &mut [u32], cb: &mut [u32]) {
    let row = src.row(y);
    for (x, px) in row.chunks_exact(BYTES_PER_PIXEL).enumerate() {
        cr[x] += px[0] as u32;
        cg[x] += px[1] as u32;
        cb[x] += px[2] as u32;
    }
}

fn sub_row(src: &Image, y: u32, cr: &mut [u32], cg: &mut [u32], cb: &mut [u32]) {
    let row = src.row(y);
    for (x, px) in row.chunks_exact(BYTES_PER_PIXEL).enumerate() {
        cr[x] -= px[0] as u32;
        cg[x] -= px[1] as u32;
        cb[x] -= px[2] as u32;
    }
}

/// The vectorized backend's kernel: the same box average computed as a
/// separable sliding window. Per-column vertical sums slide down the
/// chunk (add the entering row, subtract the leaving row) and a
/// horizontal running sum slides across each output row, so the
/// per-pixel cost is O(1) instead of O((2r+1)²). All partial sums are
/// exact u32 integers and u32 addition is associative and commutative,
/// so `acc` and `n` — and therefore `acc / n` — are bit-identical to
/// the naive gather of [`blur_row`] for every pixel, including partial
/// windows at all four borders.
fn blur_chunk_sliding(src: &Image, y0: u32, out_rows: &mut [u8], r: i64) {
    let w = src.width() as usize;
    let h = src.height() as i64;
    let row_bytes = w * BYTES_PER_PIXEL;
    let mut cr = vec![0u32; w];
    let mut cg = vec![0u32; w];
    let mut cb = vec![0u32; w];
    // Vertical window of the chunk's first output row.
    let lo = (y0 as i64 - r).max(0);
    let hi = (y0 as i64 + r).min(h - 1);
    for sy in lo..=hi {
        add_row(src, sy as u32, &mut cr, &mut cg, &mut cb);
    }
    let mut ny = (hi - lo + 1) as u32;
    let full_nx = ((2 * r + 1) as u64).min(w as u64) as u32;
    for (dy, out_row) in out_rows.chunks_exact_mut(row_bytes).enumerate() {
        let y = y0 as i64 + dy as i64;
        if dy > 0 {
            let leave = y - 1 - r;
            if leave >= 0 {
                sub_row(src, leave as u32, &mut cr, &mut cg, &mut cb);
                ny -= 1;
            }
            let enter = y + r;
            if enter < h {
                add_row(src, enter as u32, &mut cr, &mut cg, &mut cb);
                ny += 1;
            }
        }
        // Horizontal window of x = 0.
        let mut ar = 0u32;
        let mut ag = 0u32;
        let mut ab = 0u32;
        let mut nx = 0u32;
        for cx in 0..=(r.min(w as i64 - 1) as usize) {
            ar += cr[cx];
            ag += cg[cx];
            ab += cb[cx];
            nx += 1;
        }
        // One divider for the (constant) interior window, hoisted out
        // of the loop; border pixels with partial windows divide the
        // plain way.
        let interior = ExactDiv::new(ny * full_nx);
        for x in 0..w {
            let (qr, qg, qb) = if nx == full_nx {
                (interior.div(ar), interior.div(ag), interior.div(ab))
            } else {
                let n = ny * nx;
                (ar / n, ag / n, ab / n)
            };
            let o = x * BYTES_PER_PIXEL;
            out_row[o] = qr as u8;
            out_row[o + 1] = qg as u8;
            out_row[o + 2] = qb as u8;
            // Alpha stays whatever the destination row held.
            let enter = x as i64 + 1 + r;
            if enter < w as i64 {
                ar += cr[enter as usize];
                ag += cg[enter as usize];
                ab += cb[enter as usize];
                nx += 1;
            }
            let leave = x as i64 - r;
            if leave >= 0 {
                ar -= cr[leave as usize];
                ag -= cg[leave as usize];
                ab -= cb[leave as usize];
                nx -= 1;
            }
        }
    }
}

impl ImageFilter for Blur {
    fn name(&self) -> &'static str {
        "blur"
    }

    fn apply(&self, img: &mut Image, ctx: &FrameCtx) {
        self.apply_chunked(img, ctx, 1);
    }

    fn apply_chunked(&self, img: &mut Image, _ctx: &FrameCtx, workers: usize) {
        let r = self.radius as i64;
        let row_bytes = img.width() as usize * BYTES_PER_PIXEL;
        // The second buffer the paper describes: blur must read original
        // values, not partially blurred ones — and it is what makes the
        // row decomposition race-free (workers share `src` read-only).
        let src = img.clone();
        par_row_chunks(img, workers, |y0, rows| {
            for (dy, row) in rows.chunks_exact_mut(row_bytes).enumerate() {
                blur_row(&src, y0 + dy as u32, row, r);
            }
        });
    }

    fn apply_vectored(
        &self,
        img: &mut Image,
        ctx: &FrameCtx,
        backend: KernelBackend,
        workers: usize,
    ) {
        match backend {
            KernelBackend::Scalar => self.apply_chunked(img, ctx, workers),
            KernelBackend::Simd => {
                let r = self.radius as i64;
                let src = img.clone();
                par_row_chunks(img, workers, |y0, rows| {
                    blur_chunk_sliding(&src, y0, rows, r)
                });
            }
        }
    }

    fn work_units(&self, img: &Image, _ctx: &FrameCtx) -> f64 {
        // One unit per pixel per window element gathered: a 3×3 blur is
        // ~9 units/pixel, several times the 1 unit/pixel of sepia —
        // matching its rank as the slowest filter stage (Figure 8).
        img.pixel_count() as f64 * self.window() as f64 * 0.45
    }

    fn traffic(&self, img: &Image, _ctx: &FrameCtx) -> Traffic {
        // Reads the source buffer, writes the second buffer.
        Traffic {
            read_bytes: img.byte_len(),
            write_bytes: img.byte_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(w: u32, h: u32) -> FrameCtx {
        FrameCtx::whole_frame(0, 0, w, h)
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let mut img = Image::new(8, 8);
        img.fill([100, 150, 200, 255]);
        Blur::default().apply(&mut img, &ctx(8, 8));
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(img.get(x, y), [100, 150, 200, 255]);
            }
        }
    }

    #[test]
    fn blur_averages_neighbourhood() {
        // A lone white pixel in black spreads to 255/9 = 28 in its window.
        let mut img = Image::new(5, 5);
        img.set(2, 2, [255, 255, 255, 255]);
        Blur::default().apply(&mut img, &ctx(5, 5));
        assert_eq!(img.get(2, 2)[0], 28);
        assert_eq!(img.get(1, 1)[0], 28);
        assert_eq!(img.get(0, 0)[0], 0, "outside the 3x3 window");
    }

    #[test]
    fn border_uses_partial_window() {
        // A 2x1 image: each pixel averages the two.
        let mut img = Image::new(2, 1);
        img.set(0, 0, [0, 0, 0, 255]);
        img.set(1, 0, [200, 0, 0, 255]);
        Blur::default().apply(&mut img, &ctx(2, 1));
        assert_eq!(img.get(0, 0)[0], 100);
        assert_eq!(img.get(1, 0)[0], 100);
    }

    #[test]
    fn blur_reduces_contrast() {
        let mut img = Image::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                let v = if (x + y) % 2 == 0 { 255 } else { 0 };
                img.set(x, y, [v, v, v, 255]);
            }
        }
        let before_spread = 255;
        Blur::default().apply(&mut img, &ctx(16, 16));
        let mut max = 0u8;
        let mut min = 255u8;
        for y in 0..16 {
            for x in 0..16 {
                let v = img.get(x, y)[0];
                max = max.max(v);
                min = min.min(v);
            }
        }
        assert!((max - min) < before_spread, "contrast must shrink");
    }

    #[test]
    fn larger_radius_is_more_work() {
        let img = Image::new(10, 10);
        let c = ctx(10, 10);
        assert!(Blur::new(2).work_units(&img, &c) > Blur::new(1).work_units(&img, &c));
    }

    #[test]
    fn alpha_preserved() {
        let mut img = Image::new(3, 3);
        img.set(1, 1, [10, 20, 30, 42]);
        Blur::default().apply(&mut img, &ctx(3, 3));
        assert_eq!(img.get(1, 1)[3], 42);
    }

    #[test]
    #[should_panic(expected = "no-op blur")]
    fn zero_radius_rejected() {
        Blur::new(0);
    }

    #[test]
    fn exact_div_matches_hardware_divide_over_the_full_range() {
        // Every divisor a blur window can produce (ny·nx for windows up
        // to 7×7) across the whole dividend envelope a ≤ 255·n.
        for n in 1u32..=49 {
            let d = ExactDiv::new(n);
            assert!(d.exact);
            for a in 0..=255 * n {
                assert_eq!(d.div(a), a / n, "n={n} a={a}");
            }
        }
        // Beyond the envelope the fallback path must still divide.
        let big = ExactDiv::new(5000);
        assert!(!big.exact);
        assert_eq!(big.div(1_275_000), 255);
    }

    #[test]
    fn sliding_window_is_bit_identical_to_naive_gather() {
        // Degenerate and remainder-heavy geometries × radii, sequential
        // and chunked: the sliding reformulation must match the scalar
        // gather byte for byte.
        for (w, h) in [
            (1u32, 1u32),
            (1, 9),
            (9, 1),
            (2, 2),
            (7, 5),
            (23, 17),
            (64, 48),
        ] {
            let mut img = Image::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    img.set(
                        x,
                        y,
                        [(x * 31 + y * 7) as u8, (x ^ y) as u8, (x + y) as u8, 200],
                    );
                }
            }
            for radius in [1u32, 2, 3, 7] {
                let blur = Blur::new(radius);
                let ctx = FrameCtx::whole_frame(0, 0, w, h);
                let mut naive = img.clone();
                blur.apply(&mut naive, &ctx);
                for workers in [1usize, 2, 3, 8] {
                    let mut fast = img.clone();
                    blur.apply_vectored(&mut fast, &ctx, KernelBackend::Simd, workers);
                    assert_eq!(
                        fast, naive,
                        "diverged at {w}x{h} r={radius} workers={workers}"
                    );
                }
            }
        }
    }
}
