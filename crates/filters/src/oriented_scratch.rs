//! Extension from §IV: "Our filter provides only vertical scratches but
//! the system can be easily extended to allow scratches of arbitrary
//! orientation and length." This stage implements that extension:
//! scratches are line segments with a random position, angle and length,
//! drawn with a DDA walk in *full-frame* coordinates, so independently
//! processed strips still compose into continuous scratch lines.

use crate::filter::{FrameCtx, ImageFilter, Traffic};
use crate::frame_rng::frame_rng;
use crate::image::Image;
use rand::Rng;

/// One scratch segment in full-frame pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub x0: f32,
    pub y0: f32,
    pub x1: f32,
    pub y1: f32,
}

/// Scratches with arbitrary orientation and length.
#[derive(Debug, Clone, Copy)]
pub struct OrientedScratch {
    /// Maximum scratches per frame (inclusive).
    pub max_scratches: u32,
    /// Maximum deviation from vertical, radians (π/2 allows any angle).
    pub max_tilt: f32,
    /// Scratch length range as a fraction of the frame height.
    pub length_range: (f32, f32),
}

impl Default for OrientedScratch {
    fn default() -> Self {
        OrientedScratch {
            max_scratches: 6,
            max_tilt: 0.35,
            length_range: (0.25, 1.0),
        }
    }
}

/// Per-frame plan: colour plus segments.
#[derive(Debug, Clone, PartialEq)]
pub struct OrientedPlan {
    pub color: [u8; 3],
    pub segments: Vec<Segment>,
}

impl OrientedScratch {
    /// Derive the frame's scratch segments from the per-frame RNG
    /// (domain-separated from the classic scratch filter).
    pub fn plan(&self, ctx: &FrameCtx) -> OrientedPlan {
        let mut rng = frame_rng(ctx.run_seed, ctx.frame_id.wrapping_add(0x0511_E17E));
        let count = rng.gen_range(0..=self.max_scratches);
        let shade: u8 = rng.gen_range(170..=255);
        let w = ctx.full_width as f32;
        let h = ctx.strip.full_height as f32;
        let segments = (0..count)
            .map(|_| {
                let cx = rng.gen_range(0.0..w);
                let cy = rng.gen_range(0.0..h);
                let tilt = rng.gen_range(-self.max_tilt..=self.max_tilt);
                let len = rng.gen_range(self.length_range.0..=self.length_range.1) * h;
                // Angle measured from vertical.
                let (dx, dy) = (tilt.sin(), tilt.cos());
                Segment {
                    x0: cx - dx * len * 0.5,
                    y0: cy - dy * len * 0.5,
                    x1: cx + dx * len * 0.5,
                    y1: cy + dy * len * 0.5,
                }
            })
            .collect();
        OrientedPlan {
            color: [shade, shade, shade],
            segments,
        }
    }
}

impl ImageFilter for OrientedScratch {
    fn name(&self) -> &'static str {
        "oriented-scratch"
    }

    fn apply(&self, img: &mut Image, ctx: &FrameCtx) {
        let plan = self.plan(ctx);
        let y_off = ctx.strip.y0 as f32;
        for seg in &plan.segments {
            // DDA at sub-pixel steps in full-frame space; paint pixels
            // that land inside this strip.
            let dx = seg.x1 - seg.x0;
            let dy = seg.y1 - seg.y0;
            let steps = dx.abs().max(dy.abs()).ceil().max(1.0) as u32;
            for i in 0..=steps {
                let t = i as f32 / steps as f32;
                let x = seg.x0 + dx * t;
                let y = seg.y0 + dy * t - y_off;
                if x < 0.0 || y < 0.0 {
                    continue;
                }
                let (xi, yi) = (x as u32, y as u32);
                if xi < img.width() && yi < img.height() {
                    let a = img.get(xi, yi)[3];
                    img.set(xi, yi, [plan.color[0], plan.color[1], plan.color[2], a]);
                }
            }
        }
    }

    fn work_units(&self, img: &Image, ctx: &FrameCtx) -> f64 {
        // Work ∝ total segment length clipped to the strip, ~1.5 units per
        // touched pixel like the vertical scratch.
        let plan = self.plan(ctx);
        let total: f32 = plan
            .segments
            .iter()
            .map(|s| ((s.x1 - s.x0).powi(2) + (s.y1 - s.y0).powi(2)).sqrt())
            .sum();
        let strip_share = img.height() as f64 / ctx.strip.full_height as f64;
        total as f64 * strip_share * 1.5
    }

    fn traffic(&self, img: &Image, ctx: &FrameCtx) -> Traffic {
        let bytes = (self.work_units(img, ctx) / 1.5 * 4.0) as u64;
        Traffic {
            read_bytes: bytes,
            write_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::StripInfo;

    fn ctx(frame: u64, w: u32, h: u32) -> FrameCtx {
        FrameCtx::whole_frame(frame, 31, w, h)
    }

    fn frame_with_scratches(s: &OrientedScratch, w: u32, h: u32) -> (u64, OrientedPlan) {
        for f in 0..64 {
            let plan = s.plan(&ctx(f, w, h));
            if !plan.segments.is_empty() {
                return (f, plan);
            }
        }
        panic!("no scratches in 64 frames");
    }

    #[test]
    fn plan_is_deterministic_and_strip_independent() {
        let s = OrientedScratch::default();
        let whole = s.plan(&ctx(9, 64, 64));
        let strip_ctx = FrameCtx {
            frame_id: 9,
            run_seed: 31,
            strip: StripInfo {
                index: 1,
                count: 4,
                y0: 16,
                height: 16,
                full_height: 64,
            },
            full_width: 64,
        };
        assert_eq!(s.plan(&strip_ctx), whole);
    }

    #[test]
    fn segments_respect_parameters() {
        let s = OrientedScratch {
            max_scratches: 8,
            max_tilt: 0.2,
            length_range: (0.3, 0.6),
        };
        let (_, plan) = frame_with_scratches(&s, 100, 100);
        for seg in &plan.segments {
            let dx = seg.x1 - seg.x0;
            let dy = seg.y1 - seg.y0;
            let len = (dx * dx + dy * dy).sqrt();
            assert!((29.0..=61.0).contains(&len), "length {len}");
            // Tilt from vertical stays within max_tilt.
            let tilt = (dx / dy).atan().abs();
            assert!(tilt <= 0.21, "tilt {tilt}");
        }
    }

    #[test]
    fn strips_compose_to_whole_frame() {
        // The defining property of the extension: per-strip application
        // equals whole-frame application.
        let s = OrientedScratch::default();
        let (frame, _) = frame_with_scratches(&s, 48, 48);
        let mut whole = Image::new(48, 48);
        s.apply(&mut whole, &ctx(frame, 48, 48));

        let base = Image::new(48, 48);
        for n in [2u32, 3, 4] {
            let mut strips = base.split_strips(n);
            for (info, strip) in &mut strips {
                let c = FrameCtx {
                    frame_id: frame,
                    run_seed: 31,
                    strip: *info,
                    full_width: 48,
                };
                s.apply(strip, &c);
            }
            assert_eq!(Image::assemble(&strips), whole, "n={n}");
        }
    }

    #[test]
    fn scratches_paint_something() {
        let s = OrientedScratch::default();
        let (frame, plan) = frame_with_scratches(&s, 64, 64);
        let mut img = Image::new(64, 64);
        s.apply(&mut img, &ctx(frame, 64, 64));
        let mut painted = 0;
        for y in 0..64 {
            for x in 0..64 {
                if img.get(x, y)[0] == plan.color[0] && img.get(x, y)[0] > 0 {
                    painted += 1;
                }
            }
        }
        assert!(painted > 4, "only {painted} scratch pixels");
    }

    #[test]
    fn zero_max_never_scratches() {
        let s = OrientedScratch {
            max_scratches: 0,
            ..Default::default()
        };
        for f in 0..8 {
            assert!(s.plan(&ctx(f, 32, 32)).segments.is_empty());
        }
    }

    #[test]
    fn work_scales_with_strip_share() {
        let s = OrientedScratch::default();
        let (frame, _) = frame_with_scratches(&s, 64, 64);
        let whole_img = Image::new(64, 64);
        let whole_work = s.work_units(&whole_img, &ctx(frame, 64, 64));
        let strip_img = Image::new(64, 16);
        let strip_ctx = FrameCtx {
            frame_id: frame,
            run_seed: 31,
            strip: StripInfo {
                index: 0,
                count: 4,
                y0: 0,
                height: 16,
                full_height: 64,
            },
            full_width: 64,
        };
        let strip_work = s.work_units(&strip_img, &strip_ctx);
        assert!((strip_work - whole_work / 4.0).abs() < 1e-6);
    }
}
