//! Scratch stage (ScS): vertical scratches in randomly chosen columns.
//!
//! "When this filter begins, two random numbers are chosen: one for the
//! number of scratches and another one for scratch color. Next, for each
//! scratch, an x-coordinate is randomly chosen. On each of these positions
//! the vertical pixels are replaced by the previously chosen color" (§IV).
//!
//! The randomness is drawn from the per-frame RNG over the *full* image
//! width, so strips processed by independent pipelines produce one
//! continuous scratch line — exactly what a single-pipeline run would
//! paint.

use crate::filter::{FrameCtx, ImageFilter, Traffic};
use crate::frame_rng::frame_rng;
use crate::image::{Image, BYTES_PER_PIXEL};
use rand::Rng;

/// Scratch filter parameters.
#[derive(Debug, Clone, Copy)]
pub struct Scratch {
    /// Maximum number of scratches per frame (inclusive).
    pub max_scratches: u32,
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch { max_scratches: 8 }
    }
}

/// The per-frame scratch plan, derivable by any stage from the frame id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScratchPlan {
    pub color: [u8; 3],
    pub columns: Vec<u32>,
}

impl Scratch {
    /// Compute the frame's scratch plan (count, colour, x positions).
    pub fn plan(&self, ctx: &FrameCtx) -> ScratchPlan {
        let mut rng = frame_rng(ctx.run_seed, ctx.frame_id);
        let count = rng.gen_range(0..=self.max_scratches);
        // A light gray scratch tone, like emulsion damage.
        let shade: u8 = rng.gen_range(180..=255);
        let columns = (0..count)
            .map(|_| rng.gen_range(0..ctx.full_width))
            .collect();
        ScratchPlan {
            color: [shade, shade, shade],
            columns,
        }
    }
}

/// Paint the frame's scratch columns into one row: the row-local core
/// of [`Scratch::apply`] (same skip for columns beyond the row width,
/// same alpha preservation), shared with the fused pass.
pub(crate) fn paint_row(row: &mut [u8], color: &[u8; 3], columns: &[u32]) {
    for &x in columns {
        let o = x as usize * BYTES_PER_PIXEL;
        if o + BYTES_PER_PIXEL <= row.len() {
            row[o..o + 3].copy_from_slice(color);
        }
    }
}

impl ImageFilter for Scratch {
    fn name(&self) -> &'static str {
        "scratch"
    }

    fn apply(&self, img: &mut Image, ctx: &FrameCtx) {
        let plan = self.plan(ctx);
        for &x in &plan.columns {
            if x >= img.width() {
                continue;
            }
            for y in 0..img.height() {
                let a = img.get(x, y)[3];
                img.set(x, y, [plan.color[0], plan.color[1], plan.color[2], a]);
            }
        }
    }

    fn work_units(&self, img: &Image, ctx: &FrameCtx) -> f64 {
        // Only the scratch columns are touched: work is rows × columns,
        // tiny compared to the per-pixel filters (hence the cheapest stage
        // in Figure 8).
        let plan = self.plan(ctx);
        (img.height() as u64 * plan.columns.len() as u64) as f64 * 1.5
    }

    fn traffic(&self, img: &Image, ctx: &FrameCtx) -> Traffic {
        let plan = self.plan(ctx);
        let col_bytes = img.height() as u64 * 4 * plan.columns.len() as u64;
        Traffic {
            read_bytes: col_bytes,
            write_bytes: col_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::StripInfo;

    fn ctx(frame: u64, w: u32, h: u32) -> FrameCtx {
        FrameCtx::whole_frame(frame, 99, w, h)
    }

    #[test]
    fn plan_is_deterministic_per_frame() {
        let s = Scratch::default();
        let c = ctx(5, 100, 50);
        assert_eq!(s.plan(&c), s.plan(&c));
        // A different frame yields a different plan (overwhelmingly).
        let other = s.plan(&ctx(6, 100, 50));
        assert!(s.plan(&c) != other || other.columns.is_empty());
    }

    #[test]
    fn scratches_paint_full_columns() {
        let s = Scratch { max_scratches: 8 };
        // Find a frame that actually has scratches.
        for frame in 0..32 {
            let c = ctx(frame, 64, 32);
            let plan = s.plan(&c);
            if plan.columns.is_empty() {
                continue;
            }
            let mut img = Image::new(64, 32);
            s.apply(&mut img, &c);
            let x = plan.columns[0];
            for y in 0..32 {
                assert_eq!(&img.get(x, y)[..3], &plan.color);
            }
            return;
        }
        panic!("no frame with scratches in 32 tries — RNG broken?");
    }

    #[test]
    fn untouched_columns_stay_black() {
        let s = Scratch { max_scratches: 2 };
        let c = ctx(3, 64, 16);
        let plan = s.plan(&c);
        let mut img = Image::new(64, 16);
        s.apply(&mut img, &c);
        for x in 0..64 {
            if plan.columns.contains(&x) {
                continue;
            }
            for y in 0..16 {
                assert_eq!(img.get(x, y), [0, 0, 0, 255]);
            }
        }
    }

    #[test]
    fn strips_see_the_same_plan() {
        // The plan must depend on the frame, not the strip.
        let s = Scratch::default();
        let whole = s.plan(&ctx(11, 128, 64));
        let strip_ctx = FrameCtx {
            frame_id: 11,
            run_seed: 99,
            strip: StripInfo {
                index: 2,
                count: 4,
                y0: 32,
                height: 16,
                full_height: 64,
            },
            full_width: 128,
        };
        assert_eq!(s.plan(&strip_ctx), whole);
    }

    #[test]
    fn columns_beyond_strip_width_ignored_gracefully() {
        // Full width 100 but a hypothetical narrower buffer: no panic.
        let s = Scratch { max_scratches: 8 };
        let mut c = ctx(1, 100, 10);
        c.full_width = 100;
        let mut img = Image::new(10, 10); // narrower than full_width
        s.apply(&mut img, &c);
    }

    #[test]
    fn work_scales_with_scratch_count() {
        let s = Scratch { max_scratches: 8 };
        let img = Image::new(64, 64);
        // Find two frames with different scratch counts.
        let mut works: Vec<f64> = (0..64)
            .map(|f| s.work_units(&img, &ctx(f, 64, 64)))
            .collect();
        works.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(works[0] < works[works.len() - 1]);
    }

    #[test]
    fn zero_max_means_never_scratches() {
        let s = Scratch { max_scratches: 0 };
        for frame in 0..16 {
            assert!(s.plan(&ctx(frame, 32, 32)).columns.is_empty());
        }
    }
}
