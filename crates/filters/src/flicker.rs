//! Flicker stage (FS): vary each frame's overall brightness.
//!
//! "We choose a random number in the interval [−1/10, 1/10]. This value is
//! added to all pixels' RGB values and clamped to the [0, 1] interval"
//! (§IV). Viewed as a sequence, the random per-frame offsets read as the
//! flicker of an old projector. The offset is a *frame* property: every
//! strip of a frame must shift by the same amount, so it comes from the
//! deterministic per-frame RNG.

use crate::backend::KernelBackend;
use crate::chunk::par_row_chunks;
use crate::filter::{FrameCtx, ImageFilter};
use crate::frame_rng::frame_rng;
use crate::image::{from_unit, to_unit, Image, BYTES_PER_PIXEL};
use rand::Rng;

/// Flicker filter parameters.
#[derive(Debug, Clone, Copy)]
pub struct Flicker {
    /// Maximum absolute brightness offset (the paper uses 1/10).
    pub amplitude: f32,
}

impl Default for Flicker {
    fn default() -> Self {
        Flicker { amplitude: 0.1 }
    }
}

impl Flicker {
    /// The frame's brightness offset in [−amplitude, +amplitude].
    pub fn offset(&self, ctx: &FrameCtx) -> f32 {
        let mut rng = frame_rng(ctx.run_seed, ctx.frame_id.wrapping_add(0x5F1C_7E11));
        rng.gen_range(-self.amplitude..=self.amplitude)
    }
}

/// The shared kernel: add the frame's brightness offset to every RGB byte.
pub(crate) fn shift_bytes(bytes: &mut [u8], d: f32) {
    for px in bytes.chunks_exact_mut(BYTES_PER_PIXEL) {
        for c in px.iter_mut().take(3) {
            *c = from_unit(to_unit(*c) + d);
        }
    }
}

/// The vectorized kernel's strength reduction: the offset is one value
/// per frame and a channel byte has only 256 states, so the whole
/// float path `from_unit(to_unit(c) + d)` collapses into a 256-entry
/// table built once per frame with the *scalar* formula — the per-pixel
/// work becomes three table loads, bit-identical to [`shift_bytes`] by
/// construction.
pub(crate) fn shift_lut(d: f32) -> [u8; 256] {
    let mut lut = [0u8; 256];
    for (c, out) in lut.iter_mut().enumerate() {
        *out = from_unit(to_unit(c as u8) + d);
    }
    lut
}

/// Apply a prebuilt per-frame shift table to every RGB byte.
pub(crate) fn shift_bytes_lut(bytes: &mut [u8], lut: &[u8; 256]) {
    for px in bytes.chunks_exact_mut(BYTES_PER_PIXEL) {
        px[0] = lut[px[0] as usize];
        px[1] = lut[px[1] as usize];
        px[2] = lut[px[2] as usize];
    }
}

impl ImageFilter for Flicker {
    fn name(&self) -> &'static str {
        "flicker"
    }

    fn apply(&self, img: &mut Image, ctx: &FrameCtx) {
        let d = self.offset(ctx);
        shift_bytes(img.as_bytes_mut(), d);
    }

    fn apply_chunked(&self, img: &mut Image, ctx: &FrameCtx, workers: usize) {
        // The single RNG draw happens once, before the fan-out: the offset
        // is a frame property, so every worker shifts by the same amount
        // regardless of how rows are distributed (chunk-rule 2).
        let d = self.offset(ctx);
        par_row_chunks(img, workers, |_, rows| shift_bytes(rows, d));
    }

    fn apply_vectored(
        &self,
        img: &mut Image,
        ctx: &FrameCtx,
        backend: KernelBackend,
        workers: usize,
    ) {
        let d = self.offset(ctx);
        match backend {
            KernelBackend::Scalar => par_row_chunks(img, workers, |_, rows| shift_bytes(rows, d)),
            KernelBackend::Simd => {
                let lut = shift_lut(d);
                par_row_chunks(img, workers, |_, rows| shift_bytes_lut(rows, &lut));
            }
        }
    }

    fn work_units(&self, img: &Image, _ctx: &FrameCtx) -> f64 {
        // "Each pixel is accessed in sequential order but with a minor
        // operation" — lighter than sepia.
        img.pixel_count() as f64 * 0.55
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::StripInfo;

    fn ctx(frame: u64) -> FrameCtx {
        FrameCtx::whole_frame(frame, 7, 16, 16)
    }

    #[test]
    fn offset_is_in_range_and_deterministic() {
        let f = Flicker::default();
        for frame in 0..200 {
            let d = f.offset(&ctx(frame));
            assert!((-0.1..=0.1).contains(&d), "offset {d} out of range");
            assert_eq!(d, f.offset(&ctx(frame)));
        }
    }

    #[test]
    fn offsets_vary_across_frames() {
        let f = Flicker::default();
        let offsets: Vec<f32> = (0..32).map(|fr| f.offset(&ctx(fr))).collect();
        let first = offsets[0];
        assert!(offsets.iter().any(|&d| (d - first).abs() > 1e-4));
    }

    #[test]
    fn clamps_at_both_ends() {
        let f = Flicker { amplitude: 0.5 };
        // Find a frame with a clearly positive offset.
        let frame = (0..200)
            .find(|&fr| f.offset(&ctx(fr)) > 0.2)
            .expect("no positive offset found");
        let mut img = Image::new(2, 1);
        img.set(0, 0, [250, 250, 250, 255]);
        img.set(1, 0, [0, 0, 0, 255]);
        f.apply(&mut img, &ctx(frame));
        assert_eq!(img.get(0, 0)[0], 255, "bright pixel clamps to white");
        assert!(img.get(1, 0)[0] > 0, "dark pixel lifted");
    }

    #[test]
    fn strip_and_whole_frame_agree() {
        let f = Flicker::default();
        let whole = f.offset(&ctx(9));
        let strip_ctx = FrameCtx {
            frame_id: 9,
            run_seed: 7,
            strip: StripInfo {
                index: 1,
                count: 3,
                y0: 5,
                height: 5,
                full_height: 16,
            },
            full_width: 16,
        };
        assert_eq!(f.offset(&strip_ctx), whole);
    }

    #[test]
    fn alpha_untouched() {
        let f = Flicker::default();
        let mut img = Image::new(1, 1);
        img.set(0, 0, [10, 20, 30, 99]);
        f.apply(&mut img, &ctx(0));
        assert_eq!(img.get(0, 0)[3], 99);
    }

    #[test]
    fn lut_kernel_is_bit_identical_to_scalar() {
        // Every byte state × a spread of offsets, including clamping
        // extremes and an offset landing exactly on a rounding boundary.
        for d in [-0.1f32, -0.05, -0.001, 0.0, 0.001, 0.05, 0.1, 0.5, -0.5] {
            let lut = shift_lut(d);
            let mut scalar: Vec<u8> = (0..=255u16)
                .flat_map(|c| [c as u8, c as u8, c as u8, 200])
                .collect();
            let mut fast = scalar.clone();
            shift_bytes(&mut scalar, d);
            shift_bytes_lut(&mut fast, &lut);
            assert_eq!(scalar, fast, "diverged at offset {d}");
        }
    }

    #[test]
    fn flicker_differs_from_scratch_stream() {
        // Both stages draw from frame RNGs; the streams must be decoupled
        // (different domains) so adding a stage doesn't shift the other's
        // randomness.
        let f = Flicker { amplitude: 1.0 };
        let d = f.offset(&ctx(4));
        let mut rng = frame_rng(7, 4);
        let raw: f32 = rng.gen_range(-1.0..=1.0);
        assert_ne!(d, raw, "flicker must use its own RNG domain");
    }
}
