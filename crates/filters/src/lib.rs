//! # scc-filters — the silent-film image filter stages
//!
//! The five image-manipulating stages of the paper's macro pipeline
//! (§IV), implemented exactly as described:
//!
//! * [`sepia::Sepia`] — colour shift with the paper's `S1`/`S2`/`mix`
//!   formula;
//! * [`blur::Blur`] — neighbourhood-average blur through a second buffer
//!   (the most expensive filter stage);
//! * [`scratch::Scratch`] — random vertical scratch columns;
//! * [`flicker::Flicker`] — per-frame brightness offset in [−0.1, 0.1];
//! * [`vswap::VSwap`] — vertical mirror via row swaps.
//!
//! Plus the [`image::Image`] RGBA8 buffer, its sort-first horizontal
//! strip decomposition, the deterministic per-frame RNG that keeps
//! independently processed strips consistent with a single-pipeline run,
//! and the [`chunk`] row-chunk decomposition that lets a single stage
//! spread its kernel over spare cores without changing a pixel.

pub mod backend;
pub mod blur;
pub mod chunk;
pub mod filter;
pub mod flicker;
pub mod frame_rng;
pub mod fuse;
pub mod image;
pub mod lanes;
pub mod oriented_scratch;
pub mod scratch;
pub mod sepia;
pub mod vswap;

pub use backend::KernelBackend;
pub use blur::Blur;
pub use chunk::{chunk_rows, par_row_chunks};
pub use filter::{FrameCtx, ImageFilter, Traffic};
pub use flicker::Flicker;
pub use fuse::{FusedPass, STANDARD_POINTWISE};
pub use image::{Image, StripInfo, BYTES_PER_PIXEL};
pub use oriented_scratch::OrientedScratch;
pub use scratch::Scratch;
pub use sepia::Sepia;
pub use vswap::VSwap;

/// The paper's filter chain in pipeline order (sepia → blur → scratch →
/// flicker → swap), with default parameters.
pub fn standard_chain() -> Vec<Box<dyn ImageFilter>> {
    vec![
        Box::new(Sepia),
        Box::new(Blur::default()),
        Box::new(Scratch::default()),
        Box::new(Flicker::default()),
        Box::new(VSwap),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_chain_order_matches_paper() {
        let names: Vec<&str> = standard_chain().iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["sepia", "blur", "scratch", "flicker", "swap"]);
    }

    #[test]
    fn chain_applied_to_strips_equals_whole_frame() {
        // The core consistency property of the sort-first decomposition:
        // processing strips independently and reassembling gives the same
        // image as processing the full frame — for every stage that is
        // strictly per-pixel or per-column (blur is excluded here; its
        // strip seams are part of the paper's data path, see scc-core
        // tests for the strip-reference comparison).
        let mut img = Image::new(32, 24);
        for y in 0..24 {
            for x in 0..32 {
                img.set(x, y, [(x * 8) as u8, (y * 10) as u8, 77, 255]);
            }
        }
        let seed = 1234;
        let frame = 17;
        let filters: Vec<Box<dyn ImageFilter>> = vec![
            Box::new(Sepia),
            Box::new(Scratch::default()),
            Box::new(Flicker::default()),
        ];

        // Whole-frame reference.
        let mut whole = img.clone();
        let wctx = FrameCtx::whole_frame(frame, seed, 32, 24);
        for f in &filters {
            f.apply(&mut whole, &wctx);
        }

        // Strip-parallel version.
        let mut strips = img.split_strips(3);
        for (info, strip) in &mut strips {
            let ctx = FrameCtx {
                frame_id: frame,
                run_seed: seed,
                strip: *info,
                full_width: 32,
            };
            for f in &filters {
                f.apply(strip, &ctx);
            }
        }
        assert_eq!(Image::assemble(&strips), whole);
    }

    #[test]
    fn vectored_kernels_match_sequential_bit_exactly() {
        // The backend invariant: `apply_vectored` must equal `apply`
        // for every filter, backend and worker count — the backend is
        // an instruction-selection knob, never a pixels knob.
        let mut img = Image::new(41, 23);
        for y in 0..23 {
            for x in 0..41 {
                img.set(x, y, [(x * 11) as u8, (y * 5) as u8, (x * y) as u8, 255]);
            }
        }
        for frame in [0u64, 9] {
            let ctx = FrameCtx::whole_frame(frame, 4242, 41, 23);
            for f in standard_chain() {
                let mut seq = img.clone();
                f.apply(&mut seq, &ctx);
                for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
                    for workers in [1usize, 2, 4] {
                        let mut vec = img.clone();
                        f.apply_vectored(&mut vec, &ctx, backend, workers);
                        assert_eq!(
                            vec,
                            seq,
                            "{} diverged at {backend:?} workers={workers} frame={frame}",
                            f.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chunked_kernels_match_sequential_bit_exactly() {
        // The tentpole invariant: every filter of the standard chain must
        // produce byte-identical output from `apply` and `apply_chunked`
        // at any worker count — including the RNG-bearing stages, whose
        // draws are keyed per frame, never per draw-order.
        let mut img = Image::new(37, 29);
        for y in 0..29 {
            for x in 0..37 {
                img.set(x, y, [(x * 7) as u8, (y * 13) as u8, (x ^ y) as u8, 255]);
            }
        }
        for frame in [0u64, 5, 41] {
            let ctx = FrameCtx::whole_frame(frame, 99, 37, 29);
            for f in standard_chain() {
                let mut seq = img.clone();
                f.apply(&mut seq, &ctx);
                for workers in [1usize, 2, 3, 4, 8] {
                    let mut par = img.clone();
                    f.apply_chunked(&mut par, &ctx, workers);
                    assert_eq!(
                        par,
                        seq,
                        "{} diverged at workers={workers} frame={frame}",
                        f.name()
                    );
                }
            }
        }
    }
}
