//! # scc-filters — the silent-film image filter stages
//!
//! The five image-manipulating stages of the paper's macro pipeline
//! (§IV), implemented exactly as described:
//!
//! * [`sepia::Sepia`] — colour shift with the paper's `S1`/`S2`/`mix`
//!   formula;
//! * [`blur::Blur`] — neighbourhood-average blur through a second buffer
//!   (the most expensive filter stage);
//! * [`scratch::Scratch`] — random vertical scratch columns;
//! * [`flicker::Flicker`] — per-frame brightness offset in [−0.1, 0.1];
//! * [`vswap::VSwap`] — vertical mirror via row swaps.
//!
//! Plus the [`image::Image`] RGBA8 buffer, its sort-first horizontal
//! strip decomposition, and the deterministic per-frame RNG that keeps
//! independently processed strips consistent with a single-pipeline run.

pub mod blur;
pub mod filter;
pub mod flicker;
pub mod frame_rng;
pub mod image;
pub mod oriented_scratch;
pub mod scratch;
pub mod sepia;
pub mod vswap;

pub use blur::Blur;
pub use filter::{FrameCtx, ImageFilter, Traffic};
pub use flicker::Flicker;
pub use image::{Image, StripInfo, BYTES_PER_PIXEL};
pub use oriented_scratch::OrientedScratch;
pub use scratch::Scratch;
pub use sepia::Sepia;
pub use vswap::VSwap;

/// The paper's filter chain in pipeline order (sepia → blur → scratch →
/// flicker → swap), with default parameters.
pub fn standard_chain() -> Vec<Box<dyn ImageFilter>> {
    vec![
        Box::new(Sepia),
        Box::new(Blur::default()),
        Box::new(Scratch::default()),
        Box::new(Flicker::default()),
        Box::new(VSwap),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_chain_order_matches_paper() {
        let names: Vec<&str> = standard_chain().iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["sepia", "blur", "scratch", "flicker", "swap"]);
    }

    #[test]
    fn chain_applied_to_strips_equals_whole_frame() {
        // The core consistency property of the sort-first decomposition:
        // processing strips independently and reassembling gives the same
        // image as processing the full frame — for every stage that is
        // strictly per-pixel or per-column (blur is excluded here; its
        // strip seams are part of the paper's data path, see scc-core
        // tests for the strip-reference comparison).
        let mut img = Image::new(32, 24);
        for y in 0..24 {
            for x in 0..32 {
                img.set(x, y, [(x * 8) as u8, (y * 10) as u8, 77, 255]);
            }
        }
        let seed = 1234;
        let frame = 17;
        let filters: Vec<Box<dyn ImageFilter>> = vec![
            Box::new(Sepia),
            Box::new(Scratch::default()),
            Box::new(Flicker::default()),
        ];

        // Whole-frame reference.
        let mut whole = img.clone();
        let wctx = FrameCtx::whole_frame(frame, seed, 32, 24);
        for f in &filters {
            f.apply(&mut whole, &wctx);
        }

        // Strip-parallel version.
        let mut strips = img.split_strips(3);
        for (info, strip) in &mut strips {
            let ctx = FrameCtx {
                frame_id: frame,
                run_seed: seed,
                strip: *info,
                full_width: 32,
            };
            for f in &filters {
                f.apply(strip, &ctx);
            }
        }
        assert_eq!(Image::assemble(&strips), whole);
    }
}
