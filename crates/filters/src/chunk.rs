//! Row-chunk decomposition for data-parallel filter kernels.
//!
//! A pipeline stage owns one strip at a time; when spare cores exist the
//! heavy per-pixel kernels can split the strip into disjoint horizontal
//! row chunks and process them on a scoped worker pool, while the stage
//! keeps its place in the macro pipeline. Two rules keep the parallel
//! path bit-identical to the sequential one (DESIGN.md §10):
//!
//! 1. a chunked kernel must be a pure per-row function of (pixel data,
//!    absolute row position, strip geometry, frame randomness) — no
//!    accumulation across rows;
//! 2. all randomness must be keyed by `(run_seed, frame_id)` and drawn
//!    *before* the fan-out — never dependent on the order in which rows
//!    happen to be processed (`frame_rng` already provides this).
//!
//! Filters whose access pattern cannot be row-partitioned (none of the
//! standard chain) simply keep the sequential default. Scratch *could*
//! be chunked but touches so few pixels that the fan-out overhead would
//! dominate; it stays sequential by choice.

use crate::image::{Image, BYTES_PER_PIXEL};
use crossbeam::thread;

/// Split `rows` rows into at most `workers` contiguous chunks of
/// near-equal height (earlier chunks take the remainder rows). The
/// returned `(first_row, row_count)` pairs tile `0..rows` exactly; fewer
/// chunks come back when there are fewer rows than workers.
pub fn chunk_rows(rows: u32, workers: usize) -> Vec<(u32, u32)> {
    let n = (workers.max(1) as u32).min(rows.max(1));
    if rows == 0 {
        return Vec::new();
    }
    let base = rows / n;
    let extra = rows % n;
    let mut out = Vec::with_capacity(n as usize);
    let mut y = 0;
    for i in 0..n {
        let h = base + u32::from(i < extra);
        out.push((y, h));
        y += h;
    }
    debug_assert_eq!(y, rows);
    out
}

/// Run `kernel(first_row, rows_bytes)` over disjoint row chunks of
/// `img`, using up to `workers` OS threads. `workers <= 1` (or a
/// single-chunk decomposition) runs inline on the caller's thread. The
/// chunk boundaries are a pure function of the geometry, so any kernel
/// obeying the module rules produces bit-identical pixels at every
/// worker count.
pub fn par_row_chunks<F>(img: &mut Image, workers: usize, kernel: F)
where
    F: Fn(u32, &mut [u8]) + Sync,
{
    let row_bytes = img.width() as usize * BYTES_PER_PIXEL;
    let chunks = chunk_rows(img.height(), workers);
    let mut slices: Vec<(u32, &mut [u8])> = Vec::with_capacity(chunks.len());
    let mut rest = img.as_bytes_mut();
    for &(y0, h) in &chunks {
        let (head, tail) = rest.split_at_mut(h as usize * row_bytes);
        slices.push((y0, head));
        rest = tail;
    }
    if slices.len() <= 1 || workers <= 1 {
        for (y0, rows) in slices {
            kernel(y0, rows);
        }
    } else {
        thread::scope(|s| {
            let kernel = &kernel;
            let mut iter = slices.into_iter();
            // Run the first chunk on the caller's thread; it doubles as
            // one of the workers instead of idling in join.
            let (y0, rows) = iter.next().expect("at least one chunk");
            for (cy0, crows) in iter {
                s.spawn(move || kernel(cy0, crows));
            }
            kernel(y0, rows);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_tile_rows_exactly() {
        for rows in [1u32, 2, 7, 64, 481] {
            for workers in [1usize, 2, 3, 4, 9, 100] {
                let chunks = chunk_rows(rows, workers);
                assert!(chunks.len() <= workers.max(1));
                assert!(chunks.len() as u32 <= rows);
                let mut y = 0;
                for (y0, h) in &chunks {
                    assert_eq!(*y0, y, "rows={rows} workers={workers}");
                    assert!(*h > 0);
                    y += h;
                }
                assert_eq!(y, rows);
                let min = chunks.iter().map(|(_, h)| *h).min().unwrap();
                let max = chunks.iter().map(|(_, h)| *h).max().unwrap();
                assert!(max - min <= 1, "uneven chunks for {rows}/{workers}");
            }
        }
    }

    #[test]
    fn zero_rows_yield_no_chunks() {
        assert!(chunk_rows(0, 4).is_empty());
    }

    #[test]
    fn parallel_kernel_sees_every_row_once() {
        let mut img = Image::new(5, 23);
        for workers in [1usize, 2, 4, 16] {
            img.fill([0, 0, 0, 255]);
            par_row_chunks(&mut img, workers, |y0, rows| {
                for (dy, row) in rows.chunks_exact_mut(5 * BYTES_PER_PIXEL).enumerate() {
                    let y = y0 + dy as u32;
                    for px in row.chunks_exact_mut(BYTES_PER_PIXEL) {
                        px[0] = px[0].wrapping_add(1); // counts visits
                        px[1] = y as u8; // records absolute row
                    }
                }
            });
            for y in 0..23 {
                for x in 0..5 {
                    let p = img.get(x, y);
                    assert_eq!(p[0], 1, "row {y} visited {} times", p[0]);
                    assert_eq!(p[1], y as u8, "row {y} saw wrong offset");
                }
            }
        }
    }

    #[test]
    fn worker_counts_agree_bit_exactly() {
        // A kernel obeying the purity rules must give the same pixels for
        // any worker count.
        let run = |workers: usize| {
            let mut img = Image::new(7, 31);
            par_row_chunks(&mut img, workers, |y0, rows| {
                for (dy, row) in rows.chunks_exact_mut(7 * BYTES_PER_PIXEL).enumerate() {
                    let y = y0 + dy as u32;
                    for (x, px) in row.chunks_exact_mut(BYTES_PER_PIXEL).enumerate() {
                        px[0] = (x as u32 * 31 + y * 7) as u8;
                        px[2] = (x as u32 ^ y) as u8;
                    }
                }
            });
            img
        };
        let seq = run(1);
        for workers in [2usize, 3, 8] {
            assert_eq!(run(workers), seq, "workers={workers} diverged");
        }
    }
}
