//! Portable lane arithmetic for the vectorized kernel backend.
//!
//! [`F32x8`] is a fixed-width 8-lane f32 vector implemented as a plain
//! array with elementwise operations. No target intrinsics: every lane
//! performs the *same scalar IEEE-754 operation* the reference kernels
//! perform, in the same order, so lane results are bit-identical to the
//! scalar loops by construction — the compiler is free to lower the
//! elementwise loops to whatever SIMD the target offers (SSE/AVX on
//! x86, NEON on aarch64, plain scalar elsewhere), but correctness never
//! depends on it doing so.
//!
//! Remainder handling is the caller's job: kernels walk full 8-pixel
//! blocks through these lanes and hand the `< 8`-pixel row tail to the
//! scalar kernel, which runs the identical per-lane arithmetic.

use crate::image::{from_unit, to_unit};

/// Lane count of [`F32x8`] (8 pixels per block).
pub const LANES: usize = 8;

/// An 8-lane f32 vector with elementwise semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32x8(pub [f32; LANES]);

impl F32x8 {
    /// All lanes set to `v`.
    #[inline]
    pub fn splat(v: f32) -> F32x8 {
        F32x8([v; LANES])
    }

    /// Elementwise `a * b`.
    ///
    /// Deliberately an inherent method rather than `std::ops::Mul` (and
    /// likewise `add`/`sub` below): the kernels chain these by explicit
    /// name to mirror the scalar reference expressions token for token,
    /// and an operator impl would invite mixed-width overloads later.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn mul(self, o: F32x8) -> F32x8 {
        F32x8(std::array::from_fn(|l| self.0[l] * o.0[l]))
    }

    /// Elementwise `a + b`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, o: F32x8) -> F32x8 {
        F32x8(std::array::from_fn(|l| self.0[l] + o.0[l]))
    }

    /// Elementwise `a - b`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn sub(self, o: F32x8) -> F32x8 {
        F32x8(std::array::from_fn(|l| self.0[l] - o.0[l]))
    }

    /// Elementwise `v.clamp(0.0, 1.0)` — the paper's `clamp`, exactly
    /// as the scalar kernels call it.
    #[inline]
    pub fn clamp01(self) -> F32x8 {
        F32x8(std::array::from_fn(|l| self.0[l].clamp(0.0, 1.0)))
    }

    /// Load 8 channel bytes through [`to_unit`] (one byte per lane,
    /// stride `stride` starting at `offset` — gathers one colour channel
    /// out of an interleaved RGBA block).
    #[inline]
    pub fn gather_unit(bytes: &[u8], offset: usize, stride: usize) -> F32x8 {
        let mut r = [0.0; LANES];
        for l in 0..LANES {
            r[l] = to_unit(bytes[offset + l * stride]);
        }
        F32x8(r)
    }

    /// Store 8 lanes through [`from_unit`] back into an interleaved
    /// block (inverse of [`F32x8::gather_unit`]).
    #[inline]
    pub fn scatter_unit(self, bytes: &mut [u8], offset: usize, stride: usize) {
        for l in 0..LANES {
            bytes[offset + l * stride] = from_unit(self.0[l]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ops_match_scalar_ops_bitwise() {
        // The whole point of the lane type: every elementwise op is the
        // scalar op, lane by lane, including the weird corners of IEEE
        // arithmetic (subnormals, exact rounding).
        let a = F32x8([0.1, 0.25, 1.0, 0.0, 1e-40, 3.5e-3, 0.999, 0.5]);
        let b = F32x8([0.3, 0.59, 0.11, 1.0, 2.0, 1e-40, 0.001, 0.5]);
        for l in 0..LANES {
            assert_eq!(a.mul(b).0[l].to_bits(), (a.0[l] * b.0[l]).to_bits());
            assert_eq!(a.add(b).0[l].to_bits(), (a.0[l] + b.0[l]).to_bits());
            assert_eq!(a.sub(b).0[l].to_bits(), (a.0[l] - b.0[l]).to_bits());
            assert_eq!(a.clamp01().0[l].to_bits(), a.0[l].clamp(0.0, 1.0).to_bits());
        }
    }

    #[test]
    fn gather_scatter_roundtrip_interleaved_rgba() {
        // 8 RGBA pixels; gather the G channel, scatter it back.
        let mut bytes: Vec<u8> = (0..32).map(|i| (i * 7) as u8).collect();
        let orig = bytes.clone();
        let g = F32x8::gather_unit(&bytes, 1, 4);
        for l in 0..LANES {
            assert_eq!(g.0[l], to_unit(orig[1 + l * 4]));
        }
        g.scatter_unit(&mut bytes, 1, 4);
        // from_unit(to_unit(c)) == c for every byte.
        assert_eq!(bytes, orig);
    }

    #[test]
    fn splat_fills_all_lanes() {
        assert_eq!(F32x8::splat(0.25).0, [0.25; LANES]);
    }
}
