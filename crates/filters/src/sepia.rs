//! Sepia stage (SeS): shift every pixel towards an old-photograph brown.
//!
//! Implements the paper's formula verbatim (§IV):
//!
//! ```text
//! S1  = (0.2, 0.05, 0.0)
//! S2  = (1.0, 0.9,  0.5)
//! mix = clamp(0.3·r + 0.59·g + 0.11·b)
//! rgb_new = clamp(S1·(1 − mix) + S2·mix)
//! ```

use crate::backend::KernelBackend;
use crate::chunk::par_row_chunks;
use crate::filter::{FrameCtx, ImageFilter};
use crate::image::{from_unit, to_unit, Image, BYTES_PER_PIXEL};
use crate::lanes::{F32x8, LANES};

/// The darkest sepia tone.
pub const S1: [f32; 3] = [0.2, 0.05, 0.0];
/// The brightest sepia tone.
pub const S2: [f32; 3] = [1.0, 0.9, 0.5];

/// Luminance weights used to compute `mix`.
pub const LUMA: [f32; 3] = [0.3, 0.59, 0.11];

/// Apply the sepia formula to one RGB triple (unit range).
#[inline]
pub fn sepia_pixel(r: f32, g: f32, b: f32) -> [f32; 3] {
    let mix = (LUMA[0] * r + LUMA[1] * g + LUMA[2] * b).clamp(0.0, 1.0);
    [
        (S1[0] * (1.0 - mix) + S2[0] * mix).clamp(0.0, 1.0),
        (S1[1] * (1.0 - mix) + S2[1] * mix).clamp(0.0, 1.0),
        (S1[2] * (1.0 - mix) + S2[2] * mix).clamp(0.0, 1.0),
    ]
}

/// The sepia filter stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sepia;

/// The shared kernel: sepia is strictly per-pixel, so the same byte loop
/// serves the sequential path and any row chunk of the parallel one.
pub(crate) fn sepia_bytes(bytes: &mut [u8]) {
    for px in bytes.chunks_exact_mut(BYTES_PER_PIXEL) {
        let [r, g, b] = sepia_pixel(to_unit(px[0]), to_unit(px[1]), to_unit(px[2]));
        px[0] = from_unit(r);
        px[1] = from_unit(g);
        px[2] = from_unit(b);
    }
}

/// The lane-vectorized kernel: 8 pixels per block through [`F32x8`],
/// running the exact per-lane operation sequence of [`sepia_pixel`]
/// (same multiplies, same adds, same clamps, in the same order), with
/// the `< 8`-pixel row tail handed to the scalar loop — bit-identical
/// to [`sepia_bytes`] on every input.
pub(crate) fn sepia_bytes_lanes(bytes: &mut [u8]) {
    const BLOCK: usize = BYTES_PER_PIXEL * LANES;
    let mut blocks = bytes.chunks_exact_mut(BLOCK);
    for px in &mut blocks {
        let r = F32x8::gather_unit(px, 0, BYTES_PER_PIXEL);
        let g = F32x8::gather_unit(px, 1, BYTES_PER_PIXEL);
        let b = F32x8::gather_unit(px, 2, BYTES_PER_PIXEL);
        // mix = clamp(0.3·r + 0.59·g + 0.11·b), left-associated like
        // the scalar formula.
        let mix = F32x8::splat(LUMA[0])
            .mul(r)
            .add(F32x8::splat(LUMA[1]).mul(g))
            .add(F32x8::splat(LUMA[2]).mul(b))
            .clamp01();
        let inv = F32x8::splat(1.0).sub(mix);
        for c in 0..3 {
            F32x8::splat(S1[c])
                .mul(inv)
                .add(F32x8::splat(S2[c]).mul(mix))
                .clamp01()
                .scatter_unit(px, c, BYTES_PER_PIXEL);
        }
    }
    sepia_bytes(blocks.into_remainder());
}

/// Backend dispatch for one row (or any pixel-aligned byte run).
#[inline]
pub(crate) fn sepia_row(bytes: &mut [u8], backend: KernelBackend) {
    match backend {
        KernelBackend::Scalar => sepia_bytes(bytes),
        KernelBackend::Simd => sepia_bytes_lanes(bytes),
    }
}

impl ImageFilter for Sepia {
    fn name(&self) -> &'static str {
        "sepia"
    }

    fn apply(&self, img: &mut Image, _ctx: &FrameCtx) {
        sepia_bytes(img.as_bytes_mut());
    }

    fn apply_chunked(&self, img: &mut Image, _ctx: &FrameCtx, workers: usize) {
        par_row_chunks(img, workers, |_, rows| sepia_bytes(rows));
    }

    fn apply_vectored(
        &self,
        img: &mut Image,
        _ctx: &FrameCtx,
        backend: KernelBackend,
        workers: usize,
    ) {
        par_row_chunks(img, workers, |_, rows| sepia_row(rows, backend));
    }

    fn work_units(&self, img: &Image, _ctx: &FrameCtx) -> f64 {
        // Reference weight: 1 unit per pixel.
        img.pixel_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_maps_to_s1() {
        let [r, g, b] = sepia_pixel(0.0, 0.0, 0.0);
        assert!((r - S1[0]).abs() < 1e-6);
        assert!((g - S1[1]).abs() < 1e-6);
        assert!((b - S1[2]).abs() < 1e-6);
    }

    #[test]
    fn white_maps_to_s2() {
        let [r, g, b] = sepia_pixel(1.0, 1.0, 1.0);
        assert!((r - S2[0]).abs() < 1e-6);
        assert!((g - S2[1]).abs() < 1e-6);
        assert!((b - S2[2]).abs() < 1e-6);
    }

    #[test]
    fn output_is_interpolation_between_tones() {
        // For any input, each channel lies between S1 and S2.
        for (r, g, b) in [(0.3, 0.9, 0.1), (0.99, 0.0, 0.5), (0.5, 0.5, 0.5)] {
            let out = sepia_pixel(r, g, b);
            for c in 0..3 {
                assert!(out[c] >= S1[c] - 1e-6 && out[c] <= S2[c] + 1e-6);
            }
        }
    }

    #[test]
    fn result_is_brownish() {
        // Sepia always orders channels r >= g >= b.
        for (r, g, b) in [(0.1, 0.8, 0.3), (0.9, 0.9, 0.9), (0.0, 0.0, 1.0)] {
            let [or, og, ob] = sepia_pixel(r, g, b);
            assert!(or >= og && og >= ob, "({or},{og},{ob}) not sepia-ordered");
        }
    }

    #[test]
    fn apply_preserves_alpha_and_dimensions() {
        let mut img = Image::new(6, 4);
        img.set(2, 2, [200, 100, 50, 77]);
        let ctx = FrameCtx::whole_frame(0, 0, 6, 4);
        Sepia.apply(&mut img, &ctx);
        assert_eq!(img.get(2, 2)[3], 77, "alpha untouched");
        assert_eq!(img.width(), 6);
        assert_eq!(img.height(), 4);
    }

    #[test]
    fn lane_kernel_is_bit_identical_to_scalar() {
        // Widths straddling the 8-pixel block size: full blocks only,
        // block + remainder, and a single pixel.
        for n_px in [1usize, 7, 8, 9, 16, 23, 64, 257] {
            let mut scalar: Vec<u8> = (0..n_px * BYTES_PER_PIXEL)
                .map(|i| (i.wrapping_mul(37) ^ (i >> 3)) as u8)
                .collect();
            let mut lanes = scalar.clone();
            sepia_bytes(&mut scalar);
            sepia_bytes_lanes(&mut lanes);
            assert_eq!(scalar, lanes, "diverged at {n_px} pixels");
        }
    }

    #[test]
    fn idempotent_on_extremes() {
        // Pure black input becomes S1; applying again keeps the values in
        // the sepia gamut (regression guard for clamping errors).
        let mut img = Image::new(2, 2);
        let ctx = FrameCtx::whole_frame(0, 0, 2, 2);
        Sepia.apply(&mut img, &ctx);
        let first = img.clone();
        Sepia.apply(&mut img, &ctx);
        // Not exactly equal (sepia isn't idempotent) but still valid pixels.
        assert_eq!(img.width(), first.width());
        for y in 0..2 {
            for x in 0..2 {
                let [r, g, b, _] = img.get(x, y);
                assert!(r >= g && g >= b);
            }
        }
    }
}
