//! Kernel backend selection: scalar reference loops vs the lane-
//! vectorized kernels of [`crate::lanes`].
//!
//! Both backends are always compiled; the `simd` cargo feature only
//! flips which one [`KernelBackend::default_backend`] resolves to, so a
//! build with the feature off can still run (and test) the vectorized
//! path explicitly, and vice versa. Every vectorized kernel is
//! bit-identical to its scalar twin — the backend is a *speed* knob,
//! never a *pixels* knob (DESIGN.md §15).

/// Which kernel implementation a filter stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelBackend {
    /// The paper-literal per-pixel loops — the reference semantics.
    Scalar,
    /// Lane-vectorized kernels: `[f32; 8]` lane arithmetic for the
    /// float-formula stages (sepia), an exact per-frame lookup table
    /// for flicker, and an exact sliding-window reformulation for blur.
    /// Scratch and vswap are copy/paint kernels already bound by
    /// `memcpy` bandwidth; they run the same code under both backends.
    Simd,
}

impl KernelBackend {
    /// The backend a build runs when nothing is requested explicitly:
    /// vectorized when the `simd` feature is on, scalar otherwise.
    pub fn default_backend() -> KernelBackend {
        if cfg!(feature = "simd") {
            KernelBackend::Simd
        } else {
            KernelBackend::Scalar
        }
    }

    /// Short name for digests, bench JSON and fuzz-repro lines.
    pub fn name(&self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Simd => "simd",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_follows_the_feature_gate() {
        let d = KernelBackend::default_backend();
        if cfg!(feature = "simd") {
            assert_eq!(d, KernelBackend::Simd);
        } else {
            assert_eq!(d, KernelBackend::Scalar);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Simd.name(), "simd");
    }
}
