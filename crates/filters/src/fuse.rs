//! Stage fusion: apply a maximal pointwise run of the filter chain to
//! each cache-blocked row pair in one memory traversal.
//!
//! Sequential execution walks the whole strip once *per stage*: a
//! 4-stage pointwise run reads and writes every byte four times. The
//! pointwise stages of the standard chain (sepia, scratch, flicker,
//! vswap — everything except the blur stencil) are row-local, so the
//! traversal order can be inverted: walk the rows once and apply the
//! whole run to each row while it is hot in cache.
//!
//! The row *pair* is the fusion unit, not the single row, because vswap
//! exchanges row `i` with row `h − 1 − i`: holding both rows lets the
//! exchange happen in-pair, keeping every pair's bytes closed under the
//! whole run. Legality and bit-identity come from three facts:
//!
//! 1. every fused stage is `StageClass::Pointwise` in the stage graph's
//!    legality envelope — row-local, no cross-row data flow;
//! 2. all frame randomness (scratch plan, flicker offset) is drawn once
//!    *before* the fan-out, exactly as the chunked kernels do;
//! 3. vswap's row exchange is closed within the pair (the odd middle
//!    row pairs with itself, where the exchange is the identity).
//!
//! Under 1–3, applying the stage run pair-by-pair performs, per row,
//! the exact same byte operations in the exact same stage order as the
//! sequential whole-strip passes — bit-identical by construction, for
//! any subset of pointwise stages in chain order (DESIGN.md §15).

use crate::backend::KernelBackend;
use crate::chunk::chunk_rows;
use crate::filter::FrameCtx;
use crate::flicker::{shift_bytes, shift_bytes_lut, shift_lut, Flicker};
use crate::image::{Image, BYTES_PER_PIXEL};
use crate::scratch::{paint_row, Scratch};
use crate::sepia::sepia_row;

/// Which stages of the 5-stage standard chain are pointwise, i.e.
/// legal to fuse (index order: sepia, blur, scratch, flicker, swap).
/// Mirrors `StageClass::Pointwise` in the scc-core stage graph — blur
/// is a stencil and always runs standalone.
pub const STANDARD_POINTWISE: [bool; 5] = [true, false, true, true, true];

/// One stage of a fused run.
#[derive(Debug, Clone, Copy)]
enum FusedStage {
    Sepia,
    Scratch(Scratch),
    Flicker(Flicker),
    VSwap,
}

/// A fused pointwise run of the standard chain, executable over a strip
/// in a single memory traversal.
#[derive(Debug, Clone)]
pub struct FusedPass {
    stages: Vec<FusedStage>,
    backend: KernelBackend,
}

/// Per-frame row program: every stage with its frame randomness (and
/// backend-specific strength reductions) resolved, ready to fan out.
enum RowOp {
    Sepia,
    Scratch { color: [u8; 3], columns: Vec<u32> },
    Flicker { d: f32 },
    FlickerLut { lut: Box<[u8; 256]> },
    Swap,
}

impl FusedPass {
    /// Build a fused pass from standard-chain stage indices (strictly
    /// increasing, default parameters). Returns `None` when the run is
    /// empty or contains a non-pointwise stage — the caller keeps those
    /// stages standalone.
    pub fn from_standard_indices(indices: &[usize], backend: KernelBackend) -> Option<FusedPass> {
        if indices.is_empty() {
            return None;
        }
        let mut stages = Vec::with_capacity(indices.len());
        let mut prev: Option<usize> = None;
        for &j in indices {
            if j >= STANDARD_POINTWISE.len() || !STANDARD_POINTWISE[j] {
                return None;
            }
            if prev.is_some_and(|p| p >= j) {
                return None;
            }
            prev = Some(j);
            stages.push(match j {
                0 => FusedStage::Sepia,
                2 => FusedStage::Scratch(Scratch::default()),
                3 => FusedStage::Flicker(Flicker::default()),
                4 => FusedStage::VSwap,
                _ => unreachable!("pointwise index"),
            });
        }
        Some(FusedPass { stages, backend })
    }

    /// Number of fused stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the run is empty (never constructed, but keeps clippy
    /// and callers honest).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Resolve the frame's row program: one RNG draw per RNG-bearing
    /// stage, before any fan-out (chunk-rule 2).
    fn row_ops(&self, ctx: &FrameCtx) -> Vec<RowOp> {
        self.stages
            .iter()
            .map(|s| match s {
                FusedStage::Sepia => RowOp::Sepia,
                FusedStage::Scratch(sc) => {
                    let plan = sc.plan(ctx);
                    RowOp::Scratch {
                        color: plan.color,
                        columns: plan.columns,
                    }
                }
                FusedStage::Flicker(fl) => {
                    let d = fl.offset(ctx);
                    match self.backend {
                        KernelBackend::Scalar => RowOp::Flicker { d },
                        KernelBackend::Simd => RowOp::FlickerLut {
                            lut: Box::new(shift_lut(d)),
                        },
                    }
                }
                FusedStage::VSwap => RowOp::Swap,
            })
            .collect()
    }

    /// Apply the fused run to the whole strip, sequentially.
    pub fn apply(&self, img: &mut Image, ctx: &FrameCtx) {
        let ops = self.row_ops(ctx);
        let h = img.height() as usize;
        let row_bytes = img.width() as usize * BYTES_PER_PIXEL;
        let data = img.as_bytes_mut();
        for i in 0..h.div_ceil(2) {
            let j = h - 1 - i;
            if i == j {
                let row = &mut data[i * row_bytes..(i + 1) * row_bytes];
                apply_rows(&ops, self.backend, &mut [row]);
            } else {
                let (a, b) = data.split_at_mut(j * row_bytes);
                let top = &mut a[i * row_bytes..(i + 1) * row_bytes];
                let bottom = &mut b[..row_bytes];
                apply_rows(&ops, self.backend, &mut [top, bottom]);
            }
        }
    }

    /// Apply the fused run over up to `workers` threads. Row pairs are
    /// the parallel unit: matching chunks peel off the front of the top
    /// half and the back of the bottom half (the vswap pairing), each
    /// pair disjoint from every other, so the program runs concurrently
    /// without changing a byte relative to [`FusedPass::apply`].
    pub fn apply_chunked(&self, img: &mut Image, ctx: &FrameCtx, workers: usize) {
        if workers <= 1 || img.height() < 4 {
            return self.apply(img, ctx);
        }
        let ops = self.row_ops(ctx);
        let h = img.height() as usize;
        let half = h / 2;
        let row_bytes = img.width() as usize * BYTES_PER_PIXEL;
        let backend = self.backend;
        let data = img.as_bytes_mut();
        let (mut top, rest) = data.split_at_mut(half * row_bytes);
        let (mid, mut bottom) = rest.split_at_mut((h - 2 * half) * row_bytes);
        crossbeam::thread::scope(|s| {
            let ops = &ops;
            for &(_, rows) in &chunk_rows(half as u32, workers) {
                let bytes = rows as usize * row_bytes;
                let (t, t_rest) = top.split_at_mut(bytes);
                top = t_rest;
                let (b_rest, b) = bottom.split_at_mut(bottom.len() - bytes);
                bottom = b_rest;
                s.spawn(move || {
                    for (tr, br) in t
                        .chunks_exact_mut(row_bytes)
                        .zip(b.chunks_exact_mut(row_bytes).rev())
                    {
                        apply_rows(ops, backend, &mut [tr, br]);
                    }
                });
            }
            if !mid.is_empty() {
                apply_rows(ops, backend, &mut [mid]);
            }
        });
    }
}

/// Run the frame's row program over one row pair (or the self-paired
/// middle row, where the swap is the identity).
fn apply_rows(ops: &[RowOp], backend: KernelBackend, rows: &mut [&mut [u8]]) {
    for op in ops {
        match op {
            RowOp::Sepia => {
                for row in rows.iter_mut() {
                    sepia_row(row, backend);
                }
            }
            RowOp::Scratch { color, columns } => {
                for row in rows.iter_mut() {
                    paint_row(row, color, columns);
                }
            }
            RowOp::Flicker { d } => {
                for row in rows.iter_mut() {
                    shift_bytes(row, *d);
                }
            }
            RowOp::FlickerLut { lut } => {
                for row in rows.iter_mut() {
                    shift_bytes_lut(row, lut);
                }
            }
            RowOp::Swap => {
                if let [a, b] = rows {
                    a.swap_with_slice(b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_chain;

    fn patterned(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    [
                        (x * 31 + y * 97) as u8,
                        ((x >> 1) ^ y) as u8,
                        (x + 3 * y) as u8,
                        (200 + (x % 17)) as u8,
                    ],
                );
            }
        }
        img
    }

    fn sequential_reference(img: &Image, ctx: &FrameCtx, indices: &[usize]) -> Image {
        let chain = standard_chain();
        let mut out = img.clone();
        for &j in indices {
            chain[j].apply(&mut out, ctx);
        }
        out
    }

    #[test]
    fn rejects_stencil_unordered_and_empty_runs() {
        for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
            assert!(FusedPass::from_standard_indices(&[], backend).is_none());
            assert!(FusedPass::from_standard_indices(&[1], backend).is_none());
            assert!(FusedPass::from_standard_indices(&[0, 1, 2], backend).is_none());
            assert!(FusedPass::from_standard_indices(&[2, 0], backend).is_none());
            assert!(FusedPass::from_standard_indices(&[0, 0], backend).is_none());
            assert!(FusedPass::from_standard_indices(&[5], backend).is_none());
            assert!(FusedPass::from_standard_indices(&[0, 2, 3, 4], backend).is_some());
        }
    }

    #[test]
    fn fused_run_equals_sequential_passes_bit_exactly() {
        // Every pointwise subset in chain order × geometries exercising
        // even, odd and single-row strips × both backends × worker
        // fan-outs.
        let subsets: &[&[usize]] = &[
            &[0],
            &[2],
            &[3],
            &[4],
            &[0, 2],
            &[0, 4],
            &[2, 3],
            &[3, 4],
            &[0, 2, 3],
            &[0, 3, 4],
            &[2, 3, 4],
            &[0, 2, 3, 4],
        ];
        for &(w, h) in &[(9u32, 1u32), (8, 2), (7, 5), (16, 12), (33, 7)] {
            let img = patterned(w, h);
            let ctx = FrameCtx::whole_frame(13, 0xFACE, w, h);
            for indices in subsets {
                let want = sequential_reference(&img, &ctx, indices);
                for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
                    let pass = FusedPass::from_standard_indices(indices, backend).unwrap();
                    let mut fused = img.clone();
                    pass.apply(&mut fused, &ctx);
                    assert_eq!(fused, want, "{w}x{h} {indices:?} {backend:?} sequential");
                    for workers in [2usize, 3, 8] {
                        let mut par = img.clone();
                        pass.apply_chunked(&mut par, &ctx, workers);
                        assert_eq!(
                            par, want,
                            "{w}x{h} {indices:?} {backend:?} workers={workers}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_run_respects_strip_context() {
        // A strip mid-frame: scratch columns come from the full width,
        // flicker from the frame id — the fused pass must match the
        // stage-by-stage strip application exactly.
        let (info, mut strip) = {
            let full = patterned(24, 18);
            full.split_strips(3).remove(1)
        };
        let ctx = FrameCtx {
            frame_id: 5,
            run_seed: 0xD00D,
            strip: info,
            full_width: 24,
        };
        let want = sequential_reference(&strip, &ctx, &[0, 2, 3, 4]);
        let pass = FusedPass::from_standard_indices(&[0, 2, 3, 4], KernelBackend::Scalar).unwrap();
        pass.apply_chunked(&mut strip, &ctx, 4);
        assert_eq!(strip, want);
    }
}
