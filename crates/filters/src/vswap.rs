//! Swap stage (SwS): vertical mirror via row exchange.
//!
//! The visualisation client expects vertically mirrored frames; the stage
//! flips the strip upside-down by swapping row `i` with row
//! `lines_in_strip − 1 − i` through an intermediate line buffer (§IV). The
//! paper notes the stage exists partly to introduce a different (strided,
//! two-ended) memory access pattern into the pipeline.

use crate::chunk::chunk_rows;
use crate::filter::{FrameCtx, ImageFilter};
use crate::image::{Image, BYTES_PER_PIXEL};

/// The vertical-swap (mirror) filter.
#[derive(Debug, Clone, Copy, Default)]
pub struct VSwap;

/// Where a strip lands in the assembled frame after the swap stage: since
/// each strip is mirrored *locally*, the transfer stage must also mirror
/// the strip order for the full frame to come out globally flipped.
pub fn mirrored_info(info: crate::image::StripInfo) -> crate::image::StripInfo {
    crate::image::StripInfo {
        index: info.index,
        count: info.count,
        y0: info.full_height - info.y0 - info.height,
        height: info.height,
        full_height: info.full_height,
    }
}

impl ImageFilter for VSwap {
    fn name(&self) -> &'static str {
        "swap"
    }

    fn apply(&self, img: &mut Image, _ctx: &FrameCtx) {
        let h = img.height();
        let w = img.width() as usize * 4;
        // Intermediate buffer, exactly as the paper describes.
        let mut tmp = vec![0u8; w];
        for i in 0..h / 2 {
            let j = h - 1 - i;
            tmp.copy_from_slice(img.row(i));
            let (lo, hi) = {
                // Two disjoint row copies; do them via split to satisfy
                // the borrow checker without extra allocation.
                let data = img.as_bytes_mut();
                let (a, b) = data.split_at_mut(j as usize * w);
                (&mut a[i as usize * w..i as usize * w + w], &mut b[..w])
            };
            lo.copy_from_slice(hi);
            hi.copy_from_slice(&tmp);
        }
    }

    fn apply_chunked(&self, img: &mut Image, ctx: &FrameCtx, workers: usize) {
        if workers <= 1 {
            return self.apply(img, ctx);
        }
        let h = img.height();
        let half = (h / 2) as usize;
        if half == 0 {
            return;
        }
        let row_bytes = img.width() as usize * BYTES_PER_PIXEL;
        let chunks = chunk_rows(half as u32, workers);
        let data = img.as_bytes_mut();
        // Row i swaps with row h-1-i: the top half pairs with the bottom
        // half read back-to-front (the middle row of an odd-height strip
        // stays put). Peel matching chunks off the front of the top half
        // and the back of the bottom half; each pair is disjoint from
        // every other, so the swaps can run concurrently.
        let (mut top, rest) = data.split_at_mut(half * row_bytes);
        let mut bottom = &mut rest[(h as usize - 2 * half) * row_bytes..];
        crossbeam::thread::scope(|s| {
            for &(_, rows) in &chunks {
                let bytes = rows as usize * row_bytes;
                let (t, t_rest) = top.split_at_mut(bytes);
                top = t_rest;
                let (b_rest, b) = bottom.split_at_mut(bottom.len() - bytes);
                bottom = b_rest;
                s.spawn(move || {
                    for (tr, br) in t
                        .chunks_exact_mut(row_bytes)
                        .zip(b.chunks_exact_mut(row_bytes).rev())
                    {
                        tr.swap_with_slice(br);
                    }
                });
            }
        });
    }

    fn work_units(&self, img: &Image, _ctx: &FrameCtx) -> f64 {
        // Three row copies per swapped pair ≈ 1.5 touches per pixel, but
        // each touch is a plain copy (no arithmetic): weight it below
        // sepia.
        img.pixel_count() as f64 * 0.45
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FrameCtx {
        FrameCtx::whole_frame(0, 0, 4, 4)
    }

    fn numbered(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, [y as u8, x as u8, 0, 255]);
            }
        }
        img
    }

    #[test]
    fn flips_rows() {
        let mut img = numbered(3, 5);
        VSwap.apply(&mut img, &ctx());
        for y in 0..5 {
            for x in 0..3 {
                assert_eq!(img.get(x, y), [(4 - y) as u8, x as u8, 0, 255]);
            }
        }
    }

    #[test]
    fn involution() {
        let orig = numbered(7, 6);
        let mut img = orig.clone();
        VSwap.apply(&mut img, &ctx());
        assert_ne!(img, orig, "flip must change a non-symmetric image");
        VSwap.apply(&mut img, &ctx());
        assert_eq!(img, orig, "double flip is the identity");
    }

    #[test]
    fn odd_height_middle_row_unchanged() {
        let mut img = numbered(4, 5);
        let middle_before: Vec<u8> = img.row(2).to_vec();
        VSwap.apply(&mut img, &ctx());
        assert_eq!(img.row(2), &middle_before[..]);
    }

    #[test]
    fn single_row_is_identity() {
        let orig = numbered(6, 1);
        let mut img = orig.clone();
        VSwap.apply(&mut img, &ctx());
        assert_eq!(img, orig);
    }

    #[test]
    fn work_is_linear_in_pixels() {
        let small = Image::new(10, 10);
        let large = Image::new(20, 20);
        let c = ctx();
        assert!((VSwap.work_units(&large, &c) / VSwap.work_units(&small, &c) - 4.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod mirror_tests {
    use super::*;
    use crate::filter::{FrameCtx, ImageFilter};
    use crate::image::{Image, StripInfo};

    #[test]
    fn mirrored_info_reverses_strip_order() {
        let info = StripInfo {
            index: 0,
            count: 4,
            y0: 0,
            height: 25,
            full_height: 100,
        };
        let m = mirrored_info(info);
        assert_eq!(m.y0, 75);
        assert_eq!(mirrored_info(m).y0, 0, "mirror is an involution");
    }

    #[test]
    fn per_strip_swap_plus_mirrored_assembly_equals_global_flip() {
        // The paper's data path: each strip flipped locally, then the
        // transfer stage places strips at mirrored positions.
        let mut img = Image::new(6, 12);
        for y in 0..12 {
            for x in 0..6 {
                img.set(x, y, [y as u8 * 10, x as u8, 0, 255]);
            }
        }
        // Global flip reference.
        let mut global = img.clone();
        VSwap.apply(&mut global, &FrameCtx::whole_frame(0, 0, 6, 12));

        for n in [1u32, 2, 3, 4] {
            let mut strips = img.split_strips(n);
            for (info, strip) in &mut strips {
                let ctx = FrameCtx {
                    frame_id: 0,
                    run_seed: 0,
                    strip: *info,
                    full_width: 6,
                };
                VSwap.apply(strip, &ctx);
                *info = mirrored_info(*info);
            }
            assert_eq!(Image::assemble(&strips), global, "n={n}");
        }
    }
}
