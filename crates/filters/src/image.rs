//! RGBA image buffer and the sort-first strip decomposition.
//!
//! The renderer's framebuffer stores four bytes per pixel (§IV, render
//! stage). Parallelisation splits the image into horizontal strips that the
//! pipelines process autonomously (§II); [`Image::split_strips`] and
//! [`Image::assemble`] implement exactly that decomposition and its inverse.

use bytes::Bytes;

/// Bytes per pixel (RGBA8, matching the paper's 4-byte framebuffer).
pub const BYTES_PER_PIXEL: usize = 4;

/// An owned RGBA8 image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

/// Location of a strip within the full frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripInfo {
    /// Index of this strip (0 = top).
    pub index: u32,
    /// Total number of strips the frame was divided into.
    pub count: u32,
    /// First row of the strip in full-image coordinates.
    pub y0: u32,
    /// Rows in this strip.
    pub height: u32,
    /// Full image height (for reassembly checks).
    pub full_height: u32,
}

impl Image {
    /// A black, fully opaque image.
    pub fn new(width: u32, height: u32) -> Image {
        assert!(width > 0 && height > 0, "degenerate image {width}x{height}");
        let mut data = vec![0u8; width as usize * height as usize * BYTES_PER_PIXEL];
        for px in data.chunks_exact_mut(BYTES_PER_PIXEL) {
            px[3] = 255;
        }
        Image {
            width,
            height,
            data,
        }
    }

    /// Build from raw RGBA bytes (length must match).
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Image {
        assert_eq!(
            data.len(),
            width as usize * height as usize * BYTES_PER_PIXEL,
            "raw buffer size mismatch"
        );
        Image {
            width,
            height,
            data,
        }
    }

    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    pub fn pixel_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Size of the pixel payload in bytes.
    #[inline]
    pub fn byte_len(&self) -> u64 {
        self.data.len() as u64
    }

    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Zero-copy snapshot of the payload for transport.
    pub fn to_bytes(&self) -> Bytes {
        Bytes::copy_from_slice(&self.data)
    }

    /// Consume the image and recover its raw RGBA buffer (for allocation
    /// recycling — see `scc-core`'s buffer pool).
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    #[inline]
    fn offset(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize * self.width as usize + x as usize) * BYTES_PER_PIXEL
    }

    /// RGBA of the pixel at (x, y).
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> [u8; 4] {
        let o = self.offset(x, y);
        [
            self.data[o],
            self.data[o + 1],
            self.data[o + 2],
            self.data[o + 3],
        ]
    }

    #[inline]
    pub fn set(&mut self, x: u32, y: u32, rgba: [u8; 4]) {
        let o = self.offset(x, y);
        self.data[o..o + 4].copy_from_slice(&rgba);
    }

    /// One row as a byte slice.
    pub fn row(&self, y: u32) -> &[u8] {
        let o = self.offset(0, y);
        &self.data[o..o + self.width as usize * BYTES_PER_PIXEL]
    }

    pub fn row_mut(&mut self, y: u32) -> &mut [u8] {
        let o = self.offset(0, y);
        let w = self.width as usize * BYTES_PER_PIXEL;
        &mut self.data[o..o + w]
    }

    /// Fill the whole image with one colour.
    pub fn fill(&mut self, rgba: [u8; 4]) {
        for px in self.data.chunks_exact_mut(BYTES_PER_PIXEL) {
            px.copy_from_slice(&rgba);
        }
    }

    /// Row extents of the `count` horizontal strips of a `height`-row frame:
    /// heights differ by at most one row, top strips get the extra rows.
    pub fn strip_bounds(height: u32, count: u32) -> Vec<(u32, u32)> {
        assert!(count > 0, "zero strips");
        assert!(
            count <= height,
            "more strips ({count}) than rows ({height})"
        );
        let base = height / count;
        let extra = height % count;
        let mut bounds = Vec::with_capacity(count as usize);
        let mut y = 0;
        for i in 0..count {
            let h = base + u32::from(i < extra);
            bounds.push((y, h));
            y += h;
        }
        debug_assert_eq!(y, height);
        bounds
    }

    /// Split into `count` horizontal strips (sort-first decomposition).
    pub fn split_strips(&self, count: u32) -> Vec<(StripInfo, Image)> {
        Image::strip_bounds(self.height, count)
            .into_iter()
            .enumerate()
            .map(|(i, (y0, h))| {
                let info = StripInfo {
                    index: i as u32,
                    count,
                    y0,
                    height: h,
                    full_height: self.height,
                };
                let start = self.offset(0, y0);
                let len = h as usize * self.width as usize * BYTES_PER_PIXEL;
                let img = Image::from_raw(self.width, h, self.data[start..start + len].to_vec());
                (info, img)
            })
            .collect()
    }

    /// Reassemble strips produced by [`Image::split_strips`] (any order).
    pub fn assemble(strips: &[(StripInfo, Image)]) -> Image {
        assert!(!strips.is_empty(), "no strips to assemble");
        let mut out = Image::new(strips[0].1.width(), strips[0].0.full_height);
        Image::assemble_into(strips, &mut out);
        out
    }

    /// Reassemble strips into a caller-provided full-frame image (the
    /// pool-friendly variant of [`Image::assemble`]): `out` must already
    /// have the full-frame geometry, and every pixel of it is overwritten.
    pub fn assemble_into(strips: &[(StripInfo, Image)], out: &mut Image) {
        assert!(!strips.is_empty(), "no strips to assemble");
        let full_height = strips[0].0.full_height;
        let width = strips[0].1.width();
        let count = strips[0].0.count;
        assert_eq!(strips.len() as u32, count, "missing strips");
        assert_eq!(out.width, width, "output width mismatch");
        assert_eq!(out.height, full_height, "output height mismatch");
        let mut covered = 0;
        for (info, img) in strips {
            assert_eq!(info.full_height, full_height, "inconsistent strip set");
            assert_eq!(img.width(), width, "strip width mismatch");
            assert_eq!(img.height(), info.height, "strip height mismatch");
            let start = out.offset(0, info.y0);
            out.data[start..start + img.data.len()].copy_from_slice(&img.data);
            covered += info.height;
        }
        assert_eq!(covered, full_height, "strips do not tile the frame");
    }
}

/// Convert one channel to the [0, 1] float range the filter formulas use.
#[inline]
pub fn to_unit(c: u8) -> f32 {
    c as f32 / 255.0
}

/// Convert back from [0, 1] with clamping (the paper's `clamp`).
#[inline]
pub fn from_unit(v: f32) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    [(x % 256) as u8, (y % 256) as u8, ((x + y) % 256) as u8, 255],
                );
            }
        }
        img
    }

    #[test]
    fn new_image_is_black_opaque() {
        let img = Image::new(4, 3);
        assert_eq!(img.get(0, 0), [0, 0, 0, 255]);
        assert_eq!(img.byte_len(), 4 * 3 * 4);
        assert_eq!(img.pixel_count(), 12);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::new(8, 8);
        img.set(3, 5, [1, 2, 3, 4]);
        assert_eq!(img.get(3, 5), [1, 2, 3, 4]);
        assert_eq!(img.get(5, 3), [0, 0, 0, 255]);
    }

    #[test]
    fn strip_bounds_tile_exactly() {
        for h in [1u32, 7, 100, 512] {
            for n in 1..=h.min(9) {
                let b = Image::strip_bounds(h, n);
                assert_eq!(b.len(), n as usize);
                let mut y = 0;
                for (y0, sh) in &b {
                    assert_eq!(*y0, y);
                    assert!(*sh > 0);
                    y += sh;
                }
                assert_eq!(y, h);
                let min = b.iter().map(|(_, h)| *h).min().unwrap();
                let max = b.iter().map(|(_, h)| *h).max().unwrap();
                assert!(max - min <= 1, "uneven split for h={h} n={n}");
            }
        }
    }

    #[test]
    fn split_assemble_identity() {
        let img = gradient(17, 23);
        for n in [1u32, 2, 3, 5, 7] {
            let strips = img.split_strips(n);
            assert_eq!(Image::assemble(&strips), img);
        }
    }

    #[test]
    fn assemble_any_order() {
        let img = gradient(9, 12);
        let mut strips = img.split_strips(4);
        strips.reverse();
        assert_eq!(Image::assemble(&strips), img);
    }

    #[test]
    fn rows_are_contiguous() {
        let img = gradient(5, 4);
        let row = img.row(2);
        assert_eq!(row.len(), 5 * 4);
        assert_eq!(&row[0..4], &img.get(0, 2));
    }

    #[test]
    fn unit_conversion_clamps() {
        assert_eq!(from_unit(-0.5), 0);
        assert_eq!(from_unit(0.0), 0);
        assert_eq!(from_unit(1.0), 255);
        assert_eq!(from_unit(2.0), 255);
        assert_eq!(to_unit(255), 1.0);
        assert_eq!(to_unit(0), 0.0);
        // Roundtrip within one quantisation step.
        for c in [0u8, 1, 127, 254, 255] {
            assert_eq!(from_unit(to_unit(c)), c);
        }
    }

    #[test]
    #[should_panic(expected = "more strips")]
    fn too_many_strips_panics() {
        Image::strip_bounds(4, 5);
    }

    #[test]
    #[should_panic(expected = "strips do not tile")]
    fn assemble_rejects_missing_rows() {
        let img = gradient(4, 8);
        let mut strips = img.split_strips(2);
        // Lie about the strip count so the length check passes but
        // coverage fails.
        strips.remove(1);
        strips[0].0.count = 1;
        strips[0].0.full_height = 8;
        Image::assemble(&strips);
    }

    #[test]
    fn into_raw_roundtrips_through_from_raw() {
        let img = gradient(6, 5);
        let copy = img.clone();
        let raw = img.into_raw();
        assert_eq!(raw.len(), 6 * 5 * BYTES_PER_PIXEL);
        assert_eq!(Image::from_raw(6, 5, raw), copy);
    }

    #[test]
    fn assemble_into_overwrites_stale_pixels() {
        let img = gradient(9, 11);
        let strips = img.split_strips(3);
        let mut out = Image::new(9, 11);
        out.fill([123, 45, 67, 89]); // stale garbage, as a recycled buffer would hold
        Image::assemble_into(&strips, &mut out);
        assert_eq!(out, img);
    }

    #[test]
    #[should_panic(expected = "output height mismatch")]
    fn assemble_into_rejects_wrong_geometry() {
        let img = gradient(4, 8);
        let strips = img.split_strips(2);
        let mut out = Image::new(4, 7);
        Image::assemble_into(&strips, &mut out);
    }

    #[test]
    fn fill_sets_every_pixel() {
        let mut img = Image::new(3, 3);
        img.fill([9, 8, 7, 6]);
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(img.get(x, y), [9, 8, 7, 6]);
            }
        }
    }
}
