//! Sequential reference implementation of the full data path.
//!
//! Computes, without any pipeline machinery, exactly the frames the
//! visualisation client should display: render each strip, run the filter
//! chain per strip (the paper's strips are processed autonomously, so
//! filter effects — including blur seams — are defined per strip), then
//! assemble. The simulated and native runners are tested bit-exact against
//! this.

use crate::spec::RunConfig;
use scc_filters::{standard_chain, FrameCtx, Image};
use scc_render::{Renderer, Scene, Walkthrough};
use std::sync::Arc;

/// Compute the reference output frames for `cfg`.
pub fn reference_frames(cfg: &RunConfig, scene: Arc<Scene>) -> Vec<Image> {
    let renderer = Renderer::new(scene);
    let walkthrough = Walkthrough::standard(cfg.width as f32 / cfg.height as f32);
    let chain = standard_chain();
    let bounds = Image::strip_bounds(cfg.height, cfg.pipelines);
    let mut out = Vec::with_capacity(cfg.frames as usize);
    for f in 0..cfg.frames {
        let cam = walkthrough.camera(f);
        // The renderer mode determines how pixels are produced: the
        // single-renderer and MCPC configurations render the full frame
        // and split it; the per-pipeline mode renders each strip with its
        // own band frustum.
        let per_strip_render = cfg.renderer == crate::spec::RendererMode::PerPipelineRenderer;
        let mut strips = Vec::with_capacity(bounds.len());
        if per_strip_render {
            for (i, &(y0, h)) in bounds.iter().enumerate() {
                let (img, _) = renderer.render_strip(&cam, cfg.width, cfg.height, y0, h);
                let info = scc_filters::StripInfo {
                    index: i as u32,
                    count: bounds.len() as u32,
                    y0,
                    height: h,
                    full_height: cfg.height,
                };
                strips.push((info, img));
            }
        } else {
            let (img, _) = renderer.render_full(&cam, cfg.width, cfg.height);
            strips = img.split_strips(cfg.pipelines);
        }
        for (info, strip) in &mut strips {
            let ctx = FrameCtx {
                frame_id: f,
                run_seed: cfg.seed,
                strip: *info,
                full_width: cfg.width,
            };
            for filter in &chain {
                filter.apply(strip, &ctx);
            }
            // Per-strip swap + mirrored placement = globally flipped frame.
            *info = scc_filters::vswap::mirrored_info(*info);
        }
        out.push(Image::assemble(&strips));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Fidelity, RendererMode};
    use scc_render::CityConfig;

    fn scene() -> Arc<Scene> {
        Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }))
    }

    fn cfg(pipelines: u32) -> RunConfig {
        RunConfig {
            pipelines,
            width: 80,
            height: 80,
            frames: 2,
            fidelity: Fidelity::Full,
            ..Default::default()
        }
    }

    #[test]
    fn reference_is_deterministic() {
        let a = reference_frames(&cfg(2), scene());
        let b = reference_frames(&cfg(2), scene());
        assert_eq!(a, b);
    }

    #[test]
    fn strip_count_changes_blur_seams_only_slightly() {
        // Different pipeline counts give different strip decompositions;
        // the images must agree except near strip boundaries (blur seams).
        let one = reference_frames(&cfg(1), scene());
        let four = reference_frames(&cfg(4), scene());
        let mut diff = 0u64;
        for (a, b) in one.iter().zip(&four) {
            for y in 0..80 {
                for x in 0..80 {
                    if a.get(x, y) != b.get(x, y) {
                        diff += 1;
                    }
                }
            }
        }
        let total = 2 * 80 * 80;
        assert!(
            diff < total / 10,
            "{diff}/{total} pixels differ between 1- and 4-strip references"
        );
    }

    #[test]
    fn per_strip_render_mode_close_to_split_mode() {
        let mut c = cfg(2);
        c.renderer = RendererMode::PerPipelineRenderer;
        let strip_mode = reference_frames(&c, scene());
        c.renderer = RendererMode::SingleRenderer;
        let split_mode = reference_frames(&c, scene());
        // Band-frustum rendering differs from split-after-render only by
        // floating-point rounding at strip edges.
        let mut diff = 0u64;
        for (a, b) in strip_mode.iter().zip(&split_mode) {
            for y in 0..80 {
                for x in 0..80 {
                    if a.get(x, y) != b.get(x, y) {
                        diff += 1;
                    }
                }
            }
        }
        assert!(diff < 2 * 80 * 80 / 20, "{diff} pixels differ");
    }
}
