//! Frames moving through the macro pipeline.

use scc_filters::{Image, StripInfo};

/// One unit of pipeline work: a strip of one walkthrough frame.
///
/// In full-fidelity runs the pixel payload travels with the frame; in
/// timing-only runs only the byte count does (the simulator charges
/// identical costs either way).
#[derive(Debug, Clone)]
pub struct Frame {
    /// Walkthrough frame number (0-based).
    pub id: u64,
    /// Position of this strip within the full frame.
    pub strip: StripInfo,
    /// Full frame width in pixels.
    pub full_width: u32,
    /// Pixel payload (absent in timing-only mode).
    pub image: Option<Image>,
}

impl Frame {
    /// Payload size in bytes (4 bytes/pixel framebuffer, §IV).
    pub fn byte_len(&self) -> u64 {
        self.full_width as u64 * self.strip.height as u64 * 4
    }

    /// Pixels in this strip.
    pub fn pixel_count(&self) -> u64 {
        self.full_width as u64 * self.strip.height as u64
    }

    /// Filter context for this strip.
    pub fn ctx(&self, run_seed: u64) -> scc_filters::FrameCtx {
        scc_filters::FrameCtx {
            frame_id: self.id,
            run_seed,
            strip: self.strip,
            full_width: self.full_width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip() -> StripInfo {
        StripInfo {
            index: 1,
            count: 4,
            y0: 100,
            height: 100,
            full_height: 400,
        }
    }

    #[test]
    fn byte_len_is_4_per_pixel() {
        let f = Frame {
            id: 0,
            strip: strip(),
            full_width: 400,
            image: None,
        };
        assert_eq!(f.pixel_count(), 40_000);
        assert_eq!(f.byte_len(), 160_000);
    }

    #[test]
    fn ctx_carries_strip_and_seed() {
        let f = Frame {
            id: 7,
            strip: strip(),
            full_width: 400,
            image: None,
        };
        let c = f.ctx(42);
        assert_eq!(c.frame_id, 7);
        assert_eq!(c.run_seed, 42);
        assert_eq!(c.strip.y0, 100);
        assert_eq!(c.full_width, 400);
    }
}
