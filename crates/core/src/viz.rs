//! Visualisation client.
//!
//! The paper's client runs on the MCPC, receives final frames over UDP
//! and displays each "until a new image arrives" (§IV). This module is
//! the analysis-side equivalent: it ingests the frames a runner delivered
//! and verifies/characterises the silent-film effect — per-frame
//! checksums, the brightness series (the visible flicker), scratch-column
//! detection, and delivery statistics.

use scc_filters::Image;
use serde::Serialize;

/// FNV-1a, for cheap content-addressing of frames.
pub fn frame_checksum(img: &Image) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in img.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mean luminance of a frame in [0, 1] (Rec.601 weights, like the sepia
/// mix formula).
pub fn mean_luminance(img: &Image) -> f64 {
    let mut acc = 0.0f64;
    for px in img.as_bytes().chunks_exact(4) {
        acc += 0.3 * px[0] as f64 + 0.59 * px[1] as f64 + 0.11 * px[2] as f64;
    }
    acc / (img.pixel_count() as f64 * 255.0)
}

/// Columns whose pixels are (almost) uniformly a single bright shade —
/// the signature of the vertical scratch filter. Returns column indices.
pub fn detect_scratch_columns(img: &Image) -> Vec<u32> {
    let mut out = Vec::new();
    for x in 0..img.width() {
        let first = img.get(x, 0);
        if first[0] < 150 || first[0] != first[1] || first[1] != first[2] {
            continue;
        }
        let uniform = (1..img.height()).all(|y| {
            let p = img.get(x, y);
            p[0] == first[0] && p[1] == first[1] && p[2] == first[2]
        });
        if uniform {
            out.push(x);
        }
    }
    out
}

/// Per-run delivery report.
#[derive(Debug, Clone, Serialize)]
pub struct VizReport {
    pub frames: usize,
    pub checksums: Vec<u64>,
    /// Mean luminance per frame — the flicker series.
    pub luminance: Vec<f64>,
    /// Scratch columns detected per frame.
    pub scratch_columns: Vec<Vec<u32>>,
    /// Number of consecutive duplicate frames (a stalled pipeline would
    /// show these; a healthy walkthrough has none).
    pub duplicates: usize,
}

/// The client: feed it frames in display order.
#[derive(Debug, Default)]
pub struct VizClient {
    checksums: Vec<u64>,
    luminance: Vec<f64>,
    scratch_columns: Vec<Vec<u32>>,
    duplicates: usize,
}

impl VizClient {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn display(&mut self, img: &Image) {
        let sum = frame_checksum(img);
        if self.checksums.last() == Some(&sum) {
            self.duplicates += 1;
        }
        self.checksums.push(sum);
        self.luminance.push(mean_luminance(img));
        self.scratch_columns.push(detect_scratch_columns(img));
    }

    pub fn ingest_all<'a>(&mut self, frames: impl IntoIterator<Item = &'a Image>) {
        for f in frames {
            self.display(f);
        }
    }

    /// Peak-to-peak amplitude of the luminance (flicker) series.
    pub fn flicker_amplitude(&self) -> f64 {
        let max = self.luminance.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.luminance.iter().cloned().fold(f64::MAX, f64::min);
        if self.luminance.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    pub fn report(self) -> VizReport {
        VizReport {
            frames: self.checksums.len(),
            checksums: self.checksums,
            luminance: self.luminance,
            scratch_columns: self.scratch_columns,
            duplicates: self.duplicates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_frames;
    use crate::spec::{Fidelity, RunConfig};
    use scc_filters::{FrameCtx, ImageFilter, Scratch};
    use scc_render::{CityConfig, Scene};
    use std::sync::Arc;

    #[test]
    fn checksum_distinguishes_frames() {
        let a = Image::new(8, 8);
        let mut b = Image::new(8, 8);
        b.set(3, 3, [1, 2, 3, 255]);
        assert_ne!(frame_checksum(&a), frame_checksum(&b));
        assert_eq!(frame_checksum(&a), frame_checksum(&a.clone()));
    }

    #[test]
    fn luminance_of_known_images() {
        let mut img = Image::new(4, 4);
        assert_eq!(mean_luminance(&img), 0.0);
        img.fill([255, 255, 255, 255]);
        assert!((mean_luminance(&img) - 1.0).abs() < 1e-9);
        img.fill([255, 0, 0, 255]);
        assert!((mean_luminance(&img) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn detects_scratch_columns_painted_by_the_filter() {
        let s = Scratch { max_scratches: 6 };
        for frame in 0..32 {
            let ctx = FrameCtx::whole_frame(frame, 5, 64, 48);
            let plan = s.plan(&ctx);
            if plan.columns.is_empty() {
                continue;
            }
            let mut img = Image::new(64, 48);
            s.apply(&mut img, &ctx);
            let detected = detect_scratch_columns(&img);
            for c in &plan.columns {
                assert!(detected.contains(c), "column {c} not detected");
            }
            return;
        }
        panic!("no scratched frame found");
    }

    #[test]
    fn walkthrough_frames_flicker_and_never_stall() {
        let cfg = RunConfig {
            pipelines: 2,
            width: 64,
            height: 64,
            frames: 16,
            fidelity: Fidelity::Full,
            ..RunConfig::default()
        };
        let scene = Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }));
        let frames = reference_frames(&cfg, scene);
        let mut client = VizClient::new();
        client.ingest_all(&frames);
        assert!(
            client.flicker_amplitude() > 0.005,
            "flicker amplitude {:.4} too small — filter not visible",
            client.flicker_amplitude()
        );
        let report = client.report();
        assert_eq!(report.frames, 16);
        assert_eq!(report.duplicates, 0, "stalled frames detected");
        // All checksums distinct (walkthrough + randomised filters).
        let mut sums = report.checksums.clone();
        sums.sort_unstable();
        sums.dedup();
        assert_eq!(sums.len(), 16);
    }
}
