//! Closed-loop DVFS governor.
//!
//! The paper's §VI-D frequency split (blur at 800 MHz, the downstream
//! island recovered to 400 MHz) was chosen open-loop, by a person staring
//! at Figure 15's idle quartiles. This module closes that loop: at a
//! configurable epoch the runner hands the governor one idle fraction per
//! placed station, and the governor moves per-tile `FreqMHz` to shrink the
//! bottleneck stage's deficit under an idle-power budget.
//!
//! The control law is deliberately small — the same three moves a person
//! would make from the idle histogram:
//!
//! * **Raise** the tile of the station with the *lowest* idle fraction one
//!   frequency step, when that fraction sits below
//!   [`GovernorTuning::bottleneck_idle_frac`] — it is the stage everyone
//!   else is waiting on.
//! * **Throttle** a whole voltage island one step down when *every*
//!   station resident on it idles above
//!   [`GovernorTuning::throttle_idle_frac`] — the island is coasting, and
//!   voltage only drops when all four tiles come down together
//!   (`DvfsState::island_volts` is a max).
//! * **Hold** otherwise.
//!
//! Two dampers keep it from chattering. A candidate must persist for
//! [`GovernorTuning::hysteresis_epochs`] consecutive epochs before it is
//! acted on, and a raise is suppressed (recorded as
//! [`GovernorAction::CapBlocked`]) when the cumulative idle-power cost of
//! all raises would exceed [`GovernorTuning::power_cap_watts`] — the cap
//! bounds what the governor may spend on speed; throttle savings are not
//! credited back.
//!
//! Both runner backends call [`Governor::observe_epoch`] with identically
//! defined samples (idle-in-epoch over epoch duration, quantised to
//! 1/256ths to absorb the sim≡DES timing tolerance), so the decision trace
//! is byte-comparable across backends. A decision made from epoch `e`'s
//! samples takes effect at epoch `e + 2`: the one-epoch lag gives the DES
//! backend's pipelined lookahead a frequency map that is always already
//! decided when a node needs it.

use crate::spec::GovernorTuning;
use scc_sim::dvfs::NUM_ISLANDS;
use scc_sim::power::PowerConfig as PowerCalibration;
use scc_sim::{CoreId, DvfsState, FreqMHz, IslandId, TileId};
use serde::Serialize;

/// One sampled station: a placed stage and the fraction of the epoch it
/// spent waiting for input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationSample {
    pub core: CoreId,
    /// Idle-in-epoch over epoch duration, in `[0, 1]`.
    pub idle_frac: f64,
}

impl StationSample {
    pub fn new(core: CoreId, idle_frac: f64) -> StationSample {
        StationSample { core, idle_frac }
    }
}

/// What the governor did with one epoch's samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GovernorAction {
    /// No candidate, or a candidate still accumulating hysteresis.
    Hold,
    /// The bottleneck station's tile moved one frequency step up.
    Raise {
        tile: TileId,
        from: FreqMHz,
        to: FreqMHz,
    },
    /// A coasting island moved one frequency step down (all four tiles).
    Throttle {
        island: IslandId,
        from: FreqMHz,
        to: FreqMHz,
    },
    /// A raise cleared hysteresis but would blow the idle-power budget.
    CapBlocked { tile: TileId },
}

/// One line of the governor's decision trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct GovernorDecision {
    pub epoch: u32,
    pub action: GovernorAction,
}

/// The closed-loop controller. Owns its view of the DVFS state it has
/// decided so far; the runner owns when each decided state takes effect.
#[derive(Debug, Clone)]
pub struct Governor {
    tuning: GovernorTuning,
    cal: PowerCalibration,
    state: DvfsState,
    /// Idle-power watts the applied raises have cost so far. Throttle
    /// savings are deliberately not credited back: the cap bounds how
    /// much the governor may *spend* on speed, not the net balance — a
    /// refundable cap would let every budget converge to the same state
    /// and stop being a knob.
    spent_watts: f64,
    /// Tiles whose raise was refused by the cap; the budget never grows,
    /// so they stay off the candidate list and the throttle arm can run.
    blocked_tiles: Vec<TileId>,
    /// Tiles hosting placed-but-unsampled cores (renderers, connector):
    /// their islands are never throttled — no idle sample does not mean
    /// no work.
    protected_tiles: Vec<TileId>,
    raise_streak: Option<(TileId, u32)>,
    throttle_streak: Option<(IslandId, u32)>,
    decisions: Vec<GovernorDecision>,
    raises: u32,
    throttles: u32,
    cap_blocks: u32,
}

/// Idle fractions quantised to this grain before any comparison, so the
/// sim and DES backends (timing within a few percent of each other) reach
/// the same verdicts from the same workload.
const IDLE_GRAIN: f64 = 256.0;

fn quantise(idle_frac: f64) -> f64 {
    (idle_frac.clamp(0.0, 1.0) * IDLE_GRAIN).round() / IDLE_GRAIN
}

fn step_up(f: FreqMHz) -> Option<FreqMHz> {
    match f {
        FreqMHz::F400 => Some(FreqMHz::F533),
        FreqMHz::F533 => Some(FreqMHz::F800),
        FreqMHz::F800 => None,
    }
}

fn step_down(f: FreqMHz) -> Option<FreqMHz> {
    match f {
        FreqMHz::F400 => None,
        FreqMHz::F533 => Some(FreqMHz::F400),
        FreqMHz::F800 => Some(FreqMHz::F533),
    }
}

/// One frequency step apart, in either direction — the legality test the
/// invariant checker applies to every decision.
pub fn adjacent_steps(a: FreqMHz, b: FreqMHz) -> bool {
    step_up(a) == Some(b) || step_down(a) == Some(b)
}

/// The DVFS state a decision trace converges to from `initial` — what a
/// report's `dvfs_decisions` imply, independent of how many of the tail
/// decisions the run was still long enough to put into effect.
pub fn replay_decisions(initial: &DvfsState, decisions: &[GovernorDecision]) -> DvfsState {
    let mut state = initial.clone();
    for d in decisions {
        match d.action {
            GovernorAction::Raise { tile, to, .. } => state.set_tile(tile, to),
            GovernorAction::Throttle { island, to, .. } => {
                for tile in island.tiles() {
                    state.set_tile(tile, to);
                }
            }
            _ => {}
        }
    }
    state
}

impl Governor {
    /// A governor starting from `initial` (usually the uniform default),
    /// budgeted against `cal`'s idle-power model.
    pub fn new(tuning: GovernorTuning, cal: PowerCalibration, initial: DvfsState) -> Governor {
        Governor {
            tuning,
            cal,
            state: initial,
            spent_watts: 0.0,
            blocked_tiles: Vec::new(),
            protected_tiles: Vec::new(),
            raise_streak: None,
            throttle_streak: None,
            decisions: Vec::new(),
            raises: 0,
            throttles: 0,
            cap_blocks: 0,
        }
    }

    /// Shield the tiles of `cores` from island throttles — for placed
    /// stages the runner does not sample (renderers, the MCPC connector),
    /// whose silence must not read as coasting.
    pub fn protect(mut self, cores: impl IntoIterator<Item = CoreId>) -> Governor {
        for c in cores {
            let tile = c.tile();
            if !self.protected_tiles.contains(&tile) {
                self.protected_tiles.push(tile);
            }
        }
        self
    }

    /// The state the governor has decided so far (the runner applies it on
    /// its own effect schedule).
    pub fn state(&self) -> &DvfsState {
        &self.state
    }

    pub fn decisions(&self) -> &[GovernorDecision] {
        &self.decisions
    }

    pub fn epochs(&self) -> u32 {
        self.decisions.len() as u32
    }

    pub fn raises(&self) -> u32 {
        self.raises
    }

    pub fn throttles(&self) -> u32 {
        self.throttles
    }

    pub fn cap_blocks(&self) -> u32 {
        self.cap_blocks
    }

    /// Feed one epoch's samples; returns the newly decided state when the
    /// epoch produced a move, `None` on a hold. At most one move per epoch
    /// — a raise outranks a throttle, so the pipeline is never slowed in
    /// the same breath that speeds it up.
    pub fn observe_epoch(&mut self, stations: &[StationSample]) -> Option<DvfsState> {
        let epoch = self.decisions.len() as u32;
        let action = if stations.is_empty() {
            GovernorAction::Hold
        } else {
            self.raise_move(stations)
                .or_else(|| self.throttle_move(stations))
                .unwrap_or(GovernorAction::Hold)
        };
        self.decisions.push(GovernorDecision { epoch, action });
        match action {
            GovernorAction::Raise { .. } => self.raises += 1,
            GovernorAction::Throttle { .. } => self.throttles += 1,
            GovernorAction::CapBlocked { .. } => self.cap_blocks += 1,
            GovernorAction::Hold => {}
        }
        matches!(
            action,
            GovernorAction::Raise { .. } | GovernorAction::Throttle { .. }
        )
        .then(|| self.state.clone())
    }

    /// The bottleneck arm: lowest-idle station below the threshold that
    /// can still step up, with hysteresis and the power cap between
    /// candidacy and action. Stations whose tile is maxed out or
    /// cap-blocked are passed over so they cannot shadow the next-worst
    /// deficit (a raised sepia must not hide a starved blur).
    fn raise_move(&mut self, stations: &[StationSample]) -> Option<GovernorAction> {
        // Lowest quantised idle first; ties break on core id so both
        // backends rank identically.
        let mut ranked: Vec<StationSample> = stations.to_vec();
        ranked.sort_by(|a, b| {
            quantise(a.idle_frac)
                .total_cmp(&quantise(b.idle_frac))
                .then(a.core.cmp(&b.core))
        });
        let bottleneck = ranked.into_iter().find(|s| {
            let tile = s.core.tile();
            quantise(s.idle_frac) < self.tuning.bottleneck_idle_frac
                && !self.blocked_tiles.contains(&tile)
                && step_up(self.state.tile_freq(tile)).is_some()
        });
        let Some(bottleneck) = bottleneck else {
            self.raise_streak = None;
            return None;
        };
        let tile = bottleneck.core.tile();
        let to = step_up(self.state.tile_freq(tile)).expect("candidacy checked a step exists");
        let streak = match self.raise_streak {
            Some((t, n)) if t == tile => n + 1,
            _ => 1,
        };
        self.raise_streak = Some((tile, streak));
        if streak < self.tuning.hysteresis_epochs {
            return Some(GovernorAction::Hold);
        }
        self.raise_streak = None;
        let from = self.state.tile_freq(tile);
        let mut candidate = self.state.clone();
        candidate.set_tile(tile, to);
        let cost = self.cal.idle_power(&candidate) - self.cal.idle_power(&self.state);
        if self.spent_watts + cost > self.tuning.power_cap_watts + 1e-9 {
            self.blocked_tiles.push(tile);
            return Some(GovernorAction::CapBlocked { tile });
        }
        self.spent_watts += cost;
        self.state = candidate;
        self.throttle_streak = None;
        Some(GovernorAction::Raise { tile, from, to })
    }

    /// The coasting arm: an island where every resident station idles
    /// above the threshold and all four tiles share one frequency with a
    /// step below it. Lowest island id wins so the trace is deterministic.
    fn throttle_move(&mut self, stations: &[StationSample]) -> Option<GovernorAction> {
        let mut resident: [Vec<f64>; NUM_ISLANDS as usize] = Default::default();
        for s in stations {
            resident[IslandId::of_tile(s.core.tile()).index()].push(quantise(s.idle_frac));
        }
        let candidate = IslandId::all().find(|island| {
            let idles = &resident[island.index()];
            if idles.is_empty()
                || idles
                    .iter()
                    .any(|idle| *idle <= self.tuning.throttle_idle_frac)
                || island
                    .tiles()
                    .iter()
                    .any(|t| self.protected_tiles.contains(t))
            {
                return false;
            }
            let freqs: Vec<FreqMHz> = island
                .tiles()
                .iter()
                .map(|t| self.state.tile_freq(*t))
                .collect();
            freqs.iter().all(|f| *f == freqs[0]) && step_down(freqs[0]).is_some()
        });
        let Some(island) = candidate else {
            self.throttle_streak = None;
            return None;
        };
        let streak = match self.throttle_streak {
            Some((i, n)) if i == island => n + 1,
            _ => 1,
        };
        self.throttle_streak = Some((island, streak));
        if streak < self.tuning.hysteresis_epochs {
            return Some(GovernorAction::Hold);
        }
        self.throttle_streak = None;
        let from = self.state.tile_freq(island.tiles()[0]);
        let to = step_down(from).expect("candidacy checked a step exists");
        for tile in island.tiles() {
            self.state.set_tile(tile, to);
        }
        Some(GovernorAction::Throttle { island, from, to })
    }

    /// Largest number of frequency-direction changes any single tile saw
    /// over the decision trace — the no-oscillation metric. A converging
    /// governor settles each tile with at most one change of direction.
    pub fn max_direction_changes(&self) -> u32 {
        let mut last_dir: [i8; 24] = [0; 24];
        let mut changes: [u32; 24] = [0; 24];
        for d in &self.decisions {
            let (tiles, dir): (Vec<TileId>, i8) = match d.action {
                GovernorAction::Raise { tile, .. } => (vec![tile], 1),
                GovernorAction::Throttle { island, .. } => (island.tiles().to_vec(), -1),
                _ => continue,
            };
            for t in tiles {
                let i = t.index();
                if last_dir[i] != 0 && last_dir[i] != dir {
                    changes[i] += 1;
                }
                last_dir[i] = dir;
            }
        }
        changes.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sim::topology::TileId;

    fn tuning() -> GovernorTuning {
        GovernorTuning::default()
    }

    fn core_at(x: u8, y: u8, slot: u8) -> CoreId {
        CoreId::new(TileId::from_xy(x, y).raw() * 2 + slot)
    }

    /// The paper's film shape: blur starved of idle, everyone else
    /// coasting. Stations mirror `place_dvfs_single_pipeline`.
    fn film_epoch() -> Vec<StationSample> {
        vec![
            StationSample::new(core_at(1, 0, 0), 0.62), // sepia
            StationSample::new(core_at(2, 0, 0), 0.02), // blur (bottleneck)
            StationSample::new(core_at(4, 0, 0), 0.66), // scratch
            StationSample::new(core_at(4, 0, 1), 0.68), // flicker
            StationSample::new(core_at(5, 0, 0), 0.70), // swap
            StationSample::new(core_at(5, 0, 1), 0.64), // transfer
        ]
    }

    #[test]
    fn converges_to_the_papers_film_split() {
        let mut g = Governor::new(tuning(), PowerCalibration::default(), DvfsState::default());
        for _ in 0..20 {
            g.observe_epoch(&film_epoch());
        }
        let blur_tile = TileId::from_xy(2, 0);
        assert_eq!(g.state().tile_freq(blur_tile), FreqMHz::F800);
        // The downstream island (tiles (4..6, 0..2)) coasts to 400.
        let downstream = IslandId::of_tile(TileId::from_xy(4, 0));
        for t in downstream.tiles() {
            assert_eq!(g.state().tile_freq(t), FreqMHz::F400, "{t}");
        }
        // Sepia shares island 0 with no low-idle station, so it coasts
        // too; blur's island keeps its other tiles at the default.
        let upstream = IslandId::of_tile(TileId::from_xy(1, 0));
        for t in upstream.tiles() {
            assert_eq!(g.state().tile_freq(t), FreqMHz::F400, "{t}");
        }
        assert!(g.raises() >= 1 && g.throttles() >= 2);
        assert_eq!(g.max_direction_changes(), 0, "no tile reversed direction");
    }

    #[test]
    fn blurs_island_is_never_throttled() {
        let mut g = Governor::new(tuning(), PowerCalibration::default(), DvfsState::default());
        for _ in 0..20 {
            g.observe_epoch(&film_epoch());
        }
        // Blur sits on island 1; its low idle vetoes the island throttle,
        // so every tile there holds at least the default frequency.
        let blur_island = IslandId::of_tile(TileId::from_xy(2, 0));
        for t in blur_island.tiles() {
            assert!(g.state().tile_freq(t).mhz() >= FreqMHz::F533.mhz(), "{t}");
        }
        assert_eq!(
            g.state().tile_freq(TileId::from_xy(3, 0)),
            FreqMHz::F533,
            "blur's island mate holds the default"
        );
    }

    #[test]
    fn hysteresis_blocks_an_alternating_bottleneck() {
        let mut g = Governor::new(tuning(), PowerCalibration::default(), DvfsState::default());
        let a = StationSample::new(core_at(1, 0, 0), 0.02);
        let b = StationSample::new(core_at(2, 0, 0), 0.02);
        let calm = StationSample::new(core_at(4, 0, 0), 0.30);
        for e in 0..12 {
            // The bottleneck flips tile every epoch: no streak ever
            // reaches the hysteresis bar.
            let noisy = if e % 2 == 0 {
                vec![a, StationSample::new(b.core, 0.2), calm]
            } else {
                vec![StationSample::new(a.core, 0.2), b, calm]
            };
            g.observe_epoch(&noisy);
        }
        assert_eq!(g.raises(), 0);
        assert!(g
            .decisions()
            .iter()
            .all(|d| d.action == GovernorAction::Hold));
    }

    #[test]
    fn power_cap_blocks_the_raise_but_not_the_throttles() {
        let tight = GovernorTuning {
            power_cap_watts: 0.5,
            ..tuning()
        };
        let mut g = Governor::new(tight, PowerCalibration::default(), DvfsState::default());
        for _ in 0..20 {
            g.observe_epoch(&film_epoch());
        }
        assert_eq!(g.raises(), 0, "0.5 W cannot pay for a 1.3 V island");
        assert!(g.cap_blocks() >= 1);
        assert!(g.throttles() >= 2, "throttles are always budget-positive");
        assert_eq!(
            g.state().tile_freq(TileId::from_xy(2, 0)),
            FreqMHz::F533,
            "blur stays at the default under the tight cap"
        );
    }

    #[test]
    fn wider_cap_reaches_a_faster_state() {
        let run = |cap: f64| {
            let t = GovernorTuning {
                power_cap_watts: cap,
                ..tuning()
            };
            let mut g = Governor::new(t, PowerCalibration::default(), DvfsState::default());
            for _ in 0..20 {
                g.observe_epoch(&film_epoch());
            }
            g
        };
        let tight = run(0.5);
        let wide = run(8.0);
        for t in TileId::all() {
            assert!(
                wide.state().tile_freq(t).mhz() >= tight.state().tile_freq(t).mhz(),
                "{t} slower under the wider cap"
            );
        }
        assert!(wide.raises() > tight.raises());
    }

    #[test]
    fn decision_trace_is_deterministic_and_legal() {
        let mk = || {
            let mut g =
                Governor::new(tuning(), PowerCalibration::default(), DvfsState::default());
            for _ in 0..16 {
                g.observe_epoch(&film_epoch());
            }
            g
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.decisions(), b.decisions());
        for d in a.decisions() {
            match d.action {
                GovernorAction::Raise { from, to, .. }
                | GovernorAction::Throttle { from, to, .. } => {
                    assert!(adjacent_steps(from, to), "illegal step {from:?}->{to:?}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn empty_station_list_holds_forever() {
        let mut g = Governor::new(tuning(), PowerCalibration::default(), DvfsState::default());
        for _ in 0..5 {
            assert!(g.observe_epoch(&[]).is_none());
        }
        assert_eq!(g.raises() + g.throttles() + g.cap_blocks(), 0);
    }
}
