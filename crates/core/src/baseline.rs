//! Single-core baseline: the whole pipeline executed serially on one SCC
//! core (Figure 8 and the 382 s reference of §VI-A).

use crate::cost::{CostModel, RenderWork};
use crate::spec::{RunConfig, StageKind};
use scc_filters::{Blur, Flicker, Image, ImageFilter, Scratch, Sepia, VSwap};
use scc_render::{Renderer, Scene, Walkthrough};
use scc_sim::platform::MemOp;
use scc_sim::{CoreId, SccConfig, SccPlatform, SimTime};
use serde::Serialize;
use std::sync::Arc;

/// Figure 8's content: per-stage accumulated time over the walkthrough.
#[derive(Debug, Clone, Serialize)]
pub struct BaselineReport {
    /// (stage, total seconds) in pipeline order.
    pub stage_secs: Vec<(StageKind, f64)>,
    /// Complete walkthrough time on one core.
    pub total_secs: f64,
    /// Render-only walkthrough time (§VI-A's "without the transfer stage
    /// it takes about 94 seconds").
    pub render_only_secs: f64,
    /// Render + transfer walkthrough time (§VI-A's "about 104 seconds").
    pub render_transfer_secs: f64,
}

impl BaselineReport {
    pub fn stage(&self, kind: StageKind) -> f64 {
        self.stage_secs
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }
}

/// Run the single-core baseline for `cfg`'s geometry (the renderer mode,
/// arrangement and pipeline count are ignored — everything runs on core 0).
pub fn run_baseline(cfg: &RunConfig, scene: Arc<Scene>) -> BaselineReport {
    let cost = CostModel::default();
    let mut platform = SccPlatform::new(SccConfig::default());
    let renderer = Renderer::new(scene);
    let walkthrough = Walkthrough::standard(cfg.width as f32 / cfg.height as f32);
    let core = CoreId::new(0);
    let full_px = cfg.width as u64 * cfg.height as u64;
    let full_bytes = cfg.frame_bytes();

    let filters: [Box<dyn ImageFilter>; 5] = [
        Box::new(Sepia),
        Box::new(Blur::default()),
        Box::new(Scratch::default()),
        Box::new(Flicker::default()),
        Box::new(VSwap),
    ];
    let kinds = StageKind::PIPELINE_FILTERS;

    let mut t = SimTime::ZERO;
    let mut acc: Vec<(StageKind, SimTime)> = vec![
        (StageKind::Render, SimTime::ZERO),
        (StageKind::Sepia, SimTime::ZERO),
        (StageKind::Blur, SimTime::ZERO),
        (StageKind::Scratch, SimTime::ZERO),
        (StageKind::Flicker, SimTime::ZERO),
        (StageKind::Swap, SimTime::ZERO),
        (StageKind::Transfer, SimTime::ZERO),
    ];
    let add = |acc: &mut Vec<(StageKind, SimTime)>, kind: StageKind, dur: SimTime| {
        acc.iter_mut().find(|(k, _)| *k == kind).unwrap().1 += dur;
    };

    let proxy = Image::new(cfg.width, cfg.height);
    let mut render_total = SimTime::ZERO;
    let mut transfer_total = SimTime::ZERO;

    for f in 0..cfg.frames {
        let cam = walkthrough.camera(f);
        // Render: same cost path as the pipelined runs.
        let (_, cull, coverage) = renderer.cull_strip(&cam, cfg.width, cfg.height, 0, cfg.height);
        let work = RenderWork {
            nodes_visited: cull.nodes_visited,
            triangles_out: cull.triangles_out,
            est_coverage: coverage,
        };
        let t0 = t;
        t = platform.mem_raw(core, t, MemOp::Read, cost.render_scene_bytes(&work));
        t = platform.compute(core, t, cost.render_cycles(&work, false) as u64);
        t = platform.mem_stream(core, t, MemOp::Write, full_bytes);
        add(&mut acc, StageKind::Render, t - t0);
        render_total += t - t0;

        // Filters, in place (one strip = the whole frame).
        let ctx = scc_filters::FrameCtx::whole_frame(f, cfg.seed, cfg.width, cfg.height);
        for (j, filter) in filters.iter().enumerate() {
            let t0 = t;
            t = platform.compute(
                core,
                t,
                cost.filter_cycles(filter.as_ref(), &proxy, &ctx) as u64,
            );
            let traffic = cost.stage_traffic(kinds[j], full_bytes);
            t = platform.mem_stream(core, t, MemOp::Read, traffic.read_bytes);
            t = platform.mem_stream(core, t, MemOp::Write, traffic.write_bytes);
            add(&mut acc, kinds[j], t - t0);
        }

        // Transfer: assemble (trivial here) + ship to the client.
        let t0 = t;
        t = platform.compute(core, t, cost.assemble_cycles(full_px) as u64);
        t = platform.chip_to_host(core, t, full_bytes);
        add(&mut acc, StageKind::Transfer, t - t0);
        transfer_total += t - t0;
    }

    BaselineReport {
        stage_secs: acc.into_iter().map(|(k, d)| (k, d.as_secs_f64())).collect(),
        total_secs: t.as_secs_f64(),
        render_only_secs: render_total.as_secs_f64(),
        render_transfer_secs: (render_total + transfer_total).as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_render::CityConfig;

    #[test]
    fn baseline_sums_match_total() {
        let cfg = RunConfig {
            frames: 10,
            width: 120,
            height: 120,
            ..Default::default()
        };
        let scene = Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 1,
        }));
        let r = run_baseline(&cfg, scene);
        let sum: f64 = r.stage_secs.iter().map(|(_, s)| s).sum();
        assert!((sum - r.total_secs).abs() < 1e-6);
        assert!(r.render_only_secs > 0.0);
        assert!(r.render_transfer_secs > r.render_only_secs);
        assert!(r.render_transfer_secs < r.total_secs);
        // Blur dominates the filters.
        assert!(r.stage(StageKind::Blur) > r.stage(StageKind::Sepia));
        assert!(r.stage(StageKind::Blur) > r.stage(StageKind::Swap));
        assert!(r.stage(StageKind::Scratch) < r.stage(StageKind::Flicker));
    }
}
