//! Irregular wavefront propagation — morphological reconstruction of a
//! seeded marker under a mask grid (after Gomes & Teodoro's wavefront
//! studies on hybrid many-core machines).
//!
//! The film pipeline's per-strip work is near-constant, which makes it a
//! friendly workload for a closed-loop DVFS governor: the bottleneck
//! never moves. Morphological reconstruction is the opposite: work per
//! propagation wave is the size of the active frontier, which grows from
//! a handful of seed cells, floods outward, splits around mask barriers
//! and drains away — queue-driven, data-dependent load. Each wave becomes
//! one pipeline item of the 3-stage ingest → expand → commit chain in
//! [`crate::generic`], so stage load varies item by item and the governor
//! has to find a *different* frequency split than the film's.
//!
//! Everything here is a pure function of `(WavefrontSpec, seed)`: the
//! grids come from a xorshift64 generator, propagation order is fixed,
//! and [`WavefrontTrace::digest`] fingerprints the reconstructed grid.
//! Both virtual-time backends therefore see the identical wave profile,
//! and any output drift — across backends, power plans, or code changes —
//! trips the digest gate in `bench dvfs` and the differential fuzzer.

use crate::spec::WavefrontSpec;
use serde::Serialize;

/// The wave profile and output fingerprint of one reconstruction.
#[derive(Debug, Clone, Serialize)]
pub struct WavefrontTrace {
    /// Frontier size (cells updated) per propagation wave; one pipeline
    /// item per entry.
    pub waves: Vec<u64>,
    /// Total cell updates across all waves.
    pub total_updates: u64,
    /// FNV-1a fingerprint of the reconstructed marker grid — the output
    /// the drift gates compare.
    pub digest: u64,
}

impl WavefrontTrace {
    /// Largest single-wave frontier.
    pub fn peak_frontier(&self) -> u64 {
        self.waves.iter().copied().max().unwrap_or(0)
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(digest: u64, byte: u8) -> u64 {
    (digest ^ byte as u64).wrapping_mul(FNV_PRIME)
}

/// Run the reconstruction: seed the marker, then repeatedly dilate it
/// under the mask until the frontier drains (or `max_waves` caps it).
///
/// Grayscale reconstruction by dilation: a frontier cell pushes
/// `min(marker[cell], mask[neighbor])` into each 4-neighbor and the
/// neighbor joins the next wave when its marker value grew. Values only
/// travel downhill through the mask, so ridges split the flood and
/// low-mask basins stop it — the source of the irregular frontier sizes.
pub fn propagate(spec: &WavefrontSpec, seed: u64) -> WavefrontTrace {
    let w = spec.width as usize;
    let h = spec.height as usize;
    let cells = w * h;
    // Fold the geometry into the stream so unequal grids with equal run
    // seeds cannot collide; the xor keeps an all-zero state impossible.
    let mut rng = seed
        ^ ((spec.width as u64) << 40)
        ^ ((spec.height as u64) << 20)
        ^ (spec.seeds as u64)
        ^ 0x9e37_79b9_7f4a_7c15;

    // Mask heights in 64..=255: everywhere passable, never flat.
    let mut mask = vec![0u8; cells];
    for cell in mask.iter_mut() {
        *cell = 64 + (xorshift(&mut rng) % 192) as u8;
    }

    let mut marker = vec![0u8; cells];
    let mut frontier: Vec<usize> = Vec::new();
    for _ in 0..spec.seeds {
        let idx = (xorshift(&mut rng) % cells as u64) as usize;
        if marker[idx] == 0 {
            frontier.push(idx);
        }
        marker[idx] = mask[idx];
    }
    frontier.sort_unstable();
    frontier.dedup();

    let mut waves: Vec<u64> = Vec::new();
    let mut total_updates = 0u64;
    let mut queued = vec![false; cells];
    while !frontier.is_empty() {
        if spec.max_waves != 0 && waves.len() == spec.max_waves as usize {
            break;
        }
        waves.push(frontier.len() as u64);
        total_updates += frontier.len() as u64;
        let mut next: Vec<usize> = Vec::new();
        for &c in &frontier {
            let x = c % w;
            let y = c / w;
            let v = marker[c];
            let mut push = |n: usize, next: &mut Vec<usize>| {
                let cand = v.min(mask[n]);
                if cand > marker[n] {
                    marker[n] = cand;
                    if !queued[n] {
                        queued[n] = true;
                        next.push(n);
                    }
                }
            };
            if x > 0 {
                push(c - 1, &mut next);
            }
            if x + 1 < w {
                push(c + 1, &mut next);
            }
            if y > 0 {
                push(c - w, &mut next);
            }
            if y + 1 < h {
                push(c + w, &mut next);
            }
        }
        for &n in &next {
            queued[n] = false;
        }
        frontier = next;
    }

    let mut digest = FNV_OFFSET;
    for &v in &marker {
        digest = fnv1a(digest, v);
    }
    WavefrontTrace {
        waves,
        total_updates,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(width: u32, height: u32, seeds: u32, max_waves: u32) -> WavefrontSpec {
        WavefrontSpec {
            width,
            height,
            seeds,
            max_waves,
        }
    }

    #[test]
    fn propagation_is_deterministic() {
        let a = propagate(&WavefrontSpec::default(), 7);
        let b = propagate(&WavefrontSpec::default(), 7);
        assert_eq!(a.waves, b.waves);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.total_updates, b.total_updates);
    }

    #[test]
    fn seed_moves_the_profile_and_the_digest() {
        let a = propagate(&WavefrontSpec::default(), 7);
        let b = propagate(&WavefrontSpec::default(), 8);
        assert_ne!(a.digest, b.digest, "different runs must not collide");
        assert_ne!(a.waves, b.waves);
    }

    #[test]
    fn frontier_is_irregular_not_constant() {
        let t = propagate(&WavefrontSpec::default(), 0x51CC_F11F);
        assert!(t.waves.len() >= 16, "only {} waves", t.waves.len());
        // The flood grows from a handful of seeds to a wide frontier and
        // back down — the irregularity the film workload never shows.
        assert!(t.peak_frontier() >= 8 * t.waves[0].max(1));
        let min = t.waves.iter().copied().min().unwrap();
        assert!(t.peak_frontier() >= 4 * min.max(1));
    }

    #[test]
    fn propagation_terminates_and_covers_the_grid() {
        // Unbounded waves drain: monotone cell values bound the updates.
        let t = propagate(&spec(32, 32, 2, 0), 3);
        assert!(!t.waves.is_empty());
        assert!(t.total_updates >= 32 * 32 / 2, "flood should spread");
    }

    #[test]
    fn max_waves_caps_the_item_count() {
        let full = propagate(&spec(64, 64, 2, 0), 11);
        let capped = propagate(&spec(64, 64, 2, 5), 11);
        assert_eq!(capped.waves.len(), 5);
        assert_eq!(&full.waves[..5], &capped.waves[..]);
        assert!(capped.total_updates < full.total_updates);
        assert_ne!(capped.digest, full.digest, "truncated flood differs");
    }
}
