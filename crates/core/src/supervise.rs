//! MCPC-hosted supervision: failure detection, spare-core migration and
//! checkpointed replay.
//!
//! The paper's SCC is babysat by a Management Control PC; this module
//! models that console as a *control plane* for the simulated runners.
//! Every placed core emits periodic heartbeats over the real message path
//! (mesh hops to the system-interface tile, then the host link), so the
//! supervisor's view of a core is as stale as that core's distance from
//! the interface — detection latency is mesh- and arrangement-dependent,
//! exactly like the data traffic the paper measures. A phi-style
//! suspicion threshold separates *slow* (late heartbeats within
//! `phi_dead` periods — tolerated) from *dead* (silence beyond it —
//! migrated).
//!
//! Everything here is a pure function of the fault schedule and the
//! placement: the frame-major [`crate::runner::sim::SimRunner`] and the
//! event-driven [`crate::runner::des`] executor share these helpers so
//! both reach identical detection instants and migration targets, which
//! is what lets the differential suite compare them under kills.

use crate::frame::Frame;
use crate::placement::Placement;
use crate::spec::FaultSpec;
use scc_sim::fault::{CoreKill, FaultPlan};
use scc_sim::{CoreId, SccPlatform, SimTime};
use std::collections::VecDeque;

/// Bytes shipped to provision a migrated stage on its spare core: the
/// stage binary plus filter state, pushed from the MCPC over the host
/// link (the same path RCCE programs are loaded over).
pub const STAGE_PROVISION_BYTES: u64 = 64 * 1024;

/// Resolve a spec's (pipeline, stage)-addressed kills to physical cores
/// under `placement` — shared by every runner so the same spec kills the
/// same silicon everywhere.
pub fn resolve_kills(spec: &FaultSpec, placement: &Placement) -> Vec<CoreKill> {
    spec.kills
        .iter()
        .map(|k| CoreKill {
            core: placement.pipelines[k.pipeline as usize][k.stage as usize].raw(),
            at: SimTime::from_ms(k.at_ms),
        })
        .collect()
}

/// The MCPC's supervisor state for one run: failure-detector parameters
/// plus the spare-core pool (unused cores of the placement, enlisted in
/// deterministic id order).
pub struct Supervisor {
    heartbeat_period: SimTime,
    phi_dead: f64,
    spares: Vec<CoreId>,
    enlisted: usize,
}

impl Supervisor {
    pub fn new(placement: &Placement, spec: &FaultSpec) -> Supervisor {
        let mut spares = placement.spare_pool();
        spares.truncate(spec.max_spares as usize);
        Supervisor {
            heartbeat_period: SimTime::from_us(spec.heartbeat_period_us),
            phi_dead: spec.phi_dead,
            spares,
            enlisted: 0,
        }
    }

    pub fn heartbeat_period(&self) -> SimTime {
        self.heartbeat_period
    }

    /// Suspicion threshold the detector fires at (phi periods of silence).
    pub fn phi_dead(&self) -> f64 {
        self.phi_dead
    }

    /// Spare cores still available for migration.
    pub fn spares_left(&self) -> usize {
        self.spares.len() - self.enlisted
    }

    /// Enlist the next spare core (deterministic: id order).
    pub fn take_spare(&mut self) -> Option<CoreId> {
        let c = self.spares.get(self.enlisted).copied();
        if c.is_some() {
            self.enlisted += 1;
        }
        c
    }

    /// Virtual time at which the phi detector declares a core dead, given
    /// it fail-stopped at `kill_at` and its heartbeats reach the MCPC
    /// after `hb_latency` (see [`SccPlatform::host_path_latency`]). The
    /// last heartbeat leaves at the last period boundary at or before the
    /// kill; suspicion crosses `phi_dead` once that many periods pass
    /// beyond its arrival. With `phi_dead >= 2` (enforced by validation)
    /// this is monotone in the heartbeat period under period doubling.
    pub fn detect_time(&self, kill_at: SimTime, hb_latency: SimTime) -> SimTime {
        let period = self.heartbeat_period.as_ps();
        let last_sent = SimTime::from_ps((kill_at.as_ps() / period) * period);
        let last_arrival = last_sent + hb_latency;
        last_arrival + SimTime::from_ps((self.phi_dead * period as f64) as u64)
    }
}

/// Book the run's heartbeat traffic onto the platform ledgers: every
/// placed core sends one datagram per period from t=0 until `until` (or
/// until its kill instant — a dead core goes silent). Called after the
/// frame loop so the charges land as real NoC/host-link messages in the
/// stats without perturbing stage timelines; only supervised runs (armed
/// kills) carry this traffic, keeping the quiet-plan identity intact.
/// Returns the number of heartbeats booked (telemetry's
/// `scc_heartbeats_total`).
pub fn book_heartbeats(
    platform: &mut SccPlatform,
    placement: &Placement,
    plan: &FaultPlan,
    period: SimTime,
    until: SimTime,
) -> u64 {
    let mut booked = 0u64;
    for core in placement.all_cores() {
        let silent_from = plan.kill_time(core.raw()).unwrap_or(SimTime::MAX);
        let mut t = SimTime::ZERO;
        while t < until && t < silent_from {
            // A stalled core issues nothing until its window closes; a
            // datagram whose window closes after the run end (forever,
            // for a permanent stall) never gets out — that silence is
            // exactly what the failure detector sees.
            if plan.stall_adjusted(core.raw(), t) < until {
                platform.heartbeat(core, t);
                booked += 1;
            }
            t += period;
        }
    }
    booked
}

/// Bounded per-strip checkpoint ring: pristine strip frames keyed by
/// frame id, retained until the transfer stage acknowledges delivery.
/// The replay path restores from here, so delivered film stays
/// bit-identical to the fault-free run; the bound keeps checkpoint
/// memory O(depth) per strip no matter how long the walkthrough is.
pub struct CheckpointRing {
    capacity: usize,
    entries: VecDeque<(u64, Frame)>,
}

impl CheckpointRing {
    pub fn new(depth: u32) -> CheckpointRing {
        assert!(depth >= 1, "checkpoint ring needs at least one slot");
        CheckpointRing {
            capacity: depth as usize,
            entries: VecDeque::new(),
        }
    }

    /// Checkpoint `frame` under `seq`, evicting the oldest entry when the
    /// ring is full (an evicted frame can no longer be replayed — the
    /// runners never let in-flight depth exceed the bound).
    pub fn push(&mut self, seq: u64, frame: Frame) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((seq, frame));
    }

    /// The checkpointed frame for `seq`, if still retained.
    pub fn get(&self, seq: u64) -> Option<&Frame> {
        self.entries.iter().find(|(s, _)| *s == seq).map(|(_, f)| f)
    }

    /// Acknowledge delivery of everything up to and including `seq`.
    pub fn ack(&mut self, seq: u64) {
        self.entries.retain(|(s, _)| *s > seq);
    }

    /// Frames checkpointed but not yet acknowledged — what a recovery
    /// episode must replay.
    pub fn unacked(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::place;
    use crate::spec::{Arrangement, KillSpec, RendererMode};
    use scc_filters::StripInfo;

    fn spec(period_us: u64, phi: f64, max_spares: u32) -> FaultSpec {
        FaultSpec {
            kills: vec![KillSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 7,
            }],
            heartbeat_period_us: period_us,
            phi_dead: phi,
            max_spares,
            ..FaultSpec::default()
        }
    }

    #[test]
    fn kills_resolve_to_placement_cores() {
        let pl = place(RendererMode::SingleRenderer, Arrangement::Ordered, 2);
        let kills = resolve_kills(&spec(50_000, 4.0, 8), &pl);
        assert_eq!(kills.len(), 1);
        assert_eq!(kills[0].core, pl.pipelines[0][1].raw());
        assert_eq!(kills[0].at, SimTime::from_ms(7));
    }

    #[test]
    fn spare_enlistment_is_deterministic_and_bounded() {
        let pl = place(RendererMode::SingleRenderer, Arrangement::Ordered, 2);
        let pool = pl.spare_pool();
        let mut sup = Supervisor::new(&pl, &spec(50_000, 4.0, 2));
        assert_eq!(sup.spares_left(), 2);
        assert_eq!(sup.take_spare(), Some(pool[0]));
        assert_eq!(sup.take_spare(), Some(pool[1]));
        assert_eq!(sup.take_spare(), None, "pool exhausted at max_spares");
        assert_eq!(sup.spares_left(), 0);

        let mut none = Supervisor::new(&pl, &spec(50_000, 4.0, 0));
        assert_eq!(none.take_spare(), None, "max_spares=0 forces degradation");
    }

    #[test]
    fn detection_is_finite_phi_scaled_and_period_monotone() {
        let pl = place(RendererMode::SingleRenderer, Arrangement::Ordered, 2);
        let lat = SimTime::from_us(40);
        for kill_ms in [0u64, 3, 7, 99] {
            let kill = SimTime::from_ms(kill_ms);
            for period in [10_000u64, 25_000, 50_000] {
                let d1 = Supervisor::new(&pl, &spec(period, 2.0, 8)).detect_time(kill, lat);
                let d2 = Supervisor::new(&pl, &spec(2 * period, 2.0, 8)).detect_time(kill, lat);
                assert!(d1 > kill, "detection precedes the kill");
                assert!(d2 >= d1, "doubling the period sped up detection");
                // Higher phi waits longer.
                let strict = Supervisor::new(&pl, &spec(period, 6.0, 8)).detect_time(kill, lat);
                assert!(strict > d1);
            }
        }
    }

    #[test]
    fn detect_time_matches_the_rcce_phi_detector() {
        // The closed form must agree with scc-rcce's incremental detector:
        // feed it the last heartbeat arrival, then suspicion crosses the
        // threshold exactly at (never before) the computed instant.
        let pl = place(RendererMode::SingleRenderer, Arrangement::Ordered, 2);
        let sup = Supervisor::new(&pl, &spec(50_000, 4.0, 8));
        let lat = SimTime::from_us(25);
        let kill = SimTime::from_ms(123);
        let detect = sup.detect_time(kill, lat);

        let period_ns = 50_000_000u64; // 50 ms
        let last_arrival_ns = (kill.as_ps() / (period_ns * 1000)) * period_ns + lat.as_ps() / 1000;
        let mut phi = scc_rcce::health::PhiDetector::new(period_ns, 4.0, 0);
        phi.observe(last_arrival_ns, 1);
        let just_before = detect.as_ps() / 1000 - 1;
        assert!(!phi.is_dead(just_before), "declared dead early");
        assert!(
            phi.is_dead(detect.as_ps() / 1000 + 1),
            "missed the deadline"
        );
    }

    #[test]
    fn checkpoint_ring_retains_acks_and_bounds() {
        let mk = |id: u64| Frame {
            id,
            strip: StripInfo {
                index: 0,
                count: 1,
                y0: 0,
                height: 4,
                full_height: 4,
            },
            full_width: 4,
            image: None,
        };
        let mut ring = CheckpointRing::new(2);
        ring.push(0, mk(0));
        assert_eq!(ring.unacked(), 1);
        assert_eq!(ring.get(0).map(|f| f.id), Some(0));
        ring.ack(0);
        assert_eq!(ring.unacked(), 0);
        assert!(ring.get(0).is_none(), "acked frames are released");

        // Bounded: pushing past capacity evicts the oldest.
        ring.push(1, mk(1));
        ring.push(2, mk(2));
        ring.push(3, mk(3));
        assert_eq!(ring.unacked(), 2);
        assert!(ring.get(1).is_none(), "evicted by the bound");
        assert!(ring.get(2).is_some() && ring.get(3).is_some());
        ring.ack(3);
        assert_eq!(ring.unacked(), 0);
    }

    #[test]
    fn heartbeat_booking_charges_real_messages_until_kill() {
        use scc_sim::fault::FaultConfig;
        use scc_sim::SccConfig;
        let pl = place(RendererMode::SingleRenderer, Arrangement::Ordered, 1);
        let plan = FaultPlan::new(FaultConfig {
            kills: resolve_kills(&spec(50_000, 4.0, 8), &pl),
            ..FaultConfig::default()
        });
        let mut platform = SccPlatform::new(SccConfig::default());
        let before = platform.stats().noc_messages;
        let period = SimTime::from_ms(50);
        book_heartbeats(&mut platform, &pl, &plan, period, SimTime::from_ms(500));
        let sent = platform.stats().noc_messages - before;
        // 8 placed cores (1 renderer + 5 filters + transfer = 7... plus
        // none else) beat 10 times each, except the killed blur core which
        // goes silent after 7 ms (1 beat, at t=0).
        let placed = pl.all_cores().len() as u64;
        assert_eq!(sent, (placed - 1) * 10 + 1);
    }
}
