//! The pipeline as *data*: a DAG of stage nodes plus per-stage weights.
//!
//! The paper hard-codes the seven-stage film pipeline onto fixed cores;
//! Figure 15 shows the idle-time imbalance that fixed placement causes
//! (blur saturated, scratch mostly idle). This module is the first half
//! of the scheduler that removes the hard-coding: it describes *what*
//! the pipeline is — stage kinds, parallelism classes, dependencies —
//! and *how heavy* each stage is, either from the calibrated cost model
//! or from `scc_stage_idle_ms` telemetry histograms of a previous run.
//! [`mod@crate::partition`] consumes both to compute a placement.
//!
//! Weight semantics: weights are **relative** costs (P54C cycles per
//! strip for the static estimator; rendezvous-derived pseudo-cycles for
//! the telemetry estimator). Only ratios matter to the partitioner, so
//! the two sources never need a common unit.

use crate::cost::CostModel;
use crate::spec::{RunConfig, StageKind};
use scc_filters::{standard_chain, FrameCtx, Image};
use serde::Serialize;

/// Parallelism class of a stage — what the partitioner may legally do
/// with it (PS-DSWP's DOALL-vs-sequential distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StageClass {
    /// Produces frames (render / connector). Endpoint: never merged or
    /// replicated.
    Source,
    /// Per-pixel, stateless across frames (sepia, scratch, flicker,
    /// swap). Mergeable with neighbours and replicable DOALL-style.
    Pointwise,
    /// Neighbourhood gather, still stateless across frames (blur).
    /// Mergeable and replicable.
    Stencil,
    /// Carries state from frame to frame. Must stay alone on its core
    /// and can never be replicated (sequential in PS-DSWP terms). The
    /// film pipeline has none; user-defined pipelines may.
    Stateful,
    /// Consumes frames (transfer/assemble). Endpoint: never merged or
    /// replicated.
    Sink,
}

impl StageClass {
    /// May this stage share a core with an adjacent compatible stage?
    pub fn mergeable(self) -> bool {
        matches!(self, StageClass::Pointwise | StageClass::Stencil)
    }

    /// May this stage be replicated across frames (DOALL)?
    pub fn replicable(self) -> bool {
        matches!(self, StageClass::Pointwise | StageClass::Stencil)
    }

    pub fn name(self) -> &'static str {
        match self {
            StageClass::Source => "source",
            StageClass::Pointwise => "pointwise",
            StageClass::Stencil => "stencil",
            StageClass::Stateful => "stateful",
            StageClass::Sink => "sink",
        }
    }
}

/// One node of the stage graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StageNode {
    pub kind: StageKind,
    pub class: StageClass,
    /// Relative per-strip cost (see module docs). Must be finite and
    /// non-negative; the estimators guarantee it.
    pub weight: f64,
}

/// The parallelism class of each film-pipeline stage (tentpole contract:
/// sepia, scratch and flicker are pointwise, blur is the only stencil,
/// the endpoints are endpoints).
pub fn class_of(kind: StageKind) -> StageClass {
    match kind {
        StageKind::Render | StageKind::Connect => StageClass::Source,
        StageKind::Blur => StageClass::Stencil,
        StageKind::Sepia | StageKind::Scratch | StageKind::Flicker | StageKind::Swap => {
            StageClass::Pointwise
        }
        StageKind::Transfer => StageClass::Sink,
    }
}

/// A stage DAG. For the film workload this is a chain
/// (source → five filters → sink, one chain instance per lane), but the
/// representation keeps explicit edges so user-defined graphs from
/// [`crate::generic`] fit the same scheduler.
#[derive(Debug, Clone, Serialize)]
pub struct StageGraph {
    pub nodes: Vec<StageNode>,
    /// `(from, to)` indices into `nodes`.
    pub edges: Vec<(usize, usize)>,
}

impl StageGraph {
    /// A linear chain over `nodes` in order.
    pub fn chain(nodes: Vec<StageNode>) -> StageGraph {
        let edges = (1..nodes.len()).map(|i| (i - 1, i)).collect();
        StageGraph { nodes, edges }
    }

    /// The film pipeline of `cfg` as one lane's stage chain, weighted by
    /// `weights` (one entry per [`StageKind::PIPELINE_FILTERS`] stage).
    pub fn film(cfg: &RunConfig, weights: &StageWeights) -> StageGraph {
        let source_kind = match cfg.renderer {
            crate::spec::RendererMode::McpcRenderer => StageKind::Connect,
            _ => StageKind::Render,
        };
        let mut nodes = vec![StageNode {
            kind: source_kind,
            class: StageClass::Source,
            weight: 0.0,
        }];
        for (j, kind) in StageKind::PIPELINE_FILTERS.iter().enumerate() {
            nodes.push(StageNode {
                kind: *kind,
                class: class_of(*kind),
                weight: weights.per_stage[j],
            });
        }
        nodes.push(StageNode {
            kind: StageKind::Transfer,
            class: StageClass::Sink,
            weight: 0.0,
        });
        StageGraph::chain(nodes)
    }

    /// The interior (non-endpoint) nodes, in chain order.
    pub fn interior(&self) -> Vec<StageNode> {
        self.nodes
            .iter()
            .copied()
            .filter(|n| !matches!(n.class, StageClass::Source | StageClass::Sink))
            .collect()
    }

    /// Sanity: every edge in range, no self loops, acyclic for chains.
    pub fn validate(&self) -> Result<(), String> {
        for &(a, b) in &self.edges {
            if a >= self.nodes.len() || b >= self.nodes.len() {
                return Err(format!("edge ({a},{b}) out of range"));
            }
            if a == b {
                return Err(format!("self loop on node {a}"));
            }
        }
        for n in &self.nodes {
            if !n.weight.is_finite() || n.weight < 0.0 {
                return Err(format!("{} has illegal weight {}", n.kind.name(), n.weight));
            }
        }
        Ok(())
    }
}

/// Where a weight vector came from — pinned in the decision table so the
/// golden digests distinguish static from telemetry-driven placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WeightSource {
    /// Calibrated [`CostModel`] estimate (no telemetry available).
    StaticModel,
    /// Extracted from `scc_stage_idle_ms` histograms of a telemetry run.
    IdleTelemetry,
    /// Supplied explicitly through [`RunConfig::stage_weights`].
    Explicit,
}

impl WeightSource {
    pub fn name(self) -> &'static str {
        match self {
            WeightSource::StaticModel => "static-model",
            WeightSource::IdleTelemetry => "idle-telemetry",
            WeightSource::Explicit => "explicit",
        }
    }
}

/// Per-filter-stage weights in [`StageKind::PIPELINE_FILTERS`] order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageWeights {
    pub per_stage: [f64; 5],
    pub source: WeightSource,
}

impl StageWeights {
    /// Static estimator: cycles per strip from the calibrated cost
    /// model, on the exact strip geometry the run will use. Always
    /// finite and positive.
    pub fn from_cost_model(cfg: &RunConfig, cost: &CostModel) -> StageWeights {
        let strip_h = (cfg.height / cfg.pipelines).max(1);
        let img = Image::new(cfg.width, strip_h);
        let ctx = FrameCtx::whole_frame(0, cfg.seed, cfg.width, strip_h);
        let chain = standard_chain();
        let mut per_stage = [0.0f64; 5];
        for (j, filter) in chain.iter().enumerate() {
            per_stage[j] = cost.filter_cycles(filter.as_ref(), &img, &ctx);
        }
        StageWeights {
            per_stage,
            source: WeightSource::StaticModel,
        }
    }

    /// Telemetry estimator: derive relative stage weights from the
    /// median per-strip idle time of each stage, pooled across lanes.
    ///
    /// Under rendezvous flow control every stage settles to the same
    /// cadence `T` (the bottleneck's service time), so
    /// `service_j = T − idle_j`: the stage with the *least* idle is the
    /// heaviest (exactly Figure 15's reading). We take
    /// `T = max_j median_idle + ε` so every weight stays strictly
    /// positive, and return weights in milliseconds of service time.
    ///
    /// NaN/zero-safety (the fresh-sink fix): if **any** stage's idle
    /// histogram is missing or empty — telemetry disabled, a fresh sink,
    /// or a stage that never sampled — the telemetry estimate is
    /// unusable as a *relative* vector, so the whole estimator falls
    /// back to [`StageWeights::from_cost_model`]. The result therefore
    /// never contains NaN, infinities, negatives or an all-zero vector.
    pub fn from_idle_telemetry(
        snap: &scc_telemetry::Snapshot,
        cfg: &RunConfig,
        cost: &CostModel,
    ) -> StageWeights {
        match idle_medians(snap, cfg.pipelines) {
            Some(medians) => {
                let top = medians.iter().cloned().fold(0.0f64, f64::max);
                if !top.is_finite() {
                    return StageWeights::from_cost_model(cfg, cost);
                }
                // ε keeps the busiest stage's weight > 0 even when its
                // median idle equals the maximum (p = 1 degenerate runs).
                let epsilon = (top * 0.05).max(0.5);
                let cadence = top + epsilon;
                let mut per_stage = [0.0f64; 5];
                for (j, m) in medians.iter().enumerate() {
                    per_stage[j] = (cadence - m).max(epsilon);
                }
                StageWeights {
                    per_stage,
                    source: WeightSource::IdleTelemetry,
                }
            }
            None => StageWeights::from_cost_model(cfg, cost),
        }
    }

    /// Resolve the weights a run should use: explicit overrides from the
    /// config win, else the static model. (Telemetry-driven callers go
    /// through [`StageWeights::from_idle_telemetry`] and feed the result
    /// back in via [`crate::spec::RunConfigBuilder::stage_weights`].)
    pub fn for_config(cfg: &RunConfig) -> StageWeights {
        match &cfg.stage_weights {
            Some(w) => {
                let mut per_stage = [0.0f64; 5];
                per_stage.copy_from_slice(&w[..5]);
                StageWeights {
                    per_stage,
                    source: WeightSource::Explicit,
                }
            }
            None => StageWeights::from_cost_model(cfg, &CostModel::default()),
        }
    }
}

/// Pooled median `scc_stage_idle_ms` per filter stage across all lanes.
/// `None` unless **every** stage has at least one sample (see
/// [`StageWeights::from_idle_telemetry`]).
fn idle_medians(snap: &scc_telemetry::Snapshot, pipelines: u32) -> Option<[f64; 5]> {
    let mut medians = [0.0f64; 5];
    for (j, kind) in StageKind::PIPELINE_FILTERS.iter().enumerate() {
        let mut pooled: Option<scc_telemetry::HistogramSample> = None;
        for lane in 0..pipelines {
            let lane_label = lane.to_string();
            if let Some(h) = snap.histogram(
                scc_telemetry::names::STAGE_IDLE_MS,
                &[("pipeline", lane_label.as_str()), ("stage", kind.name())],
            ) {
                match &mut pooled {
                    None => pooled = Some(h.clone()),
                    Some(acc) => {
                        if acc.bounds == h.bounds {
                            for (a, b) in acc.bucket_counts.iter_mut().zip(&h.bucket_counts) {
                                *a += b;
                            }
                            acc.count += h.count;
                            acc.sum += h.sum;
                        }
                    }
                }
            }
        }
        // quantile() is None exactly when the histogram is empty — the
        // fresh-sink case the estimator must survive.
        medians[j] = pooled.as_ref().and_then(|h| h.quantile(0.5))?;
    }
    Some(medians)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RendererMode;

    fn cfg() -> RunConfig {
        RunConfig::builder()
            .pipelines(2)
            .size(100, 100)
            .frames(8)
            .build()
            .expect("valid config")
    }

    #[test]
    fn film_graph_is_a_seven_stage_chain() {
        let w = StageWeights::from_cost_model(&cfg(), &CostModel::default());
        let g = StageGraph::film(&cfg(), &w);
        g.validate().expect("valid graph");
        assert_eq!(g.nodes.len(), 7);
        assert_eq!(g.edges.len(), 6);
        assert_eq!(g.nodes[0].class, StageClass::Source);
        assert_eq!(g.nodes[6].class, StageClass::Sink);
        assert_eq!(g.interior().len(), 5);
        // Blur is the only stencil; sepia/scratch/flicker pointwise.
        let classes: Vec<_> = g.interior().iter().map(|n| n.class).collect();
        assert_eq!(classes[1], StageClass::Stencil);
        for j in [0usize, 2, 3] {
            assert_eq!(classes[j], StageClass::Pointwise);
        }
    }

    #[test]
    fn mcpc_film_graph_sources_from_the_connector() {
        let mut c = cfg();
        c.renderer = RendererMode::McpcRenderer;
        let w = StageWeights::from_cost_model(&c, &CostModel::default());
        let g = StageGraph::film(&c, &w);
        assert_eq!(g.nodes[0].kind, StageKind::Connect);
    }

    #[test]
    fn static_weights_make_blur_the_bottleneck() {
        let w = StageWeights::from_cost_model(&cfg(), &CostModel::default());
        assert_eq!(w.source, WeightSource::StaticModel);
        let blur = w.per_stage[1];
        for (j, &s) in w.per_stage.iter().enumerate() {
            assert!(s.is_finite() && s > 0.0, "stage {j} weight {s}");
            if j != 1 {
                assert!(blur > 2.0 * s, "blur must dominate stage {j} ({s})");
            }
        }
    }

    #[test]
    fn empty_idle_histograms_fall_back_to_the_static_estimate() {
        // The NaN/zero-safety pin: a fresh (or absent) telemetry sink
        // must never yield NaN weights or an all-zero vector — it must
        // reproduce the static estimator exactly.
        let c = cfg();
        let cost = CostModel::default();
        let fresh = scc_telemetry::Snapshot::default();
        let w = StageWeights::from_idle_telemetry(&fresh, &c, &cost);
        assert_eq!(w, StageWeights::from_cost_model(&c, &cost));
        assert_eq!(w.source, WeightSource::StaticModel);
        assert!(w.per_stage.iter().all(|s| s.is_finite() && *s > 0.0));

        // Same when only *some* stages sampled: a partially-filled sink
        // is still not a usable relative vector.
        let sink = scc_telemetry::TelemetrySink::enabled();
        sink.observe(
            scc_telemetry::names::STAGE_IDLE_MS,
            &[("pipeline", "0"), ("stage", "sepia")],
            scc_telemetry::IDLE_MS_BUCKETS,
            3.0,
        );
        let partial = sink.snapshot().expect("enabled sink");
        let w2 = StageWeights::from_idle_telemetry(&partial, &c, &cost);
        assert_eq!(w2.source, WeightSource::StaticModel);
    }

    #[test]
    fn idle_telemetry_ranks_the_least_idle_stage_heaviest() {
        // A real telemetry run: collect idle histograms from the sim,
        // then check the estimator inverts Figure 15 — blur (least idle)
        // comes out heaviest, scratch (most idle) cheapest.
        let mut c = cfg();
        c.telemetry = true;
        let report = crate::runner::sim::SimRunner::new(c.clone(), crate::default_scene()).run();
        let snap = report.telemetry.expect("telemetry on");
        let w = StageWeights::from_idle_telemetry(&snap, &c, &CostModel::default());
        assert_eq!(w.source, WeightSource::IdleTelemetry);
        assert!(w.per_stage.iter().all(|s| s.is_finite() && *s > 0.0));
        let blur = w.per_stage[1];
        let scratch = w.per_stage[2];
        assert!(
            blur > scratch,
            "blur ({blur}) must outweigh scratch ({scratch})"
        );
        assert!(
            (0..5).all(|j| w.per_stage[j] <= blur),
            "blur is the bottleneck: {:?}",
            w.per_stage
        );
    }

    #[test]
    fn explicit_config_weights_win() {
        let mut c = cfg();
        c.stage_weights = Some(vec![1.0, 9.0, 1.0, 1.0, 1.0]);
        let w = StageWeights::for_config(&c);
        assert_eq!(w.source, WeightSource::Explicit);
        assert_eq!(w.per_stage[1], 9.0);
    }
}
