//! The unified run facade: one entry point over the three executors.
//!
//! Historically each backend had its own entry (`SimRunner::new(..).run()`,
//! [`crate::runner::des::run_des`], [`crate::runner::native::run_native`])
//! with its own report shape, so callers comparing backends — the bench
//! harness, the differential suite, the examples — each re-invented the
//! dispatch and the field mapping. [`run`] dispatches on a [`Backend`] and
//! folds every backend's report into one [`RunOutcome`] carrying the
//! common view (frame count, total time, stage reports, fault history,
//! the telemetry snapshot) next to the untouched backend-specific report.
//!
//! The old entry points remain as thin wrappers and are the right tool
//! when backend-specific knobs are needed (placement overrides, DVFS
//! plans, alternative platforms); new code that just wants "run this
//! config and look at the numbers" should come through here.

use crate::generic::{run_workload_des, run_workload_sim, GenericReport};
use crate::metrics::{DegradationEvent, HostTiming, RecoveryEvent, StageReport, WalkthroughReport};
use crate::runner::des::{run_des, DesReport};
use crate::runner::native::{run_native, NativeReport};
use crate::runner::sim::SimRunner;
use crate::spec::{RendererMode, RunConfig};
use crate::trace::TraceLog;
use scc_render::{CityConfig, Scene};
use std::sync::Arc;

/// Which executor carries the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Virtual-time frame-major simulation of the SCC platform — the
    /// executor that reproduces the paper's figures.
    Sim,
    /// The independent discrete-event cross-validator (single-renderer
    /// configurations only).
    Des,
    /// Real OS threads with RCCE-style channels on the host.
    Native,
}

impl Backend {
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Des => "des",
            Backend::Native => "native",
        }
    }
}

/// The backend's full report, untouched, for callers that need more than
/// the common view.
// One value exists per run and it is moved exactly once into the
// outcome, so the variant size disparity clippy flags costs nothing.
#[allow(clippy::large_enum_variant)]
pub enum BackendReport {
    Sim(WalkthroughReport),
    Des(DesReport),
    Native(NativeReport),
    /// Workload-plane runs ([`crate::spec::Workload::Generic`] and
    /// [`crate::spec::Workload::Wavefront`]): both virtual-time backends
    /// produce the same report shape.
    Generic(GenericReport),
}

/// What every backend can tell you about a finished run.
pub struct RunOutcome {
    /// The executor that produced this outcome.
    pub backend: Backend,
    /// End-to-end duration: virtual seconds for [`Backend::Sim`] and
    /// [`Backend::Des`], wall-clock seconds for [`Backend::Native`].
    pub total_secs: f64,
    /// Frames delivered to the visualisation client.
    pub frames: u64,
    /// Per-stage ledgers (busy time, idle quartiles, frame counts).
    /// Populated by the sim backend; empty for DES and native, which do
    /// not keep [`StageReport`] ledgers.
    pub stage_reports: Vec<StageReport>,
    /// Graceful-degradation decisions, in decision order (sim only;
    /// empty elsewhere).
    pub degradations: Vec<DegradationEvent>,
    /// Supervised kill recoveries, in detection order (sim and DES).
    pub recoveries: Vec<RecoveryEvent>,
    /// Host wall-clock throughput; `Some` for the native backend.
    pub host: Option<HostTiming>,
    /// Phase spans, present when [`RunConfig::trace`] was set.
    pub trace: Option<TraceLog>,
    /// Metrics + events recorded during the run, present when
    /// [`RunConfig::telemetry`] was set.
    pub telemetry: Option<scc_telemetry::Snapshot>,
    /// The backend's own report, for anything not in the common view.
    pub report: BackendReport,
}

/// The standard scene every entry point defaults to: the procedural city
/// the paper's silent-film walkthrough flies through.
pub fn default_scene() -> Arc<Scene> {
    Arc::new(Scene::city(CityConfig::default()))
}

/// Run `cfg` on `backend` against the [`default_scene`].
///
/// # Panics
///
/// Panics when the configuration is invalid, or when `backend` is
/// [`Backend::Des`] and the config is not
/// [`RendererMode::SingleRenderer`] (the DES validator's scope).
///
/// ```
/// use scc_core::{run, Backend, RunConfig};
///
/// let cfg = RunConfig::builder()
///     .size(96, 96)
///     .frames(4)
///     .build()
///     .unwrap();
/// let outcome = run(&cfg, Backend::Sim);
/// assert_eq!(outcome.frames, 4);
/// assert!(outcome.total_secs > 0.0);
/// ```
pub fn run(cfg: &RunConfig, backend: Backend) -> RunOutcome {
    run_with_scene(cfg, backend, default_scene())
}

/// [`run`] with an explicit scene.
pub fn run_with_scene(cfg: &RunConfig, backend: Backend, scene: Arc<Scene>) -> RunOutcome {
    cfg.validate().expect("invalid run configuration");
    if !cfg.workload.is_film() {
        // The workload plane: spec-defined chains (no scene, no frames)
        // through the generic executors. `frames` reports items.
        let report = match backend {
            Backend::Sim => run_workload_sim(cfg),
            Backend::Des => run_workload_des(cfg),
            Backend::Native => panic!(
                "the native backend runs the film workload only; \
                 run {} on sim or des",
                cfg.workload.name()
            ),
        };
        return RunOutcome {
            backend,
            total_secs: report.total_secs,
            frames: report.items,
            stage_reports: Vec::new(),
            degradations: Vec::new(),
            recoveries: Vec::new(),
            host: None,
            trace: None,
            telemetry: report.telemetry.clone(),
            report: BackendReport::Generic(report),
        };
    }
    match backend {
        Backend::Sim => {
            let report = SimRunner::new(cfg.clone(), scene).run();
            let frames = report
                .stage_reports
                .iter()
                .find(|s| s.kind == crate::spec::StageKind::Transfer)
                .map_or(cfg.frames, |s| s.frames);
            RunOutcome {
                backend,
                total_secs: report.total_secs,
                frames,
                stage_reports: report.stage_reports.clone(),
                degradations: report.degradations.clone(),
                recoveries: report.recoveries.clone(),
                host: None,
                trace: report.trace.clone(),
                telemetry: report.telemetry.clone(),
                report: BackendReport::Sim(report),
            }
        }
        Backend::Des => {
            // The task runtime runs all three renderer modes under DES
            // (one engine, DES-flavored schedule); the static-pipeline
            // cross-validator remains single-renderer only.
            assert!(
                cfg.runtime == crate::spec::Runtime::Tasks
                    || cfg.renderer == RendererMode::SingleRenderer,
                "the DES backend covers the single-renderer configuration"
            );
            let report = run_des(cfg, scene);
            RunOutcome {
                backend,
                total_secs: report.total_secs,
                frames: cfg.frames,
                stage_reports: Vec::new(),
                degradations: Vec::new(),
                recoveries: report.recoveries.clone(),
                host: None,
                trace: None,
                telemetry: report.telemetry.clone(),
                report: BackendReport::Des(report),
            }
        }
        Backend::Native => {
            let report = run_native(cfg, scene);
            RunOutcome {
                backend,
                total_secs: report.wall.as_secs_f64(),
                frames: report.frames.len() as u64,
                stage_reports: Vec::new(),
                degradations: Vec::new(),
                recoveries: Vec::new(),
                host: Some(report.host),
                trace: report.trace.clone(),
                telemetry: report.telemetry.clone(),
                report: BackendReport::Native(report),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Fidelity;

    fn tiny() -> RunConfig {
        RunConfig::builder()
            .pipelines(2)
            .size(96, 96)
            .frames(3)
            .fidelity(Fidelity::TimingOnly)
            .build()
            .expect("valid config")
    }

    #[test]
    fn sim_outcome_carries_the_common_view() {
        let out = run(&tiny(), Backend::Sim);
        assert_eq!(out.backend, Backend::Sim);
        assert_eq!(out.frames, 3);
        assert!(out.total_secs > 0.0);
        assert!(!out.stage_reports.is_empty());
        assert!(out.telemetry.is_none(), "telemetry off by default");
        assert!(matches!(out.report, BackendReport::Sim(_)));
    }

    #[test]
    fn des_outcome_matches_sim_total() {
        let cfg = tiny();
        let sim = run(&cfg, Backend::Sim);
        let des = run(&cfg, Backend::Des);
        let diff = (sim.total_secs - des.total_secs).abs() / sim.total_secs;
        assert!(diff < 0.02, "sim/des disagree by {:.3}%", diff * 100.0);
    }

    #[test]
    fn telemetry_snapshot_present_when_enabled() {
        let mut cfg = tiny();
        cfg.telemetry = true;
        let out = run(&cfg, Backend::Sim);
        let snap = out.telemetry.expect("telemetry on");
        assert!(snap
            .counter(scc_telemetry::names::FRAMES_TOTAL, &[])
            .is_some_and(|c| c.value == 3));
    }

    #[test]
    #[should_panic(expected = "single-renderer")]
    fn des_rejects_multi_renderer_configs() {
        let cfg = RunConfig::builder()
            .renderer(RendererMode::PerPipelineRenderer)
            .pipelines(2)
            .size(96, 96)
            .frames(2)
            .fidelity(Fidelity::TimingOnly)
            .build()
            .expect("valid config");
        let _ = run(&cfg, Backend::Des);
    }
}
