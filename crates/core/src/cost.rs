//! Calibrated stage cost model.
//!
//! Converts workload statistics (pixels, octree nodes visited, triangles,
//! estimated fill coverage) into P54C cycles at the 533 MHz operating
//! point, plus the memory-traffic profile of each stage. The anchors come
//! from §VI-A of the paper, for the default 400×400-pixel frame:
//!
//! * whole pipeline on one core: ~382 s / 400 frames ≈ 0.955 s per frame;
//! * render + transfer only ≈ 104 s; render only ≈ 94 s → render
//!   ≈ 0.235 s/frame, transfer ≈ 0.025 s/frame;
//! * blur is the most expensive filter stage (Figure 8), confirmed by the
//!   DVFS experiment: accelerating only blur 533→800 MHz takes the
//!   single-pipeline MCPC walkthrough from 236 s to 174 s.
//!
//! Every constant is a plain field so experiments (and the calibration
//! test-suite) can vary them; `CostModel::default()` is the paper
//! calibration.

use crate::spec::StageKind;
use scc_filters::{FrameCtx, Image, ImageFilter};
use serde::Serialize;

/// Cycle and traffic coefficients (see module docs for provenance).
#[derive(Debug, Clone, Serialize)]
pub struct CostModel {
    /// P54C cycles per abstract filter work unit (sepia ≡ 1 unit/pixel).
    pub cycles_per_unit: f64,
    /// Extra multiplier on the blur stage (9-tap gather is branchier than
    /// its raw unit count suggests).
    pub blur_multiplier: f64,

    // ---- render stage ----
    /// Fixed per-frame cycles (camera setup, frustum extraction).
    pub render_base_cycles: f64,
    /// Extra fixed cycles per frame for a *strip* renderer (the viewing
    /// frustum adjustment of the sort-first configuration, §VI-A).
    pub render_strip_adjust_cycles: f64,
    /// Cycles per octree node visited (dependent loads through DRAM).
    pub render_node_cycles: f64,
    /// Cycles per triangle transformed/set up.
    pub render_tri_cycles: f64,
    /// Cycles per estimated covered pixel (rasterisation fill).
    pub render_fill_cycles: f64,
    /// Multiplier on fill cycles in the per-pipeline-renderer mode —
    /// calibrated against Table I's "n rend." row, where per-strip
    /// rendering is substantially less efficient per pixel than the single
    /// full-frame renderer.
    pub nrend_fill_multiplier: f64,
    /// Bytes read from the scene per octree node visited.
    pub scene_node_bytes: u64,
    /// Bytes read from the scene per visible triangle.
    pub scene_tri_bytes: u64,

    // ---- distribution / collection stages ----
    /// Cycles per pixel to split a frame into strips (render/connector).
    pub split_cycles_per_px: f64,
    /// Cycles per pixel to assemble strips (transfer stage).
    pub assemble_cycles_per_px: f64,
    /// Connector-side cycles per received byte (UDP/IP stack on a 533 MHz
    /// P54C — the dominant connector cost).
    pub udp_cycles_per_byte: f64,
    /// Per-destination fixed cycles when fanning strips out.
    pub fanout_cycles: f64,

    // ---- heterogeneous hosts ----
    /// How much faster the MCPC's Xeon X3440 renders than a 533 MHz P54C
    /// (clock ratio ≈ 4.7 × micro-architecture ≈ 6). Calibrated so the
    /// 400-frame walkthrough renders in ≈3.3 s on the MCPC (§VI-B).
    pub mcpc_speedup: f64,

    // ---- stage fusion ----
    /// Fraction of a pointwise filter's cycle estimate attributable to
    /// streaming the strip through memory (the read-modify-write
    /// traversal), rather than to per-pixel arithmetic. When a pointwise
    /// pass is *fused* onto a predecessor's traversal it skips exactly
    /// that share — the pixels are already resident in the row chunk —
    /// so the partitioner discounts every group member after the first
    /// by this fraction. Calibrated against the native `kernels` sweep,
    /// where fusing the four-pass pointwise run (sepia → scratch →
    /// flicker → swap) into one traversal recovers roughly a third of
    /// the follower passes' standalone cost.
    pub fused_traversal_fraction: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cycles_per_unit: 305.0,
            blur_multiplier: 1.18,
            render_base_cycles: 1.0e6,
            render_strip_adjust_cycles: 6.0e6,
            render_node_cycles: 30_000.0,
            render_tri_cycles: 3_000.0,
            render_fill_cycles: 62.0,
            nrend_fill_multiplier: 3.3,
            scene_node_bytes: 256,
            scene_tri_bytes: 64,
            split_cycles_per_px: 12.0,
            assemble_cycles_per_px: 14.0,
            udp_cycles_per_byte: 60.0,
            fanout_cycles: 0.4e6,
            mcpc_speedup: 28.5,
            fused_traversal_fraction: 0.35,
        }
    }
}

/// Workload probe of one strip-render (inputs to the render cost).
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderWork {
    pub nodes_visited: u64,
    pub triangles_out: u64,
    pub est_coverage: u64,
}

/// Memory traffic of a stage application (bytes to stream through the
/// cache model, beyond the message fetch/send the runner charges).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTraffic {
    pub read_bytes: u64,
    pub write_bytes: u64,
}

impl CostModel {
    /// Cycles for one filter application on a `width`×`height` strip.
    pub fn filter_cycles(&self, filter: &dyn ImageFilter, img: &Image, ctx: &FrameCtx) -> f64 {
        let mult = if filter.name() == "blur" {
            self.blur_multiplier
        } else {
            1.0
        };
        filter.work_units(img, ctx) * self.cycles_per_unit * mult
    }

    /// Effective cycles for a group of stage weights executed as one
    /// *fused* pass: full cost for the first member (it pays the memory
    /// traversal), every later member discounted by
    /// [`CostModel::fused_traversal_fraction`] — its pixels ride the
    /// leader's traversal. Order-independence caveat: callers pass
    /// weights in chain order and the leader is simply `weights[0]`;
    /// since the discount is a uniform fraction, which member leads only
    /// matters by `max − min` of the inputs, well inside the model's
    /// calibration slack.
    pub fn fused_group_cycles(&self, member_weights: &[f64]) -> f64 {
        match member_weights.split_first() {
            Some((first, rest)) => {
                let keep = 1.0 - self.fused_traversal_fraction;
                first + rest.iter().map(|w| w * keep).sum::<f64>()
            }
            None => 0.0,
        }
    }

    /// Cycles for rendering one strip.
    ///
    /// `strip_mode` marks the per-pipeline-renderer configuration with its
    /// frustum-adjust overhead and less efficient fill path.
    pub fn render_cycles(&self, work: &RenderWork, strip_mode: bool) -> f64 {
        let mut c = self.render_base_cycles
            + work.nodes_visited as f64 * self.render_node_cycles
            + work.triangles_out as f64 * self.render_tri_cycles;
        let fill = work.est_coverage as f64 * self.render_fill_cycles;
        if strip_mode {
            c += self.render_strip_adjust_cycles + fill * self.nrend_fill_multiplier;
        } else {
            c += fill;
        }
        c
    }

    /// Scene bytes the renderer pulls from memory for one strip.
    pub fn render_scene_bytes(&self, work: &RenderWork) -> u64 {
        work.nodes_visited * self.scene_node_bytes + work.triangles_out * self.scene_tri_bytes
    }

    /// Cycles to split a full frame into `parts` strips.
    pub fn split_cycles(&self, pixels: u64, parts: u32) -> f64 {
        pixels as f64 * self.split_cycles_per_px + parts as f64 * self.fanout_cycles
    }

    /// Cycles for the transfer stage to assemble `pixels` worth of strips.
    pub fn assemble_cycles(&self, pixels: u64) -> f64 {
        pixels as f64 * self.assemble_cycles_per_px
    }

    /// Connector cycles to ingest `bytes` from the MCPC link.
    pub fn connector_cycles(&self, bytes: u64, parts: u32) -> f64 {
        bytes as f64 * self.udp_cycles_per_byte + parts as f64 * self.fanout_cycles
    }

    /// Seconds the MCPC needs to render one frame that costs
    /// `p54c_cycles` on a 533 MHz SCC core.
    pub fn mcpc_render_seconds(&self, p54c_cycles: f64) -> f64 {
        p54c_cycles / (533.0e6 * self.mcpc_speedup)
    }

    /// Per-kind stage traffic for one strip application (read/write bytes
    /// streamed through the cache, §IV's differing access patterns).
    pub fn stage_traffic(&self, kind: StageKind, strip_bytes: u64) -> StageTraffic {
        match kind {
            // Blur reads the source and writes the second buffer.
            StageKind::Blur => StageTraffic {
                read_bytes: strip_bytes,
                write_bytes: strip_bytes,
            },
            // In-place per-pixel passes read + write the strip.
            StageKind::Sepia | StageKind::Flicker => StageTraffic {
                read_bytes: strip_bytes,
                write_bytes: strip_bytes,
            },
            // Swap copies every row once through a line buffer.
            StageKind::Swap => StageTraffic {
                read_bytes: strip_bytes,
                write_bytes: strip_bytes,
            },
            // Scratch touches a handful of columns.
            StageKind::Scratch => StageTraffic {
                read_bytes: strip_bytes / 64,
                write_bytes: strip_bytes / 64,
            },
            // Render writes the frame buffer (scene reads are charged
            // separately via `render_scene_bytes`).
            StageKind::Render => StageTraffic {
                read_bytes: 0,
                write_bytes: strip_bytes,
            },
            // Connector/transfer move whole frames; their message traffic
            // is charged by the runner, plus one staging copy here.
            StageKind::Connect | StageKind::Transfer => StageTraffic {
                read_bytes: strip_bytes,
                write_bytes: strip_bytes,
            },
        }
    }
}

/// Seconds for `cycles` at `freq_hz` — tiny convenience used all over the
/// runner.
pub fn cycles_to_secs(cycles: f64, freq_hz: u64) -> f64 {
    cycles / freq_hz as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_filters::{Blur, Flicker, Scratch, Sepia, VSwap};

    const FRAME_PX: u64 = 400 * 400;
    const F533: f64 = 533.0e6;

    fn full_frame_secs(filter: &dyn ImageFilter) -> f64 {
        let m = CostModel::default();
        let img = Image::new(400, 400);
        let ctx = FrameCtx::whole_frame(3, 7, 400, 400);
        m.filter_cycles(filter, &img, &ctx) / F533
    }

    #[test]
    fn sepia_calibration_anchor() {
        let t = full_frame_secs(&Sepia);
        assert!(
            (0.09..0.13).contains(&t),
            "sepia {t:.3}s/frame should be ≈0.105 s"
        );
    }

    #[test]
    fn blur_is_the_most_expensive_filter() {
        let blur = full_frame_secs(&Blur::default());
        assert!(
            (0.42..0.56).contains(&blur),
            "blur {blur:.3}s/frame should be ≈0.49 s"
        );
        for f in [
            full_frame_secs(&Sepia),
            full_frame_secs(&Flicker::default()),
            full_frame_secs(&VSwap),
            full_frame_secs(&Scratch::default()),
        ] {
            assert!(blur > 2.0 * f, "blur must dominate (other={f:.3}s)");
        }
    }

    #[test]
    fn scratch_is_the_cheapest_filter() {
        let scratch = full_frame_secs(&Scratch::default());
        assert!(scratch < 0.02, "scratch {scratch}s should be milliseconds");
    }

    #[test]
    fn filter_stage_sum_matches_figure8() {
        // Filters (sepia+blur+scratch+flicker+swap) ≈ 0.70 s/frame so the
        // full single-core pipeline lands near 0.955 s/frame.
        let sum: f64 = [
            full_frame_secs(&Sepia),
            full_frame_secs(&Blur::default()),
            full_frame_secs(&Scratch::default()),
            full_frame_secs(&Flicker::default()),
            full_frame_secs(&VSwap),
        ]
        .iter()
        .sum();
        assert!(
            (0.60..0.80).contains(&sum),
            "filter sum {sum:.3}s/frame should be ≈0.70 s"
        );
    }

    #[test]
    fn render_cost_components_add_up() {
        let m = CostModel::default();
        let work = RenderWork {
            nodes_visited: 150,
            triangles_out: 5500,
            est_coverage: 1_280_000,
        };
        let full = m.render_cycles(&work, false) / F533;
        // ~0.21 s for a typical walkthrough frame: base 1M + nodes 4.5M +
        // tris 16.5M + fill 79M ≈ 101M cycles.
        assert!((0.12..0.35).contains(&full), "render {full:.3}s");
        let strip = m.render_cycles(&work, true) / F533;
        assert!(strip > full, "strip mode must cost extra");
        assert_eq!(m.render_scene_bytes(&work), 150 * 256 + 5500 * 64);
    }

    #[test]
    fn mcpc_renders_walkthrough_in_about_3_seconds() {
        // §VI-B: "The rendering of all images took only about 3.3 seconds".
        let m = CostModel::default();
        let per_frame_p54c = 0.225 * F533;
        let total = 400.0 * m.mcpc_render_seconds(per_frame_p54c);
        assert!(
            (2.5..4.5).contains(&total),
            "MCPC walkthrough render {total:.2}s should be ≈3.3 s"
        );
    }

    #[test]
    fn traffic_profiles_differ_by_stage() {
        let m = CostModel::default();
        let b = FRAME_PX * 4;
        let blur = m.stage_traffic(StageKind::Blur, b);
        let scratch = m.stage_traffic(StageKind::Scratch, b);
        assert!(blur.read_bytes > scratch.read_bytes * 10);
        let render = m.stage_traffic(StageKind::Render, b);
        assert_eq!(render.read_bytes, 0, "scene reads charged separately");
        assert_eq!(render.write_bytes, b);
    }

    #[test]
    fn cycles_to_secs_roundtrip() {
        assert_eq!(cycles_to_secs(533.0e6, 533_000_000), 1.0);
        assert_eq!(cycles_to_secs(0.0, 533_000_000), 0.0);
    }
}
