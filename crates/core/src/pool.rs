//! Recycled frame/strip buffer pool.
//!
//! Every hop of the native pipeline used to allocate a fresh RGBA buffer
//! (decode, filter output, assembly), and the sim runner's timing-only
//! path allocated a proxy image per stage per frame — hundreds of
//! megabytes of churn per walkthrough. The pool keeps released buffers on
//! a bounded free list and hands their allocations back out, independent
//! of geometry (a `Vec` is re-sized to whatever the next acquire needs).
//!
//! Invariants (property-tested in `tests/pool_props.rs`):
//!
//! * **No aliasing** — an acquired [`Image`] owns its buffer exclusively;
//!   the pool never hands the same live allocation to two callers.
//! * **No stale pixels** — [`BufferPool::acquire`] returns an image
//!   byte-identical to a fresh [`Image::new`] (black, fully opaque), and
//!   [`BufferPool::acquire_filled`] overwrites every byte from the given
//!   payload. Pooled and unpooled runs therefore produce identical output.
//! * **Bounded** — at most `max_free` buffers are retained; extra
//!   releases simply drop their allocation.

use parking_lot::Mutex;
use scc_filters::{Image, BYTES_PER_PIXEL};
use std::sync::Arc;

/// Counters describing how much reuse a pool achieved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from the free list.
    pub recycled: u64,
    /// Acquires that had to allocate.
    pub fresh: u64,
    /// Buffers returned to the free list.
    pub returned: u64,
    /// Buffers dropped because the free list was full (or the pool
    /// disabled).
    pub dropped: u64,
}

struct Inner {
    free: Vec<Vec<u8>>,
    max_free: usize,
    stats: PoolStats,
}

/// A shared, thread-safe pool of recycled image allocations. Cloning is
/// cheap and shares the free list; a disabled pool (the `buffer_pool:
/// false` knob) allocates fresh on every acquire and drops every release,
/// so both modes run the exact same calling code.
#[derive(Clone)]
pub struct BufferPool {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl BufferPool {
    /// Default free-list bound: comfortably covers every in-flight buffer
    /// of a 9-pipeline run (p strips × window 2 per hop) without letting
    /// an unbalanced producer hoard memory.
    pub const DEFAULT_MAX_FREE: usize = 64;

    /// A pool retaining at most `max_free` released buffers.
    pub fn new(max_free: usize) -> BufferPool {
        BufferPool {
            inner: Some(Arc::new(Mutex::new(Inner {
                free: Vec::new(),
                max_free,
                stats: PoolStats::default(),
            }))),
        }
    }

    /// A pass-through pool: every acquire allocates, every release drops.
    pub fn disabled() -> BufferPool {
        BufferPool { inner: None }
    }

    /// Build from the spec knob.
    pub fn from_enabled(enabled: bool) -> BufferPool {
        if enabled {
            BufferPool::new(Self::DEFAULT_MAX_FREE)
        } else {
            BufferPool::disabled()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn take_buffer(&self, len: usize) -> Vec<u8> {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock();
            if let Some(mut buf) = inner.free.pop() {
                inner.stats.recycled += 1;
                buf.clear();
                buf.resize(len, 0);
                return buf;
            }
            inner.stats.fresh += 1;
        }
        vec![0u8; len]
    }

    /// An image byte-identical to `Image::new(width, height)` — black,
    /// fully opaque — reusing a pooled allocation when one is free.
    pub fn acquire(&self, width: u32, height: u32) -> Image {
        let len = width as usize * height as usize * BYTES_PER_PIXEL;
        let mut data = self.take_buffer(len);
        for px in data.chunks_exact_mut(BYTES_PER_PIXEL) {
            px[3] = 255;
        }
        Image::from_raw(width, height, data)
    }

    /// An image whose every byte comes from `payload` (which must match
    /// the geometry), reusing a pooled allocation when one is free.
    pub fn acquire_filled(&self, width: u32, height: u32, payload: &[u8]) -> Image {
        let len = width as usize * height as usize * BYTES_PER_PIXEL;
        assert_eq!(payload.len(), len, "payload size mismatch");
        let mut data = self.take_buffer(len);
        data.copy_from_slice(payload);
        Image::from_raw(width, height, data)
    }

    /// Return an image's allocation to the free list (dropped if the list
    /// is full or the pool disabled).
    pub fn release(&self, img: Image) {
        let buf = img.into_raw();
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock();
            if inner.free.len() < inner.max_free {
                inner.stats.returned += 1;
                inner.free.push(buf);
                return;
            }
            inner.stats.dropped += 1;
        }
    }

    /// Snapshot of the reuse counters (all zero for a disabled pool).
    pub fn stats(&self) -> PoolStats {
        match &self.inner {
            Some(inner) => inner.lock().stats,
            None => PoolStats::default(),
        }
    }

    /// Buffers currently sitting on the free list.
    pub fn free_len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().free.len(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_matches_fresh_image_exactly() {
        let pool = BufferPool::new(8);
        for (w, h) in [(1u32, 1u32), (7, 3), (64, 64)] {
            assert_eq!(pool.acquire(w, h), Image::new(w, h), "{w}x{h}");
        }
    }

    #[test]
    fn recycled_buffer_is_scrubbed() {
        let pool = BufferPool::new(8);
        let mut img = pool.acquire(4, 4);
        img.fill([200, 100, 50, 25]);
        pool.release(img);
        // Same geometry: must come back black-opaque, not with the old art.
        let again = pool.acquire(4, 4);
        assert_eq!(again, Image::new(4, 4));
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn recycling_works_across_geometries() {
        let pool = BufferPool::new(8);
        let big = pool.acquire(16, 16);
        pool.release(big);
        let small = pool.acquire(2, 3);
        assert_eq!(small, Image::new(2, 3));
        let large = pool.acquire(20, 20);
        assert_eq!(large, Image::new(20, 20));
    }

    #[test]
    fn acquire_filled_copies_payload() {
        let pool = BufferPool::new(4);
        let mut stale = pool.acquire(2, 2);
        stale.fill([9, 9, 9, 9]);
        pool.release(stale);
        let payload: Vec<u8> = (0u8..16).collect();
        let img = pool.acquire_filled(2, 2, &payload);
        assert_eq!(img.as_bytes(), &payload[..]);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufferPool::new(2);
        for _ in 0..5 {
            pool.release(Image::new(4, 4));
        }
        assert_eq!(pool.free_len(), 2);
        let s = pool.stats();
        assert_eq!(s.returned, 2);
        assert_eq!(s.dropped, 3);
    }

    #[test]
    fn disabled_pool_is_transparent() {
        let pool = BufferPool::disabled();
        assert!(!pool.is_enabled());
        let img = pool.acquire(3, 3);
        assert_eq!(img, Image::new(3, 3));
        pool.release(img);
        assert_eq!(pool.free_len(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
        assert!(BufferPool::from_enabled(true).is_enabled());
        assert!(!BufferPool::from_enabled(false).is_enabled());
    }

    #[test]
    fn clones_share_the_free_list() {
        let a = BufferPool::new(8);
        let b = a.clone();
        b.release(Image::new(4, 4));
        assert_eq!(a.free_len(), 1);
        let _ = a.acquire(4, 4);
        assert_eq!(b.stats().recycled, 1);
    }
}
