//! Generic macro pipelines — the paper's closing claim, as an API.
//!
//! "The ideas presented in our work should easily translate to other
//! problem domains where parallel macro pipelines are used" (§I). This
//! module lets a user define *their own* stage chain — any workload with
//! per-item compute cycles, auxiliary memory traffic and an output
//! payload — and run it on the simulated SCC with exactly the mechanics
//! of the rendering case study: RCCE-style rendezvous handovers through
//! DRAM partitions, contended controllers, per-stage idle accounting.
//!
//! See `examples/generic_pipeline.rs` for a compress→encrypt→checksum
//! stream-processing pipeline reproducing the paper's qualitative story
//! on a non-graphics workload.
//!
//! Two entry styles coexist:
//!
//! * **The workload plane** (preferred): put a [`crate::spec::Workload`]
//!   into [`RunConfig`] and call [`crate::run`]. The spec-driven
//!   executors here ([`run_workload_sim`], [`run_workload_des`]) run the
//!   chain on either virtual-time backend with the full run machinery —
//!   telemetry, the power plane (static plans *and* the closed-loop DVFS
//!   governor), chain-merge auto-placement, invariant checking, and an
//!   output digest that gates drift.
//! * [`run_generic_chain`] — the original trait-object side door. Soft
//!   deprecated: it still works for imperative closure-defined stages,
//!   but it bypasses the power plane, telemetry, and verification, and
//!   new code should declare a [`crate::spec::GenericChainSpec`] instead.

use crate::governor::{Governor, GovernorDecision, StationSample};
use crate::spec::{Arrangement, PowerConfig, RunConfig, Workload};
use scc_sim::platform::MemOp;
use scc_sim::stats::Quartiles;
use scc_sim::{CoreId, DvfsState, IslandId, SccConfig, SccPlatform, SimTime};
use scc_telemetry::{names, TelemetrySink, IDLE_MS_BUCKETS};
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::ops::Range;

/// What one stage does to one work item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageWork {
    /// Compute cycles at the core's current frequency.
    pub cycles: f64,
    /// Auxiliary bytes streamed from DRAM (beyond the input fetch).
    pub read_bytes: u64,
    /// Auxiliary bytes streamed to DRAM (beyond the output send).
    pub write_bytes: u64,
    /// Payload handed to the next stage.
    pub out_bytes: u64,
}

/// A user-defined macro pipeline stage.
pub trait MacroStage: Send {
    /// Stage name for reports.
    fn name(&self) -> String;

    /// Workload of item `item` given `in_bytes` of input payload.
    fn work(&mut self, item: u64, in_bytes: u64) -> StageWork;
}

/// A closure-backed stage, for quick definitions.
pub struct FnStage<F: FnMut(u64, u64) -> StageWork + Send> {
    pub label: String,
    pub f: F,
}

impl<F: FnMut(u64, u64) -> StageWork + Send> MacroStage for FnStage<F> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn work(&mut self, item: u64, in_bytes: u64) -> StageWork {
        (self.f)(item, in_bytes)
    }
}

/// Per-stage outcome of a generic run.
#[derive(Debug, Clone, Serialize)]
pub struct GenericStageReport {
    pub name: String,
    pub core_id: u8,
    pub busy_secs: f64,
    pub idle_ms: Option<Quartiles>,
    pub utilisation: f64,
}

/// Result of a generic pipeline run.
#[derive(Debug, Clone, Serialize)]
pub struct GenericReport {
    pub total_secs: f64,
    pub items: u64,
    pub stages: Vec<GenericStageReport>,
    pub mean_power: f64,
    pub energy_joules: f64,
    /// FNV-1a fingerprint of the workload's output (the reconstructed
    /// grid for wavefront runs, the payload-flow profile for declarative
    /// chains). Zero for the legacy [`run_generic_chain`] side door,
    /// whose closures the executor cannot fingerprint.
    pub output_digest: u64,
    /// Idle floor (watts) of the cheapest DVFS state the run visited —
    /// the same floor the energy-identity invariant checks against.
    pub scc_idle_power: f64,
    /// The governor's decision trace, in epoch order; empty on static
    /// power plans.
    pub dvfs_decisions: Vec<GovernorDecision>,
    /// Metrics recorded during the run when `cfg.telemetry` was set.
    #[serde(skip)]
    pub telemetry: Option<scc_telemetry::Snapshot>,
}

impl GenericReport {
    /// Items per virtual second at steady state.
    pub fn throughput(&self) -> f64 {
        self.items as f64 / self.total_secs
    }

    pub fn stage(&self, name: &str) -> Option<&GenericStageReport> {
        self.stages.iter().find(|s| s.name == name)
    }
}

/// Run a linear chain of stages over `items` work items of
/// `source_bytes` initial payload each, on consecutive SCC cores chosen
/// by `arrangement`, using the same rendezvous semantics as the paper's
/// rendering pipeline. The last stage's output is delivered off-chip.
///
/// Soft deprecated: this side door predates the workload plane and skips
/// the power plane, telemetry, auto-placement, and invariant checking.
/// Declare the chain as a [`crate::spec::GenericChainSpec`] in
/// [`RunConfig::workload`](crate::spec::RunConfig) and call
/// [`crate::run`] instead; this entry remains for closure-defined
/// stages whose work cannot be written as an affine spec.
pub fn run_generic_chain(
    mut platform: SccPlatform,
    stages: &mut [Box<dyn MacroStage>],
    arrangement: Arrangement,
    items: u64,
    source_bytes: u64,
) -> GenericReport {
    assert!(!stages.is_empty(), "empty pipeline");
    assert!(
        stages.len() <= 48,
        "more stages ({}) than SCC cores",
        stages.len()
    );
    assert!(items >= 1);

    // Stage -> core mapping: sequential ids (unordered) or one core per
    // tile along rows (ordered / flipped).
    let cores: Vec<CoreId> = match arrangement {
        Arrangement::Unordered => (0..stages.len() as u8).map(CoreId::new).collect(),
        Arrangement::Ordered | Arrangement::Flipped => {
            let mut v = Vec::with_capacity(stages.len());
            for (k, _) in stages.iter().enumerate() {
                let row = (k / 6) as u8;
                let col_raw = (k % 6) as u8;
                let col = if arrangement == Arrangement::Flipped && row % 2 == 1 {
                    5 - col_raw
                } else {
                    col_raw
                };
                let slot = row / 4;
                v.push(CoreId::new(
                    scc_sim::TileId::from_xy(col, row % 4).raw() * 2 + slot,
                ));
            }
            v
        }
    };
    platform.set_spinning(cores.clone());

    let n = stages.len();
    let mut free = vec![SimTime::ZERO; n];
    let mut busy = vec![SimTime::ZERO; n];
    let mut idle: Vec<Vec<SimTime>> = vec![Vec::new(); n];
    let mut finish = SimTime::ZERO;

    for item in 0..items {
        // Arrival of the item's payload at stage 0: items appear at the
        // source as fast as stage 0 can take them.
        let mut avail = free[0];
        let mut in_bytes = source_bytes;
        for (j, stage) in stages.iter_mut().enumerate() {
            let core = cores[j];
            idle[j].push(avail.saturating_sub(free[j]));
            let start = avail.max(free[j]);
            // Fetch input from this core's partition (stage 0 reads its
            // source data from its own partition too).
            let mut t = platform.fetch_from_partition(core, start, in_bytes);
            let w = stage.work(item, in_bytes);
            t = platform.compute(core, t, w.cycles as u64);
            t = platform.mem_stream(core, t, MemOp::Read, w.read_bytes);
            t = platform.mem_stream(core, t, MemOp::Write, w.write_bytes);
            platform.record_busy(core, start, t);
            // Hand over (rendezvous with the next stage's previous item).
            let resident = if j + 1 < n {
                let send_start = t.max(free[j + 1]);
                let r = platform.send_to_partition(core, cores[j + 1], send_start, w.out_bytes);
                platform.record_busy(core, send_start, r);
                r
            } else {
                let r = platform.chip_to_host(core, t, w.out_bytes);
                platform.record_busy(core, t, r);
                r
            };
            busy[j] += resident - start;
            free[j] = resident;
            avail = resident;
            in_bytes = w.out_bytes;
        }
        finish = avail;
    }

    let energy = platform.energy_joules(finish);
    GenericReport {
        total_secs: finish.as_secs_f64(),
        items,
        stages: stages
            .iter()
            .enumerate()
            .map(|(j, s)| GenericStageReport {
                name: s.name(),
                core_id: cores[j].raw(),
                busy_secs: busy[j].as_secs_f64(),
                idle_ms: Quartiles::from_times(&idle[j]),
                utilisation: busy[j].as_secs_f64() / finish.as_secs_f64().max(1e-12),
            })
            .collect(),
        mean_power: energy / finish.as_secs_f64().max(1e-12),
        energy_joules: energy,
        output_digest: 0,
        scc_idle_power: platform.idle_power_for(platform.dvfs()),
        dvfs_decisions: Vec::new(),
        telemetry: None,
    }
}

// ---------------------------------------------------------------------
// The spec-driven workload plane: `RunConfig::workload` resolved to a
// pure per-(stage, item) work table and executed by either virtual-time
// backend with the full run machinery.
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(digest: u64, value: u64) -> u64 {
    let mut d = digest;
    for byte in value.to_le_bytes() {
        d = (d ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    d
}

/// Per-cell cost constants of the wavefront chain (cycles and bytes as
/// functions of the wave's frontier size `n`). Expand dominates by an
/// order of magnitude — the chain's blur — but unlike blur its absolute
/// cost moves with every wave.
fn wavefront_stage(stage: usize, n: u64) -> StageWork {
    let nf = n as f64;
    match stage {
        // Drain the frontier queue, order the records.
        0 => StageWork {
            cycles: 900.0 + 45.0 * nf,
            read_bytes: 0,
            write_bytes: 0,
            out_bytes: 16 * n,
        },
        // Dilate: fetch each cell's mask neighborhood, compare, write
        // the grown marker values back.
        1 => StageWork {
            cycles: 2_400.0 + 520.0 * nf,
            read_bytes: 32 * n,
            write_bytes: 16 * n,
            out_bytes: 16 * n,
        },
        // Commit the delta log off-chip.
        2 => StageWork {
            cycles: 700.0 + 60.0 * nf,
            read_bytes: 0,
            write_bytes: 8 * n,
            out_bytes: 8 * n + 16,
        },
        _ => unreachable!("the wavefront chain has 3 stages"),
    }
}

/// Names of the wavefront chain's stages, in order.
pub const WAVEFRONT_STAGES: [&str; 3] = ["ingest", "expand", "commit"];

/// A workload resolved into an executable chain: per-(stage, item) work
/// precomputed as a pure function of the spec, so both backends charge
/// exactly the same cycles and bytes, in a possibly different order.
pub(crate) struct ResolvedChain {
    pub names: Vec<String>,
    /// Input payload per stage; one entry when uniform across items,
    /// `items` entries otherwise.
    ins: Vec<Vec<u64>>,
    works: Vec<Vec<StageWork>>,
    pub items: u64,
    pub output_digest: u64,
}

impl ResolvedChain {
    pub(crate) fn resolve(cfg: &RunConfig) -> ResolvedChain {
        match &cfg.workload {
            Workload::Generic(spec) => {
                let mut digest = fnv_fold(FNV_OFFSET, spec.items);
                digest = fnv_fold(digest, spec.source_bytes);
                let mut in_bytes = spec.source_bytes;
                let mut ins = Vec::with_capacity(spec.stages.len());
                let mut works = Vec::with_capacity(spec.stages.len());
                let mut names = Vec::with_capacity(spec.stages.len());
                for s in &spec.stages {
                    let w = StageWork {
                        cycles: s.fixed_cycles + s.cycles_per_byte * in_bytes as f64,
                        read_bytes: (s.read_factor * in_bytes as f64) as u64,
                        write_bytes: (s.write_factor * in_bytes as f64) as u64,
                        out_bytes: (s.out_factor * in_bytes as f64) as u64,
                    };
                    digest = fnv_fold(digest, w.out_bytes);
                    ins.push(vec![in_bytes]);
                    works.push(vec![w]);
                    names.push(s.name.clone());
                    in_bytes = w.out_bytes;
                }
                ResolvedChain {
                    names,
                    ins,
                    works,
                    items: spec.items,
                    output_digest: digest,
                }
            }
            Workload::Wavefront(spec) => {
                let trace = crate::wavefront::propagate(spec, cfg.seed);
                let items = trace.waves.len() as u64;
                let mut ins = Vec::with_capacity(3);
                let mut works = Vec::with_capacity(3);
                for stage in 0..3 {
                    let per_item: Vec<StageWork> = trace
                        .waves
                        .iter()
                        .map(|&n| wavefront_stage(stage, n))
                        .collect();
                    let stage_in: Vec<u64> = if stage == 0 {
                        // Stage 0 ingests the raw frontier queue.
                        trace.waves.iter().map(|&n| 8 * n).collect()
                    } else {
                        trace
                            .waves
                            .iter()
                            .map(|&n| wavefront_stage(stage - 1, n).out_bytes)
                            .collect()
                    };
                    ins.push(stage_in);
                    works.push(per_item);
                }
                ResolvedChain {
                    names: WAVEFRONT_STAGES.iter().map(|s| s.to_string()).collect(),
                    ins,
                    works,
                    items,
                    output_digest: trace.digest,
                }
            }
            Workload::Film => unreachable!("the film workload runs on the strip executors"),
        }
    }

    fn stages(&self) -> usize {
        self.works.len()
    }

    fn in_bytes(&self, stage: usize, item: u64) -> u64 {
        let v = &self.ins[stage];
        v[if v.len() == 1 { 0 } else { item as usize }]
    }

    fn work(&self, stage: usize, item: u64) -> StageWork {
        let v = &self.works[stage];
        v[if v.len() == 1 { 0 } else { item as usize }]
    }

    /// Mean per-item cost of a stage in cycle-equivalents, for the
    /// chain-merge planner (memory traffic weighted at a rough 1.5
    /// cycles per byte).
    fn stage_cost(&self, stage: usize) -> f64 {
        let v = &self.works[stage];
        let sum: f64 = v
            .iter()
            .map(|w| w.cycles + 1.5 * (w.read_bytes + w.write_bytes + w.out_bytes) as f64)
            .sum();
        sum / v.len() as f64
    }
}

/// Chain-merge auto-placement: greedily merge the cheapest adjacent
/// group pair while the merged cost stays at or below the bottleneck
/// stage's cost — merged stages share a core and skip the partition
/// handover, without ever slowing the cadence the bottleneck sets.
/// With `auto_place` off every stage keeps its own core.
pub(crate) fn plan_groups(chain: &ResolvedChain, auto_place: bool) -> Vec<Range<usize>> {
    let mut groups: Vec<Range<usize>> = (0..chain.stages()).map(|j| j..j + 1).collect();
    if !auto_place {
        return groups;
    }
    let mut cost: Vec<f64> = (0..chain.stages()).map(|j| chain.stage_cost(j)).collect();
    while groups.len() > 1 {
        let bottleneck = cost.iter().cloned().fold(0.0, f64::max);
        let (mut best, mut best_cost) = (None, f64::INFINITY);
        for i in 0..groups.len() - 1 {
            let c = cost[i] + cost[i + 1];
            if c < best_cost {
                best = Some(i);
                best_cost = c;
            }
        }
        let Some(i) = best else { break };
        if best_cost > bottleneck {
            break;
        }
        groups[i] = groups[i].start..groups[i + 1].end;
        groups.remove(i + 1);
        cost[i] = best_cost;
        cost.remove(i + 1);
    }
    groups
}

/// Stage-group to core mapping for the workload plane: island-major, so
/// consecutive groups land on *different* voltage islands. A chain of up
/// to six groups owns one island per group — the natural placement for a
/// power-plane experiment (raising one group's tile never drags a
/// neighbor group's voltage up), and deliberately different from the
/// film pipeline's row-major packing, so the governor's converged split
/// is workload-specific rather than an artifact of shared tiles.
pub(crate) fn island_major_core(k: usize) -> CoreId {
    assert!(k < 48, "chain group {k} beyond the 48-core die");
    let island = IslandId::new((k % 6) as u8);
    let tile = island.tiles()[(k / 6) % 4];
    CoreId::new(tile.raw() * 2 + (k / 24) as u8)
}

/// Apply the static power plan (if any) and arm the governor (if any).
/// Returns the governor and the epoch length in items (`u64::MAX` under
/// a static plan, so the epoch branch never fires).
fn arm_power_plane(cfg: &RunConfig, platform: &mut SccPlatform) -> (Option<Governor>, u64) {
    match &cfg.power {
        PowerConfig::Static(pairs) => {
            if !pairs.is_empty() {
                let mut state = platform.dvfs().clone();
                for (core, freq) in pairs {
                    state.set_core_tile(*core, *freq);
                }
                platform.apply_dvfs(&state);
            }
            (None, u64::MAX)
        }
        PowerConfig::Governed(tuning) => {
            let gov = Governor::new(
                tuning.clone(),
                platform.power_calibration().clone(),
                platform.dvfs().clone(),
            );
            // Every chain stage is a station; there is no render core to
            // protect.
            (Some(gov), tuning.epoch_frames as u64)
        }
    }
}

/// The frame-major flavor of the workload plane: items stream through
/// the stage groups in item-major order, exactly like the legacy chain
/// loop, plus the power plane, epoch-sampled governor, telemetry, and
/// invariant checking.
pub(crate) fn run_workload_sim(cfg: &RunConfig) -> GenericReport {
    let chain = ResolvedChain::resolve(cfg);
    let groups = plan_groups(&chain, cfg.auto_place);
    let mut platform = SccPlatform::new(SccConfig::default());
    let tel = TelemetrySink::from_enabled(cfg.telemetry);
    let (mut governor, epoch_items) = arm_power_plane(cfg, &mut platform);
    let cores: Vec<CoreId> = (0..groups.len()).map(island_major_core).collect();
    platform.set_spinning(cores.clone());

    let n = groups.len();
    let mut free = vec![SimTime::ZERO; n];
    let mut busy = vec![SimTime::ZERO; n];
    let mut idle: Vec<Vec<SimTime>> = vec![Vec::new(); n];
    let mut finish = SimTime::ZERO;
    let mut dvfs_schedule: Vec<(SimTime, DvfsState)> =
        vec![(SimTime::ZERO, platform.dvfs().clone())];
    let mut pending_dvfs: VecDeque<(u64, DvfsState)> = VecDeque::new();
    let mut epoch_mark = SimTime::ZERO;
    let mut epoch_idle = vec![SimTime::ZERO; n];

    for item in 0..chain.items {
        if let Some((at, _)) = pending_dvfs.front() {
            if *at == item {
                let (_, state) = pending_dvfs.pop_front().expect("front checked");
                platform.apply_dvfs(&state);
                // The boundary on the virtual timeline is the previous
                // item's off-chip delivery, the same instant the epoch
                // accounting closed on.
                dvfs_schedule.push((finish, state));
            }
        }
        let mut avail = free[0];
        for (g, range) in groups.iter().enumerate() {
            let core = cores[g];
            let wait = avail.saturating_sub(free[g]);
            idle[g].push(wait);
            epoch_idle[g] += wait;
            let start = avail.max(free[g]);
            let mut t =
                platform.fetch_from_partition(core, start, chain.in_bytes(range.start, item));
            let mut out = 0u64;
            for j in range.clone() {
                let w = chain.work(j, item);
                t = platform.compute(core, t, w.cycles as u64);
                if w.read_bytes > 0 {
                    t = platform.mem_stream(core, t, MemOp::Read, w.read_bytes);
                }
                if w.write_bytes > 0 {
                    t = platform.mem_stream(core, t, MemOp::Write, w.write_bytes);
                }
                out = w.out_bytes;
            }
            platform.record_busy(core, start, t);
            let resident = if g + 1 < n {
                let send_start = t.max(free[g + 1]);
                let r = platform.send_to_partition(core, cores[g + 1], send_start, out);
                platform.record_busy(core, send_start, r);
                r
            } else {
                let r = platform.chip_to_host(core, t, out);
                platform.record_busy(core, t, r);
                r
            };
            busy[g] += resident - start;
            free[g] = resident;
            avail = resident;
        }
        finish = avail;

        if let Some(gov) = governor.as_mut() {
            if (item + 1) % epoch_items == 0 {
                let dur = (finish.saturating_sub(epoch_mark)).as_secs_f64();
                let stations: Vec<StationSample> = (0..n)
                    .map(|g| {
                        let frac = if dur > 0.0 {
                            epoch_idle[g].as_secs_f64() / dur
                        } else {
                            0.0
                        };
                        StationSample::new(cores[g], frac)
                    })
                    .collect();
                if let Some(state) = gov.observe_epoch(&stations) {
                    pending_dvfs.push_back((item + 1 + epoch_items, state));
                }
                epoch_idle.iter_mut().for_each(|t| *t = SimTime::ZERO);
                epoch_mark = finish;
            }
        }
    }

    finish_workload_report(
        cfg,
        &chain,
        &groups,
        &cores,
        &platform,
        &tel,
        &busy,
        &idle,
        finish,
        governor.as_ref(),
        &dvfs_schedule,
    )
}

/// DES event kinds per (group, item) node: the compute half (fetch +
/// cycles + auxiliary traffic) and the send half (rendezvous handover or
/// off-chip delivery). Splitting the two keeps the recurrence identical
/// to the item-major loop — a sender computes as soon as its input and
/// core are free, then blocks in the send until the receiver drains the
/// previous item — while the event queue books platform contention in
/// global time order instead of item-major order.
const EV_COMPUTE: u8 = 0;
const EV_SEND: u8 = 1;

/// The event-driven flavor of the workload plane: the same resolved
/// chain executed as a dependency-counted DES, cross-validating the
/// frame-major executor. Work, placement, epochs, and the governor's
/// item-to-frequency mapping are identical by construction; only the
/// platform booking order differs, so totals agree to contention noise
/// and the output digest is bit-identical.
pub(crate) fn run_workload_des(cfg: &RunConfig) -> GenericReport {
    let chain = ResolvedChain::resolve(cfg);
    let groups = plan_groups(&chain, cfg.auto_place);
    let mut platform = SccPlatform::new(SccConfig::default());
    let tel = TelemetrySink::from_enabled(cfg.telemetry);
    let (mut governor, epoch_items) = arm_power_plane(cfg, &mut platform);
    let cores: Vec<CoreId> = (0..groups.len()).map(island_major_core).collect();
    platform.set_spinning(cores.clone());

    let n = groups.len();
    let items = chain.items as usize;
    let idx = |g: usize, k: usize| k * n + g;

    let mut comp_start = vec![SimTime::ZERO; n * items];
    let mut comp_done = vec![SimTime::ZERO; n * items];
    let mut send_done = vec![SimTime::ZERO; n * items];
    let mut out_bytes = vec![0u64; n * items];
    // Remaining dependencies per event; compute waits on own-prev send
    // and upstream arrival, send waits on its compute and the
    // receiver-side rendezvous.
    let mut indeg = vec![0u8; 2 * n * items];
    for k in 0..items {
        for g in 0..n {
            indeg[2 * idx(g, k) + EV_COMPUTE as usize] =
                u8::from(k > 0) + u8::from(g > 0);
            indeg[2 * idx(g, k) + EV_SEND as usize] =
                1 + u8::from(g + 1 < n && k > 0);
        }
    }

    let mut busy = vec![SimTime::ZERO; n];
    let mut idle: Vec<Vec<SimTime>> = vec![Vec::new(); n];
    // Per-epoch idle accumulators: nodes of epoch e + 1 legally run
    // before epoch e closes (pipelined lookahead), so idle is bucketed
    // by the item's epoch rather than accumulated in a single window.
    let n_epochs = if epoch_items == u64::MAX {
        0
    } else {
        items / epoch_items as usize + 1
    };
    let mut epoch_idle: Vec<Vec<SimTime>> = vec![vec![SimTime::ZERO; n]; n_epochs];
    // Decided DVFS state per epoch; two seed entries cover the control
    // lag (a decision at the end of epoch e takes effect in e + 2).
    let mut epoch_states: Vec<DvfsState> = if governor.is_some() {
        vec![platform.dvfs().clone(), platform.dvfs().clone()]
    } else {
        Vec::new()
    };
    let mut dvfs_schedule: Vec<(SimTime, DvfsState)> =
        vec![(SimTime::ZERO, platform.dvfs().clone())];
    let mut epoch_mark = SimTime::ZERO;
    let mut finish = SimTime::ZERO;

    // Ready events keyed by earliest-start estimate (max of dependency
    // completion times), tie-broken by (item, group, kind) so the pop
    // order is total and deterministic.
    let mut heap: BinaryHeap<Reverse<(SimTime, usize, usize, u8)>> = BinaryHeap::new();
    heap.push(Reverse((SimTime::ZERO, 0, 0, EV_COMPUTE)));

    let apply_epoch_state = |platform: &mut SccPlatform, epoch_states: &[DvfsState], k: usize| {
        if epoch_states.is_empty() {
            return;
        }
        let e = k / epoch_items as usize;
        // Chains deeper than epoch + lag can outrun the decided prefix;
        // clamping to the newest decision keeps the run legal (and the
        // convergence suite pins the exact-parity regime).
        let state = epoch_states.get(e).unwrap_or_else(|| {
            epoch_states.last().expect("seeded with two entries")
        });
        if platform.dvfs() != state {
            let state = state.clone();
            platform.apply_dvfs(&state);
        }
    };

    let mut processed = 0usize;
    while let Some(Reverse((_, k, g, kind))) = heap.pop() {
        processed += 1;
        let i = idx(g, k);
        let core = cores[g];
        apply_epoch_state(&mut platform, &epoch_states, k);
        if kind == EV_COMPUTE {
            let arrival = if g > 0 { send_done[idx(g - 1, k)] } else { SimTime::ZERO };
            let own_free = if k > 0 { send_done[idx(g, k - 1)] } else { SimTime::ZERO };
            let wait = if g > 0 {
                arrival.saturating_sub(own_free)
            } else {
                SimTime::ZERO
            };
            idle[g].push(wait);
            if n_epochs > 0 {
                epoch_idle[k / epoch_items as usize][g] += wait;
            }
            let range = &groups[g];
            let start = arrival.max(own_free);
            let mut t =
                platform.fetch_from_partition(core, start, chain.in_bytes(range.start, k as u64));
            let mut out = 0u64;
            for j in range.clone() {
                let w = chain.work(j, k as u64);
                t = platform.compute(core, t, w.cycles as u64);
                if w.read_bytes > 0 {
                    t = platform.mem_stream(core, t, MemOp::Read, w.read_bytes);
                }
                if w.write_bytes > 0 {
                    t = platform.mem_stream(core, t, MemOp::Write, w.write_bytes);
                }
                out = w.out_bytes;
            }
            platform.record_busy(core, start, t);
            comp_start[i] = start;
            comp_done[i] = t;
            out_bytes[i] = out;
            // Enable this node's send half.
            let si = 2 * i + EV_SEND as usize;
            indeg[si] -= 1;
            if indeg[si] == 0 {
                let rendezvous = if g + 1 < n && k > 0 {
                    send_done[idx(g + 1, k - 1)]
                } else {
                    SimTime::ZERO
                };
                heap.push(Reverse((t.max(rendezvous), k, g, EV_SEND)));
            }
        } else {
            let t = comp_done[i];
            let r = if g + 1 < n {
                let rendezvous = if k > 0 { send_done[idx(g + 1, k - 1)] } else { SimTime::ZERO };
                let send_start = t.max(rendezvous);
                let r = platform.send_to_partition(core, cores[g + 1], send_start, out_bytes[i]);
                platform.record_busy(core, send_start, r);
                r
            } else {
                let r = platform.chip_to_host(core, t, out_bytes[i]);
                platform.record_busy(core, t, r);
                r
            };
            busy[g] += r - comp_start[i];
            send_done[i] = r;

            if g + 1 == n {
                finish = finish.max(r);
                // Epoch close: the last group's send of item (e+1)E - 1
                // transitively depends on every node of epoch e, so the
                // idle buckets are complete here.
                if n_epochs > 0 && (k as u64 + 1) % epoch_items == 0 {
                    let gov = governor.as_mut().expect("epochs imply a governor");
                    let e = k / epoch_items as usize;
                    let dur = (r.saturating_sub(epoch_mark)).as_secs_f64();
                    let stations: Vec<StationSample> = (0..n)
                        .map(|g| {
                            let frac = if dur > 0.0 {
                                epoch_idle[e][g].as_secs_f64() / dur
                            } else {
                                0.0
                            };
                            StationSample::new(cores[g], frac)
                        })
                        .collect();
                    gov.observe_epoch(&stations);
                    epoch_states.push(gov.state().clone());
                    epoch_mark = r;
                }
                // Piecewise-energy boundary: record the state the next
                // item runs under, stamped at this item's delivery (the
                // same boundary instant the frame-major flavor uses).
                if !epoch_states.is_empty() && k + 1 < items {
                    let e_next = (k + 1) / epoch_items as usize;
                    let next = epoch_states
                        .get(e_next)
                        .unwrap_or_else(|| epoch_states.last().expect("seeded"));
                    let last = &dvfs_schedule.last().expect("seeded").1;
                    if next != last {
                        dvfs_schedule.push((r, next.clone()));
                    }
                }
            }

            // Enable dependents: own next compute, downstream compute,
            // upstream rendezvous.
            let mut enable = |g2: usize, k2: usize, kind2: u8, heap: &mut BinaryHeap<_>| {
                let j = 2 * idx(g2, k2) + kind2 as usize;
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    let est = if kind2 == EV_COMPUTE {
                        let a = if g2 > 0 { send_done[idx(g2 - 1, k2)] } else { SimTime::ZERO };
                        let f = if k2 > 0 { send_done[idx(g2, k2 - 1)] } else { SimTime::ZERO };
                        a.max(f)
                    } else {
                        let rv = if g2 + 1 < n && k2 > 0 {
                            send_done[idx(g2 + 1, k2 - 1)]
                        } else {
                            SimTime::ZERO
                        };
                        comp_done[idx(g2, k2)].max(rv)
                    };
                    heap.push(Reverse((est, k2, g2, kind2)));
                }
            };
            if k + 1 < items {
                enable(g, k + 1, EV_COMPUTE, &mut heap);
            }
            if g + 1 < n {
                enable(g + 1, k, EV_COMPUTE, &mut heap);
            }
            if g > 0 && k + 1 < items {
                enable(g - 1, k + 1, EV_SEND, &mut heap);
            }
        }
    }
    assert_eq!(processed, 2 * n * items, "DES drained every event");

    finish_workload_report(
        cfg,
        &chain,
        &groups,
        &cores,
        &platform,
        &tel,
        &busy,
        &idle,
        finish,
        governor.as_ref(),
        &dvfs_schedule,
    )
}

/// Shared tail of both workload executors: energy accounting (piecewise
/// when the governor moved a frequency), telemetry rollups, the report,
/// and — behind `cfg.verify` — the invariant checker.
#[allow(clippy::too_many_arguments)]
fn finish_workload_report(
    cfg: &RunConfig,
    chain: &ResolvedChain,
    groups: &[Range<usize>],
    cores: &[CoreId],
    platform: &SccPlatform,
    tel: &TelemetrySink,
    busy: &[SimTime],
    idle: &[Vec<SimTime>],
    finish: SimTime,
    governor: Option<&Governor>,
    dvfs_schedule: &[(SimTime, DvfsState)],
) -> GenericReport {
    let total = finish.as_secs_f64();
    let (energy, idle_floor) = if dvfs_schedule.len() > 1 {
        (
            platform.energy_joules_piecewise(dvfs_schedule, finish),
            dvfs_schedule
                .iter()
                .map(|(_, s)| platform.idle_power_for(s))
                .fold(f64::INFINITY, f64::min),
        )
    } else {
        (
            platform.energy_joules(finish),
            platform.idle_power_for(platform.dvfs()),
        )
    };
    let group_names: Vec<String> = groups
        .iter()
        .map(|r| chain.names[r.clone()].join("+"))
        .collect();
    let stages: Vec<GenericStageReport> = group_names
        .iter()
        .enumerate()
        .map(|(g, name)| GenericStageReport {
            name: name.clone(),
            core_id: cores[g].raw(),
            busy_secs: busy[g].as_secs_f64(),
            idle_ms: Quartiles::from_times(&idle[g]),
            utilisation: busy[g].as_secs_f64() / total.max(1e-12),
        })
        .collect();

    if tel.is_enabled() {
        for (g, name) in group_names.iter().enumerate() {
            let labels = [("pipeline", "-"), ("stage", name.as_str())];
            if let Some(h) = tel.histogram(names::STAGE_IDLE_MS, &labels, IDLE_MS_BUCKETS) {
                for t in &idle[g] {
                    h.observe(t.as_secs_f64() * 1e3);
                }
            }
            tel.gauge(names::STAGE_BUSY_SECONDS, &labels, busy[g].as_secs_f64());
            tel.count(names::STAGE_FRAMES_TOTAL, &labels, chain.items);
        }
        tel.count(names::FRAMES_TOTAL, &[], chain.items);
        tel.gauge(names::WALKTHROUGH_SECONDS, &[], total);
        tel.gauge(names::ENERGY_JOULES, &[], energy);
        let stats = platform.stats();
        tel.count(names::NOC_MESSAGES_TOTAL, &[], stats.noc_messages);
        tel.count(names::NOC_BYTES_TOTAL, &[], stats.noc_bytes);
        if let Some(gov) = governor {
            tel.count(names::DVFS_EPOCHS_TOTAL, &[], gov.epochs() as u64);
            tel.count(names::DVFS_RAISES_TOTAL, &[], gov.raises() as u64);
            tel.count(names::DVFS_THROTTLES_TOTAL, &[], gov.throttles() as u64);
            tel.count(names::DVFS_CAP_BLOCKS_TOTAL, &[], gov.cap_blocks() as u64);
            let last = &dvfs_schedule.last().expect("seeded").1;
            for tile in scc_sim::TileId::all() {
                let freq = last.tile_freq(tile);
                if freq != scc_sim::FreqMHz::F533 {
                    let label = tile.raw().to_string();
                    tel.gauge(
                        names::DVFS_TILE_FREQ_MHZ,
                        &[("tile", &label)],
                        freq.mhz() as f64,
                    );
                }
            }
        }
    }

    let report = GenericReport {
        total_secs: total,
        items: chain.items,
        stages,
        mean_power: energy / total.max(1e-12),
        energy_joules: energy,
        output_digest: chain.output_digest,
        scc_idle_power: idle_floor,
        dvfs_decisions: governor.map(|g| g.decisions().to_vec()).unwrap_or_default(),
        telemetry: tel.snapshot(),
    };
    if cfg.verify {
        let mut violations = crate::invariant::check_generic_report(&report);
        if let Err(e) = platform.audit_noc() {
            violations.push(crate::invariant::Violation::new("noc-conservation", e));
        }
        crate::invariant::enforce(cfg, &violations);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sim::SccConfig;

    /// A stage doing `mcycles` million cycles per item, passing payload
    /// through unchanged.
    fn fixed(label: &str, mcycles: f64, bytes: u64) -> Box<dyn MacroStage> {
        Box::new(FnStage {
            label: label.to_string(),
            f: move |_, _| StageWork {
                cycles: mcycles * 1e6,
                read_bytes: 0,
                write_bytes: 0,
                out_bytes: bytes,
            },
        })
    }

    fn run(stages: &mut [Box<dyn MacroStage>], items: u64) -> GenericReport {
        run_generic_chain(
            SccPlatform::new(SccConfig::default()),
            stages,
            Arrangement::Ordered,
            items,
            64 * 1024,
        )
    }

    #[test]
    fn throughput_is_set_by_the_bottleneck() {
        // Stages of 10/50/10 Mcycles at 533 MHz: bottleneck ≈ 93.8 ms.
        let mut stages = vec![
            fixed("light-a", 10.0, 64 * 1024),
            fixed("heavy", 50.0, 64 * 1024),
            fixed("light-b", 10.0, 64 * 1024),
        ];
        let r = run(&mut stages, 100);
        let per_item = r.total_secs / 100.0;
        let bottleneck = 50.0e6 / 533.0e6;
        assert!(
            per_item > bottleneck * 0.95 && per_item < bottleneck * 1.35,
            "cadence {per_item:.4}s vs bottleneck {bottleneck:.4}s"
        );
        // The heavy stage is the busy one. The *downstream* light stage
        // mostly waits in recv; the upstream one blocks inside its send
        // (RCCE senders spin until the receiver drains), so its busy time
        // is high even though it computes little — the same asymmetry the
        // paper's idle-time plot shows.
        assert!(r.stage("heavy").unwrap().utilisation > 0.75);
        assert!(r.stage("light-b").unwrap().utilisation < 0.5);
        let heavy_idle = r.stage("heavy").unwrap().idle_ms.unwrap().median;
        let light_idle = r.stage("light-b").unwrap().idle_ms.unwrap().median;
        assert!(
            light_idle > heavy_idle,
            "light stage should wait more ({light_idle:.1} vs {heavy_idle:.1} ms)"
        );
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let mk = || -> Vec<Box<dyn MacroStage>> {
            (0..6)
                .map(|i| fixed(&format!("s{i}"), 20.0, 32 * 1024))
                .collect()
        };
        let mut chain = mk();
        let pipelined = run(&mut chain, 50).total_secs;
        // Serial: one item through all 6 stages before the next starts =
        // 6 × 20 Mcycles per item.
        let serial = 50.0 * 6.0 * 20.0e6 / 533.0e6;
        assert!(
            pipelined < serial * 0.35,
            "pipelined {pipelined:.2}s vs serial {serial:.2}s"
        );
    }

    #[test]
    fn arrangement_does_not_matter_here_either() {
        // The paper's finding generalises: handovers go through DRAM, so
        // physical placement is irrelevant for a generic chain too.
        let mut results = Vec::new();
        for arr in Arrangement::all() {
            let mut stages: Vec<Box<dyn MacroStage>> = (0..8)
                .map(|i| fixed(&format!("s{i}"), 15.0, 128 * 1024))
                .collect();
            let r = run_generic_chain(
                SccPlatform::new(SccConfig::default()),
                &mut stages,
                arr,
                40,
                128 * 1024,
            );
            results.push(r.total_secs);
        }
        let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = results.iter().cloned().fold(0.0, f64::max);
        assert!(
            (max - min) / min < 0.06,
            "arrangement spread too large: {results:?}"
        );
    }

    #[test]
    fn payload_size_flows_through_the_chain() {
        // A compressor stage shrinks the payload; downstream fetches get
        // cheaper, so a shrinking chain beats an identity chain.
        let mut shrink: Vec<Box<dyn MacroStage>> = vec![
            fixed("produce", 5.0, 512 * 1024),
            Box::new(FnStage {
                label: "compress".into(),
                f: |_, inb| StageWork {
                    cycles: 8.0e6,
                    read_bytes: 0,
                    write_bytes: 0,
                    out_bytes: inb / 8,
                },
            }),
            Box::new(FnStage {
                label: "sink".into(),
                f: |_, inb| StageWork {
                    cycles: 2.0e6,
                    read_bytes: 0,
                    write_bytes: 0,
                    out_bytes: inb,
                },
            }),
        ];
        let mut identity: Vec<Box<dyn MacroStage>> = vec![
            fixed("produce", 5.0, 512 * 1024),
            fixed("compress", 8.0, 512 * 1024),
            fixed("sink", 2.0, 512 * 1024),
        ];
        let a = run(&mut shrink, 60).total_secs;
        let b = run(&mut identity, 60).total_secs;
        assert!(
            a < b,
            "shrinking payload ({a:.2}s) must beat identity ({b:.2}s)"
        );
    }

    #[test]
    fn reports_are_complete_and_positive() {
        let mut stages = vec![fixed("only", 30.0, 1024)];
        let r = run(&mut stages, 10);
        assert_eq!(r.items, 10);
        assert_eq!(r.stages.len(), 1);
        assert!(r.throughput() > 0.0);
        assert!(r.mean_power > 20.0, "at least idle power");
        assert!(r.energy_joules > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty pipeline")]
    fn rejects_empty_chain() {
        run(&mut [], 1);
    }

    // --- the spec-driven workload plane ------------------------------

    use crate::spec::{GenericChainSpec, GenericStageSpec, GovernorTuning, WavefrontSpec};

    fn chain_cfg() -> RunConfig {
        RunConfig::builder()
            .workload(Workload::Generic(GenericChainSpec {
                stages: vec![
                    GenericStageSpec::compute("parse", 12.0),
                    GenericStageSpec {
                        read_factor: 1.0,
                        out_factor: 1.0 / 3.0,
                        ..GenericStageSpec::compute("compress", 90.0)
                    },
                    GenericStageSpec::compute("encrypt", 25.0),
                ],
                items: 48,
                source_bytes: 64 * 1024,
            }))
            .build()
            .expect("valid chain config")
    }

    fn wavefront_cfg(governed: bool) -> RunConfig {
        let mut b = RunConfig::builder()
            .seed(11)
            .workload(Workload::Wavefront(WavefrontSpec::default()));
        if governed {
            b = b.power_governed(GovernorTuning::default());
        }
        b.build().expect("valid wavefront config")
    }

    #[test]
    fn resolve_threads_payload_and_digests_the_flow() {
        let chain = ResolvedChain::resolve(&chain_cfg());
        assert_eq!(chain.names, ["parse", "compress", "encrypt"]);
        assert_eq!(chain.items, 48);
        // Payload threads: 64K into parse, 64K into compress, 64K/3 out.
        assert_eq!(chain.in_bytes(1, 0), 64 * 1024);
        assert_eq!(chain.work(1, 7).out_bytes, 64 * 1024 / 3);
        assert_eq!(chain.in_bytes(2, 0), 64 * 1024 / 3);
        let again = ResolvedChain::resolve(&chain_cfg());
        assert_eq!(chain.output_digest, again.output_digest);
        assert_ne!(chain.output_digest, 0);
    }

    #[test]
    fn wavefront_resolve_is_item_varying_and_seed_keyed() {
        let a = ResolvedChain::resolve(&wavefront_cfg(false));
        assert_eq!(a.names, WAVEFRONT_STAGES);
        assert!(a.items >= 16, "only {} waves", a.items);
        // Per-item work moves with the frontier — not a uniform table.
        let cycles: Vec<u64> = (0..a.items).map(|k| a.work(1, k).cycles as u64).collect();
        assert!(cycles.iter().any(|&c| c != cycles[0]));
        let mut other = wavefront_cfg(false);
        other.seed = 12;
        let b = ResolvedChain::resolve(&other);
        assert_ne!(a.output_digest, b.output_digest);
    }

    #[test]
    fn plan_groups_merges_only_under_the_bottleneck() {
        // One heavy stage and three light ones: the light neighbors can
        // share a core without slowing the cadence the heavy stage sets.
        let cfg = RunConfig::builder()
            .workload(Workload::Generic(GenericChainSpec {
                stages: vec![
                    GenericStageSpec::compute("parse", 10.0),
                    GenericStageSpec::compute("compress", 90.0),
                    GenericStageSpec::compute("encrypt", 15.0),
                    GenericStageSpec::compute("checksum", 4.0),
                ],
                items: 16,
                source_bytes: 64 * 1024,
            }))
            .build()
            .expect("valid config");
        let chain = ResolvedChain::resolve(&cfg);
        assert_eq!(plan_groups(&chain, false), vec![0..1, 1..2, 2..3, 3..4]);
        let merged = plan_groups(&chain, true);
        // encrypt + checksum merge under the compress bottleneck; every
        // stage still appears exactly once, contiguously.
        assert!(merged.len() < 4, "nothing merged: {merged:?}");
        assert_eq!(merged.first().unwrap().start, 0);
        assert_eq!(merged.last().unwrap().end, 4);
        for pair in merged.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        let bottleneck = (0..4).map(|j| chain.stage_cost(j)).fold(0.0, f64::max);
        for g in &merged {
            let cost: f64 = g.clone().map(|j| chain.stage_cost(j)).sum();
            assert!(cost <= bottleneck * (1.0 + 1e-9));
        }
    }

    #[test]
    fn island_major_placement_spreads_groups_across_islands() {
        let cores: Vec<CoreId> = (0..12).map(island_major_core).collect();
        let mut seen = std::collections::HashSet::new();
        for c in &cores {
            assert!(seen.insert(c.raw()), "core {} reused", c.raw());
        }
        // The first six groups each own a distinct voltage island.
        let islands: std::collections::HashSet<u8> = cores[..6]
            .iter()
            .map(|c| IslandId::of_tile(c.tile()).index() as u8)
            .collect();
        assert_eq!(islands.len(), 6);
    }

    #[test]
    fn workload_backends_agree_on_output_and_disagree_only_in_noise() {
        for cfg in [chain_cfg(), wavefront_cfg(false)] {
            let sim = run_workload_sim(&cfg);
            let des = run_workload_des(&cfg);
            assert_eq!(sim.output_digest, des.output_digest);
            assert_eq!(sim.items, des.items);
            assert!(sim.dvfs_decisions.is_empty());
            let diff = (sim.total_secs - des.total_secs).abs() / sim.total_secs;
            assert!(
                diff < 0.03,
                "{}: sim {} vs des {} ({:.2}%)",
                cfg.workload.name(),
                sim.total_secs,
                des.total_secs,
                diff * 100.0
            );
        }
    }

    #[test]
    fn governed_wavefront_matches_across_backends() {
        let cfg = wavefront_cfg(true);
        let sim = run_workload_sim(&cfg);
        let des = run_workload_des(&cfg);
        // The governor must act, identically under both schedules, and
        // the workload output must not notice the frequency moves.
        assert!(!sim.dvfs_decisions.is_empty(), "governor never acted");
        assert_eq!(sim.dvfs_decisions, des.dvfs_decisions);
        assert_eq!(sim.output_digest, des.output_digest);
        let stat = run_workload_sim(&wavefront_cfg(false));
        assert_eq!(sim.output_digest, stat.output_digest);
        assert!(crate::invariant::check_generic_report(&sim).is_empty());
        assert!(crate::invariant::check_generic_report(&des).is_empty());
    }

    #[test]
    fn static_power_plan_changes_the_workload_timeline() {
        let base = run_workload_sim(&chain_cfg());
        let mut throttled = chain_cfg();
        // Slow the bottleneck group's core (group 1 -> island 1).
        let core = island_major_core(1);
        throttled.power =
            PowerConfig::Static(vec![(core, scc_sim::FreqMHz::F400)]);
        let slow = run_workload_sim(&throttled);
        assert!(slow.total_secs > base.total_secs * 1.05);
        assert_eq!(slow.output_digest, base.output_digest);
    }
}
