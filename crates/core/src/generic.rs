//! Generic macro pipelines — the paper's closing claim, as an API.
//!
//! "The ideas presented in our work should easily translate to other
//! problem domains where parallel macro pipelines are used" (§I). This
//! module lets a user define *their own* stage chain — any workload with
//! per-item compute cycles, auxiliary memory traffic and an output
//! payload — and run it on the simulated SCC with exactly the mechanics
//! of the rendering case study: RCCE-style rendezvous handovers through
//! DRAM partitions, contended controllers, per-stage idle accounting.
//!
//! See `examples/generic_pipeline.rs` for a compress→encrypt→checksum
//! stream-processing pipeline reproducing the paper's qualitative story
//! on a non-graphics workload.

use crate::spec::Arrangement;
use scc_sim::platform::MemOp;
use scc_sim::stats::Quartiles;
use scc_sim::{CoreId, SccPlatform, SimTime};
use serde::Serialize;

/// What one stage does to one work item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageWork {
    /// Compute cycles at the core's current frequency.
    pub cycles: f64,
    /// Auxiliary bytes streamed from DRAM (beyond the input fetch).
    pub read_bytes: u64,
    /// Auxiliary bytes streamed to DRAM (beyond the output send).
    pub write_bytes: u64,
    /// Payload handed to the next stage.
    pub out_bytes: u64,
}

/// A user-defined macro pipeline stage.
pub trait MacroStage: Send {
    /// Stage name for reports.
    fn name(&self) -> String;

    /// Workload of item `item` given `in_bytes` of input payload.
    fn work(&mut self, item: u64, in_bytes: u64) -> StageWork;
}

/// A closure-backed stage, for quick definitions.
pub struct FnStage<F: FnMut(u64, u64) -> StageWork + Send> {
    pub label: String,
    pub f: F,
}

impl<F: FnMut(u64, u64) -> StageWork + Send> MacroStage for FnStage<F> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn work(&mut self, item: u64, in_bytes: u64) -> StageWork {
        (self.f)(item, in_bytes)
    }
}

/// Per-stage outcome of a generic run.
#[derive(Debug, Clone, Serialize)]
pub struct GenericStageReport {
    pub name: String,
    pub core_id: u8,
    pub busy_secs: f64,
    pub idle_ms: Option<Quartiles>,
    pub utilisation: f64,
}

/// Result of a generic pipeline run.
#[derive(Debug, Clone, Serialize)]
pub struct GenericReport {
    pub total_secs: f64,
    pub items: u64,
    pub stages: Vec<GenericStageReport>,
    pub mean_power: f64,
    pub energy_joules: f64,
}

impl GenericReport {
    /// Items per virtual second at steady state.
    pub fn throughput(&self) -> f64 {
        self.items as f64 / self.total_secs
    }

    pub fn stage(&self, name: &str) -> Option<&GenericStageReport> {
        self.stages.iter().find(|s| s.name == name)
    }
}

/// Run a linear chain of stages over `items` work items of
/// `source_bytes` initial payload each, on consecutive SCC cores chosen
/// by `arrangement`, using the same rendezvous semantics as the paper's
/// rendering pipeline. The last stage's output is delivered off-chip.
pub fn run_generic_chain(
    mut platform: SccPlatform,
    stages: &mut [Box<dyn MacroStage>],
    arrangement: Arrangement,
    items: u64,
    source_bytes: u64,
) -> GenericReport {
    assert!(!stages.is_empty(), "empty pipeline");
    assert!(
        stages.len() <= 48,
        "more stages ({}) than SCC cores",
        stages.len()
    );
    assert!(items >= 1);

    // Stage -> core mapping: sequential ids (unordered) or one core per
    // tile along rows (ordered / flipped).
    let cores: Vec<CoreId> = match arrangement {
        Arrangement::Unordered => (0..stages.len() as u8).map(CoreId::new).collect(),
        Arrangement::Ordered | Arrangement::Flipped => {
            let mut v = Vec::with_capacity(stages.len());
            for (k, _) in stages.iter().enumerate() {
                let row = (k / 6) as u8;
                let col_raw = (k % 6) as u8;
                let col = if arrangement == Arrangement::Flipped && row % 2 == 1 {
                    5 - col_raw
                } else {
                    col_raw
                };
                let slot = row / 4;
                v.push(CoreId::new(
                    scc_sim::TileId::from_xy(col, row % 4).raw() * 2 + slot,
                ));
            }
            v
        }
    };
    platform.set_spinning(cores.clone());

    let n = stages.len();
    let mut free = vec![SimTime::ZERO; n];
    let mut busy = vec![SimTime::ZERO; n];
    let mut idle: Vec<Vec<SimTime>> = vec![Vec::new(); n];
    let mut finish = SimTime::ZERO;

    for item in 0..items {
        // Arrival of the item's payload at stage 0: items appear at the
        // source as fast as stage 0 can take them.
        let mut avail = free[0];
        let mut in_bytes = source_bytes;
        for (j, stage) in stages.iter_mut().enumerate() {
            let core = cores[j];
            idle[j].push(avail.saturating_sub(free[j]));
            let start = avail.max(free[j]);
            // Fetch input from this core's partition (stage 0 reads its
            // source data from its own partition too).
            let mut t = platform.fetch_from_partition(core, start, in_bytes);
            let w = stage.work(item, in_bytes);
            t = platform.compute(core, t, w.cycles as u64);
            t = platform.mem_stream(core, t, MemOp::Read, w.read_bytes);
            t = platform.mem_stream(core, t, MemOp::Write, w.write_bytes);
            platform.record_busy(core, start, t);
            // Hand over (rendezvous with the next stage's previous item).
            let resident = if j + 1 < n {
                let send_start = t.max(free[j + 1]);
                let r = platform.send_to_partition(core, cores[j + 1], send_start, w.out_bytes);
                platform.record_busy(core, send_start, r);
                r
            } else {
                let r = platform.chip_to_host(core, t, w.out_bytes);
                platform.record_busy(core, t, r);
                r
            };
            busy[j] += resident - start;
            free[j] = resident;
            avail = resident;
            in_bytes = w.out_bytes;
        }
        finish = avail;
    }

    let energy = platform.energy_joules(finish);
    GenericReport {
        total_secs: finish.as_secs_f64(),
        items,
        stages: stages
            .iter()
            .enumerate()
            .map(|(j, s)| GenericStageReport {
                name: s.name(),
                core_id: cores[j].raw(),
                busy_secs: busy[j].as_secs_f64(),
                idle_ms: Quartiles::from_times(&idle[j]),
                utilisation: busy[j].as_secs_f64() / finish.as_secs_f64().max(1e-12),
            })
            .collect(),
        mean_power: energy / finish.as_secs_f64().max(1e-12),
        energy_joules: energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sim::SccConfig;

    /// A stage doing `mcycles` million cycles per item, passing payload
    /// through unchanged.
    fn fixed(label: &str, mcycles: f64, bytes: u64) -> Box<dyn MacroStage> {
        Box::new(FnStage {
            label: label.to_string(),
            f: move |_, _| StageWork {
                cycles: mcycles * 1e6,
                read_bytes: 0,
                write_bytes: 0,
                out_bytes: bytes,
            },
        })
    }

    fn run(stages: &mut [Box<dyn MacroStage>], items: u64) -> GenericReport {
        run_generic_chain(
            SccPlatform::new(SccConfig::default()),
            stages,
            Arrangement::Ordered,
            items,
            64 * 1024,
        )
    }

    #[test]
    fn throughput_is_set_by_the_bottleneck() {
        // Stages of 10/50/10 Mcycles at 533 MHz: bottleneck ≈ 93.8 ms.
        let mut stages = vec![
            fixed("light-a", 10.0, 64 * 1024),
            fixed("heavy", 50.0, 64 * 1024),
            fixed("light-b", 10.0, 64 * 1024),
        ];
        let r = run(&mut stages, 100);
        let per_item = r.total_secs / 100.0;
        let bottleneck = 50.0e6 / 533.0e6;
        assert!(
            per_item > bottleneck * 0.95 && per_item < bottleneck * 1.35,
            "cadence {per_item:.4}s vs bottleneck {bottleneck:.4}s"
        );
        // The heavy stage is the busy one. The *downstream* light stage
        // mostly waits in recv; the upstream one blocks inside its send
        // (RCCE senders spin until the receiver drains), so its busy time
        // is high even though it computes little — the same asymmetry the
        // paper's idle-time plot shows.
        assert!(r.stage("heavy").unwrap().utilisation > 0.75);
        assert!(r.stage("light-b").unwrap().utilisation < 0.5);
        let heavy_idle = r.stage("heavy").unwrap().idle_ms.unwrap().median;
        let light_idle = r.stage("light-b").unwrap().idle_ms.unwrap().median;
        assert!(
            light_idle > heavy_idle,
            "light stage should wait more ({light_idle:.1} vs {heavy_idle:.1} ms)"
        );
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let mk = || -> Vec<Box<dyn MacroStage>> {
            (0..6)
                .map(|i| fixed(&format!("s{i}"), 20.0, 32 * 1024))
                .collect()
        };
        let mut chain = mk();
        let pipelined = run(&mut chain, 50).total_secs;
        // Serial: one item through all 6 stages before the next starts =
        // 6 × 20 Mcycles per item.
        let serial = 50.0 * 6.0 * 20.0e6 / 533.0e6;
        assert!(
            pipelined < serial * 0.35,
            "pipelined {pipelined:.2}s vs serial {serial:.2}s"
        );
    }

    #[test]
    fn arrangement_does_not_matter_here_either() {
        // The paper's finding generalises: handovers go through DRAM, so
        // physical placement is irrelevant for a generic chain too.
        let mut results = Vec::new();
        for arr in Arrangement::all() {
            let mut stages: Vec<Box<dyn MacroStage>> = (0..8)
                .map(|i| fixed(&format!("s{i}"), 15.0, 128 * 1024))
                .collect();
            let r = run_generic_chain(
                SccPlatform::new(SccConfig::default()),
                &mut stages,
                arr,
                40,
                128 * 1024,
            );
            results.push(r.total_secs);
        }
        let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = results.iter().cloned().fold(0.0, f64::max);
        assert!(
            (max - min) / min < 0.06,
            "arrangement spread too large: {results:?}"
        );
    }

    #[test]
    fn payload_size_flows_through_the_chain() {
        // A compressor stage shrinks the payload; downstream fetches get
        // cheaper, so a shrinking chain beats an identity chain.
        let mut shrink: Vec<Box<dyn MacroStage>> = vec![
            fixed("produce", 5.0, 512 * 1024),
            Box::new(FnStage {
                label: "compress".into(),
                f: |_, inb| StageWork {
                    cycles: 8.0e6,
                    read_bytes: 0,
                    write_bytes: 0,
                    out_bytes: inb / 8,
                },
            }),
            Box::new(FnStage {
                label: "sink".into(),
                f: |_, inb| StageWork {
                    cycles: 2.0e6,
                    read_bytes: 0,
                    write_bytes: 0,
                    out_bytes: inb,
                },
            }),
        ];
        let mut identity: Vec<Box<dyn MacroStage>> = vec![
            fixed("produce", 5.0, 512 * 1024),
            fixed("compress", 8.0, 512 * 1024),
            fixed("sink", 2.0, 512 * 1024),
        ];
        let a = run(&mut shrink, 60).total_secs;
        let b = run(&mut identity, 60).total_secs;
        assert!(
            a < b,
            "shrinking payload ({a:.2}s) must beat identity ({b:.2}s)"
        );
    }

    #[test]
    fn reports_are_complete_and_positive() {
        let mut stages = vec![fixed("only", 30.0, 1024)];
        let r = run(&mut stages, 10);
        assert_eq!(r.items, 10);
        assert_eq!(r.stages.len(), 1);
        assert!(r.throughput() > 0.0);
        assert!(r.mean_power > 20.0, "at least idle power");
        assert!(r.energy_joules > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty pipeline")]
    fn rejects_empty_chain() {
        run(&mut [], 1);
    }
}
