//! The scheduler's second half: turn a weighted stage chain into a
//! core placement (PS-DSWP style).
//!
//! Two moves, both driven by the per-stage weights of
//! [`crate::stage_graph`]:
//!
//! * **merge** — adjacent cheap stages share one core, as long as the
//!   merged service time stays at or below the bottleneck's (merging
//!   never moves the pipeline's cadence, which the bottleneck sets);
//! * **replicate** — the bottleneck stage, when it is a stateless
//!   singleton, is cloned DOALL-style across spare cores; frame `f`
//!   goes to replica `f mod r`, so downstream sees frames in order and
//!   the film stays bit-identical (the ordering guarantee DESIGN.md
//!   §14 spells out).
//!
//! The partitioner is a pure function of (stage chain, weights, lane
//! count, core budget) — same inputs, same [`StagePlan`], which the
//! property suite (`tests/partition_props.rs`) and the golden decision
//! tables rely on.

use crate::cost::CostModel;
use crate::placement::{Placement, ReplicaSlot};
use crate::spec::{RendererMode, RunConfig, StageKind};
use crate::stage_graph::{StageClass, StageGraph, StageNode, StageWeights};
use scc_sim::topology::{CoreId, TileId, CORES_PER_TILE, MESH_H, MESH_W, NUM_CORES};
use serde::Serialize;

/// Spare cores the partitioner always leaves unclaimed so the
/// supervisor's migration path (PR 3) keeps working under auto
/// placement.
pub const SPARE_RESERVE: u32 = 2;

/// A contiguous run of chain stages sharing one core (per lane),
/// optionally replicated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StageGroup {
    /// First stage index of the run (into the interior chain).
    pub start: usize,
    /// Number of merged stages (≥ 1).
    pub len: usize,
    /// DOALL replication factor (≥ 1; > 1 only for stateless
    /// singletons).
    pub replicas: u32,
}

impl StageGroup {
    pub fn stages(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// The partitioner's output: an ordered partition of the stage chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StagePlan {
    pub groups: Vec<StageGroup>,
}

impl StagePlan {
    /// The identity plan for `n` stages: one singleton group per stage,
    /// no replication — exactly the paper's fixed placement.
    pub fn fixed(n: usize) -> StagePlan {
        StagePlan {
            groups: (0..n)
                .map(|j| StageGroup {
                    start: j,
                    len: 1,
                    replicas: 1,
                })
                .collect(),
        }
    }

    /// Is this the identity plan (no merges, no replication)?
    pub fn is_fixed(&self) -> bool {
        self.groups.iter().all(|g| g.len == 1 && g.replicas == 1)
    }

    /// Total stages covered.
    pub fn stage_count(&self) -> usize {
        self.groups.iter().map(|g| g.len).sum()
    }

    /// Index of the group containing stage `j`.
    pub fn group_of(&self, j: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.stages().contains(&j))
            .expect("stage outside plan")
    }

    /// Replication factor of the group containing stage `j`.
    pub fn replicas_of(&self, j: usize) -> u32 {
        self.groups[self.group_of(j)].replicas
    }

    /// Last stage index of the group containing stage `j`.
    pub fn last_of_group(&self, j: usize) -> usize {
        let g = &self.groups[self.group_of(j)];
        g.start + g.len - 1
    }

    /// Does stage `j` share its core with stage `j - 1`?
    pub fn merged_with_prev(&self, j: usize) -> bool {
        j > 0 && self.group_of(j) == self.group_of(j - 1)
    }

    /// Interior cores one lane needs: one per group plus the extra
    /// replicas.
    pub fn cores_per_lane(&self) -> u32 {
        self.groups.len() as u32 + self.groups.iter().map(|g| g.replicas - 1).sum::<u32>()
    }
}

/// How the partitioner prices a multi-stage group.
#[derive(Debug, Clone, Copy)]
pub enum GroupCosting<'a> {
    /// Plain sum of member weights — every pass pays its own memory
    /// traversal (the pre-fusion executor).
    Sum,
    /// Maximal pointwise runs inside a group execute as one fused
    /// traversal (the native runner's `FusedPass`): the run's followers
    /// are discounted via [`CostModel::fused_group_cycles`]. Stencil
    /// members (blur) still pay full price — they never fuse.
    Fused(&'a CostModel),
}

/// Effective weight of the contiguous stage slice `range` under
/// `costing`: plain sum, or the fused price where each maximal
/// pointwise run collapses onto a single traversal.
fn slice_weight(nodes: &[StageNode], range: std::ops::Range<usize>, costing: GroupCosting) -> f64 {
    match costing {
        GroupCosting::Sum => range.map(|j| nodes[j].weight).sum(),
        GroupCosting::Fused(cost) => {
            let mut total = 0.0;
            let mut run: Vec<f64> = Vec::new();
            for j in range {
                if nodes[j].class == StageClass::Pointwise {
                    run.push(nodes[j].weight);
                } else {
                    total += cost.fused_group_cycles(&run);
                    run.clear();
                    total += nodes[j].weight;
                }
            }
            total + cost.fused_group_cycles(&run)
        }
    }
}

/// Partition `nodes` (the interior stage chain of one lane) for `lanes`
/// identical lanes sharing `interior_budget` cores, keeping
/// [`SPARE_RESERVE`] cores free for the supervisor. Groups are priced
/// as plain weight sums; see [`partition_with`] for fusion-aware
/// costing.
///
/// Guarantees (enforced by `tests/partition_props.rs`):
/// * every stage lands in exactly one group, order preserved;
/// * multi-stage groups contain only mergeable (stateless) stages;
/// * `replicas > 1` only for stateless singleton groups;
/// * `lanes · cores_per_lane ≤ interior_budget`;
/// * deterministic for fixed inputs.
pub fn partition(
    nodes: &[StageNode],
    lanes: u32,
    interior_budget: u32,
) -> Result<StagePlan, String> {
    partition_with(nodes, lanes, interior_budget, GroupCosting::Sum)
}

/// [`partition`] with an explicit group-costing policy. Fused costing
/// changes *prices*, never *legality*: the merge rules (mergeable
/// classes only, cadence bound, budget fit) and the replication rules
/// are identical — so every `partition_props` guarantee holds for both
/// policies.
pub fn partition_with(
    nodes: &[StageNode],
    lanes: u32,
    interior_budget: u32,
    costing: GroupCosting,
) -> Result<StagePlan, String> {
    if nodes.is_empty() {
        return Err("cannot partition an empty stage chain".into());
    }
    if lanes == 0 {
        return Err("need at least one lane".into());
    }
    for n in nodes {
        if !n.weight.is_finite() || n.weight < 0.0 {
            return Err(format!("{} has illegal weight {}", n.kind.name(), n.weight));
        }
    }
    let bottleneck_w = nodes.iter().map(|n| n.weight).fold(0.0f64, f64::max);

    // Pass 1 — greedy adjacent merge: extend the open group while the
    // merged weight (fusion-discounted under fused costing) stays
    // within the bottleneck's service time (the cadence, so merging is
    // free) and both sides are mergeable.
    let mut groups: Vec<StageGroup> = Vec::new();
    let mut start = 0usize;
    for j in 1..nodes.len() {
        let open_mergeable = nodes[start..j].iter().all(|n| n.class.mergeable());
        let fits = slice_weight(nodes, start..j + 1, costing) <= bottleneck_w;
        if !(open_mergeable && nodes[j].class.mergeable() && fits) {
            groups.push(StageGroup {
                start,
                len: j - start,
                replicas: 1,
            });
            start = j;
        }
    }
    groups.push(StageGroup {
        start,
        len: nodes.len() - start,
        replicas: 1,
    });

    // Pass 2 — force-fit: if the budget cannot seat one core per group
    // per lane, keep merging the cheapest mergeable adjacent pair.
    let group_w = |g: &StageGroup| -> f64 { slice_weight(nodes, g.stages(), costing) };
    // The merged pair is one contiguous slice — priced as such, so a
    // fused run spanning the old group boundary gets its discount.
    let pair_w = |a: &StageGroup, b: &StageGroup| -> f64 {
        slice_weight(nodes, a.start..b.start + b.len, costing)
    };
    while lanes as u64 * groups.len() as u64 > interior_budget as u64 {
        let mergeable_pair = (0..groups.len().saturating_sub(1))
            .filter(|&i| {
                groups[i]
                    .stages()
                    .chain(groups[i + 1].stages())
                    .all(|j| nodes[j].class.mergeable())
            })
            .min_by(|&a, &b| {
                let wa = pair_w(&groups[a], &groups[a + 1]);
                let wb = pair_w(&groups[b], &groups[b + 1]);
                wa.partial_cmp(&wb).unwrap_or(std::cmp::Ordering::Equal)
            });
        match mergeable_pair {
            Some(i) => {
                let right = groups.remove(i + 1);
                groups[i].len += right.len;
            }
            None => {
                return Err(format!(
                    "{} lanes x {} stage groups exceed the {}-core budget",
                    lanes,
                    groups.len(),
                    interior_budget
                ))
            }
        }
    }

    // Pass 3 — replicate the bottleneck DOALL-style. Only a stateless
    // singleton qualifies: merged groups pipeline internally, stateful
    // stages are sequential by definition.
    let bottleneck_group = (0..groups.len())
        .max_by(|&a, &b| {
            group_w(&groups[a])
                .partial_cmp(&group_w(&groups[b]))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty groups");
    let g = &groups[bottleneck_group];
    if g.len == 1 && nodes[g.start].class.replicable() {
        let heavy = group_w(g);
        let second = (0..groups.len())
            .filter(|&i| i != bottleneck_group)
            .map(|i| group_w(&groups[i]))
            .fold(0.0f64, f64::max);
        // Enough clones to pull the bottleneck's effective service time
        // at or below the next-heaviest group — more buys nothing.
        let r_target = if second > 0.0 {
            (heavy / second).ceil() as u32
        } else {
            u32::MAX
        };
        let seats = lanes as u64 * groups.len() as u64;
        let free = (interior_budget as u64)
            .saturating_sub(seats)
            .saturating_sub(SPARE_RESERVE as u64);
        let per_lane_extra = (free / lanes as u64) as u32;
        groups[bottleneck_group].replicas = r_target.max(1).min(1 + per_lane_extra);
    }

    Ok(StagePlan { groups })
}

/// Everything the scheduler decided for one run: the weighted graph,
/// the plan, and its realization on the mesh.
#[derive(Debug, Clone)]
pub struct AutoPlacement {
    pub graph: StageGraph,
    pub weights: StageWeights,
    pub plan: StagePlan,
    pub placement: Placement,
    /// Whether groups were priced with the fused-traversal discount
    /// ("fused") or as plain weight sums ("sum") — pinned in the
    /// decision table so the goldens distinguish the two schedules.
    pub costing: &'static str,
}

impl AutoPlacement {
    /// The diff-friendly decision table the golden suite pins: one line
    /// per stage with class, weight (exact bits and rounded), group,
    /// replication factor and assigned core(s), plus a plan summary.
    /// Byte-stable for fixed inputs.
    pub fn decision_table(&self) -> String {
        let interior = self.graph.interior();
        let mut out =
            String::from("stage    class      weight_bits      weight      group replicas cores\n");
        for (j, node) in interior.iter().enumerate() {
            let g = self.plan.group_of(j);
            let r = self.plan.groups[g].replicas;
            let mut cores: Vec<String> = vec![format!("{}", self.placement.pipelines[0][j])];
            for slot in &self.placement.replicas {
                if slot.pipeline == 0 && slot.stage == j {
                    cores.extend(slot.extras.iter().map(|c| format!("{c}")));
                }
            }
            out.push_str(&format!(
                "{:<8} {:<10} {:016x} {:<11.4e} {:<5} {:<8} {}\n",
                node.kind.name(),
                node.class.name(),
                node.weight.to_bits(),
                node.weight,
                g,
                r,
                cores.join("+"),
            ));
        }
        out.push_str(&format!(
            "plan groups={} cores_per_lane={} source={} costing={}\n",
            self.plan.groups.len(),
            self.plan.cores_per_lane(),
            self.weights.source.name(),
            self.costing,
        ));
        out
    }
}

/// Compute the scheduler placement for `cfg` (weights resolved via
/// [`StageWeights::for_config`]: explicit config weights, else the
/// static cost model).
///
/// # Panics
///
/// Panics when the configuration is invalid; validate first.
pub fn auto_place(cfg: &RunConfig) -> AutoPlacement {
    let weights = StageWeights::for_config(cfg);
    let graph = StageGraph::film(cfg, &weights);
    let interior = graph.interior();
    let p = cfg.pipelines;
    let endpoint_cores = match cfg.renderer {
        RendererMode::SingleRenderer => 2, // renderer + transfer
        RendererMode::PerPipelineRenderer => p + 1,
        RendererMode::McpcRenderer => 2, // connector + transfer
    };
    let interior_budget = NUM_CORES as u32 - endpoint_cores;
    // Price merged groups the way the native executor will run them:
    // fused pointwise runs cross memory once, so with fusion enabled a
    // merged pointwise group is cheaper than the sum of its passes.
    let cost = CostModel::default();
    let (costing, tag) = if cfg.tuning.fuse.enabled() {
        (GroupCosting::Fused(&cost), "fused")
    } else {
        (GroupCosting::Sum, "sum")
    };
    let plan =
        partition_with(&interior, p, interior_budget, costing).expect("validated config fits");
    let placement = realize(cfg, &plan);
    AutoPlacement {
        graph,
        weights,
        plan,
        placement,
        costing: tag,
    }
}

/// The placement a run should use: the scheduler's when
/// [`RunConfig::auto_place`] is set, else the fixed arrangement.
pub fn placement_for(cfg: &RunConfig) -> Placement {
    if cfg.auto_place {
        auto_place(cfg).placement
    } else {
        crate::placement::place(cfg.renderer, cfg.arrangement, cfg.pipelines)
    }
}

/// The stage plan a run should use (the native backend keys its thread
/// layout off this rather than off core ids).
pub fn plan_for(cfg: &RunConfig) -> StagePlan {
    if cfg.auto_place {
        auto_place(cfg).plan
    } else {
        StagePlan::fixed(StageKind::PIPELINE_FILTERS.len())
    }
}

/// Realize a plan on the mesh: lanes along rows (the ordered
/// arrangement's one-way flow), one core per group, replica cores
/// chosen nearest the primary; source/sink in the spare east column
/// like the fixed row placements.
fn realize(cfg: &RunConfig, plan: &StagePlan) -> Placement {
    let p = cfg.pipelines;
    let mut used = [false; NUM_CORES as usize];
    let core_at = |x: u8, y: u8, slot: u8| -> CoreId {
        CoreId::new(TileId::from_xy(x, y).raw() * CORES_PER_TILE + slot)
    };
    let claim = |used: &mut [bool; NUM_CORES as usize], c: CoreId| -> CoreId {
        assert!(!used[c.index()], "double booking {c}");
        used[c.index()] = true;
        c
    };

    let per_pipeline_render = cfg.renderer == RendererMode::PerPipelineRenderer;
    let row_len = plan.groups.len() as u8 + per_pipeline_render as u8;

    // Group primaries along rows (renderer first in the n-renderer
    // mode), wrapping into the spare east column beyond two row layers,
    // exactly like the fixed row placement.
    let mut renderers = Vec::new();
    let mut lane_group_cores: Vec<Vec<CoreId>> = Vec::new();
    for i in 0..p {
        let y = (i % MESH_H as u32) as u8;
        let slot = (i / MESH_H as u32) as u8;
        let mut cores = Vec::with_capacity(row_len as usize);
        for j in 0..row_len {
            let c = if slot < CORES_PER_TILE {
                core_at(j, y, slot)
            } else {
                core_at(MESH_W - 1, j % MESH_H, j / MESH_H)
            };
            cores.push(claim(&mut used, c));
        }
        if per_pipeline_render {
            renderers.push(cores.remove(0));
        }
        lane_group_cores.push(cores);
    }

    // Replica extras: nearest free core to the primary by (manhattan
    // tile distance, core id) — deterministic and NoC-local.
    let mut replicas: Vec<ReplicaSlot> = Vec::new();
    for (i, lane_cores) in lane_group_cores.iter().enumerate() {
        for g in &plan.groups {
            if g.replicas <= 1 {
                continue;
            }
            let primary = lane_cores[plan.group_of(g.start)];
            let mut extras = Vec::new();
            for _ in 1..g.replicas {
                let (px, py) = (primary.tile().x() as i32, primary.tile().y() as i32);
                let best = CoreId::all()
                    .filter(|c| !used[c.index()])
                    .min_by_key(|c| {
                        let d = (c.tile().x() as i32 - px).abs() + (c.tile().y() as i32 - py).abs();
                        (d, c.raw())
                    })
                    .expect("partition respects the core budget");
                extras.push(claim(&mut used, best));
            }
            replicas.push(ReplicaSlot {
                pipeline: i as u32,
                stage: g.start,
                extras,
            });
        }
    }

    // Source and sink land in the spare east column when free (the
    // fixed row placements' preference), else the first free core.
    let fallback = |used: &mut [bool; NUM_CORES as usize], prefer: &[CoreId]| -> CoreId {
        for c in prefer {
            if !used[c.index()] {
                used[c.index()] = true;
                return *c;
            }
        }
        for i in 0..NUM_CORES {
            let c = CoreId::new(i);
            if !used[c.index()] {
                used[c.index()] = true;
                return c;
            }
        }
        unreachable!("no free core despite budget check")
    };
    let east = MESH_W - 1;
    let prefer_src = [
        core_at(east, 0, 0),
        core_at(east, 0, 1),
        core_at(east, 1, 0),
        core_at(east, 1, 1),
    ];
    let prefer_sink = [
        core_at(east, MESH_H - 1, 0),
        core_at(east, MESH_H - 1, 1),
        core_at(east, MESH_H - 2, 0),
        core_at(east, MESH_H - 2, 1),
    ];
    let mut connector = None;
    match cfg.renderer {
        RendererMode::SingleRenderer => renderers.push(fallback(&mut used, &prefer_src)),
        RendererMode::McpcRenderer => connector = Some(fallback(&mut used, &prefer_src)),
        RendererMode::PerPipelineRenderer => {}
    }
    let transfer = fallback(&mut used, &prefer_sink);

    // Expand group cores to the per-stage array (merged stages repeat
    // their group's core).
    let pipelines = lane_group_cores
        .iter()
        .map(|cores| {
            let mut lane = [cores[0]; 5];
            for (j, slot) in lane.iter_mut().enumerate() {
                *slot = cores[plan.group_of(j)];
            }
            lane
        })
        .collect();

    let placement = Placement {
        renderers,
        connector,
        pipelines,
        replicas,
        transfer,
    };
    placement.assert_valid();
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage_graph::{StageClass, StageWeights};
    use crate::CostModel;

    fn film_cfg(p: u32) -> RunConfig {
        let mut cfg = RunConfig::builder()
            .pipelines(p)
            .size(100, 100)
            .frames(8)
            .build()
            .expect("valid config");
        cfg.auto_place = true;
        cfg
    }

    fn film_nodes(cfg: &RunConfig) -> Vec<StageNode> {
        let w = StageWeights::from_cost_model(cfg, &CostModel::default());
        StageGraph::film(cfg, &w).interior()
    }

    #[test]
    fn film_plan_merges_the_tail_and_replicates_blur() {
        let cfg = film_cfg(2);
        let plan = partition(&film_nodes(&cfg), 2, 46).expect("fits");
        // The calibrated model yields [sepia][blur][scratch+flicker+swap]
        // with blur (the bottleneck, >2x every other stage) replicated.
        assert_eq!(plan.groups.len(), 3);
        assert_eq!(plan.groups[0].stages().collect::<Vec<_>>(), vec![0]);
        assert_eq!(plan.groups[1].stages().collect::<Vec<_>>(), vec![1]);
        assert_eq!(plan.groups[2].stages().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(plan.groups[1].replicas > 1, "blur must be replicated");
        assert_eq!(plan.groups[0].replicas, 1);
        assert_eq!(plan.groups[2].replicas, 1);
    }

    #[test]
    fn partitioner_is_deterministic() {
        let cfg = film_cfg(3);
        let nodes = film_nodes(&cfg);
        assert_eq!(
            partition(&nodes, 3, 46).unwrap(),
            partition(&nodes, 3, 46).unwrap()
        );
    }

    #[test]
    fn tight_budget_forces_merges_never_oversubscription() {
        let cfg = film_cfg(2);
        let nodes = film_nodes(&cfg);
        for budget in 2..=10u32 {
            let plan = partition(&nodes, 2, budget).expect("two lanes fit two cores");
            assert!(2 * plan.cores_per_lane() <= budget, "budget {budget}");
            assert_eq!(plan.stage_count(), 5);
        }
        // One core per lane cannot seat two lanes of anything.
        assert!(partition(&nodes, 2, 1).is_err());
    }

    #[test]
    fn stateful_stages_stay_alone_and_unreplicated() {
        let mut nodes = film_nodes(&film_cfg(1));
        // Pretend blur carries cross-frame state.
        nodes[1].class = StageClass::Stateful;
        let plan = partition(&nodes, 1, 46).expect("fits");
        for g in &plan.groups {
            if g.stages().contains(&1) {
                assert_eq!(g.len, 1, "stateful stage must stay alone");
                assert_eq!(g.replicas, 1, "stateful stage must not replicate");
            }
        }
    }

    #[test]
    fn auto_placement_reserves_supervisor_spares() {
        for p in [1u32, 2, 3] {
            let auto = auto_place(&film_cfg(p));
            assert!(
                auto.placement.spare_pool().len() >= SPARE_RESERVE as usize,
                "p={p}: {} spares",
                auto.placement.spare_pool().len()
            );
        }
    }

    #[test]
    fn realized_placement_matches_the_plan() {
        let cfg = film_cfg(2);
        let auto = auto_place(&cfg);
        let plan = &auto.plan;
        let pl = &auto.placement;
        assert_eq!(pl.pipelines.len(), 2);
        for lane in &pl.pipelines {
            for j in 1..5 {
                assert_eq!(
                    lane[j] == lane[j - 1],
                    plan.merged_with_prev(j),
                    "stage {j} core sharing must mirror the plan"
                );
            }
        }
        // Replica slots exist exactly for the replicated groups.
        let expected: usize = plan.groups.iter().filter(|g| g.replicas > 1).count() * 2;
        assert_eq!(pl.replicas.len(), expected);
        for slot in &pl.replicas {
            let g = &plan.groups[plan.group_of(slot.stage)];
            assert_eq!(slot.extras.len() as u32, g.replicas - 1);
        }
    }

    #[test]
    fn decision_table_is_deterministic_and_complete() {
        let cfg = film_cfg(2);
        let a = auto_place(&cfg).decision_table();
        let b = auto_place(&cfg).decision_table();
        assert_eq!(a, b);
        for name in ["sepia", "blur", "scratch", "flicker", "swap"] {
            assert!(a.contains(name), "missing {name} in:\n{a}");
        }
        assert!(a.contains("stencil") && a.contains("pointwise"));
    }

    #[test]
    fn fixed_plan_is_the_identity() {
        let plan = plan_for(&RunConfig::default());
        assert!(plan.is_fixed());
        assert_eq!(plan.groups.len(), 5);
        assert_eq!(plan.cores_per_lane(), 5);
    }
}
