//! Walkthrough measurement reports.

use crate::spec::{RunConfig, StageKind};
use scc_filters::Image;
use scc_sim::platform::PlatformStats;
use scc_sim::power::{McpcPower, PowerSample};
use scc_sim::stats::Quartiles;
use serde::Serialize;

/// Per-stage outcome of a simulated walkthrough.
#[derive(Debug, Clone, Serialize)]
pub struct StageReport {
    pub kind: StageKind,
    /// Pipeline index for per-pipeline stages.
    pub pipeline: Option<u32>,
    pub core_id: u8,
    /// Total virtual time the stage's core spent working.
    pub busy_secs: f64,
    /// Quartiles of the per-frame wait for input, in milliseconds
    /// (Figure 15's quantity).
    pub idle_ms: Option<Quartiles>,
    pub idle_total_secs: f64,
    pub frames: u64,
}

/// Everything measured in one walkthrough run.
#[derive(Serialize)]
pub struct WalkthroughReport {
    pub config: RunConfig,
    /// Virtual seconds from start to the last frame reaching the
    /// visualisation client — the paper's "walkthrough time".
    pub total_secs: f64,
    pub stage_reports: Vec<StageReport>,
    /// SCC power over time, 1 s samples.
    pub power_trace: Vec<PowerSample>,
    /// SCC energy for the run, joules.
    pub scc_energy_joules: f64,
    /// SCC idle power at the run's DVFS state, watts.
    pub scc_idle_power: f64,
    /// Seconds the MCPC spent rendering (0 unless MCPC mode).
    pub mcpc_busy_secs: f64,
    pub platform: PlatformStats,
    /// Final assembled frames (full fidelity only).
    #[serde(skip)]
    pub outputs: Option<Vec<Image>>,
    /// Stage phase spans (when `RunConfig::trace` was set).
    #[serde(skip)]
    pub trace: Option<crate::trace::TraceLog>,
}

impl WalkthroughReport {
    /// Speed-up of this run versus a reference time (e.g. the single-core
    /// baseline's 382 s, or a one-pipeline run).
    pub fn speedup_vs(&self, reference_secs: f64) -> f64 {
        reference_secs / self.total_secs
    }

    /// Mean measured SCC power while running, watts.
    pub fn mean_power(&self) -> f64 {
        if self.total_secs <= 0.0 {
            return 0.0;
        }
        self.scc_energy_joules / self.total_secs
    }

    /// MCPC energy for the run: idle floor for the whole walkthrough plus
    /// the render-active delta (§VI-B's accounting charges the render
    /// delta over the render time only).
    pub fn mcpc_energy_joules(&self, mcpc: &McpcPower) -> f64 {
        mcpc.idle * self.total_secs + mcpc.render_delta() * self.mcpc_busy_secs
    }

    /// The §VI-B comparison figure: incremental energy of the computation
    /// — SCC active energy above idle, plus the MCPC's render delta.
    /// (The paper computes `3.3 s · 28 W + 51 s · 50 W` for the hybrid.)
    pub fn active_energy_joules(&self, mcpc: &McpcPower) -> f64 {
        self.scc_energy_joules + mcpc.render_delta() * self.mcpc_busy_secs
    }

    /// Report for a specific stage of a specific pipeline.
    pub fn stage(&self, kind: StageKind, pipeline: Option<u32>) -> Option<&StageReport> {
        self.stage_reports
            .iter()
            .find(|s| s.kind == kind && s.pipeline == pipeline)
    }

    /// Utilisation of a stage: busy time / total time.
    pub fn utilisation(&self, kind: StageKind, pipeline: Option<u32>) -> Option<f64> {
        self.stage(kind, pipeline)
            .map(|s| s.busy_secs / self.total_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RunConfig;

    fn report() -> WalkthroughReport {
        WalkthroughReport {
            config: RunConfig::default(),
            total_secs: 50.0,
            stage_reports: vec![StageReport {
                kind: StageKind::Blur,
                pipeline: Some(0),
                core_id: 3,
                busy_secs: 45.0,
                idle_ms: None,
                idle_total_secs: 5.0,
                frames: 400,
            }],
            power_trace: vec![],
            scc_energy_joules: 2500.0,
            scc_idle_power: 22.0,
            mcpc_busy_secs: 3.3,
            platform: PlatformStats {
                noc_messages: 0,
                noc_bytes: 0,
                noc_wait_secs: 0.0,
                mem_bytes: 0,
                mem_bytes_per_mc: [0; 4],
                mem_wait_secs: 0.0,
                mem_imbalance: 0.0,
                host_link: Default::default(),
            },
            outputs: None,
            trace: None,
        }
    }

    #[test]
    fn speedup_and_power_math() {
        let r = report();
        assert_eq!(r.speedup_vs(382.0), 7.64);
        assert_eq!(r.mean_power(), 50.0);
    }

    #[test]
    fn mcpc_energy_accounting_matches_paper_formula() {
        let r = report();
        let mcpc = McpcPower::default();
        // active energy = SCC + 3.3 s × 28 W, the §VI-B structure.
        let e = r.active_energy_joules(&mcpc);
        assert!((e - (2500.0 + 3.3 * 28.0)).abs() < 1e-9);
        let full = r.mcpc_energy_joules(&mcpc);
        assert!((full - (52.0 * 50.0 + 28.0 * 3.3)).abs() < 1e-9);
    }

    #[test]
    fn stage_lookup_and_utilisation() {
        let r = report();
        assert!(r.stage(StageKind::Blur, Some(0)).is_some());
        assert!(r.stage(StageKind::Sepia, Some(0)).is_none());
        assert_eq!(r.utilisation(StageKind::Blur, Some(0)), Some(0.9));
    }
}
