//! Walkthrough measurement reports.

use crate::spec::{RunConfig, StageKind};
use scc_filters::Image;
use scc_sim::platform::PlatformStats;
use scc_sim::power::{McpcPower, PowerSample};
use scc_sim::stats::Quartiles;
use serde::Serialize;

/// Per-stage outcome of a simulated walkthrough.
#[derive(Debug, Clone, Serialize)]
pub struct StageReport {
    pub kind: StageKind,
    /// Pipeline index for per-pipeline stages.
    pub pipeline: Option<u32>,
    pub core_id: u8,
    /// Total virtual time the stage's core spent working.
    pub busy_secs: f64,
    /// Quartiles of the per-frame wait for input, in milliseconds
    /// (Figure 15's quantity).
    pub idle_ms: Option<Quartiles>,
    pub idle_total_secs: f64,
    pub frames: u64,
}

/// Wall-clock throughput of a host-native run — the quantity the bench
/// trajectory tracks (`BENCH_native_pipeline.json`). Virtual-time reports
/// measure the *simulated* SCC; this measures the host that ran it.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HostTiming {
    /// Wall-clock seconds for the whole walkthrough.
    pub wall_secs: f64,
    /// Frames delivered to the visualisation client.
    pub frames: u64,
    /// Delivered frames per wall-clock second.
    pub frames_per_sec: f64,
    /// Megapixels filtered per wall-clock second (frames × w × h / wall).
    pub mpixels_per_sec: f64,
}

impl HostTiming {
    /// Derive the rates from a measured wall time.
    ///
    /// Degenerate inputs never produce NaN or infinity: a wall time that
    /// is zero, negative, or not finite (a stopped clock, a subtraction
    /// gone backwards) yields zero rates and a wall time clamped to 0.0,
    /// so downstream speedup ratios and JSON documents stay well-formed.
    pub fn from_wall(wall_secs: f64, frames: u64, width: u32, height: u32) -> HostTiming {
        let wall_ok = wall_secs.is_finite() && wall_secs > 0.0;
        let fps = if wall_ok {
            frames as f64 / wall_secs
        } else {
            0.0
        };
        HostTiming {
            wall_secs: if wall_ok { wall_secs } else { 0.0 },
            frames,
            frames_per_sec: fps,
            mpixels_per_sec: fps * width as f64 * height as f64 / 1e6,
        }
    }

    /// Throughput ratio of this timing over a baseline (speedup when the
    /// baseline is the 1-thread run).
    ///
    /// Returns 0.0 — never NaN or infinity — when either side is
    /// degenerate: a baseline with zero (or non-finite) throughput has
    /// no meaningful ratio, and a non-finite numerator is itself a
    /// measurement failure.
    pub fn speedup_over(&self, baseline: &HostTiming) -> f64 {
        let base_ok = baseline.frames_per_sec.is_finite() && baseline.frames_per_sec > 0.0;
        if base_ok && self.frames_per_sec.is_finite() {
            self.frames_per_sec / baseline.frames_per_sec
        } else {
            0.0
        }
    }
}

/// One graceful-degradation decision: a pipeline exceeded its retry
/// budget and its strip was re-assigned to a surviving neighbour.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DegradationEvent {
    /// Frame being processed when the failure was detected.
    pub frame: u64,
    /// The pipeline declared failed.
    pub pipeline: u32,
    /// The surviving pipeline that adopted its strip.
    pub reassigned_to: u32,
    /// Virtual time of the decision, seconds.
    pub at_secs: f64,
    /// Pipeline position of the stage that failed: 0..=4 name the five
    /// filter stages (sepia..swap), 5 is the handoff to transfer. Stages
    /// *before* this index completed the aborted strip; the invariant
    /// checker uses that to balance the per-stage frame ledger.
    pub failed_stage: u32,
    /// Human-readable cause (e.g. which stage stalled).
    pub reason: String,
}

/// One completed self-healing episode: a core was declared dead, its
/// stage migrated to a spare, and the in-flight work replayed from the
/// checkpoint. The timeline (kill → detect → resume) is the MTTR the
/// recovery benchmark sweeps.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecoveryEvent {
    /// Frame being processed when the failure surfaced.
    pub frame: u64,
    /// Pipeline owning the failed stage.
    pub pipeline: u32,
    /// The migrated stage.
    pub stage: StageKind,
    /// Core that fail-stopped.
    pub failed_core: u8,
    /// Spare core the stage now runs on.
    pub migration_target: u8,
    /// Virtual time of the fail-stop, seconds.
    pub killed_at_secs: f64,
    /// Virtual time the phi detector declared the core dead, seconds
    /// (mesh- and arrangement-dependent: heartbeats travel the real
    /// host path).
    pub detected_at_secs: f64,
    /// Virtual time the migrated stage resumed useful work, seconds.
    pub resumed_at_secs: f64,
    /// Checkpointed frames replayed through the migrated stage.
    pub frames_replayed: u32,
    /// Mean time to repair: `resumed_at_secs - killed_at_secs`.
    pub mttr_secs: f64,
}

/// Exactly-once accounting for a [`crate::spec::Runtime::Tasks`] run:
/// the task runtime's whole ledger, checked by the invariant checker's
/// `task-conservation` audit (`completed + degraded == spawned`, with
/// re-queued tasks re-entering the same chain rather than forking it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TaskStats {
    /// Tasks created from the stage plan (strips × stage groups).
    pub spawned: u64,
    /// Tasks whose *first* completion was recorded (each task counts
    /// once, however many times a re-queue made it re-run).
    pub completed: u64,
    /// Total task executions, re-runs included (`>= completed`).
    pub executed: u64,
    /// Task-chain re-injections after a fence (checkpoint re-queues).
    pub requeued: u64,
    /// Tasks abandoned because no surviving core could take them.
    pub degraded: u64,
    /// Steal handshakes initiated by hungry cores.
    pub steal_attempts: u64,
    /// Handshakes that transferred a task (claim accepted).
    pub steals: u64,
    /// Handshakes answered with an empty queue or a rejected claim.
    pub steal_rejects: u64,
    /// Handshake legs lost or corrupted in flight (ARQ-style backoff
    /// paid, no task moved).
    pub steal_losses: u64,
    /// Handshakes cut short by a fail-stop of one of the two parties.
    pub midsteal_kills: u64,
    /// Producer stalls against a full bounded deque (backpressure).
    pub backpressure_stalls: u64,
    /// High-water mark of any per-core deque.
    pub max_queue_depth: u64,
}

/// Everything measured in one walkthrough run.
#[derive(Serialize)]
pub struct WalkthroughReport {
    pub config: RunConfig,
    /// Virtual seconds from start to the last frame reaching the
    /// visualisation client — the paper's "walkthrough time".
    pub total_secs: f64,
    pub stage_reports: Vec<StageReport>,
    /// SCC power over time, 1 s samples.
    pub power_trace: Vec<PowerSample>,
    /// SCC energy for the run, joules.
    pub scc_energy_joules: f64,
    /// SCC idle power at the run's DVFS state, watts.
    pub scc_idle_power: f64,
    /// Seconds the MCPC spent rendering (0 unless MCPC mode).
    pub mcpc_busy_secs: f64,
    pub platform: PlatformStats,
    /// Graceful-degradation events (empty unless faults were injected
    /// and a pipeline actually failed).
    pub degradations: Vec<DegradationEvent>,
    /// Self-healing episodes: detected kills migrated to spare cores
    /// (empty unless kills were injected and a spare was available).
    pub recoveries: Vec<RecoveryEvent>,
    /// Task-runtime ledger; `Some` exactly when the run executed under
    /// [`crate::spec::Runtime::Tasks`].
    pub task_stats: Option<TaskStats>,
    /// Closed-loop DVFS decision trace, one entry per observed epoch
    /// (empty unless the power plane is
    /// [`crate::spec::PowerConfig::Governed`]).
    pub dvfs_decisions: Vec<crate::governor::GovernorDecision>,
    /// Final assembled frames (full fidelity only).
    #[serde(skip)]
    pub outputs: Option<Vec<Image>>,
    /// Stage phase spans (when `RunConfig::trace` was set).
    #[serde(skip)]
    pub trace: Option<crate::trace::TraceLog>,
    /// Telemetry snapshot (when `RunConfig::telemetry` was set).
    /// Deliberately excluded from [`WalkthroughReport::fingerprint`]:
    /// observation must never move a golden digest.
    #[serde(skip)]
    pub telemetry: Option<scc_telemetry::Snapshot>,
}

impl WalkthroughReport {
    /// Speed-up of this run versus a reference time (e.g. the single-core
    /// baseline's 382 s, or a one-pipeline run).
    pub fn speedup_vs(&self, reference_secs: f64) -> f64 {
        reference_secs / self.total_secs
    }

    /// Canonical text rendering of everything deterministic in the report.
    /// Two runs of the same configuration (fault seed included) must
    /// produce byte-identical fingerprints; floats are rendered via their
    /// bit patterns so no formatting ambiguity can creep in.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run {} {} p{} {}x{} f{} seed={:#x}",
            self.config.renderer.name(),
            self.config.arrangement.name(),
            self.config.pipelines,
            self.config.width,
            self.config.height,
            self.config.frames,
            self.config.seed,
        );
        if self.config.runtime != crate::spec::Runtime::Static {
            let t = &self.config.task_tuning;
            let _ = writeln!(
                out,
                "runtime {} qcap={} steal_us={} retries={}",
                self.config.runtime.name(),
                t.queue_capacity,
                t.steal_timeout_us,
                t.steal_retries,
            );
        }
        if let Some(fault) = &self.config.fault {
            let _ = writeln!(
                out,
                "fault seed={:#x} drop={:016x} corrupt={:016x} delay={:016x} links={} budget={}",
                fault.seed,
                fault.drop_rate.to_bits(),
                fault.corrupt_rate.to_bits(),
                fault.delay_rate.to_bits(),
                fault.degraded_links,
                fault.retry_budget,
            );
            for k in &fault.kills {
                let _ = writeln!(out, "kill p{} s{} at_ms={}", k.pipeline, k.stage, k.at_ms);
            }
            if fault.supervised() {
                let _ = writeln!(
                    out,
                    "supervise hb_us={} phi={:016x} depth={} spares={}",
                    fault.heartbeat_period_us,
                    fault.phi_dead.to_bits(),
                    fault.checkpoint_depth,
                    fault.max_spares,
                );
            }
        }
        if !self.config.power.is_default() {
            match &self.config.power {
                crate::spec::PowerConfig::Static(pairs) => {
                    let _ = write!(out, "power static");
                    for (core, freq) in pairs {
                        let _ = write!(out, " {}@{}", core.raw(), freq.mhz());
                    }
                    let _ = writeln!(out);
                }
                crate::spec::PowerConfig::Governed(t) => {
                    let _ = writeln!(
                        out,
                        "power governed epoch={} hyst={} raise={:016x} throttle={:016x} \
                         cap={:016x}",
                        t.epoch_frames,
                        t.hysteresis_epochs,
                        t.bottleneck_idle_frac.to_bits(),
                        t.throttle_idle_frac.to_bits(),
                        t.power_cap_watts.to_bits(),
                    );
                }
            }
        }
        for d in &self.dvfs_decisions {
            let _ = writeln!(out, "dvfs e={} {:?}", d.epoch, d.action);
        }
        let _ = writeln!(out, "total={:016x}", self.total_secs.to_bits());
        for s in &self.stage_reports {
            let _ = writeln!(
                out,
                "stage {} p{:?} core={} busy={:016x} idle={:016x} frames={}",
                s.kind.name(),
                s.pipeline,
                s.core_id,
                s.busy_secs.to_bits(),
                s.idle_total_secs.to_bits(),
                s.frames,
            );
        }
        let _ = writeln!(
            out,
            "platform msgs={} bytes={} wait={:016x} mem={} memwait={:016x}",
            self.platform.noc_messages,
            self.platform.noc_bytes,
            self.platform.noc_wait_secs.to_bits(),
            self.platform.mem_bytes,
            self.platform.mem_wait_secs.to_bits(),
        );
        let _ = writeln!(out, "energy={:016x}", self.scc_energy_joules.to_bits());
        for d in &self.degradations {
            let _ = writeln!(
                out,
                "degrade frame={} pipeline={} to={} at={:016x} stage={} reason={}",
                d.frame,
                d.pipeline,
                d.reassigned_to,
                d.at_secs.to_bits(),
                d.failed_stage,
                d.reason,
            );
        }
        for r in &self.recoveries {
            let _ = writeln!(
                out,
                "recover frame={} pipeline={} stage={} core={}->{} killed={:016x} \
                 detected={:016x} resumed={:016x} replayed={} mttr={:016x}",
                r.frame,
                r.pipeline,
                r.stage.name(),
                r.failed_core,
                r.migration_target,
                r.killed_at_secs.to_bits(),
                r.detected_at_secs.to_bits(),
                r.resumed_at_secs.to_bits(),
                r.frames_replayed,
                r.mttr_secs.to_bits(),
            );
        }
        if let Some(t) = &self.task_stats {
            let _ = writeln!(
                out,
                "tasks spawned={} completed={} executed={} requeued={} degraded={} \
                 steal_attempts={} steals={} rejects={} losses={} midsteal={} stalls={} maxq={}",
                t.spawned,
                t.completed,
                t.executed,
                t.requeued,
                t.degraded,
                t.steal_attempts,
                t.steals,
                t.steal_rejects,
                t.steal_losses,
                t.midsteal_kills,
                t.backpressure_stalls,
                t.max_queue_depth,
            );
        }
        if let Some(outputs) = &self.outputs {
            for (i, img) in outputs.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "frame {i} crc={:016x}",
                    crate::viz::frame_checksum(img)
                );
            }
        }
        out
    }

    /// Mean measured SCC power while running, watts.
    pub fn mean_power(&self) -> f64 {
        if self.total_secs <= 0.0 {
            return 0.0;
        }
        self.scc_energy_joules / self.total_secs
    }

    /// MCPC energy for the run: idle floor for the whole walkthrough plus
    /// the render-active delta (§VI-B's accounting charges the render
    /// delta over the render time only).
    pub fn mcpc_energy_joules(&self, mcpc: &McpcPower) -> f64 {
        mcpc.idle * self.total_secs + mcpc.render_delta() * self.mcpc_busy_secs
    }

    /// The §VI-B comparison figure: incremental energy of the computation
    /// — SCC active energy above idle, plus the MCPC's render delta.
    /// (The paper computes `3.3 s · 28 W + 51 s · 50 W` for the hybrid.)
    pub fn active_energy_joules(&self, mcpc: &McpcPower) -> f64 {
        self.scc_energy_joules + mcpc.render_delta() * self.mcpc_busy_secs
    }

    /// Report for a specific stage of a specific pipeline.
    pub fn stage(&self, kind: StageKind, pipeline: Option<u32>) -> Option<&StageReport> {
        self.stage_reports
            .iter()
            .find(|s| s.kind == kind && s.pipeline == pipeline)
    }

    /// Utilisation of a stage: busy time / total time.
    pub fn utilisation(&self, kind: StageKind, pipeline: Option<u32>) -> Option<f64> {
        self.stage(kind, pipeline)
            .map(|s| s.busy_secs / self.total_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RunConfig;

    fn report() -> WalkthroughReport {
        WalkthroughReport {
            config: RunConfig::default(),
            total_secs: 50.0,
            stage_reports: vec![StageReport {
                kind: StageKind::Blur,
                pipeline: Some(0),
                core_id: 3,
                busy_secs: 45.0,
                idle_ms: None,
                idle_total_secs: 5.0,
                frames: 400,
            }],
            power_trace: vec![],
            scc_energy_joules: 2500.0,
            scc_idle_power: 22.0,
            mcpc_busy_secs: 3.3,
            platform: PlatformStats {
                noc_messages: 0,
                noc_bytes: 0,
                noc_wait_secs: 0.0,
                mem_bytes: 0,
                mem_bytes_per_mc: [0; 4],
                mem_wait_secs: 0.0,
                mem_imbalance: 0.0,
                host_link: Default::default(),
            },
            degradations: vec![DegradationEvent {
                frame: 17,
                pipeline: 1,
                reassigned_to: 2,
                at_secs: 4.2,
                failed_stage: 1,
                reason: "blur stalled".into(),
            }],
            recoveries: vec![RecoveryEvent {
                frame: 9,
                pipeline: 0,
                stage: StageKind::Blur,
                failed_core: 3,
                migration_target: 40,
                killed_at_secs: 2.0,
                detected_at_secs: 2.2,
                resumed_at_secs: 2.5,
                frames_replayed: 1,
                mttr_secs: 0.5,
            }],
            task_stats: None,
            dvfs_decisions: vec![],
            outputs: None,
            trace: None,
            telemetry: None,
        }
    }

    #[test]
    fn speedup_and_power_math() {
        let r = report();
        assert_eq!(r.speedup_vs(382.0), 7.64);
        assert_eq!(r.mean_power(), 50.0);
    }

    #[test]
    fn host_timing_rates() {
        let t = HostTiming::from_wall(2.0, 100, 400, 400);
        assert_eq!(t.frames_per_sec, 50.0);
        assert_eq!(t.mpixels_per_sec, 8.0);
        let base = HostTiming::from_wall(8.0, 100, 400, 400);
        assert_eq!(t.speedup_over(&base), 4.0);
        let degenerate = HostTiming::from_wall(0.0, 10, 4, 4);
        assert_eq!(degenerate.frames_per_sec, 0.0);
        assert_eq!(t.speedup_over(&degenerate), 0.0);
    }

    #[test]
    fn host_timing_degenerate_inputs_are_nan_free() {
        // Zero, negative, NaN, and infinite wall times all clamp to a
        // quiet zero-rate timing instead of poisoning downstream math.
        for wall in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let t = HostTiming::from_wall(wall, 10, 4, 4);
            assert_eq!(t.wall_secs, 0.0, "wall {wall} must clamp");
            assert_eq!(t.frames_per_sec, 0.0);
            assert_eq!(t.mpixels_per_sec, 0.0);
            assert_eq!(t.frames, 10, "frame count is preserved");
        }
        // Zero frames over a real wall time is a valid zero rate.
        let idle = HostTiming::from_wall(2.0, 0, 4, 4);
        assert_eq!(idle.frames_per_sec, 0.0);
        assert!(idle.mpixels_per_sec == 0.0 && !idle.mpixels_per_sec.is_nan());
    }

    #[test]
    fn speedup_over_degenerate_baselines_is_nan_free() {
        let good = HostTiming::from_wall(2.0, 100, 4, 4);
        let zero = HostTiming::from_wall(0.0, 100, 4, 4);
        // Zero baseline, zero numerator, both zero: all 0.0, never NaN.
        assert_eq!(good.speedup_over(&zero), 0.0);
        assert_eq!(zero.speedup_over(&good), 0.0);
        assert_eq!(zero.speedup_over(&zero), 0.0);
        // A hand-built non-finite baseline cannot leak through either.
        let poisoned = HostTiming {
            wall_secs: 1.0,
            frames: 1,
            frames_per_sec: f64::NAN,
            mpixels_per_sec: f64::NAN,
        };
        assert_eq!(good.speedup_over(&poisoned), 0.0);
        assert_eq!(poisoned.speedup_over(&good), 0.0);
        // And the healthy path still measures.
        let base = HostTiming::from_wall(8.0, 100, 4, 4);
        assert_eq!(good.speedup_over(&base), 4.0);
    }

    #[test]
    fn mcpc_energy_accounting_matches_paper_formula() {
        let r = report();
        let mcpc = McpcPower::default();
        // active energy = SCC + 3.3 s × 28 W, the §VI-B structure.
        let e = r.active_energy_joules(&mcpc);
        assert!((e - (2500.0 + 3.3 * 28.0)).abs() < 1e-9);
        let full = r.mcpc_energy_joules(&mcpc);
        assert!((full - (52.0 * 50.0 + 28.0 * 3.3)).abs() < 1e-9);
    }

    #[test]
    fn stage_lookup_and_utilisation() {
        let r = report();
        assert!(r.stage(StageKind::Blur, Some(0)).is_some());
        assert!(r.stage(StageKind::Sepia, Some(0)).is_none());
        assert_eq!(r.utilisation(StageKind::Blur, Some(0)), Some(0.9));
    }

    #[test]
    fn fingerprint_is_stable_and_covers_degradations() {
        let a = report();
        let b = report();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint().contains("degrade frame=17 pipeline=1 to=2"));
        assert!(a
            .fingerprint()
            .contains("recover frame=9 pipeline=0 stage=blur core=3->40"));
        // Any drift in a float shows up (bit-pattern rendering).
        let mut c = report();
        c.total_secs += 1e-12;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
