//! Runtime invariant checking for the pipeline executors.
//!
//! Behind [`crate::spec::RunConfig::verify`] the sim and DES runners hand
//! their finished report to [`check_report`], which walks every internal
//! consistency property the executors are supposed to uphold:
//!
//! * **frame conservation** — every stage's frame ledger balances: each
//!   filter position processed `pipelines × frames` strips plus one
//!   aborted pass per degradation event that failed *downstream* of it;
//!   sources and the transfer stage each account for every frame;
//! * **trace causality** — per core, the busy phases (fetch → compute →
//!   memory → send) appear in cycle order with strictly advancing,
//!   non-overlapping virtual-time spans inside `[0, total]`;
//! * **energy identity** — `total == scc_active + scc_idle + mcpc`, with
//!   a non-negative active component and no power sample below the idle
//!   floor;
//! * **recovery legality** — every self-healing episode is ordered
//!   (killed ≤ detected ≤ resumed), its MTTR is the closed difference,
//!   and the replay never exceeds the checkpoint ring's depth.
//!
//! NoC flit conservation lives next to the mesh state it audits
//! ([`scc_sim::noc::Noc::audit`]); the runners fold its verdict into the
//! same violation list. Violations are *reported with the seed and
//! config that produced them* ([`enforce`]) so any failure is a
//! one-paste repro.

use crate::metrics::WalkthroughReport;
use crate::spec::{RendererMode, RunConfig, StageKind};
use crate::trace::{Phase, TraceEvent};
use scc_sim::power::McpcPower;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One broken invariant: which check tripped and what it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable kebab-case name of the invariant (e.g. `frame-conservation`).
    pub check: &'static str,
    pub detail: String,
}

impl Violation {
    pub fn new(check: &'static str, detail: impl Into<String>) -> Violation {
        Violation {
            check,
            detail: detail.into(),
        }
    }
}

/// Render the seed + config that produced a violation, debug-complete so
/// the failing run can be reconstructed from the message alone.
pub fn describe(cfg: &RunConfig) -> String {
    format!(
        "seed={:#x} fault_seed={} {:?}",
        cfg.seed,
        cfg.fault
            .as_ref()
            .map_or("none".to_string(), |f| format!("{:#x}", f.seed)),
        cfg
    )
}

/// Panic with every violation and the offending configuration; no-op on
/// an empty list. The runners call this; search tooling (`scc-verify`)
/// uses [`check_report`] directly to harvest violations without dying.
pub fn enforce(cfg: &RunConfig, violations: &[Violation]) {
    if violations.is_empty() {
        return;
    }
    let mut msg = String::new();
    let _ = writeln!(
        msg,
        "{} invariant violation(s) in {}",
        violations.len(),
        describe(cfg)
    );
    for v in violations {
        let _ = writeln!(msg, "  [{}] {}", v.check, v.detail);
    }
    panic!("{msg}");
}

/// Run every report-level invariant; returns all violations found.
pub fn check_report(report: &WalkthroughReport) -> Vec<Violation> {
    let mut v = Vec::new();
    check_totals(report, &mut v);
    check_frame_conservation(report, &mut v);
    check_energy_identity(report, &mut v);
    check_events(report, &mut v);
    check_tasks(report, &mut v);
    v.extend(check_dvfs_decisions(&report.dvfs_decisions));
    if let Some(trace) = &report.trace {
        check_trace(report, trace.events(), &mut v);
    }
    v
}

/// Every governor decision must be a *legal* move: epochs strictly
/// increase (one decision per epoch, in order) and each Raise/Throttle
/// steps exactly one rung of the 400/533/800 ladder — the control law
/// never teleports a tile across the frequency range in one epoch.
pub fn check_dvfs_decisions(decisions: &[crate::governor::GovernorDecision]) -> Vec<Violation> {
    use crate::governor::{adjacent_steps, GovernorAction};
    let mut v = Vec::new();
    let mut prev_epoch: Option<u32> = None;
    for d in decisions {
        if let Some(p) = prev_epoch {
            if d.epoch <= p {
                v.push(Violation::new(
                    "dvfs-legality",
                    format!("decision at epoch {} after epoch {p}", d.epoch),
                ));
            }
        }
        prev_epoch = Some(d.epoch);
        match d.action {
            GovernorAction::Raise { tile, from, to } => {
                if to.mhz() <= from.mhz() || !adjacent_steps(from, to) {
                    v.push(Violation::new(
                        "dvfs-legality",
                        format!(
                            "epoch {}: raise of tile {} from {} to {} MHz is not \
                             one step up",
                            d.epoch,
                            tile.index(),
                            from.mhz(),
                            to.mhz()
                        ),
                    ));
                }
            }
            GovernorAction::Throttle { island, from, to } => {
                if to.mhz() >= from.mhz() || !adjacent_steps(from, to) {
                    v.push(Violation::new(
                        "dvfs-legality",
                        format!(
                            "epoch {}: throttle of island {} from {} to {} MHz is \
                             not one step down",
                            d.epoch,
                            island.index(),
                            from.mhz(),
                            to.mhz()
                        ),
                    ));
                }
            }
            GovernorAction::Hold | GovernorAction::CapBlocked { .. } => {}
        }
    }
    v
}

/// Report-level invariants for the workload plane (`Generic` and
/// `Wavefront` runs): finite positive totals, per-group busy time inside
/// the walkthrough, the energy identity against the cheapest idle floor
/// the run visited, and a legal governor trace.
pub fn check_generic_report(r: &crate::generic::GenericReport) -> Vec<Violation> {
    let mut v = Vec::new();
    if !(r.total_secs.is_finite() && r.total_secs > 0.0) {
        v.push(Violation::new(
            "totals",
            format!("workload time {} not positive finite", r.total_secs),
        ));
    }
    if r.items == 0 {
        v.push(Violation::new("totals", "run processed zero items"));
    }
    for s in &r.stages {
        if !(s.busy_secs.is_finite() && s.busy_secs >= 0.0)
            || s.busy_secs > r.total_secs * (1.0 + 1e-9)
        {
            v.push(Violation::new(
                "totals",
                format!(
                    "group {} busy {}s outside [0, total {}s]",
                    s.name, s.busy_secs, r.total_secs
                ),
            ));
        }
        if !(0.0..=1.0 + 1e-9).contains(&s.utilisation) {
            v.push(Violation::new(
                "totals",
                format!("group {} utilisation {}", s.name, s.utilisation),
            ));
        }
    }
    let idle_floor = r.scc_idle_power * r.total_secs;
    let eps = 1e-6 * r.energy_joules.abs().max(1.0);
    if !(r.energy_joules.is_finite() && r.energy_joules + eps >= idle_floor) {
        v.push(Violation::new(
            "energy-identity",
            format!(
                "energy {} J below the idle floor {} J ({} W x {} s)",
                r.energy_joules, idle_floor, r.scc_idle_power, r.total_secs
            ),
        ));
    }
    if (r.mean_power * r.total_secs - r.energy_joules).abs() > eps {
        v.push(Violation::new(
            "energy-identity",
            format!(
                "mean power {} W x {} s != {} J",
                r.mean_power, r.total_secs, r.energy_joules
            ),
        ));
    }
    v.extend(check_dvfs_decisions(&r.dvfs_decisions));
    v
}

/// Exactly-once session accounting for the serving layer (`scc-serve`):
/// every session the frontend took responsibility for must reach exactly
/// one terminal state — `completed + shed == admitted` — so load shedding
/// can never be silent. Plain-argument form because the serving ledger
/// lives above this crate; `scc-serve` calls it and feeds the result to
/// [`enforce`].
pub fn check_session_ledger(admitted: u64, completed: u64, shed: u64) -> Vec<Violation> {
    let mut v = Vec::new();
    if completed + shed != admitted {
        v.push(Violation::new(
            "session-ledger",
            format!(
                "completed ({completed}) + shed ({shed}) != admitted ({admitted}); \
                 {} session(s) unaccounted for",
                admitted as i128 - (completed + shed) as i128
            ),
        ));
    }
    v
}

/// Exactly-once task accounting for `Runtime::Tasks` runs: every spawned
/// task is either completed or degraded (`completed + degraded ==
/// spawned`, the ISSUE's `completed + re-queued + degraded = spawned`
/// with every re-queued task having re-entered its chain by run end);
/// re-runs only ever *add* executions (`executed >= completed`), never
/// completions; and the steal ledger is internally consistent.
fn check_tasks(r: &WalkthroughReport, v: &mut Vec<Violation>) {
    use crate::spec::Runtime;
    let Some(t) = &r.task_stats else {
        if r.config.runtime == Runtime::Tasks {
            v.push(Violation::new(
                "task-conservation",
                "Tasks run produced no task ledger",
            ));
        }
        return;
    };
    if r.config.runtime != Runtime::Tasks {
        v.push(Violation::new(
            "task-conservation",
            "task ledger present on a static-placement run",
        ));
    }
    if t.completed + t.degraded != t.spawned {
        v.push(Violation::new(
            "task-conservation",
            format!(
                "completed {} + degraded {} != spawned {} — a task was \
                 duplicated or lost",
                t.completed, t.degraded, t.spawned
            ),
        ));
    }
    if t.executed < t.completed {
        v.push(Violation::new(
            "task-conservation",
            format!(
                "executed {} < completed {} — a completion without an execution",
                t.executed, t.completed
            ),
        ));
    }
    if t.executed > t.completed && t.requeued == 0 {
        v.push(Violation::new(
            "task-conservation",
            format!(
                "{} re-executions with no re-queue recorded",
                t.executed - t.completed
            ),
        ));
    }
    if t.steals > t.steal_attempts {
        v.push(Violation::new(
            "task-conservation",
            format!(
                "{} completed steals out of {} attempts",
                t.steals, t.steal_attempts
            ),
        ));
    }
    let expected = r.config.pipelines as u64
        * r.config.frames
        * crate::partition::plan_for(&r.config).groups.len() as u64;
    if t.spawned != expected {
        v.push(Violation::new(
            "task-conservation",
            format!(
                "{} tasks spawned, plan implies {} (strips x groups)",
                t.spawned, expected
            ),
        ));
    }
}

fn check_totals(r: &WalkthroughReport, v: &mut Vec<Violation>) {
    if !(r.total_secs.is_finite() && r.total_secs > 0.0) {
        v.push(Violation::new(
            "totals",
            format!("walkthrough time {} not positive finite", r.total_secs),
        ));
    }
    for s in &r.stage_reports {
        if !(s.busy_secs.is_finite() && s.busy_secs >= 0.0)
            || s.busy_secs > r.total_secs * (1.0 + 1e-9)
        {
            v.push(Violation::new(
                "totals",
                format!(
                    "stage {} p{:?} busy {}s outside [0, total {}s]",
                    s.kind.name(),
                    s.pipeline,
                    s.busy_secs,
                    r.total_secs
                ),
            ));
        }
        if !(s.idle_total_secs.is_finite() && s.idle_total_secs >= 0.0) {
            v.push(Violation::new(
                "totals",
                format!(
                    "stage {} p{:?} idle total {}s negative or non-finite",
                    s.kind.name(),
                    s.pipeline,
                    s.idle_total_secs
                ),
            ));
        }
    }
}

/// in = out + degraded + replayed, per stage position: a filter at
/// position `j` runs `p × frames` successful passes plus one aborted pass
/// for every degradation whose failure point lies *past* `j` (those
/// strips cleared stage `j` before the lane died and were then re-run on
/// the adopting lane from scratch). Sources and transfer each see every
/// frame exactly once; replayed strips re-enter the *same* stage pass, so
/// migration never double-counts.
fn check_frame_conservation(r: &WalkthroughReport, v: &mut Vec<Violation>) {
    let frames = r.config.frames;
    let p = r.config.pipelines as u64;
    for s in &r.stage_reports {
        let want = match s.kind {
            StageKind::Render | StageKind::Connect | StageKind::Transfer => frames,
            // Filter stages are balanced summed across lanes below.
            _ => continue,
        };
        if s.frames != want {
            v.push(Violation::new(
                "frame-conservation",
                format!(
                    "{} p{:?} processed {} frames, walkthrough has {}",
                    s.kind.name(),
                    s.pipeline,
                    s.frames,
                    want
                ),
            ));
        }
    }
    for (j, &kind) in StageKind::PIPELINE_FILTERS.iter().enumerate() {
        let processed: u64 = r
            .stage_reports
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.frames)
            .sum();
        let aborted = r
            .degradations
            .iter()
            .filter(|d| d.failed_stage > j as u32)
            .count() as u64;
        let want = p * frames + aborted;
        if processed != want {
            v.push(Violation::new(
                "frame-conservation",
                format!(
                    "{} ledger: {} strips across lanes, expected {} \
                     ({} lanes x {} frames + {} aborted passes)",
                    kind.name(),
                    processed,
                    want,
                    p,
                    frames,
                    aborted
                ),
            ));
        }
    }
    // Source stages exist in the shape the renderer mode dictates.
    let renders = r
        .stage_reports
        .iter()
        .filter(|s| s.kind == StageKind::Render)
        .count() as u64;
    let want_renders = match r.config.renderer {
        RendererMode::PerPipelineRenderer => p,
        RendererMode::SingleRenderer => 1,
        RendererMode::McpcRenderer => 0,
    };
    if renders != want_renders {
        v.push(Violation::new(
            "frame-conservation",
            format!("{renders} render stages reported, mode implies {want_renders}"),
        ));
    }
}

/// `total == scc_active + scc_idle + mcpc`, with a physical (non-negative)
/// active component and the power trace never dipping below idle.
fn check_energy_identity(r: &WalkthroughReport, v: &mut Vec<Violation>) {
    let scc_idle = r.scc_idle_power * r.total_secs;
    let scc_active = r.scc_energy_joules - scc_idle;
    let mcpc = r.mcpc_energy_joules(&McpcPower::default());
    let total = r.scc_energy_joules + mcpc;
    let eps = 1e-6 * total.abs().max(1.0);
    if scc_active < -eps {
        v.push(Violation::new(
            "energy-identity",
            format!(
                "active SCC energy negative: total {} J below idle floor {} J",
                r.scc_energy_joules, scc_idle
            ),
        ));
    }
    if (total - (scc_active + scc_idle + mcpc)).abs() > eps {
        v.push(Violation::new(
            "energy-identity",
            format!("total {total} J != active {scc_active} + idle {scc_idle} + mcpc {mcpc}"),
        ));
    }
    if !(r.mcpc_busy_secs.is_finite() && r.mcpc_busy_secs >= 0.0) {
        v.push(Violation::new(
            "energy-identity",
            format!("mcpc busy {}s negative or non-finite", r.mcpc_busy_secs),
        ));
    }
    for s in &r.power_trace {
        if !s.watts.is_finite() || s.watts < r.scc_idle_power - 1e-6 {
            v.push(Violation::new(
                "energy-identity",
                format!(
                    "power sample {} W below the {} W idle floor",
                    s.watts, r.scc_idle_power
                ),
            ));
            break;
        }
    }
}

/// Degradation and recovery events must be internally consistent and
/// legal under the run's fault spec.
fn check_events(r: &WalkthroughReport, v: &mut Vec<Violation>) {
    let p = r.config.pipelines;
    for d in &r.degradations {
        if d.pipeline >= p || d.reassigned_to >= p || d.reassigned_to == d.pipeline {
            v.push(Violation::new(
                "degradation-legality",
                format!(
                    "degradation reassigns pipeline {} to {} of {}",
                    d.pipeline, d.reassigned_to, p
                ),
            ));
        }
        if d.failed_stage > 5 {
            v.push(Violation::new(
                "degradation-legality",
                format!(
                    "failed_stage {} beyond the transfer handoff",
                    d.failed_stage
                ),
            ));
        }
        if !(d.at_secs.is_finite() && d.at_secs >= 0.0) {
            v.push(Violation::new(
                "degradation-legality",
                format!("degradation at {}s", d.at_secs),
            ));
        }
    }
    let depth = r.config.fault.as_ref().map_or(0, |f| f.checkpoint_depth);
    for e in &r.recoveries {
        if !(e.killed_at_secs <= e.detected_at_secs && e.detected_at_secs <= e.resumed_at_secs) {
            v.push(Violation::new(
                "recovery-legality",
                format!(
                    "recovery timeline disordered: killed {} detected {} resumed {}",
                    e.killed_at_secs, e.detected_at_secs, e.resumed_at_secs
                ),
            ));
        }
        if (e.mttr_secs - (e.resumed_at_secs - e.killed_at_secs)).abs() > 1e-9 {
            v.push(Violation::new(
                "recovery-legality",
                format!(
                    "mttr {} != resumed - killed = {}",
                    e.mttr_secs,
                    e.resumed_at_secs - e.killed_at_secs
                ),
            ));
        }
        if e.frames_replayed == 0 || e.frames_replayed > depth {
            v.push(Violation::new(
                "recovery-legality",
                format!(
                    "replayed {} frames with a checkpoint ring of depth {}",
                    e.frames_replayed, depth
                ),
            ));
        }
        if e.pipeline >= p {
            v.push(Violation::new(
                "recovery-legality",
                format!("recovery names pipeline {} of {}", e.pipeline, p),
            ));
        }
    }
}

/// Position of a busy phase in the fetch → compute → memory → send cycle.
fn cycle_index(phase: Phase) -> Option<usize> {
    match phase {
        Phase::Fetch => Some(0),
        Phase::Compute => Some(1),
        Phase::Memory => Some(2),
        Phase::Send => Some(3),
        // Wait legitimately overlaps Migrate after a migration, and
        // Degrade is a zero-width marker; none of the three occupies the
        // core.
        Phase::Wait | Phase::Degrade | Phase::Migrate => None,
    }
}

/// Trace-span causality and per-core non-overlap, plus monotone clocks:
/// every span lies inside `[0, total]`; on one core the busy phases
/// strictly advance and the filter stages cycle fetch → compute →
/// memory → send (memory is optional — a stage with no extra traffic
/// emits a zero-width span, which the log drops).
fn check_trace(r: &WalkthroughReport, events: &[TraceEvent], v: &mut Vec<Violation>) {
    let total = r.total_secs;
    let mut per_core: BTreeMap<u8, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if e.t1 <= e.t0 {
            v.push(Violation::new(
                "trace-causality",
                format!(
                    "core {} {} {} span not forward in time: {} -> {}",
                    e.core,
                    e.kind.name(),
                    e.phase.name(),
                    e.t0.as_secs_f64(),
                    e.t1.as_secs_f64()
                ),
            ));
        }
        if e.t1.as_secs_f64() > total * (1.0 + 1e-9) + 1e-12 {
            v.push(Violation::new(
                "trace-causality",
                format!(
                    "core {} {} {} span ends at {}s, past the {}s walkthrough",
                    e.core,
                    e.kind.name(),
                    e.phase.name(),
                    e.t1.as_secs_f64(),
                    total
                ),
            ));
        }
        if cycle_index(e.phase).is_some() {
            per_core.entry(e.core).or_default().push(e);
        }
    }
    // Under degradation or migration a lane legally re-runs a frame it
    // adopted (often with its zero-width Fetch span dropped), so the
    // strict within-frame cycle order only holds on clean runs; frame
    // monotonicity and non-overlap hold regardless.
    let clean = r.degradations.is_empty() && r.recoveries.is_empty();
    for (core, mut spans) in per_core {
        spans.sort_by_key(|e| (e.t0, e.t1));
        let filters_only = clean
            && spans
                .iter()
                .all(|e| StageKind::PIPELINE_FILTERS.contains(&e.kind));
        let mut prev_end = None;
        let mut prev_cycle: Option<(u64, StageKind, usize)> = None;
        for e in &spans {
            if let Some(end) = prev_end {
                if e.t0 < end {
                    v.push(Violation::new(
                        "trace-overlap",
                        format!(
                            "core {core} busy spans overlap: {} {} starts at {}s \
                             before the previous span ends at {}s",
                            e.kind.name(),
                            e.phase.name(),
                            e.t0.as_secs_f64(),
                            end.as_secs_f64()
                        ),
                    ));
                    break;
                }
            }
            prev_end = Some(e.t1);
            // Cycle-order causality only applies to the filter stages —
            // source and transfer cores emit different shapes. Within one
            // (frame, stage) the cycle index must strictly advance (phases
            // with no work emit zero-width spans the log drops, so gaps
            // are fine); across spans the frame number never regresses.
            // The check is keyed by stage kind, not just frame, because a
            // merged auto-placement group runs several stages of the same
            // frame back-to-back on one core.
            if filters_only {
                let idx = cycle_index(e.phase).expect("busy phases only");
                if let Some((pf, pk, pi)) = prev_cycle {
                    if e.frame < pf {
                        v.push(Violation::new(
                            "trace-causality",
                            format!(
                                "core {core} frame {} {} span after frame {pf}",
                                e.frame,
                                e.phase.name()
                            ),
                        ));
                        break;
                    }
                    if e.frame == pf && e.kind == pk && idx <= pi {
                        v.push(Violation::new(
                            "trace-causality",
                            format!(
                                "core {core} frame {} phase {} out of cycle order \
                                 after index {pi}",
                                e.frame,
                                e.phase.name()
                            ),
                        ));
                        break;
                    }
                }
                prev_cycle = Some((e.frame, e.kind, idx));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::sim::SimRunner;
    use crate::spec::{Arrangement, FaultSpec, Fidelity, KillSpec, StallSpec};
    use scc_render::{CityConfig, Scene};
    use std::sync::Arc;

    fn scene() -> Arc<Scene> {
        Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }))
    }

    fn cfg(mode: RendererMode, pipelines: u32) -> RunConfig {
        RunConfig {
            renderer: mode,
            pipelines,
            width: 64,
            height: 48,
            frames: 4,
            seed: 11,
            arrangement: Arrangement::Ordered,
            fidelity: Fidelity::TimingOnly,
            verify: true,
            ..RunConfig::default()
        }
    }

    #[test]
    fn healthy_runs_verify_clean_in_every_mode() {
        for mode in [
            RendererMode::SingleRenderer,
            RendererMode::PerPipelineRenderer,
            RendererMode::McpcRenderer,
        ] {
            // `verify: true` panics inside run() on any violation.
            let report = SimRunner::new(cfg(mode, 2), scene()).run();
            assert!(check_report(&report).is_empty(), "{mode:?}");
            // The internal trace is stripped when the caller did not ask.
            assert!(report.trace.is_none());
        }
    }

    #[test]
    fn degraded_run_still_balances_the_frame_ledger() {
        let mut c = cfg(RendererMode::SingleRenderer, 3);
        c.fault = Some(FaultSpec {
            stall: Some(StallSpec {
                pipeline: 1,
                stage: 2,
                at_ms: 0,
                for_ms: u64::MAX,
            }),
            ..FaultSpec::default()
        });
        let report = SimRunner::new(c, scene()).run();
        assert!(!report.degradations.is_empty());
        assert!(report.degradations.iter().all(|d| d.failed_stage <= 5));
        assert!(check_report(&report).is_empty());
    }

    #[test]
    fn recovered_run_verifies_clean() {
        let mut c = cfg(RendererMode::SingleRenderer, 2);
        c.fault = Some(FaultSpec {
            kills: vec![KillSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 1,
            }],
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        });
        let report = SimRunner::new(c, scene()).run();
        assert_eq!(report.recoveries.len(), 1);
        assert!(check_report(&report).is_empty());
    }

    #[test]
    fn verify_never_changes_the_virtual_timeline() {
        let mut plain = cfg(RendererMode::McpcRenderer, 2);
        plain.verify = false;
        let mut verified = plain.clone();
        verified.verify = true;
        let a = SimRunner::new(plain, scene()).run();
        let b = SimRunner::new(verified, scene()).run();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn doctored_report_is_flagged_with_repro_context() {
        let mut c = cfg(RendererMode::SingleRenderer, 2);
        c.verify = false;
        let mut report = SimRunner::new(c, scene()).run();
        // Cook the transfer ledger the way a lost frame would.
        let t = report
            .stage_reports
            .iter_mut()
            .find(|s| s.kind == StageKind::Transfer)
            .unwrap();
        t.frames -= 1;
        let violations = check_report(&report);
        assert!(violations
            .iter()
            .any(|v| v.check == "frame-conservation" && v.detail.contains("transfer")));
        // And the enforcement message carries the seed.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            enforce(&report.config, &violations)
        }))
        .expect_err("enforce must panic on violations");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("seed=0xb"), "repro context missing: {msg}");
    }

    #[cfg(feature = "verify-selftest")]
    #[test]
    fn planted_frame_accounting_mutant_is_caught() {
        let mut c = cfg(RendererMode::SingleRenderer, 2);
        c.verify = false; // harvest violations instead of panicking
        let report = SimRunner::new(c, scene()).run();
        let violations = check_report(&report);
        assert!(
            violations.iter().any(|v| v.check == "frame-conservation"),
            "the planted off-by-one must trip frame conservation: {violations:?}"
        );
    }
}
