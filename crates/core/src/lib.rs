//! # scc-core — parallel macro pipelining on the (simulated) Intel SCC
//!
//! The primary contribution of the reproduced paper: a framework for
//! running parallel macro pipelines — chains of coarse stages, each owning
//! a core, connected by messages — on the SCC + MCPC heterogeneous system,
//! evaluated with the silent-film rendering case study.
//!
//! * [`spec`] — run configurations: renderer mode (§V's three scenarios),
//!   pipeline arrangement (§IV-A), geometry, fidelity;
//! * [`placement`] — stage→core mapping for the unordered / ordered /
//!   flipped arrangements and the DVFS island layout (Figure 18);
//! * [`cost`] — the calibrated P54C cycle/traffic model (anchored to
//!   Figure 8 and §VI);
//! * [`runner::sim`] — virtual-time execution on `scc-sim`'s platform,
//!   reproducing every figure of the paper deterministically;
//! * [`runner::native`] — the same pipeline on real OS threads with
//!   RCCE-style channels, for actually-parallel runs on the host;
//! * [`runner::des`] — an independent event-driven executor used to
//!   cross-validate the frame-major scheduler;
//! * [`baseline`] — the single-core Figure 8 reference;
//! * [`mod@reference`] — the sequential data-path oracle used to verify both
//!   runners bit-exactly;
//! * [`metrics`] — walkthrough reports: times, speed-ups, per-stage idle
//!   quartiles (Figure 15), power traces and energy (Figures 14/17,
//!   §VI-B), host wall-clock throughput;
//! * [`pool`] — the recycled frame/strip buffer pool both runners draw
//!   from (no per-frame heap churn);
//! * [`generic`] — user-defined macro pipelines on the same substrate
//!   (the §I claim that the results translate to other domains);
//! * [`supervise`] — the MCPC supervision control plane: heartbeat-based
//!   failure detection, spare-core migration, checkpointed frame replay;
//! * [`trace`] — per-stage phase spans with a Chrome-trace exporter;
//! * [`viz`] — the visualisation-client endpoint: checksums, the flicker
//!   series, scratch detection, delivery statistics.

pub mod baseline;
pub mod cost;
pub mod facade;
pub mod frame;
pub mod generic;
pub mod governor;
pub mod invariant;
pub mod metrics;
pub mod partition;
pub mod placement;
pub mod pool;
pub mod reference;
pub mod runner;
pub mod spec;
pub mod stage_graph;
pub mod supervise;
pub(crate) mod taskrt;
pub mod trace;
pub mod viz;
pub mod wavefront;

pub use baseline::{run_baseline, BaselineReport};
pub use cost::CostModel;
pub use facade::{default_scene, run, run_with_scene, Backend, BackendReport, RunOutcome};
pub use frame::Frame;
pub use generic::{
    run_generic_chain, FnStage, GenericReport, GenericStageReport, MacroStage, StageWork,
    WAVEFRONT_STAGES,
};
pub use governor::{
    adjacent_steps, replay_decisions, Governor, GovernorAction, GovernorDecision, StationSample,
};
pub use invariant::{
    check_dvfs_decisions, check_generic_report, check_report, check_session_ledger, enforce,
    Violation,
};
pub use metrics::{
    DegradationEvent, HostTiming, RecoveryEvent, StageReport, TaskStats, WalkthroughReport,
};
pub use partition::{
    auto_place, partition, partition_with, placement_for, plan_for, AutoPlacement, GroupCosting,
    StagePlan,
};
pub use placement::{place, place_dvfs_single_pipeline, Placement, ReplicaSlot};
pub use pool::{BufferPool, PoolStats};
pub use runner::des::{run_des, DesReport};
pub use runner::native::{run_native, NativeReport};
pub use runner::sim::{DvfsPlan, SimRunner};
pub use spec::{
    Arrangement, FaultSpec, Fidelity, FuseChoice, GenericChainSpec, GenericStageSpec,
    GovernorTuning, KernelChoice, KillSpec, NativeTuning, PowerConfig, RendererMode, RunConfig,
    RunConfigBuilder, Runtime, StageKind, StallSpec, TaskTuning, WavefrontSpec, Workload,
};
pub use stage_graph::{StageClass, StageGraph, StageNode, StageWeights, WeightSource};
pub use supervise::{resolve_kills, CheckpointRing, Supervisor, STAGE_PROVISION_BYTES};
pub use trace::{Phase, TraceEvent, TraceLog};
pub use viz::{VizClient, VizReport};
pub use wavefront::{propagate, WavefrontTrace};
