//! Stage-timeline tracing.
//!
//! When enabled ([`crate::spec::RunConfig::trace`]), the simulated runner
//! records one span per stage phase per frame — waiting for input,
//! fetching it from the DRAM partition, computing, streaming buffers, and
//! handing the frame on. The log exports to the Chrome trace-event JSON
//! format (`chrome://tracing`, Perfetto), with one row per SCC core, which
//! makes pipeline stalls and the bottleneck stage visible at a glance.

use crate::spec::StageKind;
use scc_sim::{CoreId, SimTime};
use scc_telemetry::{ChromeSpan, EventKind, TelemetrySink};
use serde::Serialize;

/// What a core was doing during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Phase {
    /// Blocked waiting for the previous stage's frame.
    Wait,
    /// Pulling the frame out of the core's DRAM partition.
    Fetch,
    /// Executing the stage's computation.
    Compute,
    /// Streaming auxiliary buffers through the cache/DRAM.
    Memory,
    /// Pushing the frame into the next stage's partition.
    Send,
    /// A failed pipeline's strip being adopted by a surviving neighbour
    /// (fault-injection runs only).
    Degrade,
    /// A killed stage being detected, provisioned on a spare core, and
    /// its checkpointed frames replayed (supervised runs only).
    Migrate,
}

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::Wait => "wait",
            Phase::Fetch => "fetch",
            Phase::Compute => "compute",
            Phase::Memory => "memory",
            Phase::Send => "send",
            Phase::Degrade => "degrade",
            Phase::Migrate => "migrate",
        }
    }
}

/// One traced span.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TraceEvent {
    pub core: u8,
    pub kind: StageKind,
    pub pipeline: Option<u32>,
    pub frame: u64,
    pub phase: Phase,
    pub t0: SimTime,
    pub t1: SimTime,
}

/// An in-memory trace log.
#[derive(Debug, Default, Clone)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a span; zero-length spans are dropped.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        core: CoreId,
        kind: StageKind,
        pipeline: Option<u32>,
        frame: u64,
        phase: Phase,
        t0: SimTime,
        t1: SimTime,
    ) {
        if t1 > t0 {
            self.events.push(TraceEvent {
                core: core.raw(),
                kind,
                pipeline,
                frame,
                phase,
                t0,
                t1,
            });
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Append every span of `other` — used to merge the per-thread logs
    /// the native runner collects.
    pub fn merge(&mut self, other: TraceLog) {
        self.events.extend(other.events);
    }

    /// Sort spans by start time (merged multi-thread logs arrive in
    /// join order, not time order).
    pub fn sort_by_time(&mut self) {
        self.events.sort_by_key(|e| (e.t0, e.core, e.t1));
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total time spent in `phase` by `kind` stages.
    pub fn phase_total(&self, kind: StageKind, phase: Phase) -> SimTime {
        self.events
            .iter()
            .filter(|e| e.kind == kind && e.phase == phase)
            .map(|e| e.t1 - e.t0)
            .sum()
    }

    /// Export as Chrome trace-event JSON (load in `chrome://tracing` or
    /// Perfetto). Virtual microseconds; one row ("thread") per core.
    /// Rendering is delegated to `scc-telemetry`'s Chrome exporter, the
    /// single writer for this format.
    pub fn to_chrome_json(&self) -> String {
        let spans: Vec<ChromeSpan> = self
            .events
            .iter()
            .map(|e| ChromeSpan {
                name: scc_telemetry::chrome::span_name(
                    e.kind.name(),
                    e.pipeline,
                    e.frame,
                    e.phase.name(),
                ),
                cat: e.phase.name().to_string(),
                ts_us: e.t0.as_ps() as f64 / 1e6, // ps -> us
                dur_us: (e.t1 - e.t0).as_ps() as f64 / 1e6,
                pid: 1,
                tid: u32::from(e.core),
            })
            .collect();
        scc_telemetry::chrome::render(&spans)
    }

    /// Mirror every span into a telemetry sink's event stream as a
    /// `stage_start`/`stage_stop` pair (virtual nanoseconds). No-op on a
    /// disabled sink.
    pub fn record_into(&self, sink: &TelemetrySink) {
        if !sink.is_enabled() {
            return;
        }
        for e in &self.events {
            let mk = |stop: bool| {
                let (stage, phase, core, pipeline, frame) = (
                    e.kind.name(),
                    e.phase.name(),
                    u32::from(e.core),
                    e.pipeline,
                    e.frame,
                );
                if stop {
                    EventKind::StageStop {
                        stage,
                        phase,
                        core,
                        pipeline,
                        frame,
                    }
                } else {
                    EventKind::StageStart {
                        stage,
                        phase,
                        core,
                        pipeline,
                        frame,
                    }
                }
            };
            sink.event(e.t0.as_ps() / 1_000, mk(false));
            sink.event(e.t1.as_ps() / 1_000, mk(true));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with_events() -> TraceLog {
        let mut log = TraceLog::new();
        log.span(
            CoreId::new(2),
            StageKind::Blur,
            Some(0),
            7,
            Phase::Compute,
            SimTime::from_ms(10),
            SimTime::from_ms(15),
        );
        log.span(
            CoreId::new(2),
            StageKind::Blur,
            Some(0),
            7,
            Phase::Send,
            SimTime::from_ms(15),
            SimTime::from_ms(16),
        );
        log.span(
            CoreId::new(4),
            StageKind::Transfer,
            None,
            7,
            Phase::Wait,
            SimTime::ZERO,
            SimTime::from_ms(16),
        );
        log
    }

    #[test]
    fn spans_recorded_and_zero_length_dropped() {
        let mut log = log_with_events();
        log.span(
            CoreId::new(0),
            StageKind::Sepia,
            Some(0),
            0,
            Phase::Fetch,
            SimTime::from_ms(1),
            SimTime::from_ms(1),
        );
        assert_eq!(log.events().len(), 3, "zero-length span must be dropped");
    }

    #[test]
    fn phase_totals() {
        let log = log_with_events();
        assert_eq!(
            log.phase_total(StageKind::Blur, Phase::Compute),
            SimTime::from_ms(5)
        );
        assert_eq!(
            log.phase_total(StageKind::Blur, Phase::Send),
            SimTime::from_ms(1)
        );
        assert_eq!(
            log.phase_total(StageKind::Sepia, Phase::Compute),
            SimTime::ZERO
        );
    }

    #[test]
    fn chrome_json_shape() {
        let log = log_with_events();
        let json = log.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains("blur p0 f7 compute"));
        assert!(json.contains(r#""tid":2"#));
        // Timestamps are virtual microseconds.
        assert!(json.contains(r#""ts":10000.000"#));
        assert!(json.contains(r#""dur":5000.000"#));
        // Must parse as a JSON array of 3 objects (cheap structural check).
        assert_eq!(json.matches(r#""name":"#).count(), 3);
    }

    #[test]
    fn empty_log() {
        let log = TraceLog::new();
        assert!(log.is_empty());
        assert_eq!(log.to_chrome_json(), "[]");
    }

    #[test]
    fn record_into_mirrors_spans_as_event_pairs() {
        let log = log_with_events();
        let sink = TelemetrySink::enabled();
        log.record_into(&sink);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.events.len(), 2 * log.events().len());
        // The event stream round-trips to the same Chrome JSON spans.
        let spans = scc_telemetry::chrome::events_to_spans(&snap.events);
        assert_eq!(spans.len(), log.events().len());
        let direct = log.to_chrome_json();
        for span in &spans {
            assert!(direct.contains(&span.name), "missing {}", span.name);
        }
        // Disabled sink: nothing recorded, nothing allocated.
        let off = TelemetrySink::disabled();
        log.record_into(&off);
        assert!(off.snapshot().is_none());
    }
}
