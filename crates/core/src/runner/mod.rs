//! Pipeline execution back-ends: virtual-time simulation ([`sim`]) and
//! real-thread native execution ([`native`]).

pub mod des;
pub mod native;
pub mod sim;
