//! Real-thread execution of the parallel macro pipeline.
//!
//! Runs the same stage graph as the simulator on the host machine: one OS
//! thread per stage, connected by `scc-rcce` endpoints (blocking
//! source-matched send/recv over bounded windows — the RCCE programming
//! model). Frames carry real pixels; the output is bit-identical to
//! [`crate::reference::reference_frames`]. Wall-clock timings demonstrate
//! genuine pipeline parallelism on the host, and per-stage receive-wait
//! statistics mirror the paper's Figure 15 measurement methodology.

use crate::frame::Frame;
use crate::spec::{RendererMode, RunConfig, StageKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use scc_filters::{standard_chain, vswap, Image, StripInfo};
use scc_rcce::{communicator, Endpoint, MpbConfig};
use scc_render::{Renderer, Scene, Walkthrough};
use scc_sim::stats::Quartiles;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Outcome of a native run.
#[derive(Debug)]
pub struct NativeReport {
    /// Wall-clock duration of the whole walkthrough.
    pub wall: Duration,
    /// Final frames as delivered to the visualisation client.
    pub frames: Vec<Image>,
    /// Per-stage receive-wait quartiles in milliseconds, keyed by
    /// (stage, pipeline).
    pub idle_ms: Vec<(StageKind, u32, Option<Quartiles>)>,
}

/// Wire format: frame header + RGBA payload.
pub fn encode_frame(frame: &Frame) -> Bytes {
    let img = frame.image.as_ref().expect("native frames carry pixels");
    let mut buf = BytesMut::with_capacity(36 + img.as_bytes().len());
    buf.put_u64(frame.id);
    buf.put_u32(frame.strip.index);
    buf.put_u32(frame.strip.count);
    buf.put_u32(frame.strip.y0);
    buf.put_u32(frame.strip.height);
    buf.put_u32(frame.strip.full_height);
    buf.put_u32(frame.full_width);
    buf.put_slice(img.as_bytes());
    buf.freeze()
}

/// Inverse of [`encode_frame`].
pub fn decode_frame(mut b: Bytes) -> Frame {
    assert!(b.len() >= 32, "truncated frame header");
    let id = b.get_u64();
    let index = b.get_u32();
    let count = b.get_u32();
    let y0 = b.get_u32();
    let height = b.get_u32();
    let full_height = b.get_u32();
    let full_width = b.get_u32();
    let strip = StripInfo {
        index,
        count,
        y0,
        height,
        full_height,
    };
    let expect = full_width as usize * height as usize * 4;
    assert_eq!(b.len(), expect, "payload size mismatch");
    Frame {
        id,
        strip,
        full_width,
        image: Some(Image::from_raw(full_width, height, b.to_vec())),
    }
}

/// Rank layout of the native communicator.
struct Ranks {
    sources: Vec<usize>,
    filters: Vec<[usize; 5]>,
    transfer: usize,
    total: usize,
}

fn ranks(mode: RendererMode, p: usize) -> Ranks {
    let n_sources = match mode {
        RendererMode::PerPipelineRenderer => p,
        _ => 1,
    };
    let sources: Vec<usize> = (0..n_sources).collect();
    let mut next = n_sources;
    let filters: Vec<[usize; 5]> = (0..p)
        .map(|_| {
            let f = [next, next + 1, next + 2, next + 3, next + 4];
            next += 5;
            f
        })
        .collect();
    Ranks {
        sources,
        filters,
        transfer: next,
        total: next + 1,
    }
}

/// Run the walkthrough natively. Frames always carry pixels (the
/// `fidelity` field of the config is ignored).
pub fn run_native(cfg: &RunConfig, scene: Arc<Scene>) -> NativeReport {
    cfg.validate().expect("invalid run configuration");
    let p = cfg.pipelines as usize;
    let layout = ranks(cfg.renderer, p);
    // Window of 2 in-flight frames per channel: enough to pipeline,
    // small enough to exert RCCE-like backpressure.
    let mut endpoints = communicator(layout.total, 2, MpbConfig::default());
    let mut eps: Vec<Option<Endpoint>> = endpoints.drain(..).map(Some).collect();

    let renderer = Arc::new(Renderer::new(scene));
    let bounds = Image::strip_bounds(cfg.height, cfg.pipelines);
    let start = Instant::now();
    let mut handles = Vec::new();
    type StageResult = (Vec<Duration>, Option<Vec<Image>>);
    let mut stage_handles: Vec<(StageKind, u32, thread::JoinHandle<StageResult>)> = Vec::new();

    // ---- source threads ----
    match cfg.renderer {
        RendererMode::SingleRenderer | RendererMode::McpcRenderer => {
            // One source renders full frames and scatters strips. In MCPC
            // mode this thread plays the MCPC renderer + connector pair —
            // functionally identical; only the platform timing differed.
            let ep = eps[layout.sources[0]].take().unwrap();
            let renderer = Arc::clone(&renderer);
            let cfg = cfg.clone();
            let filters0: Vec<usize> = layout.filters.iter().map(|f| f[0]).collect();
            handles.push(thread::spawn(move || {
                let walkthrough = Walkthrough::standard(cfg.width as f32 / cfg.height as f32);
                for f in 0..cfg.frames {
                    let cam = walkthrough.camera(f);
                    let (img, _) = renderer.render_full(&cam, cfg.width, cfg.height);
                    for (i, (info, strip)) in
                        img.split_strips(cfg.pipelines).into_iter().enumerate()
                    {
                        let frame = Frame {
                            id: f,
                            strip: info,
                            full_width: cfg.width,
                            image: Some(strip),
                        };
                        ep.send(filters0[i], encode_frame(&frame)).expect("send");
                    }
                }
            }));
        }
        RendererMode::PerPipelineRenderer => {
            for (i, &rank) in layout.sources.iter().enumerate() {
                let ep = eps[rank].take().unwrap();
                let renderer = renderer.as_ref().clone_shared();
                let cfg = cfg.clone();
                let (y0, h) = bounds[i];
                let dst = layout.filters[i][0];
                let count = cfg.pipelines;
                handles.push(thread::spawn(move || {
                    let walkthrough = Walkthrough::standard(cfg.width as f32 / cfg.height as f32);
                    for f in 0..cfg.frames {
                        let cam = walkthrough.camera(f);
                        let (strip, _) = renderer.render_strip(&cam, cfg.width, cfg.height, y0, h);
                        let frame = Frame {
                            id: f,
                            strip: StripInfo {
                                index: i as u32,
                                count,
                                y0,
                                height: h,
                                full_height: cfg.height,
                            },
                            full_width: cfg.width,
                            image: Some(strip),
                        };
                        ep.send(dst, encode_frame(&frame)).expect("send");
                    }
                }));
            }
        }
    }

    // ---- filter stage threads ----
    for i in 0..p {
        for j in 0..5 {
            let rank = layout.filters[i][j];
            let ep = eps[rank].take().unwrap();
            let cfg = cfg.clone();
            let src = if j == 0 {
                match cfg.renderer {
                    RendererMode::PerPipelineRenderer => layout.sources[i],
                    _ => layout.sources[0],
                }
            } else {
                layout.filters[i][j - 1]
            };
            let dst = if j + 1 < 5 {
                layout.filters[i][j + 1]
            } else {
                layout.transfer
            };
            let kind = StageKind::PIPELINE_FILTERS[j];
            stage_handles.push((
                kind,
                i as u32,
                thread::spawn(move || {
                    let chain = standard_chain();
                    let filter = &chain[j];
                    for _ in 0..cfg.frames {
                        let mut frame = decode_frame(ep.recv(src).expect("recv"));
                        let ctx = frame.ctx(cfg.seed);
                        filter.apply(frame.image.as_mut().expect("pixels"), &ctx);
                        ep.send(dst, encode_frame(&frame)).expect("send");
                    }
                    (ep.take_wait_samples(), None)
                }),
            ));
        }
    }

    // ---- transfer thread (returns the assembled frames) ----
    {
        let ep = eps[layout.transfer].take().unwrap();
        let cfg = cfg.clone();
        let swap_ranks: Vec<usize> = layout.filters.iter().map(|f| f[4]).collect();
        stage_handles.push((
            StageKind::Transfer,
            0,
            thread::spawn(move || {
                let mut out = Vec::with_capacity(cfg.frames as usize);
                for _ in 0..cfg.frames {
                    let mut strips = Vec::with_capacity(swap_ranks.len());
                    for &r in &swap_ranks {
                        let frame = decode_frame(ep.recv(r).expect("recv"));
                        strips.push((
                            vswap::mirrored_info(frame.strip),
                            frame.image.expect("pixels"),
                        ));
                    }
                    out.push(Image::assemble(&strips));
                }
                (ep.take_wait_samples(), Some(out))
            }),
        ));
    }

    for h in handles {
        h.join().expect("source thread panicked");
    }
    let mut frames = Vec::new();
    let mut idle_ms = Vec::new();
    for (kind, pl, h) in stage_handles {
        let (waits, out) = h.join().expect("stage thread panicked");
        if let Some(out) = out {
            frames = out;
        }
        let ms: Vec<f64> = waits.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        idle_ms.push((kind, pl, Quartiles::from_samples(&ms)));
    }

    NativeReport {
        wall: start.elapsed(),
        frames,
        idle_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_frames;
    use crate::spec::{Arrangement, Fidelity};
    use scc_render::CityConfig;

    fn scene() -> Arc<Scene> {
        Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }))
    }

    fn cfg(mode: RendererMode, pipelines: u32, frames: u64) -> RunConfig {
        RunConfig {
            renderer: mode,
            arrangement: Arrangement::Ordered,
            pipelines,
            width: 64,
            height: 64,
            frames,
            seed: 77,
            fidelity: Fidelity::Full,
            trace: false,
        }
    }

    #[test]
    fn frame_codec_roundtrip() {
        let mut img = Image::new(8, 4);
        img.set(3, 2, [9, 8, 7, 6]);
        let frame = Frame {
            id: 42,
            strip: StripInfo {
                index: 1,
                count: 3,
                y0: 4,
                height: 4,
                full_height: 12,
            },
            full_width: 8,
            image: Some(img.clone()),
        };
        let decoded = decode_frame(encode_frame(&frame));
        assert_eq!(decoded.id, 42);
        assert_eq!(decoded.strip, frame.strip);
        assert_eq!(decoded.image.unwrap(), img);
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn codec_rejects_bad_payload() {
        let mut b = BytesMut::new();
        b.put_u64(0);
        for v in [0u32, 1, 0, 4, 4, 8] {
            b.put_u32(v);
        }
        b.put_slice(&[0u8; 3]);
        decode_frame(b.freeze());
    }

    #[test]
    fn native_single_renderer_matches_reference() {
        let c = cfg(RendererMode::SingleRenderer, 2, 4);
        let native = run_native(&c, scene());
        let reference = reference_frames(&c, scene());
        assert_eq!(native.frames.len(), 4);
        assert_eq!(native.frames, reference, "native output != reference");
    }

    #[test]
    fn native_per_pipeline_renderer_matches_its_reference() {
        let c = cfg(RendererMode::PerPipelineRenderer, 3, 3);
        let native = run_native(&c, scene());
        let reference = reference_frames(&c, scene());
        assert_eq!(native.frames, reference);
    }

    #[test]
    fn native_mcpc_mode_matches_reference() {
        let c = cfg(RendererMode::McpcRenderer, 2, 3);
        let native = run_native(&c, scene());
        // The MCPC-mode data path renders full frames and splits — same
        // as the single-renderer reference.
        let mut ref_cfg = c.clone();
        ref_cfg.renderer = RendererMode::SingleRenderer;
        let reference = reference_frames(&ref_cfg, scene());
        assert_eq!(native.frames, reference);
    }

    #[test]
    fn idle_stats_are_collected() {
        let c = cfg(RendererMode::SingleRenderer, 2, 6);
        let report = run_native(&c, scene());
        // 2 pipelines × 5 filters + transfer = 11 instrumented stages.
        assert_eq!(report.idle_ms.len(), 11);
        for (_, _, q) in &report.idle_ms {
            let q = q.expect("samples recorded");
            assert!(q.median >= 0.0);
        }
        assert!(report.wall > Duration::ZERO);
    }

    #[test]
    fn deterministic_output_across_runs() {
        let c = cfg(RendererMode::SingleRenderer, 3, 3);
        let a = run_native(&c, scene());
        let b = run_native(&c, scene());
        assert_eq!(a.frames, b.frames);
    }
}
