//! Real-thread execution of the parallel macro pipeline.
//!
//! Runs the same stage graph as the simulator on the host machine: one OS
//! thread per stage, connected by `scc-rcce` endpoints (blocking
//! source-matched send/recv over bounded windows — the RCCE programming
//! model). Frames carry real pixels; the output is bit-identical to
//! [`crate::reference::reference_frames`]. Wall-clock timings demonstrate
//! genuine pipeline parallelism on the host, and per-stage receive-wait
//! statistics mirror the paper's Figure 15 measurement methodology.

use crate::frame::Frame;
use crate::metrics::HostTiming;
use crate::partition::StagePlan;
use crate::pool::{BufferPool, PoolStats};
use crate::spec::{RendererMode, RunConfig, StageKind};
use crate::trace::{Phase, TraceLog};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use scc_filters::{
    standard_chain, vswap, FusedPass, Image, KernelBackend, StripInfo, STANDARD_POINTWISE,
};
use scc_rcce::{communicator, crc32, Endpoint, MpbConfig, RcceError, Reliability};
use scc_render::{Renderer, Scene, Walkthrough};
use scc_sim::fault::{FaultConfig, FaultPlan};
use scc_sim::stats::Quartiles;
use scc_sim::{CoreId, SimTime};
use scc_telemetry::{names, TelemetrySink, IDLE_MS_BUCKETS};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Outcome of a native run.
#[derive(Debug)]
pub struct NativeReport {
    /// Wall-clock duration of the whole walkthrough.
    pub wall: Duration,
    /// Final frames as delivered to the visualisation client.
    pub frames: Vec<Image>,
    /// Per-stage receive-wait quartiles in milliseconds, keyed by
    /// (stage, pipeline).
    pub idle_ms: Vec<(StageKind, u32, Option<Quartiles>)>,
    /// Host wall-clock throughput (the bench trajectory's quantity).
    pub host: HostTiming,
    /// Buffer-pool reuse counters (all zero when pooling is off).
    pub pool_stats: PoolStats,
    /// Wall-clock phase spans per stage thread, present when
    /// [`RunConfig::trace`] is set. Times are nanoseconds since the run
    /// started, expressed on the same [`SimTime`] axis the simulator
    /// uses, so the Chrome exporter works unchanged.
    pub trace: Option<TraceLog>,
    /// Metrics and events recorded during the run
    /// ([`RunConfig::telemetry`]); `None` when telemetry is off.
    pub telemetry: Option<scc_telemetry::Snapshot>,
}

/// Per-thread span collector for the native runner: each stage thread
/// owns one and returns its log for merging after the join. When tracing
/// is off it records nothing.
struct SpanRecorder {
    on: bool,
    base: Instant,
    core: CoreId,
    kind: StageKind,
    pipeline: Option<u32>,
    log: TraceLog,
}

impl SpanRecorder {
    fn new(on: bool, base: Instant, rank: usize, kind: StageKind, pipeline: Option<u32>) -> Self {
        Self {
            on,
            base,
            core: CoreId::new(rank as u8),
            kind,
            pipeline,
            log: TraceLog::new(),
        }
    }

    fn span(&mut self, frame: u64, phase: Phase, from: Instant, to: Instant) {
        self.span_kind(self.kind, frame, phase, from, to);
    }

    /// Record a span under an explicit stage kind — a merged-group thread
    /// runs several stages back-to-back and labels each compute slice
    /// with the stage that did the work.
    fn span_kind(&mut self, kind: StageKind, frame: u64, phase: Phase, from: Instant, to: Instant) {
        if !self.on {
            return;
        }
        let t0 = SimTime::from_ns(from.duration_since(self.base).as_nanos() as u64);
        let t1 = SimTime::from_ns(to.duration_since(self.base).as_nanos() as u64);
        self.log
            .span(self.core, kind, self.pipeline, frame, phase, t0, t1);
    }

    fn into_log(self) -> TraceLog {
        self.log
    }
}

/// One executable unit of a merged group's stage list: a standalone
/// stage (stencils, or everything when fusion is off) or a maximal
/// pointwise run fused into a single memory traversal per row pair.
enum ExecSegment {
    Single(usize),
    Fused(FusedPass, Vec<usize>),
}

/// Split a merged group's stage list into execution segments. Fusion
/// applies only to runs of ≥ 2 consecutive pointwise stages — a lone
/// pointwise stage gains nothing from the fused program and keeps its
/// (backend-dispatched) standalone kernel. Blur is a stencil and always
/// stays standalone, so the legality envelope of the stage graph
/// (`StageClass::Pointwise` ⇔ `STANDARD_POINTWISE`) is what licenses
/// every fused segment.
fn exec_segments(stages: &[usize], backend: KernelBackend, fuse: bool) -> Vec<ExecSegment> {
    let pointwise = |j: usize| STANDARD_POINTWISE.get(j).copied().unwrap_or(false);
    let mut segs = Vec::new();
    let mut i = 0;
    while i < stages.len() {
        if fuse && pointwise(stages[i]) {
            let mut end = i + 1;
            while end < stages.len() && pointwise(stages[end]) {
                end += 1;
            }
            if end - i >= 2 {
                let idxs = stages[i..end].to_vec();
                let pass = FusedPass::from_standard_indices(&idxs, backend)
                    .expect("maximal pointwise run is fusable");
                segs.push(ExecSegment::Fused(pass, idxs));
                i = end;
                continue;
            }
        }
        segs.push(ExecSegment::Single(stages[i]));
        i += 1;
    }
    segs
}

/// Wire format: `crc32(rest) || header || RGBA payload`. The checksum
/// covers everything after itself, so a flipped bit anywhere — header or
/// pixels — is detected (a flip inside the CRC field itself simply makes
/// the stored value wrong).
pub fn encode_frame(frame: &Frame) -> Bytes {
    let img = frame.image.as_ref().expect("native frames carry pixels");
    let mut content = BytesMut::with_capacity(32 + img.as_bytes().len());
    content.put_u64(frame.id);
    content.put_u32(frame.strip.index);
    content.put_u32(frame.strip.count);
    content.put_u32(frame.strip.y0);
    content.put_u32(frame.strip.height);
    content.put_u32(frame.strip.full_height);
    content.put_u32(frame.full_width);
    content.put_slice(img.as_bytes());
    let mut buf = BytesMut::with_capacity(4 + content.len());
    buf.put_u32(crc32(&content));
    buf.put_slice(&content);
    buf.freeze()
}

enum DecodeFailure {
    Truncated,
    SizeMismatch,
    Crc,
}

fn try_decode_pooled(mut b: Bytes, pool: &BufferPool) -> Result<Frame, DecodeFailure> {
    if b.len() < 36 {
        return Err(DecodeFailure::Truncated);
    }
    let crc = b.get_u32();
    if crc32(&b) != crc {
        return Err(DecodeFailure::Crc);
    }
    let id = b.get_u64();
    let index = b.get_u32();
    let count = b.get_u32();
    let y0 = b.get_u32();
    let height = b.get_u32();
    let full_height = b.get_u32();
    let full_width = b.get_u32();
    let strip = StripInfo {
        index,
        count,
        y0,
        height,
        full_height,
    };
    let expect = full_width as usize * height as usize * 4;
    if b.len() != expect {
        return Err(DecodeFailure::SizeMismatch);
    }
    Ok(Frame {
        id,
        strip,
        full_width,
        image: Some(pool.acquire_filled(full_width, height, &b)),
    })
}

fn try_decode(b: Bytes) -> Result<Frame, DecodeFailure> {
    try_decode_pooled(b, &BufferPool::disabled())
}

/// Inverse of [`encode_frame`]; panics on malformed input.
pub fn decode_frame(b: Bytes) -> Frame {
    match try_decode(b) {
        Ok(frame) => frame,
        Err(DecodeFailure::Truncated) => panic!("truncated frame header"),
        Err(DecodeFailure::SizeMismatch) => panic!("payload size mismatch"),
        Err(DecodeFailure::Crc) => panic!("frame payload CRC mismatch"),
    }
}

/// Non-panicking decode for transports that may hand over damaged bytes:
/// any malformation — truncation, a size lie, or a CRC mismatch — comes
/// back as [`RcceError::Corrupt`] attributed to `src`.
pub fn decode_frame_checked(b: Bytes, src: usize) -> Result<Frame, RcceError> {
    try_decode(b).map_err(|_| RcceError::Corrupt { rank: src })
}

/// [`decode_frame_checked`] drawing the frame's pixel buffer from a
/// [`BufferPool`] instead of the allocator.
pub fn decode_frame_pooled(b: Bytes, src: usize, pool: &BufferPool) -> Result<Frame, RcceError> {
    try_decode_pooled(b, pool).map_err(|_| RcceError::Corrupt { rank: src })
}

fn send_bytes(ep: &Endpoint, reliable: bool, dst: usize, payload: Bytes) {
    if reliable {
        ep.send_reliable(dst, payload).expect("reliable send");
    } else {
        ep.send(dst, payload).expect("send");
    }
}

fn recv_bytes(ep: &Endpoint, reliable: bool, src: usize) -> Bytes {
    if reliable {
        ep.recv_reliable(src).expect("reliable recv")
    } else {
        ep.recv(src).expect("recv")
    }
}

/// Rank layout of the native communicator.
///
/// The scheduler plan shapes the interior: one rank (one OS thread) per
/// *group replica* per lane — a merged group's stages share a thread, a
/// replicated group gets one thread per replica. The fixed plan (five
/// singleton groups, one replica each) reproduces the historical
/// one-thread-per-stage layout exactly.
struct Ranks {
    sources: Vec<usize>,
    /// `groups[i][g]` — ranks of the replicas serving group `g` of lane
    /// `i`; frame `f` is handled by `groups[i][g][f % r]`.
    groups: Vec<Vec<Vec<usize>>>,
    transfer: usize,
    total: usize,
}

fn ranks(mode: RendererMode, p: usize, plan: &StagePlan) -> Ranks {
    let n_sources = match mode {
        RendererMode::PerPipelineRenderer => p,
        _ => 1,
    };
    let sources: Vec<usize> = (0..n_sources).collect();
    let mut next = n_sources;
    let groups: Vec<Vec<Vec<usize>>> = (0..p)
        .map(|_| {
            plan.groups
                .iter()
                .map(|g| {
                    let v: Vec<usize> = (next..next + g.replicas as usize).collect();
                    next += g.replicas as usize;
                    v
                })
                .collect()
        })
        .collect();
    Ranks {
        sources,
        groups,
        transfer: next,
        total: next + 1,
    }
}

/// Run the walkthrough natively. Frames always carry pixels (the
/// `fidelity` field of the config is ignored).
///
/// Deprecated in favour of the facade: new code should call
/// [`crate::run`] with [`crate::Backend::Native`], which wraps this
/// entry point unchanged and returns the backend-independent
/// [`crate::RunOutcome`] view. Kept public for callers that want the
/// raw [`NativeReport`] alone.
pub fn run_native(cfg: &RunConfig, scene: Arc<Scene>) -> NativeReport {
    cfg.validate().expect("invalid run configuration");
    assert_eq!(
        cfg.runtime,
        crate::spec::Runtime::Static,
        "the native backend runs the static pipeline only; \
         Runtime::Tasks is a sim/DES execution model"
    );
    let p = cfg.pipelines as usize;
    let plan = crate::partition::plan_for(cfg);
    let layout = ranks(cfg.renderer, p, &plan);
    // Window of 2 in-flight frames per channel: enough to pipeline,
    // small enough to exert RCCE-like backpressure.
    let mut endpoints = communicator(layout.total, 2, MpbConfig::default());
    // Fault injection switches every hop to the reliable (CRC + ack +
    // retry) protocol; the schedule itself is deterministic in the spec's
    // seed. Core stalls and link degradation are simulator-only notions —
    // the native threads see the message-level faults.
    let reliable = cfg.fault.is_some();
    // One sink shared by every stage thread and every RCCE endpoint, so
    // ARQ retries recorded inside the transport and stage metrics
    // recorded out here land in the same snapshot.
    let tel = TelemetrySink::from_enabled(cfg.telemetry);
    if tel.is_enabled() {
        for ep in endpoints.iter_mut() {
            ep.set_telemetry(tel.clone());
        }
    }
    if let Some(spec) = &cfg.fault {
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            seed: spec.seed,
            drop_rate: spec.drop_rate,
            corrupt_rate: spec.corrupt_rate,
            delay_rate: spec.delay_rate,
            max_delay: SimTime::from_us(spec.max_delay_us),
            degraded_links: 0,
            degrade_factor: 1.0,
            stalls: Vec::new(),
            kills: Vec::new(),
        }));
        // Real threads on a loaded host need a wider ack window than the
        // simulator's virtual-time default.
        let policy = Reliability {
            timeout: Duration::from_micros(spec.timeout_us).max(Duration::from_millis(50)),
            retries: spec.retry_budget,
        };
        for ep in endpoints.iter_mut() {
            ep.set_fault_plan(Arc::clone(&plan));
            ep.set_reliability(policy);
        }
    }
    let mut eps: Vec<Option<Endpoint>> = endpoints.drain(..).map(Some).collect();

    let renderer = Arc::new(Renderer::new(scene));
    let bounds = Image::strip_bounds(cfg.height, cfg.pipelines);
    // One shared pool: a stage releasing its sent frame feeds the next
    // stage's decode, so steady state runs with a fixed set of buffers.
    let pool = BufferPool::from_enabled(cfg.tuning.buffer_pool);
    let kernel_threads = cfg.tuning.kernel_threads as usize;
    // Telemetry mirrors the span log into its event stream, so an
    // enabled sink collects spans even when the caller did not ask for a
    // trace in the report.
    let tracing = cfg.trace || tel.is_enabled();
    let start = Instant::now();
    let mut handles: Vec<thread::JoinHandle<TraceLog>> = Vec::new();
    // Wait samples, assembled frames (transfer only), span log, and the
    // number of frames this thread actually handled (a replica sees only
    // its stride's share).
    type StageResult = (Vec<Duration>, Option<Vec<Image>>, TraceLog, u64);
    let mut stage_handles: Vec<(StageKind, u32, thread::JoinHandle<StageResult>)> = Vec::new();

    // ---- source threads ----
    match cfg.renderer {
        RendererMode::SingleRenderer | RendererMode::McpcRenderer => {
            // One source renders full frames and scatters strips. In MCPC
            // mode this thread plays the MCPC renderer + connector pair —
            // functionally identical; only the platform timing differed.
            let ep = eps[layout.sources[0]].take().unwrap();
            let renderer = Arc::clone(&renderer);
            let cfg = cfg.clone();
            let pool = pool.clone();
            // Per-lane first-group replica ranks; frame f's strip goes to
            // replica f % r, which preserves strip order per lane.
            let filters0: Vec<Vec<usize>> = layout.groups.iter().map(|g| g[0].clone()).collect();
            let rank = layout.sources[0];
            handles.push(thread::spawn(move || {
                let mut rec = SpanRecorder::new(tracing, start, rank, StageKind::Render, None);
                let walkthrough = Walkthrough::standard(cfg.width as f32 / cfg.height as f32);
                for f in 0..cfg.frames {
                    let c0 = Instant::now();
                    let cam = walkthrough.camera(f);
                    let (img, _) = renderer.render_full(&cam, cfg.width, cfg.height);
                    let c1 = Instant::now();
                    for (i, (info, strip)) in
                        img.split_strips(cfg.pipelines).into_iter().enumerate()
                    {
                        let frame = Frame {
                            id: f,
                            strip: info,
                            full_width: cfg.width,
                            image: Some(strip),
                        };
                        let dst = filters0[i][(f % filters0[i].len() as u64) as usize];
                        send_bytes(&ep, reliable, dst, encode_frame(&frame));
                        pool.release(frame.image.expect("strip pixels"));
                    }
                    rec.span(f, Phase::Compute, c0, c1);
                    rec.span(f, Phase::Send, c1, Instant::now());
                    pool.release(img);
                }
                rec.into_log()
            }));
        }
        RendererMode::PerPipelineRenderer => {
            for (i, &rank) in layout.sources.iter().enumerate() {
                let ep = eps[rank].take().unwrap();
                let renderer = renderer.as_ref().clone_shared();
                let cfg = cfg.clone();
                let (y0, h) = bounds[i];
                let dsts: Vec<usize> = layout.groups[i][0].clone();
                let count = cfg.pipelines;
                let pool = pool.clone();
                handles.push(thread::spawn(move || {
                    let mut rec =
                        SpanRecorder::new(tracing, start, rank, StageKind::Render, Some(i as u32));
                    let walkthrough = Walkthrough::standard(cfg.width as f32 / cfg.height as f32);
                    for f in 0..cfg.frames {
                        let c0 = Instant::now();
                        let cam = walkthrough.camera(f);
                        let (strip, _) = renderer.render_strip(&cam, cfg.width, cfg.height, y0, h);
                        let c1 = Instant::now();
                        let frame = Frame {
                            id: f,
                            strip: StripInfo {
                                index: i as u32,
                                count,
                                y0,
                                height: h,
                                full_height: cfg.height,
                            },
                            full_width: cfg.width,
                            image: Some(strip),
                        };
                        let dst = dsts[(f % dsts.len() as u64) as usize];
                        send_bytes(&ep, reliable, dst, encode_frame(&frame));
                        rec.span(f, Phase::Compute, c0, c1);
                        rec.span(f, Phase::Send, c1, Instant::now());
                        pool.release(frame.image.expect("strip pixels"));
                    }
                    rec.into_log()
                }));
            }
        }
    }

    // ---- filter stage threads (one per group replica per lane) ----
    for i in 0..p {
        for (g, group) in plan.groups.iter().enumerate() {
            let r = group.replicas as usize;
            for k in 0..r {
                let rank = layout.groups[i][g][k];
                let ep = eps[rank].take().unwrap();
                let cfg = cfg.clone();
                // One upstream rank per sender replica; frame f arrives
                // from replica f % |src_ranks| (a single source counts
                // as one "replica").
                let src_ranks: Vec<usize> = if g == 0 {
                    match cfg.renderer {
                        RendererMode::PerPipelineRenderer => vec![layout.sources[i]],
                        _ => vec![layout.sources[0]],
                    }
                } else {
                    layout.groups[i][g - 1].clone()
                };
                let dst_ranks: Vec<usize> = if g + 1 < plan.groups.len() {
                    layout.groups[i][g + 1].clone()
                } else {
                    vec![layout.transfer]
                };
                let stages: Vec<usize> = group.stages().collect();
                let kind = StageKind::PIPELINE_FILTERS[group.start];
                let pool = pool.clone();
                stage_handles.push((
                    kind,
                    i as u32,
                    thread::spawn(move || {
                        let mut rec = SpanRecorder::new(tracing, start, rank, kind, Some(i as u32));
                        let chain = standard_chain();
                        let backend = cfg.tuning.kernel.resolve();
                        let segments = exec_segments(&stages, backend, cfg.tuning.fuse.enabled());
                        let mut handled = 0u64;
                        // Replica k owns frames f ≡ k (mod r) — the
                        // strip order within the lane never changes.
                        let mut f = k as u64;
                        while f < cfg.frames {
                            let w0 = Instant::now();
                            let src = src_ranks[(f % src_ranks.len() as u64) as usize];
                            let raw = recv_bytes(&ep, reliable, src);
                            let r0 = Instant::now();
                            let mut frame = decode_frame_pooled(raw, src, &pool)
                                .expect("frame survived transport");
                            let ctx = frame.ctx(cfg.seed);
                            rec.span(frame.id, Phase::Wait, w0, r0);
                            // A merged group's stages run back-to-back on
                            // this thread: internal hops are plain
                            // function calls, no message, no copy — and a
                            // fused pointwise run collapses further into
                            // one traversal of the strip.
                            let mut prev = r0;
                            for seg in &segments {
                                let img = frame.image.as_mut().expect("pixels");
                                match seg {
                                    ExecSegment::Single(j) => {
                                        chain[*j].apply_vectored(
                                            img,
                                            &ctx,
                                            backend,
                                            kernel_threads,
                                        );
                                        let now = Instant::now();
                                        rec.span_kind(
                                            StageKind::PIPELINE_FILTERS[*j],
                                            frame.id,
                                            Phase::Compute,
                                            prev,
                                            now,
                                        );
                                        prev = now;
                                    }
                                    ExecSegment::Fused(pass, idxs) => {
                                        pass.apply_chunked(img, &ctx, kernel_threads);
                                        let now = Instant::now();
                                        // One traversal served the whole
                                        // run: attribute an equal share of
                                        // the interval to each stage so
                                        // per-stage span totals stay
                                        // meaningful. Degenerate (empty)
                                        // sub-spans are skipped.
                                        let step = (now - prev) / idxs.len() as u32;
                                        for (n, &j) in idxs.iter().enumerate() {
                                            let t0 = prev + step * n as u32;
                                            let t1 = if n + 1 == idxs.len() {
                                                now
                                            } else {
                                                prev + step * (n as u32 + 1)
                                            };
                                            if t1 > t0 {
                                                rec.span_kind(
                                                    StageKind::PIPELINE_FILTERS[j],
                                                    frame.id,
                                                    Phase::Compute,
                                                    t0,
                                                    t1,
                                                );
                                            }
                                        }
                                        prev = now;
                                    }
                                }
                            }
                            let dst = dst_ranks[(f % dst_ranks.len() as u64) as usize];
                            send_bytes(&ep, reliable, dst, encode_frame(&frame));
                            rec.span(frame.id, Phase::Send, prev, Instant::now());
                            pool.release(frame.image.expect("pixels"));
                            handled += 1;
                            f += r as u64;
                        }
                        if cfg.verify {
                            if let Err(e) = ep.audit_arq() {
                                panic!("[arq-legality] {e}");
                            }
                        }
                        (ep.take_wait_samples(), None, rec.into_log(), handled)
                    }),
                ));
            }
        }
    }

    // ---- transfer thread (returns the assembled frames) ----
    {
        let rank = layout.transfer;
        let ep = eps[rank].take().unwrap();
        let cfg = cfg.clone();
        let pool = pool.clone();
        // Last-group replica ranks per lane; frame f's strip arrives
        // from replica f % r of that lane's tail group.
        let swap_ranks: Vec<Vec<usize>> = layout
            .groups
            .iter()
            .map(|g| g.last().unwrap().clone())
            .collect();
        stage_handles.push((
            StageKind::Transfer,
            0,
            thread::spawn(move || {
                let mut rec = SpanRecorder::new(tracing, start, rank, StageKind::Transfer, None);
                let mut out = Vec::with_capacity(cfg.frames as usize);
                for f in 0..cfg.frames {
                    let w0 = Instant::now();
                    let mut strips = Vec::with_capacity(swap_ranks.len());
                    for lane in &swap_ranks {
                        let r = lane[(f % lane.len() as u64) as usize];
                        let frame = decode_frame_pooled(recv_bytes(&ep, reliable, r), r, &pool)
                            .expect("frame survived transport");
                        strips.push((
                            vswap::mirrored_info(frame.strip),
                            frame.image.expect("pixels"),
                        ));
                    }
                    let c0 = Instant::now();
                    // The assembled frame leaves with the report, so it
                    // cannot be pooled — but the strips can.
                    out.push(Image::assemble(&strips));
                    rec.span(f, Phase::Wait, w0, c0);
                    rec.span(f, Phase::Compute, c0, Instant::now());
                    for (_, strip) in strips {
                        pool.release(strip);
                    }
                }
                if cfg.verify {
                    if let Err(e) = ep.audit_arq() {
                        panic!("[arq-legality] {e}");
                    }
                }
                (
                    ep.take_wait_samples(),
                    Some(out),
                    rec.into_log(),
                    cfg.frames,
                )
            }),
        ));
    }

    let mut trace = tracing.then(TraceLog::new);
    for h in handles {
        let log = h.join().expect("source thread panicked");
        if let Some(t) = trace.as_mut() {
            t.merge(log);
        }
    }
    let mut frames = Vec::new();
    let mut idle_ms = Vec::new();
    for (kind, pl, h) in stage_handles {
        let (waits, out, log, handled) = h.join().expect("stage thread panicked");
        if let Some(out) = out {
            frames = out;
        }
        if let Some(t) = trace.as_mut() {
            t.merge(log);
        }
        let ms: Vec<f64> = waits.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        if tel.is_enabled() {
            // The transfer stage is unpipelined; "-" matches the other
            // runners' label convention.
            let pl = if kind == StageKind::Transfer {
                "-".to_string()
            } else {
                pl.to_string()
            };
            let labels = [("pipeline", pl.as_str()), ("stage", kind.name())];
            if let Some(h) = tel.histogram(names::STAGE_IDLE_MS, &labels, IDLE_MS_BUCKETS) {
                for m in &ms {
                    h.observe(*m);
                }
            }
            tel.count(names::STAGE_FRAMES_TOTAL, &labels, handled);
        }
        idle_ms.push((kind, pl, Quartiles::from_samples(&ms)));
    }
    if let Some(t) = trace.as_mut() {
        t.sort_by_time();
    }

    let wall = start.elapsed();
    let host = HostTiming::from_wall(
        wall.as_secs_f64(),
        frames.len() as u64,
        cfg.width,
        cfg.height,
    );
    let pool_stats = pool.stats();
    if tel.is_enabled() {
        tel.count(names::FRAMES_TOTAL, &[], frames.len() as u64);
        tel.gauge(names::WALKTHROUGH_SECONDS, &[], wall.as_secs_f64());
        tel.gauge(names::HOST_FRAMES_PER_SEC, &[], host.frames_per_sec);
        tel.gauge(names::HOST_MPIXELS_PER_SEC, &[], host.mpixels_per_sec);
        tel.count(names::POOL_RECYCLED_TOTAL, &[], pool_stats.recycled);
        tel.count(names::POOL_FRESH_TOTAL, &[], pool_stats.fresh);
        if let Some(t) = trace.as_ref() {
            t.record_into(&tel);
        }
    }
    if !cfg.trace {
        trace = None;
    }
    NativeReport {
        wall,
        frames,
        idle_ms,
        host,
        pool_stats,
        trace,
        telemetry: tel.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_frames;
    use crate::spec::{Arrangement, Fidelity, NativeTuning};
    use scc_render::CityConfig;

    fn scene() -> Arc<Scene> {
        Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }))
    }

    fn cfg(mode: RendererMode, pipelines: u32, frames: u64) -> RunConfig {
        RunConfig::builder()
            .renderer(mode)
            .arrangement(Arrangement::Ordered)
            .pipelines(pipelines)
            .size(64, 64)
            .frames(frames)
            .seed(77)
            .fidelity(Fidelity::Full)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn frame_codec_roundtrip() {
        let mut img = Image::new(8, 4);
        img.set(3, 2, [9, 8, 7, 6]);
        let frame = Frame {
            id: 42,
            strip: StripInfo {
                index: 1,
                count: 3,
                y0: 4,
                height: 4,
                full_height: 12,
            },
            full_width: 8,
            image: Some(img.clone()),
        };
        let decoded = decode_frame(encode_frame(&frame));
        assert_eq!(decoded.id, 42);
        assert_eq!(decoded.strip, frame.strip);
        assert_eq!(decoded.image.unwrap(), img);
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn codec_rejects_bad_payload() {
        // A correctly-checksummed message whose payload length lies about
        // the geometry: the CRC passes, the size check must still fire.
        let mut content = BytesMut::new();
        content.put_u64(0);
        // index, count, y0, height, full_height, full_width.
        for v in [0u32, 1, 0, 4, 4, 8] {
            content.put_u32(v);
        }
        content.put_slice(&[0u8; 3]);
        let mut b = BytesMut::new();
        b.put_u32(crc32(&content));
        b.put_slice(&content);
        decode_frame(b.freeze());
    }

    #[test]
    #[should_panic(expected = "frame payload CRC mismatch")]
    fn codec_rejects_flipped_pixel_bit() {
        let frame = Frame {
            id: 1,
            strip: StripInfo {
                index: 0,
                count: 1,
                y0: 0,
                height: 2,
                full_height: 2,
            },
            full_width: 2,
            image: Some(Image::new(2, 2)),
        };
        let mut raw = encode_frame(&frame).to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        decode_frame(Bytes::from(raw));
    }

    #[test]
    fn checked_decode_reports_corruption_instead_of_panicking() {
        let frame = Frame {
            id: 9,
            strip: StripInfo {
                index: 0,
                count: 1,
                y0: 0,
                height: 1,
                full_height: 1,
            },
            full_width: 4,
            image: Some(Image::new(4, 1)),
        };
        let good = encode_frame(&frame);
        assert!(decode_frame_checked(good.clone(), 3).is_ok());
        let mut bad = good.to_vec();
        bad[20] ^= 1; // somewhere in the header
        assert!(matches!(
            decode_frame_checked(Bytes::from(bad), 3),
            Err(RcceError::Corrupt { rank: 3 })
        ));
        assert!(matches!(
            decode_frame_checked(Bytes::from(vec![1u8; 10]), 5),
            Err(RcceError::Corrupt { rank: 5 })
        ));
    }

    #[test]
    fn native_single_renderer_matches_reference() {
        let c = cfg(RendererMode::SingleRenderer, 2, 4);
        let native = run_native(&c, scene());
        let reference = reference_frames(&c, scene());
        assert_eq!(native.frames.len(), 4);
        assert_eq!(native.frames, reference, "native output != reference");
    }

    #[test]
    fn native_per_pipeline_renderer_matches_its_reference() {
        let c = cfg(RendererMode::PerPipelineRenderer, 3, 3);
        let native = run_native(&c, scene());
        let reference = reference_frames(&c, scene());
        assert_eq!(native.frames, reference);
    }

    #[test]
    fn native_mcpc_mode_matches_reference() {
        let c = cfg(RendererMode::McpcRenderer, 2, 3);
        let native = run_native(&c, scene());
        // The MCPC-mode data path renders full frames and splits — same
        // as the single-renderer reference.
        let mut ref_cfg = c.clone();
        ref_cfg.renderer = RendererMode::SingleRenderer;
        let reference = reference_frames(&ref_cfg, scene());
        assert_eq!(native.frames, reference);
    }

    #[test]
    fn native_auto_placement_matches_reference_all_modes() {
        // The scheduler plan on real threads: merged groups share a
        // thread, replicas stripe frames — the film must still equal the
        // sequential oracle bit-for-bit in every renderer mode.
        for mode in [
            RendererMode::SingleRenderer,
            RendererMode::PerPipelineRenderer,
            RendererMode::McpcRenderer,
        ] {
            let mut c = cfg(mode, 2, 5);
            c.auto_place = true;
            let native = run_native(&c, scene());
            let mut ref_cfg = c.clone();
            if mode == RendererMode::McpcRenderer {
                ref_cfg.renderer = RendererMode::SingleRenderer;
            }
            let reference = reference_frames(&ref_cfg, scene());
            assert_eq!(
                native.frames, reference,
                "{mode:?} diverged under auto placement"
            );
        }
    }

    #[test]
    fn native_auto_placement_survives_message_faults() {
        use crate::spec::FaultSpec;
        let mut c = cfg(RendererMode::SingleRenderer, 2, 4);
        c.auto_place = true;
        c.verify = true;
        c.fault = Some(FaultSpec {
            seed: 0xC1A05,
            drop_rate: 0.05,
            corrupt_rate: 0.05,
            timeout_us: 100_000,
            retry_budget: 5,
            ..FaultSpec::default()
        });
        let native = run_native(&c, scene());
        let mut clean = c.clone();
        clean.fault = None;
        clean.auto_place = false;
        let reference = reference_frames(&clean, scene());
        assert_eq!(native.frames, reference);
    }

    #[test]
    fn idle_stats_are_collected() {
        let c = cfg(RendererMode::SingleRenderer, 2, 6);
        let report = run_native(&c, scene());
        // 2 pipelines × 5 filters + transfer = 11 instrumented stages.
        assert_eq!(report.idle_ms.len(), 11);
        for (_, _, q) in &report.idle_ms {
            let q = q.expect("samples recorded");
            assert!(q.median >= 0.0);
        }
        assert!(report.wall > Duration::ZERO);
    }

    #[test]
    fn kernel_threads_and_pooling_do_not_change_output() {
        let base = cfg(RendererMode::SingleRenderer, 2, 3);
        let reference = reference_frames(&base, scene());
        for (threads, pooled) in [(1u32, false), (4, true), (4, false), (2, true)] {
            let mut c = base.clone();
            c.tuning = NativeTuning {
                kernel_threads: threads,
                buffer_pool: pooled,
                ..NativeTuning::default()
            };
            let report = run_native(&c, scene());
            assert_eq!(
                report.frames, reference,
                "threads={threads} pooled={pooled} diverged from reference"
            );
        }
    }

    #[test]
    fn pool_recycles_and_host_timing_is_populated() {
        let c = cfg(RendererMode::SingleRenderer, 2, 5);
        let report = run_native(&c, scene());
        let s = report.pool_stats;
        assert!(s.recycled > 0, "steady state must reuse buffers: {s:?}");
        assert!(s.returned > 0);
        assert_eq!(report.host.frames, 5);
        assert!(report.host.frames_per_sec > 0.0);
        assert!(report.host.wall_secs > 0.0);

        let mut unpooled = c.clone();
        unpooled.tuning.buffer_pool = false;
        let report = run_native(&unpooled, scene());
        assert_eq!(report.pool_stats, PoolStats::default());
    }

    #[test]
    fn trace_flag_yields_wall_clock_spans() {
        // Regression: `trace: true` used to be silently ignored by the
        // native runner — the report had no field to carry it at all.
        let mut c = cfg(RendererMode::SingleRenderer, 2, 3);
        c.trace = true;
        let report = run_native(&c, scene());
        let log = report.trace.expect("trace requested, trace delivered");
        assert!(!log.is_empty());
        // Every filter stage computed every frame on the wall clock.
        for kind in StageKind::PIPELINE_FILTERS {
            let busy = log.phase_total(kind, crate::trace::Phase::Compute);
            assert!(
                busy > SimTime::ZERO,
                "{} recorded no compute time",
                kind.name()
            );
        }
        // Spans stay within the measured wall-clock window and export to
        // the same Chrome format as the simulator's trace.
        let wall = SimTime::from_ns(report.wall.as_nanos() as u64);
        for e in log.events() {
            assert!(e.t0 < e.t1 && e.t1 <= wall);
        }
        let json = log.to_chrome_json();
        assert!(json.contains(r#""ph":"X""#) && json.contains("compute"));

        let untraced = run_native(&cfg(RendererMode::SingleRenderer, 2, 3), scene());
        assert!(untraced.trace.is_none(), "no trace unless requested");
    }

    #[test]
    fn deterministic_output_across_runs() {
        let c = cfg(RendererMode::SingleRenderer, 3, 3);
        let a = run_native(&c, scene());
        let b = run_native(&c, scene());
        assert_eq!(a.frames, b.frames);
    }

    #[test]
    fn native_run_survives_drops_and_corruption() {
        use crate::spec::FaultSpec;
        let mut c = cfg(RendererMode::SingleRenderer, 2, 3);
        c.verify = true; // every endpoint's ARQ ledger is audited at exit
        c.fault = Some(FaultSpec {
            seed: 0xC1A05,
            drop_rate: 0.05,
            corrupt_rate: 0.05,
            timeout_us: 100_000, // generous for a loaded 1-CPU host
            retry_budget: 5,
            ..FaultSpec::default()
        });
        let native = run_native(&c, scene());
        let mut clean = c.clone();
        clean.fault = None;
        let reference = reference_frames(&clean, scene());
        assert_eq!(
            native.frames, reference,
            "retry protocol must hide injected message faults"
        );
    }
}
