//! Virtual-time execution of the parallel macro pipeline on the simulated
//! SCC.
//!
//! Every stage is a sequential process — *receive a strip, process it,
//! hand it on* — with RCCE-style rendezvous flow control: a sender blocks
//! until its receiver has finished the previous frame, so the pipeline is
//! self-clocking at the bottleneck stage's rate, exactly like the paper's
//! system. Because the stage graph is a tree processed in topological
//! order, the whole walkthrough can be timed frame-by-frame without an
//! explicit event queue while still sharing the platform's contended
//! resources (mesh links, memory controllers, host link) in timestamp
//! order.
//!
//! Message timing follows the SCC's no-local-memory path: payloads land in
//! the **receiver's DRAM partition** and are fetched back out before
//! processing (`SccPlatform::{send_to_partition, fetch_from_partition}`) —
//! the overhead the paper identifies as the platform's key weakness.

use crate::cost::{CostModel, RenderWork};
use crate::frame::Frame;
use crate::metrics::{StageReport, WalkthroughReport};
use crate::placement::{place, Placement};
use crate::spec::{Fidelity, RendererMode, RunConfig, StageKind};
use crate::trace::{Phase, TraceLog};
use scc_filters::{Blur, Flicker, Image, ImageFilter, Scratch, Sepia, StripInfo, VSwap};
use scc_render::{Renderer, Scene, Walkthrough};
use scc_sim::platform::MemOp;
use scc_sim::{CoreId, FreqMHz, SccConfig, SccPlatform, SimTime};
use std::sync::Arc;

/// Per-stage runtime state.
struct StageState {
    kind: StageKind,
    core: CoreId,
    pipeline: Option<u32>,
    /// Time the stage finished its previous frame (ready for the next).
    free: SimTime,
    busy: SimTime,
    idle_samples: Vec<SimTime>,
    frames: u64,
}

impl StageState {
    fn new(kind: StageKind, core: CoreId, pipeline: Option<u32>) -> StageState {
        StageState {
            kind,
            core,
            pipeline,
            free: SimTime::ZERO,
            busy: SimTime::ZERO,
            idle_samples: Vec::new(),
            frames: 0,
        }
    }

    fn report(&self) -> StageReport {
        StageReport {
            kind: self.kind,
            pipeline: self.pipeline,
            core_id: self.core.raw(),
            busy_secs: self.busy.as_secs_f64(),
            idle_ms: scc_sim::stats::Quartiles::from_times(&self.idle_samples),
            idle_total_secs: self
                .idle_samples
                .iter()
                .copied()
                .sum::<SimTime>()
                .as_secs_f64(),
            frames: self.frames,
        }
    }
}

/// DVFS directives applied before the run.
#[derive(Debug, Clone, Default)]
pub struct DvfsPlan {
    /// (core, frequency) pairs; each sets the core's whole tile.
    pub settings: Vec<(CoreId, FreqMHz)>,
}

/// The simulated-SCC pipeline runner.
pub struct SimRunner {
    cfg: RunConfig,
    cost: CostModel,
    placement: Placement,
    platform: SccPlatform,
    renderer: Arc<Renderer>,
    walkthrough: Walkthrough,
    dvfs: DvfsPlan,
}

impl SimRunner {
    /// Build a runner with the default platform, cost model, scene and the
    /// placement implied by the configuration.
    pub fn new(cfg: RunConfig, scene: Arc<Scene>) -> SimRunner {
        let placement = place(cfg.renderer, cfg.arrangement, cfg.pipelines);
        SimRunner::with_parts(
            cfg,
            scene,
            placement,
            SccPlatform::new(SccConfig::default()),
            CostModel::default(),
            DvfsPlan::default(),
        )
    }

    /// Full control over every part (placement overrides for the DVFS
    /// experiment, alternative platforms or cost calibrations).
    pub fn with_parts(
        cfg: RunConfig,
        scene: Arc<Scene>,
        placement: Placement,
        platform: SccPlatform,
        cost: CostModel,
        dvfs: DvfsPlan,
    ) -> SimRunner {
        cfg.validate().expect("invalid run configuration");
        let walkthrough = Walkthrough::standard(cfg.width as f32 / cfg.height as f32);
        SimRunner {
            renderer: Arc::new(Renderer::new(scene)),
            cfg,
            cost,
            placement,
            platform,
            walkthrough,
            dvfs,
        }
    }

    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Execute the walkthrough; consumes the runner.
    pub fn run(mut self) -> WalkthroughReport {
        for (core, freq) in &self.dvfs.settings {
            self.platform.set_core_frequency(*core, *freq);
        }
        // Every placed stage spin-waits on its RCCE flags when idle.
        self.platform.set_spinning(self.placement.all_cores());
        let mut trace = self.cfg.trace.then(TraceLog::new);

        let p = self.cfg.pipelines as usize;
        let full = self.cfg.renderer != RendererMode::PerPipelineRenderer;
        let strip_bounds = Image::strip_bounds(self.cfg.height, self.cfg.pipelines);

        // Stage states.
        let mut renderers: Vec<StageState> = self
            .placement
            .renderers
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let pl = (!full).then_some(i as u32);
                StageState::new(StageKind::Render, *c, pl)
            })
            .collect();
        let mut connector = self
            .placement
            .connector
            .map(|c| StageState::new(StageKind::Connect, c, None));
        let mut filters: Vec<[StageState; 5]> = self
            .placement
            .pipelines
            .iter()
            .enumerate()
            .map(|(i, cores)| {
                let mk = |j: usize| {
                    StageState::new(StageKind::PIPELINE_FILTERS[j], cores[j], Some(i as u32))
                };
                [mk(0), mk(1), mk(2), mk(3), mk(4)]
            })
            .collect();
        let mut transfer = StageState::new(StageKind::Transfer, self.placement.transfer, None);

        // Filter implementations in stage order.
        let impls: [Box<dyn ImageFilter>; 5] = [
            Box::new(Sepia),
            Box::new(Blur::default()),
            Box::new(Scratch::default()),
            Box::new(Flicker::default()),
            Box::new(VSwap),
        ];

        let full_px = self.cfg.width as u64 * self.cfg.height as u64;
        let full_bytes = self.cfg.frame_bytes();
        let fidelity = self.cfg.fidelity;

        let mut mcpc_free = SimTime::ZERO;
        let mut mcpc_busy = SimTime::ZERO;
        let mut outputs: Vec<Image> = Vec::new();
        let mut finish = SimTime::ZERO;

        for f in 0..self.cfg.frames {
            let cam = self.walkthrough.camera(f);

            // ---- source: produce the P strips of frame f ----
            // For each pipeline: the time its strip is resident in the
            // sepia core's partition, plus (optionally) the pixels.
            let mut strip_arrivals: Vec<SimTime> = vec![SimTime::ZERO; p];
            let mut strip_frames: Vec<Frame> = Vec::with_capacity(p);

            match self.cfg.renderer {
                RendererMode::SingleRenderer => {
                    let r = &mut renderers[0];
                    let (visible, cull, coverage) = self.renderer.cull_strip(
                        &cam,
                        self.cfg.width,
                        self.cfg.height,
                        0,
                        self.cfg.height,
                    );
                    let work = RenderWork {
                        nodes_visited: cull.nodes_visited,
                        triangles_out: cull.triangles_out,
                        est_coverage: coverage,
                    };
                    let mut t = r.free;
                    // Pull the visible scene data through the mesh.
                    let scene_bytes = self.cost.render_scene_bytes(&work);
                    let t0 = t;
                    t = self.platform.mem_raw(r.core, t, MemOp::Read, scene_bytes);
                    let cycles = self.cost.render_cycles(&work, false)
                        + self.cost.split_cycles(full_px, self.cfg.pipelines);
                    t = self.platform.compute(r.core, t, cycles as u64);
                    // Frame buffer writeback if it exceeds the L2.
                    t = self
                        .platform
                        .mem_stream(r.core, t, MemOp::Write, full_bytes);
                    self.platform.record_busy(r.core, t0, t);

                    let image = (fidelity == Fidelity::Full).then(|| {
                        let (img, _) =
                            self.renderer
                                .render_full(&cam, self.cfg.width, self.cfg.height);
                        img
                    });
                    let strips = make_strips(f, &strip_bounds, self.cfg.width, image);

                    // Fan the strips out, serialised on the render core.
                    for (i, frame) in strips.into_iter().enumerate() {
                        let dst = filters[i][0].core;
                        let start = t.max(filters[i][0].free);
                        let resident =
                            self.platform
                                .send_to_partition(r.core, dst, start, frame.byte_len());
                        self.platform.record_busy(r.core, start, resident);
                        strip_arrivals[i] = resident;
                        strip_frames.push(frame);
                        t = resident;
                    }
                    r.busy += t - r.free;
                    r.free = t;
                    r.frames += 1;
                    let _ = visible;
                }
                RendererMode::PerPipelineRenderer => {
                    // Fill work per renderer: the full frame's coverage
                    // split evenly. The paper's sort-first renderers share
                    // the fill load almost perfectly (Figure 10 scales
                    // ~1/P up to 3 pipelines); charging each renderer its
                    // strip's raw coverage would instead import this
                    // scene's horizon-heavy imbalance. Culling and
                    // triangle-setup costs stay per-strip (they genuinely
                    // do not shrink with strip height).
                    let (_, _, full_coverage) = self.renderer.cull_strip(
                        &cam,
                        self.cfg.width,
                        self.cfg.height,
                        0,
                        self.cfg.height,
                    );
                    for i in 0..p {
                        let (y0, h) = strip_bounds[i];
                        let r = &mut renderers[i];
                        let (_, cull, _) =
                            self.renderer
                                .cull_strip(&cam, self.cfg.width, self.cfg.height, y0, h);
                        let work = RenderWork {
                            nodes_visited: cull.nodes_visited,
                            triangles_out: cull.triangles_out,
                            est_coverage: full_coverage / p as u64,
                        };
                        let mut t = r.free;
                        let t0 = t;
                        let scene_bytes = self.cost.render_scene_bytes(&work);
                        t = self.platform.mem_raw(r.core, t, MemOp::Read, scene_bytes);
                        let cycles = self.cost.render_cycles(&work, true);
                        t = self.platform.compute(r.core, t, cycles as u64);
                        let strip_bytes = self.cfg.width as u64 * h as u64 * 4;
                        t = self
                            .platform
                            .mem_stream(r.core, t, MemOp::Write, strip_bytes);
                        self.platform.record_busy(r.core, t0, t);

                        let image = (fidelity == Fidelity::Full).then(|| {
                            let (img, _) = self.renderer.render_strip(
                                &cam,
                                self.cfg.width,
                                self.cfg.height,
                                y0,
                                h,
                            );
                            img
                        });
                        let frame = Frame {
                            id: f,
                            strip: strip_info(i, &strip_bounds, self.cfg.height),
                            full_width: self.cfg.width,
                            image,
                        };

                        let dst = filters[i][0].core;
                        let start = t.max(filters[i][0].free);
                        let resident =
                            self.platform
                                .send_to_partition(r.core, dst, start, frame.byte_len());
                        self.platform.record_busy(r.core, start, resident);
                        strip_arrivals[i] = resident;
                        strip_frames.push(frame);
                        r.busy += resident - r.free;
                        r.free = resident;
                        r.frames += 1;
                    }
                }
                RendererMode::McpcRenderer => {
                    // The MCPC renders on its own timeline.
                    let (_, cull, coverage) = self.renderer.cull_strip(
                        &cam,
                        self.cfg.width,
                        self.cfg.height,
                        0,
                        self.cfg.height,
                    );
                    let work = RenderWork {
                        nodes_visited: cull.nodes_visited,
                        triangles_out: cull.triangles_out,
                        est_coverage: coverage,
                    };
                    let p54c_cycles = self.cost.render_cycles(&work, false);
                    let render_dur =
                        SimTime::from_secs_f64(self.cost.mcpc_render_seconds(p54c_cycles));
                    let render_done = mcpc_free + render_dur;
                    mcpc_busy += render_dur;

                    let conn = connector.as_mut().expect("MCPC mode has a connector");
                    // UDP into the connector's partition, paced by the
                    // connector being ready (receive window).
                    let send_start = render_done.max(conn.free);
                    let resident = self
                        .platform
                        .host_to_chip(conn.core, send_start, full_bytes);
                    mcpc_free = resident;

                    // Connector: fetch the frame, run the UDP/IP stack,
                    // split, fan out.
                    let idle = resident.saturating_sub(conn.free);
                    conn.idle_samples.push(idle);
                    let start = resident.max(conn.free);
                    let mut t = self
                        .platform
                        .fetch_from_partition(conn.core, start, full_bytes);
                    let cycles = self.cost.connector_cycles(full_bytes, self.cfg.pipelines)
                        + self.cost.split_cycles(full_px, self.cfg.pipelines);
                    t = self.platform.compute(conn.core, t, cycles as u64);
                    t = self
                        .platform
                        .mem_stream(conn.core, t, MemOp::Write, full_bytes);
                    self.platform.record_busy(conn.core, start, t);

                    let image = (fidelity == Fidelity::Full).then(|| {
                        let (img, _) =
                            self.renderer
                                .render_full(&cam, self.cfg.width, self.cfg.height);
                        img
                    });
                    let strips = make_strips(f, &strip_bounds, self.cfg.width, image);
                    for (i, frame) in strips.into_iter().enumerate() {
                        let dst = filters[i][0].core;
                        let start = t.max(filters[i][0].free);
                        let resident = self.platform.send_to_partition(
                            conn.core,
                            dst,
                            start,
                            frame.byte_len(),
                        );
                        self.platform.record_busy(conn.core, start, resident);
                        strip_arrivals[i] = resident;
                        strip_frames.push(frame);
                        t = resident;
                    }
                    conn.busy += t - start;
                    conn.free = t;
                    conn.frames += 1;
                }
            }

            // ---- the five filter stages of each pipeline ----
            let mut swap_arrivals: Vec<SimTime> = vec![SimTime::ZERO; p];
            for i in 0..p {
                let mut avail = strip_arrivals[i];
                let frame = &mut strip_frames[i];
                let ctx = frame.ctx(self.cfg.seed);
                let bytes = frame.byte_len();
                for j in 0..5 {
                    let (stage_core, stage_free, stage_kind) = {
                        let stage = &mut filters[i][j];
                        let idle = avail.saturating_sub(stage.free);
                        stage.idle_samples.push(idle);
                        (stage.core, stage.free, stage.kind)
                    };
                    let start = avail.max(stage_free);
                    // Fetch the strip out of this core's DRAM partition.
                    let t_fetch = self.platform.fetch_from_partition(stage_core, start, bytes);
                    if let Some(log) = trace.as_mut() {
                        log.span(
                            stage_core,
                            stage_kind,
                            Some(i as u32),
                            f,
                            Phase::Wait,
                            stage_free,
                            start,
                        );
                        log.span(
                            stage_core,
                            stage_kind,
                            Some(i as u32),
                            f,
                            Phase::Fetch,
                            start,
                            t_fetch,
                        );
                    }
                    let mut t = t_fetch;
                    // Apply (really, in full fidelity) and charge compute.
                    let cycles = match &frame.image {
                        Some(img) => {
                            let c = self.cost.filter_cycles(impls[j].as_ref(), img, &ctx);
                            // Mutate the pixels.
                            impls[j].apply(frame.image.as_mut().expect("image present"), &ctx);
                            c
                        }
                        None => {
                            // Timing-only: identical cost from a synthetic
                            // image descriptor of the same geometry.
                            let proxy = Image::new(self.cfg.width, frame.strip.height);
                            self.cost.filter_cycles(impls[j].as_ref(), &proxy, &ctx)
                        }
                    };
                    t = self.platform.compute(stage_core, t, cycles as u64);
                    if let Some(log) = trace.as_mut() {
                        log.span(
                            stage_core,
                            stage_kind,
                            Some(i as u32),
                            f,
                            Phase::Compute,
                            t_fetch,
                            t,
                        );
                    }
                    let t_compute = t;
                    // Stage-specific extra traffic through the cache model.
                    let traffic = self.cost.stage_traffic(stage_kind, bytes);
                    t = self
                        .platform
                        .mem_stream(stage_core, t, MemOp::Read, traffic.read_bytes);
                    t = self
                        .platform
                        .mem_stream(stage_core, t, MemOp::Write, traffic.write_bytes);
                    self.platform.record_busy(stage_core, start, t);
                    if let Some(log) = trace.as_mut() {
                        log.span(
                            stage_core,
                            stage_kind,
                            Some(i as u32),
                            f,
                            Phase::Memory,
                            t_compute,
                            t,
                        );
                    }

                    // Hand over to the next stage (or the transfer stage),
                    // rendezvous-paced.
                    let (next_core, next_free) = if j + 1 < 5 {
                        (filters[i][j + 1].core, filters[i][j + 1].free)
                    } else {
                        (transfer.core, transfer.free)
                    };
                    let send_start = t.max(next_free);
                    let resident = self
                        .platform
                        .send_to_partition(stage_core, next_core, send_start, bytes);
                    self.platform.record_busy(stage_core, send_start, resident);
                    if let Some(log) = trace.as_mut() {
                        log.span(
                            stage_core,
                            stage_kind,
                            Some(i as u32),
                            f,
                            Phase::Send,
                            t,
                            resident,
                        );
                    }
                    let stage = &mut filters[i][j];
                    stage.busy += resident - start;
                    stage.free = resident;
                    stage.frames += 1;
                    avail = resident;
                }
                swap_arrivals[i] = avail;
            }

            // ---- transfer: collect strips, assemble, ship to the client ----
            {
                let first_avail = swap_arrivals.iter().copied().min().unwrap();
                transfer
                    .idle_samples
                    .push(first_avail.saturating_sub(transfer.free));
                let cycle_start = transfer.free.max(first_avail);
                let mut t = transfer.free;
                for (i, &arr) in swap_arrivals.iter().enumerate() {
                    let start = arr.max(t);
                    let strip_bytes = strip_frames[i].byte_len();
                    t = self
                        .platform
                        .fetch_from_partition(transfer.core, start, strip_bytes);
                }
                t = self.platform.compute(
                    transfer.core,
                    t,
                    self.cost.assemble_cycles(full_px) as u64,
                );
                t = self
                    .platform
                    .mem_stream(transfer.core, t, MemOp::Write, full_bytes);
                let t_out = self.platform.chip_to_host(transfer.core, t, full_bytes);
                self.platform.record_busy(transfer.core, cycle_start, t_out);
                if let Some(log) = trace.as_mut() {
                    log.span(
                        transfer.core,
                        StageKind::Transfer,
                        None,
                        f,
                        Phase::Wait,
                        transfer.free,
                        cycle_start,
                    );
                    log.span(
                        transfer.core,
                        StageKind::Transfer,
                        None,
                        f,
                        Phase::Compute,
                        cycle_start,
                        t_out,
                    );
                }
                transfer.busy += t_out - cycle_start;
                transfer.free = t_out;
                transfer.frames += 1;
                finish = t_out;

                if fidelity == Fidelity::Full {
                    // The swap stage flipped each strip locally; the
                    // transfer stage places strips at mirrored positions
                    // so the client sees the globally flipped frame.
                    let strips: Vec<(StripInfo, Image)> = strip_frames
                        .iter()
                        .map(|fr| {
                            (
                                scc_filters::vswap::mirrored_info(fr.strip),
                                fr.image.clone().expect("image present"),
                            )
                        })
                        .collect();
                    outputs.push(Image::assemble(&strips));
                }
            }
        }

        // ---- reports ----
        let mut stage_reports: Vec<StageReport> = Vec::new();
        for r in &renderers {
            stage_reports.push(r.report());
        }
        if let Some(c) = &connector {
            stage_reports.push(c.report());
        }
        for pipe in &filters {
            for s in pipe {
                stage_reports.push(s.report());
            }
        }
        stage_reports.push(transfer.report());

        let power_trace = self.platform.power_trace(finish, SimTime::from_secs(1));
        let energy = self.platform.energy_joules(finish);
        WalkthroughReport {
            config: self.cfg.clone(),
            total_secs: finish.as_secs_f64(),
            stage_reports,
            power_trace,
            scc_energy_joules: energy,
            scc_idle_power: self.platform.idle_power(),
            mcpc_busy_secs: mcpc_busy.as_secs_f64(),
            platform: self.platform.stats(),
            outputs: (fidelity == Fidelity::Full).then_some(outputs),
            trace,
        }
    }
}

fn strip_info(i: usize, bounds: &[(u32, u32)], full_height: u32) -> StripInfo {
    let (y0, h) = bounds[i];
    StripInfo {
        index: i as u32,
        count: bounds.len() as u32,
        y0,
        height: h,
        full_height,
    }
}

/// Split an (optional) full frame into per-pipeline strip frames.
fn make_strips(
    frame_id: u64,
    bounds: &[(u32, u32)],
    width: u32,
    image: Option<Image>,
) -> Vec<Frame> {
    let full_height: u32 = bounds.iter().map(|(_, h)| h).sum();
    match image {
        Some(img) => img
            .split_strips(bounds.len() as u32)
            .into_iter()
            .map(|(info, strip)| Frame {
                id: frame_id,
                strip: info,
                full_width: width,
                image: Some(strip),
            })
            .collect(),
        None => (0..bounds.len())
            .map(|i| Frame {
                id: frame_id,
                strip: strip_info(i, bounds, full_height),
                full_width: width,
                image: None,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Arrangement;
    use scc_render::CityConfig;

    fn tiny_scene() -> Arc<Scene> {
        Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }))
    }

    fn quick_cfg(mode: RendererMode, pipelines: u32) -> RunConfig {
        RunConfig {
            renderer: mode,
            arrangement: Arrangement::Ordered,
            pipelines,
            width: 100,
            height: 100,
            frames: 12,
            seed: 42,
            fidelity: Fidelity::TimingOnly,
            trace: false,
        }
    }

    #[test]
    fn runs_complete_and_report_all_stages() {
        let cfg = quick_cfg(RendererMode::SingleRenderer, 2);
        let report = SimRunner::new(cfg, tiny_scene()).run();
        assert!(report.total_secs > 0.0);
        // 1 render + 2×5 filters + 1 transfer = 12 stages.
        assert_eq!(report.stage_reports.len(), 12);
        for s in &report.stage_reports {
            assert_eq!(s.frames, 12, "{:?} missed frames", s.kind);
        }
    }

    #[test]
    fn mcpc_mode_has_connector_and_mcpc_time() {
        let cfg = quick_cfg(RendererMode::McpcRenderer, 2);
        let report = SimRunner::new(cfg, tiny_scene()).run();
        assert!(report
            .stage_reports
            .iter()
            .any(|s| s.kind == StageKind::Connect));
        assert!(report.mcpc_busy_secs > 0.0);
        assert!(report.mcpc_busy_secs < report.total_secs);
    }

    #[test]
    fn more_pipelines_do_not_slow_things_down() {
        let scene = tiny_scene();
        let t1 = SimRunner::new(quick_cfg(RendererMode::McpcRenderer, 1), Arc::clone(&scene))
            .run()
            .total_secs;
        let t3 = SimRunner::new(quick_cfg(RendererMode::McpcRenderer, 3), scene)
            .run()
            .total_secs;
        assert!(t3 < t1, "3 pipelines ({t3:.3}s) should beat 1 ({t1:.3}s)");
    }

    #[test]
    fn full_fidelity_produces_frames() {
        let mut cfg = quick_cfg(RendererMode::SingleRenderer, 2);
        cfg.fidelity = Fidelity::Full;
        cfg.frames = 3;
        let report = SimRunner::new(cfg, tiny_scene()).run();
        let out = report.outputs.expect("full fidelity keeps outputs");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].width(), 100);
        assert_eq!(out[0].height(), 100);
        // Frames differ (walkthrough moves).
        assert_ne!(out[0], out[2]);
    }

    #[test]
    fn timing_identical_across_fidelity_modes() {
        // The central invariant permitting cheap sweeps: the virtual-time
        // result does not depend on whether pixels are computed.
        let scene = tiny_scene();
        let mut a = quick_cfg(RendererMode::McpcRenderer, 2);
        a.frames = 5;
        let mut b = a.clone();
        b.fidelity = Fidelity::Full;
        let ta = SimRunner::new(a, Arc::clone(&scene)).run().total_secs;
        let tb = SimRunner::new(b, scene).run().total_secs;
        assert_eq!(ta, tb, "fidelity changed virtual time");
    }

    #[test]
    fn deterministic_across_runs() {
        let scene = tiny_scene();
        let r1 = SimRunner::new(
            quick_cfg(RendererMode::PerPipelineRenderer, 3),
            Arc::clone(&scene),
        )
        .run();
        let r2 = SimRunner::new(quick_cfg(RendererMode::PerPipelineRenderer, 3), scene).run();
        assert_eq!(r1.total_secs, r2.total_secs);
        assert_eq!(r1.scc_energy_joules, r2.scc_energy_joules);
    }

    #[test]
    fn dvfs_plan_speeds_up_blur_bound_pipeline() {
        let scene = tiny_scene();
        let cfg = quick_cfg(RendererMode::McpcRenderer, 1);
        let base = SimRunner::new(cfg.clone(), Arc::clone(&scene)).run();
        let placement = place(cfg.renderer, cfg.arrangement, cfg.pipelines);
        let blur_core = placement.pipelines[0][1];
        let fast = SimRunner::with_parts(
            cfg,
            scene,
            placement,
            SccPlatform::new(SccConfig::default()),
            CostModel::default(),
            DvfsPlan {
                settings: vec![(blur_core, FreqMHz::F800)],
            },
        )
        .run();
        assert!(
            fast.total_secs < base.total_secs * 0.9,
            "blur at 800 MHz should cut the walkthrough markedly \
             ({:.3}s vs {:.3}s)",
            fast.total_secs,
            base.total_secs
        );
    }

    #[test]
    fn idle_times_collected_per_stage() {
        let report = SimRunner::new(quick_cfg(RendererMode::McpcRenderer, 3), tiny_scene()).run();
        let scratch = report
            .stage_reports
            .iter()
            .find(|s| s.kind == StageKind::Scratch && s.pipeline == Some(0))
            .unwrap();
        let blur = report
            .stage_reports
            .iter()
            .find(|s| s.kind == StageKind::Blur && s.pipeline == Some(0))
            .unwrap();
        // The cheap scratch stage waits longer than the expensive blur.
        let sq = scratch.idle_ms.expect("samples");
        let bq = blur.idle_ms.expect("samples");
        assert!(
            sq.median >= bq.median,
            "scratch median idle {:.2}ms < blur {:.2}ms",
            sq.median,
            bq.median
        );
    }

    #[test]
    fn power_trace_spans_run() {
        let report = SimRunner::new(quick_cfg(RendererMode::SingleRenderer, 2), tiny_scene()).run();
        assert!(!report.power_trace.is_empty());
        // All samples at or above idle power, and at least one above it.
        let idle = report.scc_idle_power;
        assert!(report.power_trace.iter().all(|s| s.watts >= idle - 1e-9));
        assert!(report.power_trace.iter().any(|s| s.watts > idle + 1.0));
        assert!(report.scc_energy_joules > 0.0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::spec::Arrangement;
    use crate::trace::Phase;
    use scc_render::CityConfig;

    #[test]
    fn trace_records_all_phases_when_enabled() {
        let cfg = RunConfig {
            renderer: RendererMode::McpcRenderer,
            arrangement: Arrangement::Ordered,
            pipelines: 2,
            width: 100,
            height: 100,
            frames: 6,
            seed: 1,
            fidelity: Fidelity::TimingOnly,
            trace: true,
        };
        let scene = Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }));
        let report = SimRunner::new(cfg, scene).run();
        let log = report.trace.expect("trace enabled");
        assert!(!log.is_empty());
        // Blur compute spans must dominate sepia compute spans.
        let blur = log.phase_total(StageKind::Blur, Phase::Compute);
        let sepia = log.phase_total(StageKind::Sepia, Phase::Compute);
        assert!(blur > sepia * 2);
        // Every filter stage fetched and sent each frame.
        let fetches = log
            .events()
            .iter()
            .filter(|e| e.kind == StageKind::Blur && e.phase == Phase::Fetch)
            .count();
        assert_eq!(fetches, 2 * 6, "2 pipelines x 6 frames");
        // Spans are well-formed and inside the run.
        for e in log.events() {
            assert!(e.t1 > e.t0);
            assert!(e.t1.as_secs_f64() <= report.total_secs + 1e-9);
        }
        // Chrome export is non-trivial.
        assert!(log.to_chrome_json().len() > 200);
    }

    #[test]
    fn trace_absent_when_disabled() {
        let cfg = RunConfig {
            width: 50,
            height: 50,
            frames: 2,
            pipelines: 1,
            ..RunConfig::default()
        };
        let scene = Arc::new(Scene::city(CityConfig {
            side: 6,
            spacing: 8.0,
            seed: 3,
        }));
        let report = SimRunner::new(cfg, scene).run();
        assert!(report.trace.is_none());
    }
}
