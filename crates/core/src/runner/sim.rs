//! Virtual-time execution of the parallel macro pipeline on the simulated
//! SCC.
//!
//! Every stage is a sequential process — *receive a strip, process it,
//! hand it on* — with RCCE-style rendezvous flow control: a sender blocks
//! until its receiver has finished the previous frame, so the pipeline is
//! self-clocking at the bottleneck stage's rate, exactly like the paper's
//! system. Because the stage graph is a tree processed in topological
//! order, the whole walkthrough can be timed frame-by-frame without an
//! explicit event queue while still sharing the platform's contended
//! resources (mesh links, memory controllers, host link) in timestamp
//! order.
//!
//! Message timing follows the SCC's no-local-memory path: payloads land in
//! the **receiver's DRAM partition** and are fetched back out before
//! processing (`SccPlatform::{send_to_partition, fetch_from_partition}`) —
//! the overhead the paper identifies as the platform's key weakness.

use crate::cost::{CostModel, RenderWork};
use crate::frame::Frame;
use crate::metrics::{DegradationEvent, RecoveryEvent, StageReport, WalkthroughReport};
use crate::partition::StagePlan;
use crate::placement::Placement;
use crate::spec::{FaultSpec, Fidelity, RendererMode, RunConfig, StageKind};
use crate::supervise::{resolve_kills, CheckpointRing, Supervisor, STAGE_PROVISION_BYTES};
use crate::trace::{Phase, TraceLog};
use scc_filters::{Blur, Flicker, Image, ImageFilter, Scratch, Sepia, StripInfo, VSwap};
use scc_render::{Renderer, Scene, Walkthrough};
use scc_sim::fault::{CoreStall, FaultConfig, FaultPlan, MessageOutcome};
use scc_sim::platform::MemOp;
use scc_sim::{CoreId, FreqMHz, SccConfig, SccPlatform, SimTime, HEARTBEAT_BYTES};
use scc_telemetry::{names, EventKind, TelemetrySink, IDLE_MS_BUCKETS, SECONDS_BUCKETS};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-stage runtime state. Shared with the task runtime
/// ([`crate::taskrt`]), whose ledgers keep the same shape so both
/// executors produce identical stage-report structures.
pub(crate) struct StageState {
    pub(crate) kind: StageKind,
    pub(crate) core: CoreId,
    pub(crate) pipeline: Option<u32>,
    /// Time the stage finished its previous frame (ready for the next).
    pub(crate) free: SimTime,
    pub(crate) busy: SimTime,
    pub(crate) idle_samples: Vec<SimTime>,
    pub(crate) frames: u64,
}

impl StageState {
    pub(crate) fn new(kind: StageKind, core: CoreId, pipeline: Option<u32>) -> StageState {
        StageState {
            kind,
            core,
            pipeline,
            free: SimTime::ZERO,
            busy: SimTime::ZERO,
            idle_samples: Vec::new(),
            frames: 0,
        }
    }

    pub(crate) fn report(&self) -> StageReport {
        StageReport {
            kind: self.kind,
            pipeline: self.pipeline,
            core_id: self.core.raw(),
            busy_secs: self.busy.as_secs_f64(),
            idle_ms: scc_sim::stats::Quartiles::from_times(&self.idle_samples),
            idle_total_secs: self
                .idle_samples
                .iter()
                .copied()
                .sum::<SimTime>()
                .as_secs_f64(),
            frames: self.frames,
        }
    }
}

/// DVFS directives applied before the run.
#[derive(Debug, Clone, Default)]
pub struct DvfsPlan {
    /// (core, frequency) pairs; each sets the core's whole tile.
    pub settings: Vec<(CoreId, FreqMHz)>,
}

/// Resolved fault-injection context for a run: the schedule plus the
/// retry protocol's virtual-time parameters.
#[derive(Clone)]
pub(crate) struct FaultCtx {
    pub(crate) plan: Arc<FaultPlan>,
    /// First-attempt acknowledgement window; attempt `n` waits `2^n` times
    /// as long.
    pub(crate) timeout: SimTime,
    /// Retransmissions after the first attempt.
    pub(crate) budget: u32,
    /// The run's shared telemetry sink (disabled unless
    /// `RunConfig::telemetry`); lets the ARQ and recovery paths record
    /// retries, misses, and migrations as they happen.
    pub(crate) tel: TelemetrySink,
}

impl FaultCtx {
    /// Worst-case wait across every attempt starting from `attempt`:
    /// `timeout * (2^(budget+1) - 2^attempt)`.
    pub(crate) fn patience_from(&self, attempt: u32) -> SimTime {
        self.timeout * ((1u64 << (self.budget + 1)) - (1u64 << attempt))
    }

    /// Total patience of the full retry schedule — beyond this, a silent
    /// peer is declared dead.
    pub(crate) fn horizon(&self) -> SimTime {
        self.patience_from(0)
    }

    /// Build the simulator-facing plan from a [`FaultSpec`], resolving the
    /// stall's (pipeline, stage) address to a physical core.
    pub(crate) fn from_spec(
        spec: &FaultSpec,
        placement: &Placement,
        tel: TelemetrySink,
    ) -> FaultCtx {
        let stalls = spec
            .stall
            .iter()
            .map(|s| CoreStall {
                core: placement.pipelines[s.pipeline as usize][s.stage as usize].raw(),
                at: SimTime::from_ms(s.at_ms),
                duration: if s.for_ms == u64::MAX {
                    SimTime::MAX
                } else {
                    SimTime::from_ms(s.for_ms)
                },
            })
            .collect();
        FaultCtx {
            plan: Arc::new(FaultPlan::new(FaultConfig {
                seed: spec.seed,
                drop_rate: spec.drop_rate,
                corrupt_rate: spec.corrupt_rate,
                delay_rate: spec.delay_rate,
                max_delay: SimTime::from_us(spec.max_delay_us),
                degraded_links: spec.degraded_links,
                degrade_factor: spec.degrade_factor,
                stalls,
                kills: resolve_kills(spec, placement),
            })),
            timeout: SimTime::from_us(spec.timeout_us),
            budget: spec.retry_budget,
            tel,
        }
    }
}

/// The simulated-SCC pipeline runner.
pub struct SimRunner {
    pub(crate) cfg: RunConfig,
    pub(crate) cost: CostModel,
    pub(crate) placement: Placement,
    pub(crate) plan: StagePlan,
    pub(crate) platform: SccPlatform,
    pub(crate) renderer: Arc<Renderer>,
    pub(crate) walkthrough: Walkthrough,
    pub(crate) dvfs: DvfsPlan,
    pub(crate) fault: Option<FaultCtx>,
    pub(crate) tel: TelemetrySink,
}

impl SimRunner {
    /// Build a runner with the default platform, cost model, scene and the
    /// placement implied by the configuration — the scheduler's when
    /// [`RunConfig::auto_place`] is set, else the fixed arrangement.
    pub fn new(cfg: RunConfig, scene: Arc<Scene>) -> SimRunner {
        let placement = crate::partition::placement_for(&cfg);
        SimRunner::with_parts(
            cfg,
            scene,
            placement,
            SccPlatform::new(SccConfig::default()),
            CostModel::default(),
            DvfsPlan::default(),
        )
    }

    /// Full control over every part (placement overrides for the DVFS
    /// experiment, alternative platforms or cost calibrations).
    pub fn with_parts(
        cfg: RunConfig,
        scene: Arc<Scene>,
        placement: Placement,
        platform: SccPlatform,
        cost: CostModel,
        dvfs: DvfsPlan,
    ) -> SimRunner {
        cfg.validate().expect("invalid run configuration");
        let plan = crate::partition::plan_for(&cfg);
        let walkthrough = Walkthrough::standard(cfg.width as f32 / cfg.height as f32);
        // One sink for the whole run: the frame loop, the ARQ retry
        // path, and the supervisor all record into it. Disabled (the
        // default) it is a no-op and cannot perturb anything.
        let tel = TelemetrySink::from_enabled(cfg.telemetry);
        let fault = cfg
            .fault
            .as_ref()
            .map(|s| FaultCtx::from_spec(s, &placement, tel.clone()));
        let mut platform = platform;
        if let Some(ctx) = &fault {
            platform.set_fault_plan(Arc::clone(&ctx.plan));
        }
        SimRunner {
            renderer: Arc::new(Renderer::new(scene)),
            cfg,
            cost,
            placement,
            plan,
            platform,
            walkthrough,
            dvfs,
            fault,
            tel,
        }
    }

    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Execute the walkthrough; consumes the runner.
    ///
    /// Deprecated as a front door: new code should call [`crate::run`]
    /// with [`crate::Backend::Sim`], which constructs the runner and
    /// returns the backend-independent [`crate::RunOutcome`] view.
    /// Constructing a `SimRunner` directly remains the right move for
    /// sim-only knobs such as [`SimRunner::with_parts`] DVFS plans.
    pub fn run(mut self) -> WalkthroughReport {
        // Static operating point, set before the runtime dispatch so the
        // task executor shares it. The deprecated `DvfsPlan` alias goes
        // first; the `RunConfig` power plane wins where they overlap.
        for (core, freq) in &self.dvfs.settings {
            self.platform.set_core_frequency(*core, *freq);
        }
        if let crate::spec::PowerConfig::Static(pairs) = &self.cfg.power {
            for (core, freq) in pairs {
                self.platform.set_core_frequency(*core, *freq);
            }
        }
        if self.cfg.runtime == crate::spec::Runtime::Tasks {
            return crate::taskrt::run_tasks(self, crate::taskrt::ScheduleFlavor::Sim);
        }
        // Every placed stage spin-waits on its RCCE flags when idle.
        self.platform.set_spinning(self.placement.all_cores());
        // The invariant checker walks the span log even when the caller
        // did not ask for a trace: collect internally and strip it from
        // the report afterwards. Span collection never feeds back into
        // the virtual timeline, so `verify` cannot change results. The
        // telemetry event stream is fed from the same log, so an enabled
        // sink also forces internal collection.
        let mut trace =
            (self.cfg.trace || self.cfg.verify || self.tel.is_enabled()).then(TraceLog::new);

        let p = self.cfg.pipelines as usize;
        let full = self.cfg.renderer != RendererMode::PerPipelineRenderer;
        let strip_bounds = Image::strip_bounds(self.cfg.height, self.cfg.pipelines);

        // Stage states.
        let mut renderers: Vec<StageState> = self
            .placement
            .renderers
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let pl = (!full).then_some(i as u32);
                StageState::new(StageKind::Render, *c, pl)
            })
            .collect();
        let mut connector = self
            .placement
            .connector
            .map(|c| StageState::new(StageKind::Connect, c, None));
        let mut filters: Vec<[StageState; 5]> = self
            .placement
            .pipelines
            .iter()
            .enumerate()
            .map(|(i, cores)| {
                let mk = |j: usize| {
                    StageState::new(StageKind::PIPELINE_FILTERS[j], cores[j], Some(i as u32))
                };
                [mk(0), mk(1), mk(2), mk(3), mk(4)]
            })
            .collect();
        // Replica stage states beyond each primary (scheduler placements
        // only): `extras[lane][j]` holds replicas `1..r` of stage `j`.
        // Frame `f` runs on replica `f mod r`, swapped into the primary
        // slot for the duration of the frame — the frame-major loop then
        // executes the replicated pipeline without further changes, and
        // strip ordering is preserved by construction.
        let plan = self.plan.clone();
        let mut extras: Vec<[Vec<StageState>; 5]> = (0..p)
            .map(|i| {
                let mk = |j: usize| -> Vec<StageState> {
                    self.placement
                        .replica_extras(i as u32, j)
                        .iter()
                        .map(|&c| {
                            StageState::new(StageKind::PIPELINE_FILTERS[j], c, Some(i as u32))
                        })
                        .collect()
                };
                [mk(0), mk(1), mk(2), mk(3), mk(4)]
            })
            .collect();
        let mut transfer = StageState::new(StageKind::Transfer, self.placement.transfer, None);

        // Filter implementations in stage order.
        let impls: [Box<dyn ImageFilter>; 5] = [
            Box::new(Sepia),
            Box::new(Blur::default()),
            Box::new(Scratch::default()),
            Box::new(Flicker::default()),
            Box::new(VSwap),
        ];

        let full_px = self.cfg.width as u64 * self.cfg.height as u64;
        let full_bytes = self.cfg.frame_bytes();
        let fidelity = self.cfg.fidelity;
        // Recycles the timing-only proxy allocations (one per stage per
        // frame); virtual-time accounting is oblivious to it.
        let pool = crate::pool::BufferPool::from_enabled(self.cfg.tuning.buffer_pool);

        let mut mcpc_free = SimTime::ZERO;
        let mut mcpc_busy = SimTime::ZERO;
        let mut outputs: Vec<Image> = Vec::new();
        let mut finish = SimTime::ZERO;

        // Graceful-degradation state (only exercised under injected
        // faults): which lanes have been declared dead, which lane owns
        // each strip, and the stop-and-wait sequence counters per
        // (sender, receiver) core pair.
        let mut failed: Vec<bool> = vec![false; p];
        let mut owner: Vec<usize> = (0..p).collect();
        let mut degradations: Vec<DegradationEvent> = Vec::new();
        let mut send_seqs: HashMap<(u8, u8), u64> = HashMap::new();

        // Self-healing state: the MCPC supervisor with its spare pool
        // (armed only when the fault spec schedules kills), the recovery
        // log, the spin-wait roster (migrations enroll the spare), and a
        // bounded ARQ checkpoint ring per strip for replay/restore.
        let mut recoveries: Vec<RecoveryEvent> = Vec::new();
        let mut spinning: Vec<CoreId> = self.placement.all_cores();
        let mut supervisor = self
            .cfg
            .fault
            .as_ref()
            .filter(|s| s.supervised())
            .map(|s| Supervisor::new(&self.placement, s));
        let mut healer = supervisor.as_mut().map(|sup| Healer {
            sup,
            recoveries: &mut recoveries,
            spinning: &mut spinning,
        });
        let mut checkpoints: Vec<CheckpointRing> = match &self.cfg.fault {
            Some(spec) => (0..p)
                .map(|_| CheckpointRing::new(spec.checkpoint_depth))
                .collect(),
            None => Vec::new(),
        };

        // ---- closed-loop DVFS (governed power plane) ----
        // Epoch e covers frames [eE, (e+1)E); its samples are observed at
        // the end of frame (e+1)E - 1 and the decision takes effect at
        // the top of frame (e+2)E — the one-epoch lag keeps the DES
        // backend's pipelined lookahead on an already-decided state, and
        // both backends inherit the identical frame-to-epoch mapping.
        let epoch_frames = match &self.cfg.power {
            crate::spec::PowerConfig::Governed(t) => t.epoch_frames as u64,
            crate::spec::PowerConfig::Static(_) => u64::MAX,
        };
        let mut governor = match &self.cfg.power {
            crate::spec::PowerConfig::Governed(t) => Some(
                crate::governor::Governor::new(
                    t.clone(),
                    self.platform.power_calibration().clone(),
                    self.platform.dvfs().clone(),
                )
                .protect(
                    self.placement
                        .renderers
                        .iter()
                        .copied()
                        .chain(self.placement.connector),
                ),
            ),
            crate::spec::PowerConfig::Static(_) => None,
        };
        // Piecewise-energy boundaries: the DVFS state in force from each
        // instant. A single entry (ungoverned, or governed with no moves)
        // reduces to the legacy whole-run accounting.
        let mut dvfs_schedule: Vec<(SimTime, scc_sim::DvfsState)> =
            vec![(SimTime::ZERO, self.platform.dvfs().clone())];
        let mut pending_dvfs: std::collections::VecDeque<(u64, scc_sim::DvfsState)> =
            std::collections::VecDeque::new();
        let mut epoch_mark = SimTime::ZERO;
        let mut idle_seen: HashMap<u8, SimTime> = HashMap::new();

        for f in 0..self.cfg.frames {
            let cam = self.walkthrough.camera(f);
            if let Some((at, _)) = pending_dvfs.front() {
                if *at == f {
                    let (_, state) = pending_dvfs.pop_front().expect("front checked");
                    self.platform.apply_dvfs(&state);
                    // The epoch boundary on the virtual timeline is the
                    // previous frame's transfer-out — the same instant
                    // the epoch-duration accounting uses.
                    dvfs_schedule.push((transfer.free, state));
                }
            }
            route_replicas(&plan, &mut filters, &mut extras, f);

            // ---- source: produce the P strips of frame f ----
            // For each pipeline: the time its strip is resident in the
            // sepia core's partition, plus (optionally) the pixels.
            let mut strip_arrivals: Vec<SimTime> = vec![SimTime::ZERO; p];
            let mut strip_frames: Vec<Frame> = Vec::with_capacity(p);
            // Who produced each strip — the failover path re-sends from here.
            let mut strip_sources: Vec<CoreId> = Vec::with_capacity(p);

            match self.cfg.renderer {
                RendererMode::SingleRenderer => {
                    let r = &mut renderers[0];
                    let (visible, cull, coverage) = self.renderer.cull_strip(
                        &cam,
                        self.cfg.width,
                        self.cfg.height,
                        0,
                        self.cfg.height,
                    );
                    let work = RenderWork {
                        nodes_visited: cull.nodes_visited,
                        triangles_out: cull.triangles_out,
                        est_coverage: coverage,
                    };
                    let mut t = r.free;
                    // Pull the visible scene data through the mesh.
                    let scene_bytes = self.cost.render_scene_bytes(&work);
                    let t0 = t;
                    t = self.platform.mem_raw(r.core, t, MemOp::Read, scene_bytes);
                    let cycles = self.cost.render_cycles(&work, false)
                        + self.cost.split_cycles(full_px, self.cfg.pipelines);
                    t = self.platform.compute(r.core, t, cycles as u64);
                    // Frame buffer writeback if it exceeds the L2.
                    t = self
                        .platform
                        .mem_stream(r.core, t, MemOp::Write, full_bytes);
                    self.platform.record_busy(r.core, t0, t);

                    let image = (fidelity == Fidelity::Full).then(|| {
                        let (img, _) =
                            self.renderer
                                .render_full(&cam, self.cfg.width, self.cfg.height);
                        img
                    });
                    let strips = make_strips(f, &strip_bounds, self.cfg.width, image);

                    // Fan the strips out, serialised on the render core.
                    for (i, frame) in strips.into_iter().enumerate() {
                        if let Some(ring) = checkpoints.get_mut(i) {
                            ring.push(f, frame.clone());
                        }
                        let in_flight = checkpoints.get(i).map_or(1, |r| r.unacked() as u32);
                        let (start, resident) = send_strip(
                            &mut self.platform,
                            &plan,
                            self.fault.as_ref(),
                            &mut send_seqs,
                            &mut filters,
                            &mut failed,
                            &mut owner,
                            &mut degradations,
                            &mut healer,
                            &mut trace,
                            i,
                            f,
                            r.core,
                            t,
                            frame.byte_len(),
                            in_flight,
                        );
                        self.platform.record_busy(r.core, start, resident);
                        strip_arrivals[i] = resident;
                        strip_frames.push(frame);
                        strip_sources.push(r.core);
                        t = resident;
                    }
                    r.busy += t - r.free;
                    r.free = t;
                    r.frames += 1;
                    let _ = visible;
                }
                RendererMode::PerPipelineRenderer => {
                    // Fill work per renderer: the full frame's coverage
                    // split evenly. The paper's sort-first renderers share
                    // the fill load almost perfectly (Figure 10 scales
                    // ~1/P up to 3 pipelines); charging each renderer its
                    // strip's raw coverage would instead import this
                    // scene's horizon-heavy imbalance. Culling and
                    // triangle-setup costs stay per-strip (they genuinely
                    // do not shrink with strip height).
                    let (_, _, full_coverage) = self.renderer.cull_strip(
                        &cam,
                        self.cfg.width,
                        self.cfg.height,
                        0,
                        self.cfg.height,
                    );
                    for i in 0..p {
                        let (y0, h) = strip_bounds[i];
                        let r = &mut renderers[i];
                        let (_, cull, _) =
                            self.renderer
                                .cull_strip(&cam, self.cfg.width, self.cfg.height, y0, h);
                        let work = RenderWork {
                            nodes_visited: cull.nodes_visited,
                            triangles_out: cull.triangles_out,
                            est_coverage: full_coverage / p as u64,
                        };
                        let mut t = r.free;
                        let t0 = t;
                        let scene_bytes = self.cost.render_scene_bytes(&work);
                        t = self.platform.mem_raw(r.core, t, MemOp::Read, scene_bytes);
                        let cycles = self.cost.render_cycles(&work, true);
                        t = self.platform.compute(r.core, t, cycles as u64);
                        let strip_bytes = self.cfg.width as u64 * h as u64 * 4;
                        t = self
                            .platform
                            .mem_stream(r.core, t, MemOp::Write, strip_bytes);
                        self.platform.record_busy(r.core, t0, t);

                        let image = (fidelity == Fidelity::Full).then(|| {
                            let (img, _) = self.renderer.render_strip(
                                &cam,
                                self.cfg.width,
                                self.cfg.height,
                                y0,
                                h,
                            );
                            img
                        });
                        let frame = Frame {
                            id: f,
                            strip: strip_info(i, &strip_bounds, self.cfg.height),
                            full_width: self.cfg.width,
                            image,
                        };

                        if let Some(ring) = checkpoints.get_mut(i) {
                            ring.push(f, frame.clone());
                        }
                        let in_flight = checkpoints.get(i).map_or(1, |r| r.unacked() as u32);
                        let (start, resident) = send_strip(
                            &mut self.platform,
                            &plan,
                            self.fault.as_ref(),
                            &mut send_seqs,
                            &mut filters,
                            &mut failed,
                            &mut owner,
                            &mut degradations,
                            &mut healer,
                            &mut trace,
                            i,
                            f,
                            r.core,
                            t,
                            frame.byte_len(),
                            in_flight,
                        );
                        self.platform.record_busy(r.core, start, resident);
                        strip_arrivals[i] = resident;
                        strip_frames.push(frame);
                        strip_sources.push(r.core);
                        r.busy += resident - r.free;
                        r.free = resident;
                        r.frames += 1;
                    }
                }
                RendererMode::McpcRenderer => {
                    // The MCPC renders on its own timeline.
                    let (_, cull, coverage) = self.renderer.cull_strip(
                        &cam,
                        self.cfg.width,
                        self.cfg.height,
                        0,
                        self.cfg.height,
                    );
                    let work = RenderWork {
                        nodes_visited: cull.nodes_visited,
                        triangles_out: cull.triangles_out,
                        est_coverage: coverage,
                    };
                    let p54c_cycles = self.cost.render_cycles(&work, false);
                    let render_dur =
                        SimTime::from_secs_f64(self.cost.mcpc_render_seconds(p54c_cycles));
                    let render_done = mcpc_free + render_dur;
                    mcpc_busy += render_dur;

                    let conn = connector.as_mut().expect("MCPC mode has a connector");
                    // UDP into the connector's partition, paced by the
                    // connector being ready (receive window).
                    let send_start = render_done.max(conn.free);
                    let resident = self
                        .platform
                        .host_to_chip(conn.core, send_start, full_bytes);
                    mcpc_free = resident;

                    // Connector: fetch the frame, run the UDP/IP stack,
                    // split, fan out.
                    let idle = resident.saturating_sub(conn.free);
                    conn.idle_samples.push(idle);
                    let start = resident.max(conn.free);
                    let mut t = self
                        .platform
                        .fetch_from_partition(conn.core, start, full_bytes);
                    let cycles = self.cost.connector_cycles(full_bytes, self.cfg.pipelines)
                        + self.cost.split_cycles(full_px, self.cfg.pipelines);
                    t = self.platform.compute(conn.core, t, cycles as u64);
                    t = self
                        .platform
                        .mem_stream(conn.core, t, MemOp::Write, full_bytes);
                    self.platform.record_busy(conn.core, start, t);

                    let image = (fidelity == Fidelity::Full).then(|| {
                        let (img, _) =
                            self.renderer
                                .render_full(&cam, self.cfg.width, self.cfg.height);
                        img
                    });
                    let strips = make_strips(f, &strip_bounds, self.cfg.width, image);
                    for (i, frame) in strips.into_iter().enumerate() {
                        if let Some(ring) = checkpoints.get_mut(i) {
                            ring.push(f, frame.clone());
                        }
                        let in_flight = checkpoints.get(i).map_or(1, |r| r.unacked() as u32);
                        let (send_at, resident) = send_strip(
                            &mut self.platform,
                            &plan,
                            self.fault.as_ref(),
                            &mut send_seqs,
                            &mut filters,
                            &mut failed,
                            &mut owner,
                            &mut degradations,
                            &mut healer,
                            &mut trace,
                            i,
                            f,
                            conn.core,
                            t,
                            frame.byte_len(),
                            in_flight,
                        );
                        self.platform.record_busy(conn.core, send_at, resident);
                        strip_arrivals[i] = resident;
                        strip_frames.push(frame);
                        strip_sources.push(conn.core);
                        t = resident;
                    }
                    conn.busy += t - start;
                    conn.free = t;
                    conn.frames += 1;
                }
            }

            // ---- the five filter stages of each pipeline ----
            let mut swap_arrivals: Vec<SimTime> = vec![SimTime::ZERO; p];
            for i in 0..p {
                let mut avail = strip_arrivals[i];
                let frame = &mut strip_frames[i];
                let in_flight = checkpoints.get(i).map_or(1, |r| r.unacked() as u32);
                loop {
                    let lane = owner[i];
                    match run_strip_on_lane(
                        &mut self.platform,
                        &plan,
                        &self.cost,
                        &impls,
                        &mut filters[lane],
                        lane as u32,
                        strip_sources[i],
                        transfer.core,
                        transfer.free,
                        &mut trace,
                        self.cfg.seed,
                        self.cfg.width,
                        f,
                        frame,
                        avail,
                        self.fault.as_ref(),
                        &mut send_seqs,
                        &mut healer,
                        in_flight,
                        &pool,
                        self.cfg.tuning.kernel.resolve(),
                    ) {
                        Ok(done) => {
                            swap_arrivals[i] = done;
                            break;
                        }
                        Err((j, at)) => {
                            let culprit = if j < 5 {
                                StageKind::PIPELINE_FILTERS[j].name()
                            } else {
                                StageKind::Transfer.name()
                            };
                            let adopter = mark_failed(
                                &mut failed,
                                &mut degradations,
                                &mut trace,
                                &filters,
                                lane,
                                f,
                                at,
                                j as u32,
                                format!("{culprit} unresponsive beyond retry budget"),
                            );
                            owner[i] = adopter;
                            // The source re-sends the checkpointed strip
                            // to the adopting lane and processing restarts
                            // there from scratch (the filters are
                            // deterministic in the strip's identity, so
                            // the pixels come out bit-identical).
                            *frame = checkpoints[i]
                                .get(f)
                                .expect("in-flight strip still checkpointed")
                                .clone();
                            let (_, resident) = send_strip(
                                &mut self.platform,
                                &plan,
                                self.fault.as_ref(),
                                &mut send_seqs,
                                &mut filters,
                                &mut failed,
                                &mut owner,
                                &mut degradations,
                                &mut healer,
                                &mut trace,
                                i,
                                f,
                                strip_sources[i],
                                at,
                                frame.byte_len(),
                                in_flight,
                            );
                            avail = resident;
                        }
                    }
                }
            }

            // ---- transfer: collect strips, assemble, ship to the client ----
            {
                let first_avail = swap_arrivals.iter().copied().min().unwrap();
                transfer
                    .idle_samples
                    .push(first_avail.saturating_sub(transfer.free));
                let cycle_start = transfer.free.max(first_avail);
                let mut t = transfer.free;
                for (i, &arr) in swap_arrivals.iter().enumerate() {
                    let start = arr.max(t);
                    let strip_bytes = strip_frames[i].byte_len();
                    t = self
                        .platform
                        .fetch_from_partition(transfer.core, start, strip_bytes);
                }
                t = self.platform.compute(
                    transfer.core,
                    t,
                    self.cost.assemble_cycles(full_px) as u64,
                );
                t = self
                    .platform
                    .mem_stream(transfer.core, t, MemOp::Write, full_bytes);
                let t_out = self.platform.chip_to_host(transfer.core, t, full_bytes);
                self.platform.record_busy(transfer.core, cycle_start, t_out);
                if let Some(log) = trace.as_mut() {
                    log.span(
                        transfer.core,
                        StageKind::Transfer,
                        None,
                        f,
                        Phase::Wait,
                        transfer.free,
                        cycle_start,
                    );
                    log.span(
                        transfer.core,
                        StageKind::Transfer,
                        None,
                        f,
                        Phase::Compute,
                        cycle_start,
                        t_out,
                    );
                }
                transfer.busy += t_out - cycle_start;
                transfer.free = t_out;
                transfer.frames += 1;
                // Mutation smoke test: a planted off-by-one in the
                // transfer frame ledger the invariant checker must catch.
                #[cfg(feature = "verify-selftest")]
                if f == 0 {
                    transfer.frames -= 1;
                }
                finish = t_out;

                if fidelity == Fidelity::Full {
                    // The swap stage flipped each strip locally; the
                    // transfer stage places strips at mirrored positions
                    // so the client sees the globally flipped frame.
                    let strips: Vec<(StripInfo, Image)> = strip_frames
                        .iter()
                        .map(|fr| {
                            (
                                scc_filters::vswap::mirrored_info(fr.strip),
                                fr.image.clone().expect("image present"),
                            )
                        })
                        .collect();
                    outputs.push(Image::assemble(&strips));
                }
            }

            // Frame f delivered end-to-end: release its checkpoints.
            #[cfg(not(feature = "verify-selftest"))]
            let acked = f;
            // Mutation smoke test: acknowledge one frame too few, so the
            // checkpoint ring keeps a delivered strip in flight and the
            // replay ledger drifts from the DES executor's.
            #[cfg(feature = "verify-selftest")]
            let acked = f.saturating_sub(1);
            for ring in &mut checkpoints {
                ring.ack(acked);
            }
            // Return the frame's replicas to their pool slots (swap is an
            // involution), so frame f + 1 routes from a clean layout.
            route_replicas(&plan, &mut filters, &mut extras, f);

            // ---- governed power plane: end-of-epoch observation ----
            if let Some(gov) = governor.as_mut() {
                if (f + 1) % epoch_frames == 0 {
                    let epoch_end = transfer.free;
                    let dur = (epoch_end - epoch_mark).as_secs_f64();
                    if dur > 0.0 {
                        // Stations are the placed filter stages (primaries
                        // and replicas) plus the transfer stage: the cores
                        // whose idle histogram Figure 15 plots and whose
                        // tiles the paper's §VI-D split moves.
                        let mut stations: Vec<crate::governor::StationSample> = Vec::new();
                        {
                            let mut sample = |s: &StageState| {
                                let total: SimTime = s.idle_samples.iter().copied().sum();
                                let prev = idle_seen
                                    .insert(s.core.raw(), total)
                                    .unwrap_or(SimTime::ZERO);
                                let idle = (total.saturating_sub(prev)).as_secs_f64();
                                stations.push(crate::governor::StationSample::new(
                                    s.core,
                                    idle / dur,
                                ));
                            };
                            for pipe in &filters {
                                for s in pipe {
                                    sample(s);
                                }
                            }
                            for lane in &extras {
                                for states in lane {
                                    for s in states {
                                        sample(s);
                                    }
                                }
                            }
                            sample(&transfer);
                        }
                        if let Some(state) = gov.observe_epoch(&stations) {
                            pending_dvfs.push_back((f + 1 + epoch_frames, state));
                        }
                    }
                    epoch_mark = epoch_end;
                }
            }
        }
        // Release the healer's borrows on the supervision state before
        // the report is assembled.
        let _ = healer.take();

        // The supervised run's liveness traffic: every placed core
        // heartbeats the MCPC once per period for the whole walkthrough
        // (killed cores go silent at their fail-stop). Booked after the
        // frame loop so the charges appear in the ledgers as real NoC and
        // host-link messages without re-timing completed stage work.
        if let Some(spec) = self.cfg.fault.as_ref().filter(|s| s.supervised()) {
            let fc = self
                .fault
                .as_ref()
                .expect("fault ctx exists when spec does");
            let booked = crate::supervise::book_heartbeats(
                &mut self.platform,
                &self.placement,
                &fc.plan,
                SimTime::from_us(spec.heartbeat_period_us),
                finish,
            );
            self.tel.count(names::HEARTBEATS_TOTAL, &[], booked);
        }

        // ---- reports ----
        let mut stage_reports: Vec<StageReport> = Vec::new();
        for r in &renderers {
            stage_reports.push(r.report());
        }
        if let Some(c) = &connector {
            stage_reports.push(c.report());
        }
        for pipe in &filters {
            for s in pipe {
                stage_reports.push(s.report());
            }
        }
        // Replica clones report alongside their primaries, so the frame
        // ledger still sums to pipelines x frames per stage position.
        for lane in &extras {
            for states in lane {
                for s in states {
                    stage_reports.push(s.report());
                }
            }
        }
        stage_reports.push(transfer.report());

        // Governed runs with applied moves integrate energy piecewise
        // over the schedule; everything else keeps the byte-identical
        // whole-run path.
        let (power_trace, energy, idle_floor) = if dvfs_schedule.len() > 1 {
            (
                self.platform
                    .power_trace_piecewise(&dvfs_schedule, finish, SimTime::from_secs(1)),
                self.platform.energy_joules_piecewise(&dvfs_schedule, finish),
                dvfs_schedule
                    .iter()
                    .map(|(_, s)| self.platform.idle_power_for(s))
                    .fold(f64::INFINITY, f64::min),
            )
        } else {
            (
                self.platform.power_trace(finish, SimTime::from_secs(1)),
                self.platform.energy_joules(finish),
                self.platform.idle_power(),
            )
        };

        // ---- telemetry: fold the run's ledgers into the sink ----
        // Pure observation of state the report already carries, recorded
        // after the frame loop so nothing here can perturb the timeline.
        if self.tel.is_enabled() {
            for r in &renderers {
                record_stage_telemetry(&self.tel, r);
            }
            if let Some(c) = &connector {
                record_stage_telemetry(&self.tel, c);
            }
            for pipe in &filters {
                for s in pipe {
                    record_stage_telemetry(&self.tel, s);
                }
            }
            for lane in &extras {
                for states in lane {
                    for s in states {
                        record_stage_telemetry(&self.tel, s);
                    }
                }
            }
            record_stage_telemetry(&self.tel, &transfer);
            self.tel.count(names::FRAMES_TOTAL, &[], transfer.frames);
            self.tel
                .gauge(names::WALKTHROUGH_SECONDS, &[], finish.as_secs_f64());
            self.tel.gauge(names::ENERGY_JOULES, &[], energy);
            let stats = self.platform.stats();
            self.tel
                .count(names::NOC_MESSAGES_TOTAL, &[], stats.noc_messages);
            self.tel.count(names::NOC_BYTES_TOTAL, &[], stats.noc_bytes);
            let pool_stats = pool.stats();
            self.tel
                .count(names::POOL_RECYCLED_TOTAL, &[], pool_stats.recycled);
            self.tel
                .count(names::POOL_FRESH_TOTAL, &[], pool_stats.fresh);
            self.tel
                .count(names::DEGRADATIONS_TOTAL, &[], degradations.len() as u64);
            // Degradations retire lanes one at a time, so the k-th event
            // leaves p - (k + 1) survivors.
            for (k, d) in degradations.iter().enumerate() {
                self.tel.event(
                    (d.at_secs * 1e9) as u64,
                    EventKind::Degradation {
                        pipeline: d.pipeline,
                        frame: d.frame,
                        survivors: p as u32 - (k as u32 + 1),
                    },
                );
            }
            if let Some(gov) = governor.as_ref() {
                self.tel
                    .count(names::DVFS_EPOCHS_TOTAL, &[], gov.epochs() as u64);
                self.tel
                    .count(names::DVFS_RAISES_TOTAL, &[], gov.raises() as u64);
                self.tel
                    .count(names::DVFS_THROTTLES_TOTAL, &[], gov.throttles() as u64);
                self.tel
                    .count(names::DVFS_CAP_BLOCKS_TOTAL, &[], gov.cap_blocks() as u64);
                for tile in scc_sim::TileId::all() {
                    let freq = self.platform.dvfs().tile_freq(tile);
                    if freq != FreqMHz::F533 {
                        let label = tile.raw().to_string();
                        self.tel.gauge(
                            names::DVFS_TILE_FREQ_MHZ,
                            &[("tile", &label)],
                            freq.mhz() as f64,
                        );
                    }
                }
            }
            if let Some(log) = trace.as_ref() {
                log.record_into(&self.tel);
            }
        }

        let mut report = WalkthroughReport {
            config: self.cfg.clone(),
            total_secs: finish.as_secs_f64(),
            stage_reports,
            power_trace,
            scc_energy_joules: energy,
            scc_idle_power: idle_floor,
            dvfs_decisions: governor
                .as_ref()
                .map(|g| g.decisions().to_vec())
                .unwrap_or_default(),
            mcpc_busy_secs: mcpc_busy.as_secs_f64(),
            platform: self.platform.stats(),
            degradations,
            recoveries,
            task_stats: None,
            outputs: (fidelity == Fidelity::Full).then_some(outputs),
            trace,
            telemetry: self.tel.snapshot(),
        };
        if self.cfg.verify {
            let mut violations = crate::invariant::check_report(&report);
            if let Err(e) = self.platform.audit_noc() {
                violations.push(crate::invariant::Violation::new("noc-conservation", e));
            }
            crate::invariant::enforce(&report.config, &violations);
        }
        if !self.cfg.trace {
            report.trace = None;
        }
        report
    }
}

/// Record one stage's per-run ledgers — the Figure 15 idle distribution,
/// busy time, frame count — into the sink under `{stage, pipeline}`
/// labels (`pipeline="-"` for unpipelined stages, keeping one label set
/// per metric family).
pub(crate) fn record_stage_telemetry(tel: &TelemetrySink, s: &StageState) {
    let pl = s.pipeline.map(|i| i.to_string());
    let labels = [
        ("pipeline", pl.as_deref().unwrap_or("-")),
        ("stage", s.kind.name()),
    ];
    if let Some(h) = tel.histogram(names::STAGE_IDLE_MS, &labels, IDLE_MS_BUCKETS) {
        for idle in &s.idle_samples {
            h.observe(idle.as_secs_f64() * 1e3);
        }
    }
    tel.gauge(names::STAGE_BUSY_SECONDS, &labels, s.busy.as_secs_f64());
    tel.count(names::STAGE_FRAMES_TOTAL, &labels, s.frames);
}

/// One virtual-time reliable send: each attempt rolls its own fate from
/// the fault plan; lost or corrupted attempts burn an exponentially
/// growing ack window before the retransmission. Fails (returning the
/// detection time) when the receiver is stalled beyond everything the
/// sender is still willing to wait, or when every attempt is lost.
pub(crate) fn faulted_send(
    platform: &mut SccPlatform,
    ctx: &FaultCtx,
    seqs: &mut HashMap<(u8, u8), u64>,
    from: CoreId,
    to: CoreId,
    start: SimTime,
    bytes: u64,
) -> Result<SimTime, SimTime> {
    let seq = {
        let counter = seqs.entry((from.raw(), to.raw())).or_insert(0);
        let s = *counter;
        *counter += 1;
        s
    };
    let mut t = start;
    for attempt in 0..=ctx.budget {
        if ctx.plan.dead_at(to.raw(), t) {
            // Fail-stop: a killed receiver acknowledges nothing, ever —
            // timing-wise indistinguishable from a permanent stall (the
            // sender burns the same retry schedule before giving up).
            ctx.tel.count(names::ARQ_TIMEOUTS_TOTAL, &[], 1);
            return Err(t + ctx.patience_from(attempt));
        }
        if ctx.plan.stall_remaining(to.raw(), t) > ctx.patience_from(attempt) {
            // The receiver cannot wake before the last retry window
            // closes; no ack will ever arrive.
            ctx.tel.count(names::ARQ_TIMEOUTS_TOTAL, &[], 1);
            return Err(t + ctx.patience_from(attempt));
        }
        match ctx
            .plan
            .message_outcome(from.raw() as u64, to.raw() as u64, seq, attempt)
        {
            MessageOutcome::Deliver => {
                return Ok(platform.send_to_partition(from, to, t, bytes));
            }
            MessageOutcome::Delay(d) => {
                return Ok(platform.send_to_partition(from, to, t + d, bytes));
            }
            outcome @ (MessageOutcome::Drop | MessageOutcome::Corrupt { .. }) => {
                // Lost outright, or delivered mangled and rejected by the
                // receiver's CRC check: either way no ack arrives and the
                // sender backs off.
                if matches!(outcome, MessageOutcome::Corrupt { .. }) {
                    ctx.tel.count(names::ARQ_CORRUPT_DROPS_TOTAL, &[], 1);
                }
                t += ctx.timeout * (1u64 << attempt);
                if attempt < ctx.budget {
                    ctx.tel.count(names::ARQ_RETRIES_TOTAL, &[], 1);
                    ctx.tel.event(
                        t.as_ps() / 1_000,
                        EventKind::ArqRetry {
                            from: u32::from(from.raw()),
                            to: u32::from(to.raw()),
                            attempt: attempt + 1,
                        },
                    );
                }
            }
        }
    }
    ctx.tel.count(names::ARQ_TIMEOUTS_TOTAL, &[], 1);
    Err(t)
}

/// Mutable supervision state threaded through the executor: the spare
/// pool, the recovery log, and the spin-wait roster (a migration enrolls
/// the spare core in it).
struct Healer<'a> {
    sup: &'a mut Supervisor,
    recoveries: &'a mut Vec<RecoveryEvent>,
    spinning: &'a mut Vec<CoreId>,
}

/// One supervised recovery episode for stage `j` of `lane`, whose core
/// fail-stopped at `kill_at` and tripped the data path at `observed`:
///
/// 1. *detect* — the phi detector fires once the core's heartbeat stream
///    (which travels the real mesh + host-link path) has been silent for
///    `phi_dead` periods;
/// 2. *migrate* — the MCPC provisions the next spare core over the host
///    link, concurrently with whatever the pipeline is doing;
/// 3. *replay* — `upstream` re-sends its unacknowledged strip from the
///    ARQ checkpoint once the spare is ready.
///
/// Returns the replayed strip's residency time on the migrated core, or
/// `None` when no supervisor is armed, the spare pool is exhausted, or
/// the replay itself dies — the caller then falls back to PR-1 graceful
/// degradation with its exact timing.
#[allow(clippy::too_many_arguments)]
fn try_recover(
    platform: &mut SccPlatform,
    plan: &StagePlan,
    fc: &FaultCtx,
    seqs: &mut HashMap<(u8, u8), u64>,
    healer: &mut Option<Healer>,
    lane_states: &mut [StageState; 5],
    lane: u32,
    j: usize,
    upstream: CoreId,
    kill_at: SimTime,
    observed: SimTime,
    f: u64,
    bytes: u64,
    in_flight: u32,
    trace: &mut Option<TraceLog>,
) -> Option<SimTime> {
    let h = healer.as_mut()?;
    let spare = h.sup.take_spare()?;
    let failed_core = lane_states[j].core;
    let hb_latency = platform.host_path_latency(failed_core, HEARTBEAT_BYTES);
    let detected = h.sup.detect_time(kill_at, hb_latency);
    let ready = platform.host_to_chip(spare, detected, STAGE_PROVISION_BYTES);
    // Replay cannot start before the spare is provisioned *and* the data
    // path has actually hit the dead core (the frame-major executor
    // observes the kill at `observed`).
    let resend_at = ready.max(observed);
    let resident = faulted_send(platform, fc, seqs, upstream, spare, resend_at, bytes).ok()?;
    // A merged group lives and dies with its one core: every sibling
    // stage it hosted migrates to the spare alongside stage `j`.
    for sib in plan.groups[plan.group_of(j)].stages() {
        if lane_states[sib].core == failed_core {
            lane_states[sib].core = spare;
            lane_states[sib].free = ready;
        }
    }
    lane_states[j].core = spare;
    lane_states[j].free = ready;
    h.spinning.push(spare);
    platform.set_spinning(h.spinning.clone());
    let mttr = resident.saturating_sub(kill_at).as_secs_f64();
    h.recoveries.push(RecoveryEvent {
        frame: f,
        pipeline: lane,
        stage: lane_states[j].kind,
        failed_core: failed_core.raw(),
        migration_target: spare.raw(),
        killed_at_secs: kill_at.as_secs_f64(),
        detected_at_secs: detected.as_secs_f64(),
        resumed_at_secs: resident.as_secs_f64(),
        frames_replayed: in_flight,
        mttr_secs: mttr,
    });
    fc.tel.event(
        detected.as_ps() / 1_000,
        EventKind::HeartbeatMiss {
            core: u32::from(failed_core.raw()),
            suspicion: h.sup.phi_dead(),
        },
    );
    fc.tel.event(
        resident.as_ps() / 1_000,
        EventKind::Migration {
            stage: lane_states[j].kind.name(),
            pipeline: lane,
            from_core: u32::from(failed_core.raw()),
            to_core: u32::from(spare.raw()),
            frames_replayed: in_flight,
        },
    );
    fc.tel.count(names::HEARTBEAT_MISSES_TOTAL, &[], 1);
    fc.tel.count(names::MIGRATIONS_TOTAL, &[], 1);
    fc.tel
        .count(names::FRAMES_REPLAYED_TOTAL, &[], u64::from(in_flight));
    fc.tel
        .observe(names::MTTR_SECONDS, &[], SECONDS_BUCKETS, mttr);
    if let Some(log) = trace.as_mut() {
        log.span(
            spare,
            lane_states[j].kind,
            Some(lane),
            f,
            Phase::Migrate,
            detected,
            resident,
        );
    }
    Some(resident)
}

/// The next pipeline after `from` (wrapping) that has not failed.
/// Panics when none survives: with every lane dead the walkthrough
/// genuinely cannot be delivered.
fn next_healthy(failed: &[bool], from: usize) -> usize {
    let p = failed.len();
    (1..p)
        .map(|k| (from + k) % p)
        .find(|&k| !failed[k])
        .expect("no surviving pipeline to adopt the strip")
}

/// Declare `lane` failed, record the degradation decision, and return the
/// adopting lane.
#[allow(clippy::too_many_arguments)]
fn mark_failed(
    failed: &mut [bool],
    degradations: &mut Vec<DegradationEvent>,
    trace: &mut Option<TraceLog>,
    filters: &[[StageState; 5]],
    lane: usize,
    frame: u64,
    at: SimTime,
    failed_stage: u32,
    reason: String,
) -> usize {
    failed[lane] = true;
    let adopter = next_healthy(failed, lane);
    degradations.push(DegradationEvent {
        frame,
        pipeline: lane as u32,
        reassigned_to: adopter as u32,
        at_secs: at.as_secs_f64(),
        failed_stage,
        reason,
    });
    if let Some(log) = trace.as_mut() {
        log.span(
            filters[lane][0].core,
            StageKind::PIPELINE_FILTERS[0],
            Some(lane as u32),
            frame,
            Phase::Degrade,
            at,
            at + SimTime::from_us(1),
        );
    }
    adopter
}

/// Route strip `strip` of frame `f` from `src` into its owner lane's
/// first filter stage. A send that gives up on a fail-stopped receiver
/// first tries a supervised recovery (migrate the stage to a spare and
/// replay); only when that is impossible does the strip fail over to the
/// next surviving lane. Returns the send's (start, resident-in-partition)
/// times.
#[allow(clippy::too_many_arguments)]
fn send_strip(
    platform: &mut SccPlatform,
    plan: &StagePlan,
    fault: Option<&FaultCtx>,
    seqs: &mut HashMap<(u8, u8), u64>,
    filters: &mut [[StageState; 5]],
    failed: &mut [bool],
    owner: &mut [usize],
    degradations: &mut Vec<DegradationEvent>,
    healer: &mut Option<Healer>,
    trace: &mut Option<TraceLog>,
    strip: usize,
    f: u64,
    src: CoreId,
    t: SimTime,
    bytes: u64,
    in_flight: u32,
) -> (SimTime, SimTime) {
    let Some(fc) = fault else {
        let start = t.max(filters[strip][0].free);
        let resident = platform.send_to_partition(src, filters[strip][0].core, start, bytes);
        return (start, resident);
    };
    let mut t = t;
    loop {
        let lane = owner[strip];
        let start = t.max(filters[lane][0].free);
        match faulted_send(platform, fc, seqs, src, filters[lane][0].core, start, bytes) {
            Ok(resident) => return (start, resident),
            Err(at) => {
                if let Some(kill_at) = fc
                    .plan
                    .kill_time(filters[lane][0].core.raw())
                    .filter(|&k| k <= at)
                {
                    // The supervisor's redirect pre-empts the sender's
                    // remaining retry patience: the replay is gated on
                    // detection + provisioning, not on ARQ exhaustion —
                    // so the observation point is the send's start.
                    if let Some(resident) = try_recover(
                        platform,
                        plan,
                        fc,
                        seqs,
                        healer,
                        &mut filters[lane],
                        lane as u32,
                        0,
                        src,
                        kill_at,
                        start,
                        f,
                        bytes,
                        in_flight,
                        trace,
                    ) {
                        return (start, resident);
                    }
                }
                let adopter = mark_failed(
                    failed,
                    degradations,
                    trace,
                    filters,
                    lane,
                    f,
                    at,
                    0,
                    format!(
                        "{} unresponsive beyond retry budget",
                        StageKind::PIPELINE_FILTERS[0].name()
                    ),
                );
                owner[strip] = adopter;
                t = at;
            }
        }
    }
}

/// A walk that aborts mid-chain skips the end-of-walk clock sync in
/// [`run_strip_on_lane`], but the core time it already spent is real:
/// re-align every multi-stage group to its latest member clock, and
/// floor the group of `active` — the stage whose core was still busy
/// (retrying a dead handoff) when the abort was detected — at the
/// detection time `at`. Without this, the next strip walked on this
/// lane pipelines into busy spans the merged core has already emitted,
/// which a single core cannot do (the trace-overlap invariant catches
/// exactly that).
fn sync_group_clocks_on_abort(
    plan: &StagePlan,
    lane_states: &mut [StageState; 5],
    active: usize,
    at: SimTime,
) {
    for g in &plan.groups {
        if g.len > 1 {
            let mut group_free = if g.stages().contains(&active) {
                at
            } else {
                SimTime::ZERO
            };
            for j in g.stages() {
                group_free = group_free.max(lane_states[j].free);
            }
            for j in g.stages() {
                lane_states[j].free = group_free;
            }
        }
    }
}

/// Run one strip through the five filter stages of `lane_states`,
/// charging virtual time exactly like the healthy inline path. Under
/// faults, sends use the retry protocol; a fail-stopped stage triggers a
/// supervised in-place migration to a spare core (the loop re-enters the
/// same stage on its new core), while a stage stalled beyond the full
/// retry horizon — or a kill with the spare pool exhausted — aborts with
/// `Err((stage index, detection time))` so the caller can fail the lane
/// over. `source` is the strip's producer, the replay upstream for a
/// stage-0 migration.
#[allow(clippy::too_many_arguments)]
fn run_strip_on_lane(
    platform: &mut SccPlatform,
    plan: &StagePlan,
    cost: &CostModel,
    impls: &[Box<dyn ImageFilter>; 5],
    lane_states: &mut [StageState; 5],
    lane: u32,
    source: CoreId,
    transfer_core: CoreId,
    transfer_free: SimTime,
    trace: &mut Option<TraceLog>,
    run_seed: u64,
    width: u32,
    f: u64,
    frame: &mut Frame,
    avail_in: SimTime,
    fault: Option<&FaultCtx>,
    seqs: &mut HashMap<(u8, u8), u64>,
    healer: &mut Option<Healer>,
    in_flight: u32,
    pool: &crate::pool::BufferPool,
    backend: scc_filters::KernelBackend,
) -> Result<SimTime, (usize, SimTime)> {
    let ctx = frame.ctx(run_seed);
    let bytes = frame.byte_len();
    let mut avail = avail_in;
    let mut j = 0;
    while j < 5 {
        let (stage_core, stage_free, stage_kind) = (
            lane_states[j].core,
            lane_states[j].free,
            lane_states[j].kind,
        );
        // Inside a merged group the strip never leaves the core: the
        // previous stage's output is already local, so there is no idle
        // wait, no fetch, and (below) no send for the handoff.
        let merged_prev = plan.merged_with_prev(j);
        let start = avail.max(stage_free);
        if let Some(fc) = fault {
            // A fail-stopped stage with a strip already resident: migrate
            // and re-enter this stage index on the spare core.
            if let Some(kill_at) = fc.plan.kill_time(stage_core.raw()).filter(|&k| k <= start) {
                let upstream = if j == 0 {
                    source
                } else {
                    lane_states[j - 1].core
                };
                match try_recover(
                    platform,
                    plan,
                    fc,
                    seqs,
                    healer,
                    lane_states,
                    lane,
                    j,
                    upstream,
                    kill_at,
                    start,
                    f,
                    bytes,
                    in_flight,
                    trace,
                ) {
                    Some(resident) => {
                        avail = resident;
                        continue;
                    }
                    None => {
                        let at = start + fc.horizon();
                        sync_group_clocks_on_abort(plan, lane_states, j, at);
                        return Err((j, at));
                    }
                }
            }
            // The upstream sender's retransmissions go unanswered while
            // this core is stalled; past the full horizon it is declared
            // dead before any more virtual time is sunk into it.
            if fc.plan.stall_remaining(stage_core.raw(), start) > fc.horizon() {
                let at = start + fc.horizon();
                sync_group_clocks_on_abort(plan, lane_states, j, at);
                return Err((j, at));
            }
        }
        lane_states[j].idle_samples.push(if merged_prev {
            SimTime::ZERO
        } else {
            avail.saturating_sub(stage_free)
        });
        // Fetch the strip out of this core's DRAM partition (a merged
        // stage's input is already resident from its in-group
        // predecessor).
        let t_fetch = if merged_prev {
            start
        } else {
            platform.fetch_from_partition(stage_core, start, bytes)
        };
        if let Some(log) = trace.as_mut() {
            if !merged_prev {
                log.span(
                    stage_core,
                    stage_kind,
                    Some(lane),
                    f,
                    Phase::Wait,
                    stage_free,
                    start,
                );
                log.span(
                    stage_core,
                    stage_kind,
                    Some(lane),
                    f,
                    Phase::Fetch,
                    start,
                    t_fetch,
                );
            }
        }
        let mut t = t_fetch;
        // Apply (really, in full fidelity) and charge compute.
        let cycles = match &frame.image {
            Some(img) => {
                let c = cost.filter_cycles(impls[j].as_ref(), img, &ctx);
                // Mutate the pixels through the configured kernel backend
                // (bit-identical to scalar; the charge above is unchanged —
                // the cost model prices P54C cycles, not host instructions).
                impls[j].apply_vectored(
                    frame.image.as_mut().expect("image present"),
                    &ctx,
                    backend,
                    1,
                );
                c
            }
            None => {
                // Timing-only: identical cost from a synthetic image
                // descriptor of the same geometry, drawn from (and
                // immediately returned to) the buffer pool.
                let proxy = pool.acquire(width, frame.strip.height);
                let c = cost.filter_cycles(impls[j].as_ref(), &proxy, &ctx);
                pool.release(proxy);
                c
            }
        };
        t = platform.compute(stage_core, t, cycles as u64);
        if let Some(log) = trace.as_mut() {
            log.span(
                stage_core,
                stage_kind,
                Some(lane),
                f,
                Phase::Compute,
                t_fetch,
                t,
            );
        }
        let t_compute = t;
        // Stage-specific extra traffic through the cache model.
        let traffic = cost.stage_traffic(stage_kind, bytes);
        t = platform.mem_stream(stage_core, t, MemOp::Read, traffic.read_bytes);
        t = platform.mem_stream(stage_core, t, MemOp::Write, traffic.write_bytes);
        platform.record_busy(stage_core, start, t);
        if let Some(log) = trace.as_mut() {
            log.span(
                stage_core,
                stage_kind,
                Some(lane),
                f,
                Phase::Memory,
                t_compute,
                t,
            );
        }

        // Hand over to the next stage (or the transfer stage),
        // rendezvous-paced. A handoff to the next stage of the same
        // merged group stays on-core: no rendezvous, no message, nothing
        // for the fault plan to touch.
        let resident = if j + 1 < 5 && plan.merged_with_prev(j + 1) {
            t
        } else {
            match run_strip_handoff(
                platform,
                lane_states,
                lane,
                transfer_core,
                transfer_free,
                trace,
                f,
                bytes,
                fault,
                seqs,
                healer,
                plan,
                in_flight,
                j,
                stage_core,
                stage_kind,
                start,
                t,
            ) {
                Ok(resident) => resident,
                Err((failed, at)) => {
                    // The *sender* (stage j) burned the retry horizon on
                    // its core before the receiver was declared dead.
                    sync_group_clocks_on_abort(plan, lane_states, j, at);
                    return Err((failed, at));
                }
            }
        };
        let stage = &mut lane_states[j];
        stage.busy += resident - start;
        stage.free = resident;
        stage.frames += 1;
        avail = resident;
        j += 1;
    }
    // Merged groups share one core: once the frame clears the group,
    // every member is next free when the group's last stage is — without
    // this, the group's first stage could start frame f + 1 while the
    // core is still finishing frame f's tail stages.
    for g in &plan.groups {
        if g.len > 1 {
            let group_free = lane_states[g.start + g.len - 1].free;
            for j in g.stages() {
                lane_states[j].free = group_free;
            }
        }
    }
    Ok(avail)
}

/// The rendezvous-paced handoff of stage `j`'s finished strip to its
/// downstream — the next stage's core for this frame, or the transfer
/// stage. Extracted from [`run_strip_on_lane`] so merged groups can skip
/// it wholesale; returns the strip's residency downstream, or the
/// degradation abort `(failed stage, detection time)`.
#[allow(clippy::too_many_arguments)]
fn run_strip_handoff(
    platform: &mut SccPlatform,
    lane_states: &mut [StageState; 5],
    lane: u32,
    transfer_core: CoreId,
    transfer_free: SimTime,
    trace: &mut Option<TraceLog>,
    f: u64,
    bytes: u64,
    fault: Option<&FaultCtx>,
    seqs: &mut HashMap<(u8, u8), u64>,
    healer: &mut Option<Healer>,
    plan: &StagePlan,
    in_flight: u32,
    j: usize,
    stage_core: CoreId,
    stage_kind: StageKind,
    start: SimTime,
    t: SimTime,
) -> Result<SimTime, (usize, SimTime)> {
    let (next_core, next_free) = if j + 1 < 5 {
        (lane_states[j + 1].core, lane_states[j + 1].free)
    } else {
        (transfer_core, transfer_free)
    };
    let send_start = t.max(next_free);
    let resident = match fault {
        Some(fc) => {
            match faulted_send(platform, fc, seqs, stage_core, next_core, send_start, bytes) {
                Ok(r) => r,
                Err(at) => {
                    // A fail-stopped downstream filter stage: migrate
                    // it and land the replayed strip on the spare.
                    // (The transfer stage, j+1 == 5, is never a kill
                    // target.) Otherwise blame the receiving stage —
                    // it is the one not acking.
                    let kill = if j + 1 < 5 {
                        fc.plan.kill_time(next_core.raw()).filter(|&k| k <= at)
                    } else {
                        None
                    };
                    // As in `send_strip`: the redirect pre-empts
                    // the remaining ARQ patience, so the replay is
                    // observed from the send's start.
                    let recovered = kill.and_then(|kill_at| {
                        try_recover(
                            platform,
                            plan,
                            fc,
                            seqs,
                            healer,
                            lane_states,
                            lane,
                            j + 1,
                            stage_core,
                            kill_at,
                            send_start,
                            f,
                            bytes,
                            in_flight,
                            trace,
                        )
                    });
                    match recovered {
                        Some(r) => r,
                        None => {
                            // This stage finished its pass — only the
                            // handoff failed — so it books the strip,
                            // and it stays occupied through the futile
                            // retransmission window: `free` must reach
                            // the ARQ's give-up time or the lane's next
                            // strip would overlap this one on the same
                            // core. `failed_stage` is j+1 and the
                            // ledger stays uniform across both
                            // detection sites.
                            let stage = &mut lane_states[j];
                            stage.frames += 1;
                            stage.busy += at.saturating_sub(start);
                            stage.free = at;
                            platform.record_busy(stage_core, send_start, at);
                            if let Some(log) = trace.as_mut() {
                                log.span(stage_core, stage_kind, Some(lane), f, Phase::Send, t, at);
                            }
                            return Err((j + 1, at));
                        }
                    }
                }
            }
        }
        None => platform.send_to_partition(stage_core, next_core, send_start, bytes),
    };
    platform.record_busy(stage_core, send_start, resident);
    if let Some(log) = trace.as_mut() {
        log.span(
            stage_core,
            stage_kind,
            Some(lane),
            f,
            Phase::Send,
            t,
            resident,
        );
    }
    Ok(resident)
}

/// Swap the frame's replica (`f mod r`) of every replicated stage into
/// the primary slot. The swap is an involution: calling it again at the
/// end of the frame restores the pool layout.
fn route_replicas(
    plan: &StagePlan,
    filters: &mut [[StageState; 5]],
    extras: &mut [[Vec<StageState>; 5]],
    f: u64,
) {
    for (lane, ex) in filters.iter_mut().zip(extras.iter_mut()) {
        for j in 0..5 {
            let r = u64::from(plan.replicas_of(j));
            if r > 1 {
                let k = (f % r) as usize;
                if k > 0 {
                    std::mem::swap(&mut lane[j], &mut ex[j][k - 1]);
                }
            }
        }
    }
}

pub(crate) fn strip_info(i: usize, bounds: &[(u32, u32)], full_height: u32) -> StripInfo {
    let (y0, h) = bounds[i];
    StripInfo {
        index: i as u32,
        count: bounds.len() as u32,
        y0,
        height: h,
        full_height,
    }
}

/// Split an (optional) full frame into per-pipeline strip frames.
pub(crate) fn make_strips(
    frame_id: u64,
    bounds: &[(u32, u32)],
    width: u32,
    image: Option<Image>,
) -> Vec<Frame> {
    let full_height: u32 = bounds.iter().map(|(_, h)| h).sum();
    match image {
        Some(img) => img
            .split_strips(bounds.len() as u32)
            .into_iter()
            .map(|(info, strip)| Frame {
                id: frame_id,
                strip: info,
                full_width: width,
                image: Some(strip),
            })
            .collect(),
        None => (0..bounds.len())
            .map(|i| Frame {
                id: frame_id,
                strip: strip_info(i, bounds, full_height),
                full_width: width,
                image: None,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::place;
    use crate::spec::Arrangement;
    use scc_render::CityConfig;

    fn tiny_scene() -> Arc<Scene> {
        Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }))
    }

    fn quick_cfg(mode: RendererMode, pipelines: u32) -> RunConfig {
        RunConfig::builder()
            .renderer(mode)
            .arrangement(Arrangement::Ordered)
            .pipelines(pipelines)
            .size(100, 100)
            .frames(12)
            .seed(42)
            .fidelity(Fidelity::TimingOnly)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn runs_complete_and_report_all_stages() {
        let cfg = quick_cfg(RendererMode::SingleRenderer, 2);
        let report = SimRunner::new(cfg, tiny_scene()).run();
        assert!(report.total_secs > 0.0);
        // 1 render + 2×5 filters + 1 transfer = 12 stages.
        assert_eq!(report.stage_reports.len(), 12);
        for s in &report.stage_reports {
            assert_eq!(s.frames, 12, "{:?} missed frames", s.kind);
        }
    }

    #[test]
    fn mcpc_mode_has_connector_and_mcpc_time() {
        let cfg = quick_cfg(RendererMode::McpcRenderer, 2);
        let report = SimRunner::new(cfg, tiny_scene()).run();
        assert!(report
            .stage_reports
            .iter()
            .any(|s| s.kind == StageKind::Connect));
        assert!(report.mcpc_busy_secs > 0.0);
        assert!(report.mcpc_busy_secs < report.total_secs);
    }

    #[test]
    fn more_pipelines_do_not_slow_things_down() {
        let scene = tiny_scene();
        let t1 = SimRunner::new(quick_cfg(RendererMode::McpcRenderer, 1), Arc::clone(&scene))
            .run()
            .total_secs;
        let t3 = SimRunner::new(quick_cfg(RendererMode::McpcRenderer, 3), scene)
            .run()
            .total_secs;
        assert!(t3 < t1, "3 pipelines ({t3:.3}s) should beat 1 ({t1:.3}s)");
    }

    #[test]
    fn full_fidelity_produces_frames() {
        let mut cfg = quick_cfg(RendererMode::SingleRenderer, 2);
        cfg.fidelity = Fidelity::Full;
        cfg.frames = 3;
        let report = SimRunner::new(cfg, tiny_scene()).run();
        let out = report.outputs.expect("full fidelity keeps outputs");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].width(), 100);
        assert_eq!(out[0].height(), 100);
        // Frames differ (walkthrough moves).
        assert_ne!(out[0], out[2]);
    }

    #[test]
    fn timing_identical_across_fidelity_modes() {
        // The central invariant permitting cheap sweeps: the virtual-time
        // result does not depend on whether pixels are computed.
        let scene = tiny_scene();
        let mut a = quick_cfg(RendererMode::McpcRenderer, 2);
        a.frames = 5;
        let mut b = a.clone();
        b.fidelity = Fidelity::Full;
        let ta = SimRunner::new(a, Arc::clone(&scene)).run().total_secs;
        let tb = SimRunner::new(b, scene).run().total_secs;
        assert_eq!(ta, tb, "fidelity changed virtual time");
    }

    #[test]
    fn deterministic_across_runs() {
        let scene = tiny_scene();
        let r1 = SimRunner::new(
            quick_cfg(RendererMode::PerPipelineRenderer, 3),
            Arc::clone(&scene),
        )
        .run();
        let r2 = SimRunner::new(quick_cfg(RendererMode::PerPipelineRenderer, 3), scene).run();
        assert_eq!(r1.total_secs, r2.total_secs);
        assert_eq!(r1.scc_energy_joules, r2.scc_energy_joules);
    }

    #[test]
    fn dvfs_plan_speeds_up_blur_bound_pipeline() {
        let scene = tiny_scene();
        let cfg = quick_cfg(RendererMode::McpcRenderer, 1);
        let base = SimRunner::new(cfg.clone(), Arc::clone(&scene)).run();
        let placement = place(cfg.renderer, cfg.arrangement, cfg.pipelines);
        let blur_core = placement.pipelines[0][1];
        let fast = SimRunner::with_parts(
            cfg,
            scene,
            placement,
            SccPlatform::new(SccConfig::default()),
            CostModel::default(),
            DvfsPlan {
                settings: vec![(blur_core, FreqMHz::F800)],
            },
        )
        .run();
        assert!(
            fast.total_secs < base.total_secs * 0.9,
            "blur at 800 MHz should cut the walkthrough markedly \
             ({:.3}s vs {:.3}s)",
            fast.total_secs,
            base.total_secs
        );
    }

    #[test]
    fn idle_times_collected_per_stage() {
        let report = SimRunner::new(quick_cfg(RendererMode::McpcRenderer, 3), tiny_scene()).run();
        let scratch = report
            .stage_reports
            .iter()
            .find(|s| s.kind == StageKind::Scratch && s.pipeline == Some(0))
            .unwrap();
        let blur = report
            .stage_reports
            .iter()
            .find(|s| s.kind == StageKind::Blur && s.pipeline == Some(0))
            .unwrap();
        // The cheap scratch stage waits longer than the expensive blur.
        let sq = scratch.idle_ms.expect("samples");
        let bq = blur.idle_ms.expect("samples");
        assert!(
            sq.median >= bq.median,
            "scratch median idle {:.2}ms < blur {:.2}ms",
            sq.median,
            bq.median
        );
    }

    #[test]
    fn quiet_fault_plan_changes_nothing() {
        // An installed fault plan with all rates at zero and no stall must
        // be a perfect identity on the virtual timeline.
        let scene = tiny_scene();
        let base = SimRunner::new(
            quick_cfg(RendererMode::SingleRenderer, 2),
            Arc::clone(&scene),
        )
        .run();
        let mut cfg = quick_cfg(RendererMode::SingleRenderer, 2);
        cfg.fault = Some(crate::spec::FaultSpec::default());
        let quiet = SimRunner::new(cfg, scene).run();
        assert_eq!(base.total_secs, quiet.total_secs);
        assert_eq!(base.scc_energy_joules, quiet.scc_energy_joules);
        assert_eq!(base.platform.noc_messages, quiet.platform.noc_messages);
        assert!(quiet.degradations.is_empty());
    }

    #[test]
    fn chaos_run_delivers_every_frame_bit_identical() {
        // The headline acceptance scenario: 1% flit loss plus one filter
        // core stalled forever. The walkthrough must still deliver every
        // frame, pixel-for-pixel equal to the clean run, with the failover
        // recorded.
        use crate::spec::StallSpec;
        let scene = tiny_scene();
        let mut clean = quick_cfg(RendererMode::SingleRenderer, 3);
        clean.fidelity = Fidelity::Full;
        clean.frames = 4;
        let reference = SimRunner::new(clean.clone(), Arc::clone(&scene)).run();

        let mut chaos = clean.clone();
        chaos.fault = Some(FaultSpec {
            drop_rate: 0.01,
            stall: Some(StallSpec {
                pipeline: 1,
                stage: 2,
                at_ms: 0,
                for_ms: u64::MAX,
            }),
            ..FaultSpec::default()
        });
        let report = SimRunner::new(chaos, scene).run();

        assert!(
            !report.degradations.is_empty(),
            "the stalled scratch core must trigger a failover"
        );
        assert_eq!(report.degradations[0].pipeline, 1);
        assert_ne!(report.degradations[0].reassigned_to, 1);
        let want = reference.outputs.expect("clean frames");
        let got = report.outputs.expect("chaos frames");
        assert_eq!(got.len(), want.len(), "a frame was lost under faults");
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                crate::viz::frame_checksum(a),
                crate::viz::frame_checksum(b),
                "frame {i} differs from the clean run"
            );
        }
        // Degradation costs time: the chaos run cannot be faster.
        assert!(report.total_secs >= reference.total_secs);
    }

    #[test]
    fn same_fault_seed_means_identical_fingerprints() {
        use crate::spec::StallSpec;
        let scene = tiny_scene();
        let mut cfg = quick_cfg(RendererMode::PerPipelineRenderer, 3);
        cfg.fidelity = Fidelity::Full;
        cfg.frames = 3;
        cfg.fault = Some(FaultSpec {
            drop_rate: 0.05,
            corrupt_rate: 0.02,
            delay_rate: 0.1,
            degraded_links: 3,
            degrade_factor: 0.5,
            stall: Some(StallSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 1,
                for_ms: u64::MAX,
            }),
            ..FaultSpec::default()
        });
        let a = SimRunner::new(cfg.clone(), Arc::clone(&scene)).run();
        let b = SimRunner::new(cfg, scene).run();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(!a.degradations.is_empty());
        assert_eq!(a.degradations, b.degradations);
    }

    #[test]
    fn killed_stage_recovers_on_spare_bit_identical() {
        // The tentpole acceptance scenario: a mid-pipeline core
        // fail-stops, the supervisor detects it via the heartbeat stream,
        // migrates the stage to a spare core, replays the in-flight strip
        // — and the delivered film is bit-identical to the fault-free run
        // with no graceful-degradation fallback.
        use crate::spec::KillSpec;
        let scene = tiny_scene();
        let mut clean = quick_cfg(RendererMode::SingleRenderer, 2);
        clean.fidelity = Fidelity::Full;
        clean.frames = 4;
        let reference = SimRunner::new(clean.clone(), Arc::clone(&scene)).run();

        let mut cfg = clean.clone();
        cfg.fault = Some(FaultSpec {
            kills: vec![KillSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 1,
            }],
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        });
        let report = SimRunner::new(cfg.clone(), scene).run();

        assert_eq!(report.recoveries.len(), 1, "exactly one recovery episode");
        assert!(report.degradations.is_empty(), "no fallback needed");
        let ev = &report.recoveries[0];
        let placement = place(cfg.renderer, cfg.arrangement, cfg.pipelines);
        assert_eq!(ev.pipeline, 0);
        assert_eq!(ev.stage, StageKind::Blur);
        assert_eq!(ev.failed_core, placement.pipelines[0][1].raw());
        assert_eq!(
            ev.migration_target,
            placement.spare_pool()[0].raw(),
            "first spare in id order"
        );
        assert!(ev.killed_at_secs <= ev.detected_at_secs);
        assert!(ev.detected_at_secs <= ev.resumed_at_secs);
        assert!(ev.mttr_secs > 0.0 && ev.mttr_secs.is_finite());
        assert_eq!(ev.frames_replayed, 1);

        // The migrated stage finishes the walkthrough on the spare core
        // and still processes every frame.
        let blur = report.stage(StageKind::Blur, Some(0)).unwrap();
        assert_eq!(blur.core_id, ev.migration_target);
        assert_eq!(blur.frames, 4);

        let want = reference.outputs.expect("clean frames");
        let got = report.outputs.as_ref().expect("recovered frames");
        assert_eq!(got.len(), want.len());
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                crate::viz::frame_checksum(a),
                crate::viz::frame_checksum(b),
                "frame {i} differs after recovery"
            );
        }
        // The repair itself takes real virtual time (the walkthrough may
        // still end up faster or slower overall — the spare's mesh
        // position differs from the dead core's), and the fingerprint is
        // reproducible.
        assert!(ev.resumed_at_secs > ev.killed_at_secs);
        let again = SimRunner::new(cfg, tiny_scene()).run();
        assert_eq!(report.fingerprint(), again.fingerprint());
    }

    #[test]
    fn kill_without_spares_degrades_exactly_like_a_permanent_stall() {
        // With the spare pool exhausted (max_spares = 0), a fail-stopped
        // core must fall back to PR-1 graceful degradation with *exactly*
        // the timing of a permanent stall at the same instant: same
        // walkthrough time, same degradation log, same pixels. (Platform
        // ledgers differ: the supervised run carries heartbeat traffic.)
        use crate::spec::{KillSpec, StallSpec};
        let scene = tiny_scene();
        let mut base = quick_cfg(RendererMode::SingleRenderer, 3);
        base.fidelity = Fidelity::Full;
        base.frames = 4;

        let mut killed = base.clone();
        killed.fault = Some(FaultSpec {
            kills: vec![KillSpec {
                pipeline: 1,
                stage: 2,
                at_ms: 0,
            }],
            max_spares: 0,
            ..FaultSpec::default()
        });
        let mut stalled = base;
        stalled.fault = Some(FaultSpec {
            stall: Some(StallSpec {
                pipeline: 1,
                stage: 2,
                at_ms: 0,
                for_ms: u64::MAX,
            }),
            ..FaultSpec::default()
        });

        let k = SimRunner::new(killed, Arc::clone(&scene)).run();
        let s = SimRunner::new(stalled, scene).run();

        assert!(k.recoveries.is_empty(), "no spares means no migration");
        assert!(!k.degradations.is_empty(), "fallback must engage");
        assert_eq!(k.total_secs, s.total_secs, "kill != stall(forever) timing");
        assert_eq!(k.degradations, s.degradations);
        let ka = k.outputs.expect("frames");
        let sa = s.outputs.expect("frames");
        assert_eq!(ka.len(), sa.len());
        for (a, b) in ka.iter().zip(&sa) {
            assert_eq!(crate::viz::frame_checksum(a), crate::viz::frame_checksum(b));
        }
        // The supervised run's heartbeats are real ledger traffic.
        assert!(k.platform.noc_messages > s.platform.noc_messages);
    }

    #[test]
    fn auto_placement_verifies_clean_and_matches_fixed_film() {
        // The scheduler placement (merged tail + replicated blur) must
        // deliver the same film bit-for-bit, pass every invariant
        // (verify panics inside run on a violation), and not lose
        // throughput against the paper's fixed arrangement.
        let scene = tiny_scene();
        let mut fixed = quick_cfg(RendererMode::SingleRenderer, 2);
        fixed.fidelity = Fidelity::Full;
        fixed.frames = 6;
        fixed.verify = true;
        let mut auto = fixed.clone();
        auto.auto_place = true;
        let a = SimRunner::new(fixed, Arc::clone(&scene)).run();
        let b = SimRunner::new(auto.clone(), scene).run();
        assert_eq!(
            a.outputs.expect("fixed frames"),
            b.outputs.expect("auto frames"),
            "auto placement changed the film"
        );
        assert!(
            b.total_secs <= a.total_secs * 1.01,
            "auto ({:.3}s) must not lose to fixed ({:.3}s)",
            b.total_secs,
            a.total_secs
        );
        // Replicated blur means more blur stage reports than lanes.
        let blurs = b
            .stage_reports
            .iter()
            .filter(|s| s.kind == StageKind::Blur)
            .count();
        assert!(blurs > 2, "expected blur replicas, saw {blurs} reports");
        // And each stage position still accounts for every strip.
        for kind in StageKind::PIPELINE_FILTERS {
            let sum: u64 = b
                .stage_reports
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.frames)
                .sum();
            assert_eq!(sum, 12, "{} ledger", kind.name());
        }
    }

    #[test]
    fn power_trace_spans_run() {
        let report = SimRunner::new(quick_cfg(RendererMode::SingleRenderer, 2), tiny_scene()).run();
        assert!(!report.power_trace.is_empty());
        // All samples at or above idle power, and at least one above it.
        let idle = report.scc_idle_power;
        assert!(report.power_trace.iter().all(|s| s.watts >= idle - 1e-9));
        assert!(report.power_trace.iter().any(|s| s.watts > idle + 1.0));
        assert!(report.scc_energy_joules > 0.0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::spec::Arrangement;
    use crate::trace::Phase;
    use scc_render::CityConfig;

    #[test]
    fn trace_records_all_phases_when_enabled() {
        let cfg = RunConfig::builder()
            .renderer(RendererMode::McpcRenderer)
            .arrangement(Arrangement::Ordered)
            .pipelines(2)
            .size(100, 100)
            .frames(6)
            .seed(1)
            .fidelity(Fidelity::TimingOnly)
            .trace(true)
            .build()
            .expect("valid test config");
        let scene = Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }));
        let report = SimRunner::new(cfg, scene).run();
        let log = report.trace.expect("trace enabled");
        assert!(!log.is_empty());
        // Blur compute spans must dominate sepia compute spans.
        let blur = log.phase_total(StageKind::Blur, Phase::Compute);
        let sepia = log.phase_total(StageKind::Sepia, Phase::Compute);
        assert!(blur > sepia * 2);
        // Every filter stage fetched and sent each frame.
        let fetches = log
            .events()
            .iter()
            .filter(|e| e.kind == StageKind::Blur && e.phase == Phase::Fetch)
            .count();
        assert_eq!(fetches, 2 * 6, "2 pipelines x 6 frames");
        // Spans are well-formed and inside the run.
        for e in log.events() {
            assert!(e.t1 > e.t0);
            assert!(e.t1.as_secs_f64() <= report.total_secs + 1e-9);
        }
        // Chrome export is non-trivial.
        assert!(log.to_chrome_json().len() > 200);
    }

    #[test]
    fn trace_absent_when_disabled() {
        let cfg = RunConfig {
            width: 50,
            height: 50,
            frames: 2,
            pipelines: 1,
            ..RunConfig::default()
        };
        let scene = Arc::new(Scene::city(CityConfig {
            side: 6,
            spacing: 8.0,
            seed: 3,
        }));
        let report = SimRunner::new(cfg, scene).run();
        assert!(report.trace.is_none());
    }
}

// The governor's convergence behaviour (which tiles it raises, which
// islands it throttles, sim/DES decision-trace equality) is pinned by
// the dedicated suite in `tests/governor_convergence.rs`.
