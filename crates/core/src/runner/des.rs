//! Event-driven cross-validation executor.
//!
//! [`super::sim::SimRunner`] computes stage timelines frame-major, relying
//! on the time-bucketed resource ledger to tolerate out-of-order platform
//! bookings. This module is an *independent* implementation of the same
//! rendezvous pipeline semantics as a dependency-driven discrete-event
//! simulation on [`scc_sim::EventQueue`]: nodes are `(stage, frame)` work
//! items, scheduled once all their dependencies (input arrival, own
//! previous frame, downstream readiness) resolve, and executed in
//! nondecreasing start-time order — so platform bookings happen almost
//! exactly in virtual-time order.
//!
//! The two executors share only the platform and cost models; the pipeline
//! logic is written twice on purpose. `tests/` asserts they agree within a
//! small tolerance, which guards both implementations against scheduling
//! bugs. (Single-renderer configurations only — enough to exercise every
//! rendezvous pattern: fan-out, chains, fan-in.)

use crate::cost::{CostModel, RenderWork};
use crate::metrics::RecoveryEvent;
use crate::partition::StagePlan;
use crate::placement::Placement;
use crate::spec::{Fidelity, RendererMode, RunConfig, StageKind};
use crate::supervise::{resolve_kills, Supervisor, STAGE_PROVISION_BYTES};
use scc_filters::{Blur, Flicker, Image, ImageFilter, Scratch, Sepia, VSwap};
use scc_render::{Renderer, Scene, Walkthrough};
use scc_sim::fault::{CoreKill, FaultConfig, FaultPlan};
use scc_sim::platform::MemOp;
use scc_sim::{CoreId, EventQueue, SccConfig, SccPlatform, SimTime, HEARTBEAT_BYTES};
use scc_telemetry::{names, EventKind, TelemetrySink, IDLE_MS_BUCKETS, SECONDS_BUCKETS};
use std::collections::HashMap;
use std::sync::Arc;

/// A work item: one stage processing one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Render(u64),
    /// (pipeline, stage index 0..5, frame)
    Filter(usize, usize, u64),
    Transfer(u64),
}

/// Resolved timing facts other nodes consume.
#[derive(Debug, Default, Clone, Copy)]
struct Facts {
    /// When the stage finished its cycle (ready for the next frame).
    free: SimTime,
    /// When this node's output became resident downstream (per-target for
    /// the renderer this is folded into `arrivals`).
    _done: SimTime,
}

/// Minimal result of a DES run.
#[derive(Debug, Clone)]
pub struct DesReport {
    pub total_secs: f64,
    /// Assembled output frames (full fidelity only) — lets the
    /// differential suite compare the DES data path bit-for-bit against
    /// the other runners.
    pub frames: Option<Vec<Image>>,
    /// Supervised kill recoveries, in detection order — the DES
    /// counterpart of [`crate::metrics::WalkthroughReport::recoveries`],
    /// so the differential suite can cross-check the migration timeline.
    pub recoveries: Vec<RecoveryEvent>,
    /// Metrics and events recorded during the run
    /// ([`RunConfig::telemetry`]); `None` when telemetry is off.
    pub telemetry: Option<scc_telemetry::Snapshot>,
    /// Closed-loop DVFS decision trace, one entry per observed epoch
    /// (empty unless [`crate::spec::PowerConfig::Governed`]) — byte-
    /// comparable against the frame-major executor's trace.
    pub dvfs_decisions: Vec<crate::governor::GovernorDecision>,
}

/// The kill schedule entry for `core`, if any.
fn kill_time(kills: &[CoreKill], core: CoreId) -> Option<SimTime> {
    kills.iter().find(|k| k.core == core.raw()).map(|k| k.at)
}

/// Execute `cfg` (must be `SingleRenderer`) event-wise.
///
/// Deprecated in favour of the facade: new code should call
/// [`crate::run`] with [`crate::Backend::Des`], which wraps this entry
/// point unchanged and returns the backend-independent
/// [`crate::RunOutcome`] view. Kept public for callers that want the
/// raw [`DesReport`] alone.
pub fn run_des(cfg: &RunConfig, scene: Arc<Scene>) -> DesReport {
    if cfg.runtime == crate::spec::Runtime::Tasks {
        // The task runtime has one engine; the DES flavor drives it with a
        // different schedule (steal-RNG stream, idle-scan order) so the
        // differential suite can prove the film and the conservation
        // ledgers are schedule-independent.
        let report = crate::taskrt::run_tasks(
            super::sim::SimRunner::new(cfg.clone(), scene),
            crate::taskrt::ScheduleFlavor::Des,
        );
        return DesReport {
            total_secs: report.total_secs,
            frames: report.outputs,
            recoveries: report.recoveries,
            telemetry: report.telemetry,
            dvfs_decisions: report.dvfs_decisions,
        };
    }
    assert_eq!(
        cfg.renderer,
        RendererMode::SingleRenderer,
        "the DES validator covers the single-renderer configuration"
    );
    cfg.validate().expect("invalid configuration");
    let cost = CostModel::default();
    let mut platform = SccPlatform::new(SccConfig::default());
    let placement: Placement = crate::partition::placement_for(cfg);
    let plan: StagePlan = crate::partition::plan_for(cfg);
    let mut spinning = placement.all_cores();
    platform.set_spinning(spinning.clone());
    // ---- power plane ----
    // Static pairs pin the operating point up front; the governed plane
    // closes the loop on the event timeline with the same control law and
    // epoch mapping as the frame-major executor: epoch `e` covers frames
    // [eE, (e+1)E), is observed when its last transfer completes, and its
    // decision takes effect at epoch `e + 2` — always already decided by
    // the time the pipelined lookahead reaches those frames.
    if let crate::spec::PowerConfig::Static(pairs) = &cfg.power {
        for (core, freq) in pairs {
            platform.set_core_frequency(*core, *freq);
        }
    }
    let epoch_frames = match &cfg.power {
        crate::spec::PowerConfig::Governed(t) => t.epoch_frames as u64,
        crate::spec::PowerConfig::Static(_) => u64::MAX,
    };
    let mut governor = match &cfg.power {
        crate::spec::PowerConfig::Governed(t) => Some(
            crate::governor::Governor::new(
                t.clone(),
                platform.power_calibration().clone(),
                platform.dvfs().clone(),
            )
            .protect(placement.renderers.iter().copied().chain(placement.connector)),
        ),
        crate::spec::PowerConfig::Static(_) => None,
    };
    // epoch_states[e] = the DVFS state in force for epoch e's frames;
    // epochs 0 and 1 run on the initial state, observation of epoch e
    // appends the state for epoch e + 2. Frames past the last decided
    // epoch clamp to the newest state.
    let mut epoch_states: Vec<scc_sim::DvfsState> = if governor.is_some() {
        vec![platform.dvfs().clone(), platform.dvfs().clone()]
    } else {
        Vec::new()
    };
    let mut dvfs_schedule: Vec<(SimTime, scc_sim::DvfsState)> =
        vec![(SimTime::ZERO, platform.dvfs().clone())];
    let mut epoch_mark = SimTime::ZERO;
    // Per-epoch, per-station idle seconds — filled by filter and transfer
    // nodes as they execute (out of frame order), read at epoch close.
    let mut idle_by_epoch: HashMap<u64, HashMap<u8, f64>> = HashMap::new();
    // Supervision: the DES validator models *supervised fail-stop kills*
    // only — message-level faults, stalls, and the spare-exhausted
    // degradation fallback are the frame-major executor's domain.
    let kills: Vec<CoreKill> = cfg
        .fault
        .as_ref()
        .map(|s| {
            assert!(
                s.stall.is_none()
                    && s.drop_rate == 0.0
                    && s.corrupt_rate == 0.0
                    && s.delay_rate == 0.0
                    && s.degraded_links == 0,
                "the DES validator models supervised fail-stop kills only"
            );
            resolve_kills(s, &placement)
        })
        .unwrap_or_default();
    let mut supervisor = cfg
        .fault
        .as_ref()
        .filter(|s| s.supervised())
        .map(|s| Supervisor::new(&placement, s));
    // Stage-to-core mapping, mutable so a migration can re-home a stage
    // onto a spare; every node indexes this instead of the placement.
    // `reps[i][j]` lists the cores serving stage `j` of lane `i`: the
    // primary first, then the scheduler's replica extras — frame `f` is
    // handled by `reps[i][j][f % r]`, which preserves strip order within
    // the lane by construction.
    let mut reps: Vec<Vec<Vec<CoreId>>> = placement
        .pipelines
        .iter()
        .enumerate()
        .map(|(i, lane)| {
            (0..5)
                .map(|j| {
                    let mut v = vec![lane[j]];
                    v.extend_from_slice(placement.replica_extras(i as u32, j));
                    v
                })
                .collect()
        })
        .collect();
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    // Shared observation sink; disabled (the default) it records nothing
    // and the DES timeline is bit-identical to pre-telemetry builds.
    let tel = TelemetrySink::from_enabled(cfg.telemetry);
    let renderer = Renderer::new(scene);
    let walkthrough = Walkthrough::standard(cfg.width as f32 / cfg.height as f32);
    let impls: [Box<dyn ImageFilter>; 5] = [
        Box::new(Sepia),
        Box::new(Blur::default()),
        Box::new(Scratch::default()),
        Box::new(Flicker::default()),
        Box::new(VSwap),
    ];
    let p = cfg.pipelines as usize;
    let frames = cfg.frames;
    let bounds = Image::strip_bounds(cfg.height, cfg.pipelines);
    let full_px = cfg.width as u64 * cfg.height as u64;
    let full_bytes = cfg.frame_bytes();
    // Full fidelity carries real pixels alongside the timing facts.
    let full_fidelity = cfg.fidelity == Fidelity::Full;
    let mut strip_images: HashMap<(usize, u64), Image> = HashMap::new();
    let mut outputs: HashMap<u64, Image> = HashMap::new();

    // Scheduler-plan strides: a replicated stage advances its own clock
    // once every `r` frames (replica `f % r`), and a merged stage
    // serializes on its group's *last* member — the shared core runs the
    // whole group frame-major, so frame `f` may only begin once frame
    // `f - r` has cleared the group tail.
    let r_of = |j: usize| u64::from(plan.replicas_of(j));
    let same_core_hop = |j: usize| j + 1 < 5 && plan.merged_with_prev(j + 1);
    // Dependency counts per node; a node becomes schedulable at 0.
    let mut pending: HashMap<Node, u32> = HashMap::new();
    let deps_of = |node: Node| -> Vec<Node> {
        let mut d = Vec::new();
        match node {
            Node::Render(f) => {
                if f > 0 {
                    d.push(Node::Render(f - 1));
                }
                // Sends rendezvous with the receiving replica's previous
                // cycle (stride r for a replicated first stage).
                let r0 = r_of(0);
                if f >= r0 {
                    for i in 0..p {
                        d.push(Node::Filter(i, 0, f - r0));
                    }
                }
            }
            Node::Filter(i, j, f) => {
                // Input arrival.
                if j == 0 {
                    d.push(Node::Render(f));
                } else {
                    d.push(Node::Filter(i, j - 1, f));
                }
                // Own previous cycle, via the group serialization point.
                let r = r_of(j);
                if f >= r {
                    d.push(Node::Filter(i, plan.last_of_group(j), f - r));
                }
                // Downstream readiness — skipped when the next hop stays
                // on this core (the strip is already resident, there is
                // no rendezvous to wait for).
                if j + 1 < 5 {
                    let rn = r_of(j + 1);
                    if f >= rn && !same_core_hop(j) {
                        d.push(Node::Filter(i, j + 1, f - rn));
                    }
                } else if f > 0 {
                    d.push(Node::Transfer(f - 1));
                }
            }
            Node::Transfer(f) => {
                for i in 0..p {
                    d.push(Node::Filter(i, 4, f));
                }
                if f > 0 {
                    d.push(Node::Transfer(f - 1));
                }
            }
        }
        d
    };

    let mut all_nodes: Vec<Node> = Vec::new();
    for f in 0..frames {
        all_nodes.push(Node::Render(f));
        for i in 0..p {
            for j in 0..5 {
                all_nodes.push(Node::Filter(i, j, f));
            }
        }
        all_nodes.push(Node::Transfer(f));
    }
    let mut dependents: HashMap<Node, Vec<Node>> = HashMap::new();
    for &n in &all_nodes {
        let deps = deps_of(n);
        pending.insert(n, deps.len() as u32);
        for d in deps {
            dependents.entry(d).or_default().push(n);
        }
    }

    // Resolved facts.
    let mut facts: HashMap<Node, Facts> = HashMap::new();
    // Arrival time of each filter/transfer input (per node).
    let mut arrivals: HashMap<Node, SimTime> = HashMap::new();
    // Transfer collects one arrival per pipeline.
    let mut transfer_arrivals: HashMap<u64, Vec<SimTime>> = HashMap::new();

    // Earliest-start of a node once schedulable.
    let start_of =
        |node: Node, facts: &HashMap<Node, Facts>, arrivals: &HashMap<Node, SimTime>| -> SimTime {
            match node {
                Node::Render(f) => {
                    if f == 0 {
                        SimTime::ZERO
                    } else {
                        facts[&Node::Render(f - 1)].free
                    }
                }
                Node::Filter(i, j, f) => {
                    let r = u64::from(plan.replicas_of(j));
                    let own = if f < r {
                        SimTime::ZERO
                    } else {
                        facts[&Node::Filter(i, plan.last_of_group(j), f - r)].free
                    };
                    arrivals[&node].max(own)
                }
                Node::Transfer(f) => {
                    if f == 0 {
                        SimTime::ZERO
                    } else {
                        facts[&Node::Transfer(f - 1)].free
                    }
                }
            }
        };

    let mut queue: EventQueue<Node> = EventQueue::new();
    // Seed the initially-ready nodes.
    for (&n, &c) in &pending {
        if c == 0 {
            queue.schedule(SimTime::ZERO, n);
        }
    }

    let mut finish = SimTime::ZERO;
    let mut executed = 0usize;
    while let Some((_, node)) = queue.pop() {
        // Governed runs look the frequency up per node: the platform
        // reads the DVFS state at call time, so setting the node's epoch
        // state here gives every (stage, frame) the same work-to-frequency
        // mapping the frame-major executor applies at epoch boundaries.
        if !epoch_states.is_empty() {
            let f = match node {
                Node::Render(f) | Node::Filter(_, _, f) | Node::Transfer(f) => f,
            };
            let e = (f / epoch_frames) as usize;
            let s = epoch_states
                .get(e)
                .unwrap_or_else(|| epoch_states.last().expect("seeded with two epochs"));
            platform.apply_dvfs(s);
        }
        match node {
            Node::Render(f) => {
                let cam = walkthrough.camera(f);
                let core = placement.renderers[0];
                let (_, cull, coverage) =
                    renderer.cull_strip(&cam, cfg.width, cfg.height, 0, cfg.height);
                let work = RenderWork {
                    nodes_visited: cull.nodes_visited,
                    triangles_out: cull.triangles_out,
                    est_coverage: coverage,
                };
                let mut t = start_of(node, &facts, &arrivals);
                let t0 = t;
                t = platform.mem_raw(core, t, MemOp::Read, cost.render_scene_bytes(&work));
                let cycles =
                    cost.render_cycles(&work, false) + cost.split_cycles(full_px, cfg.pipelines);
                t = platform.compute(core, t, cycles as u64);
                t = platform.mem_stream(core, t, MemOp::Write, full_bytes);
                platform.record_busy(core, t0, t);
                if full_fidelity {
                    let (img, _) = renderer.render_full(&cam, cfg.width, cfg.height);
                    for (info, strip) in img.split_strips(cfg.pipelines) {
                        strip_images.insert((info.index as usize, f), strip);
                    }
                }
                let r0 = u64::from(plan.replicas_of(0));
                for (i, (_, h)) in bounds.iter().enumerate() {
                    let bytes = cfg.width as u64 * *h as u64 * 4;
                    let dst = reps[i][0][(f % r0) as usize];
                    let recv_free = if f < r0 {
                        SimTime::ZERO
                    } else {
                        facts[&Node::Filter(i, 0, f - r0)].free
                    };
                    let send_start = t.max(recv_free);
                    let resident = platform.send_to_partition(core, dst, send_start, bytes);
                    platform.record_busy(core, send_start, resident);
                    arrivals.insert(Node::Filter(i, 0, f), resident);
                    t = resident;
                }
                facts.insert(node, Facts { free: t, _done: t });
            }
            Node::Filter(i, j, f) => {
                let r = u64::from(plan.replicas_of(j));
                let rep = (f % r) as usize;
                let merged_prev = plan.merged_with_prev(j);
                let mut core = reps[i][j][rep];
                let kind = StageKind::PIPELINE_FILTERS[j];
                let (_, h) = bounds[i];
                let bytes = cfg.width as u64 * h as u64 * 4;
                let mut start = start_of(node, &facts, &arrivals);
                if tel.is_enabled() || governor.is_some() {
                    let own_free = if merged_prev {
                        // Same-core input: the stage was never idle, it
                        // picked the strip up the instant it appeared.
                        start
                    } else if f < r {
                        SimTime::ZERO
                    } else {
                        facts[&Node::Filter(i, plan.last_of_group(j), f - r)].free
                    };
                    let idle = start.saturating_sub(own_free);
                    if tel.is_enabled() {
                        let pl = i.to_string();
                        tel.observe(
                            names::STAGE_IDLE_MS,
                            &[("pipeline", pl.as_str()), ("stage", kind.name())],
                            IDLE_MS_BUCKETS,
                            idle.as_secs_f64() * 1e3,
                        );
                    }
                    if governor.is_some() {
                        *idle_by_epoch
                            .entry(f / epoch_frames)
                            .or_default()
                            .entry(core.raw())
                            .or_insert(0.0) += idle.as_secs_f64();
                    }
                }
                if let Some(kill_at) = kill_time(&kills, core).filter(|&k| k <= start) {
                    // Fail-stop observed with the strip already resident:
                    // detect via the heartbeat path, provision the next
                    // spare over the host link, and replay the upstream's
                    // unacknowledged strip — the same detect → migrate →
                    // replay timeline as the frame-major executor.
                    let sup = supervisor
                        .as_mut()
                        .expect("a DES kill run must arm the supervisor");
                    let spare = sup
                        .take_spare()
                        .expect("the DES validator requires a spare for every kill");
                    let hb_latency = platform.host_path_latency(core, HEARTBEAT_BYTES);
                    let detected = sup.detect_time(kill_at, hb_latency);
                    let ready = platform.host_to_chip(spare, detected, STAGE_PROVISION_BYTES);
                    // Replay comes from the merged group's *external*
                    // upstream — internal inputs died with the core.
                    let g0 = plan.groups[plan.group_of(j)].start;
                    let upstream = if g0 == 0 {
                        placement.renderers[0]
                    } else {
                        reps[i][g0 - 1][(f % r_of(g0 - 1)) as usize]
                    };
                    let resend_at = ready.max(start);
                    let resident = platform.send_to_partition(upstream, spare, resend_at, bytes);
                    // A merged group lives and dies with its one core:
                    // every sibling stage re-homes to the spare with it.
                    for sib in plan.groups[plan.group_of(j)].stages() {
                        reps[i][sib][rep] = spare;
                    }
                    spinning.push(spare);
                    platform.set_spinning(spinning.clone());
                    let mttr = resident.saturating_sub(kill_at).as_secs_f64();
                    recoveries.push(RecoveryEvent {
                        frame: f,
                        pipeline: i as u32,
                        stage: kind,
                        failed_core: core.raw(),
                        migration_target: spare.raw(),
                        killed_at_secs: kill_at.as_secs_f64(),
                        detected_at_secs: detected.as_secs_f64(),
                        resumed_at_secs: resident.as_secs_f64(),
                        frames_replayed: 1,
                        mttr_secs: mttr,
                    });
                    tel.event(
                        detected.as_ps() / 1_000,
                        EventKind::HeartbeatMiss {
                            core: u32::from(core.raw()),
                            suspicion: sup.phi_dead(),
                        },
                    );
                    tel.event(
                        resident.as_ps() / 1_000,
                        EventKind::Migration {
                            stage: kind.name(),
                            pipeline: i as u32,
                            from_core: u32::from(core.raw()),
                            to_core: u32::from(spare.raw()),
                            frames_replayed: 1,
                        },
                    );
                    tel.count(names::HEARTBEAT_MISSES_TOTAL, &[], 1);
                    tel.count(names::MIGRATIONS_TOTAL, &[], 1);
                    tel.count(names::FRAMES_REPLAYED_TOTAL, &[], 1);
                    tel.observe(names::MTTR_SECONDS, &[], SECONDS_BUCKETS, mttr);
                    core = spare;
                    start = resident;
                }
                let mut t = if merged_prev {
                    // Same-core input: already resident, no MPB fetch.
                    start
                } else {
                    platform.fetch_from_partition(core, start, bytes)
                };
                let proxy = Image::new(cfg.width, h);
                let ctx = scc_filters::FrameCtx {
                    frame_id: f,
                    run_seed: cfg.seed,
                    strip: scc_filters::StripInfo {
                        index: i as u32,
                        count: cfg.pipelines,
                        y0: bounds[i].0,
                        height: h,
                        full_height: cfg.height,
                    },
                    full_width: cfg.width,
                };
                let cycles = cost.filter_cycles(impls[j].as_ref(), &proxy, &ctx);
                if full_fidelity {
                    // Backend-dispatched but bit-identical to scalar; the
                    // cycle charge above is backend-independent.
                    let img = strip_images.get_mut(&(i, f)).expect("strip rendered");
                    impls[j].apply_vectored(img, &ctx, cfg.tuning.kernel.resolve(), 1);
                }
                t = platform.compute(core, t, cycles as u64);
                let traffic = cost.stage_traffic(kind, bytes);
                t = platform.mem_stream(core, t, MemOp::Read, traffic.read_bytes);
                t = platform.mem_stream(core, t, MemOp::Write, traffic.write_bytes);
                platform.record_busy(core, start, t);
                let resident = if same_core_hop(j) {
                    // Next stage shares this core: the strip stays put,
                    // there is no send and no rendezvous.
                    t
                } else {
                    let (next_core, next_free) = if j + 1 < 5 {
                        let rn = u64::from(plan.replicas_of(j + 1));
                        (
                            reps[i][j + 1][(f % rn) as usize],
                            if f < rn {
                                SimTime::ZERO
                            } else {
                                facts[&Node::Filter(i, j + 1, f - rn)].free
                            },
                        )
                    } else {
                        (
                            placement.transfer,
                            if f == 0 {
                                SimTime::ZERO
                            } else {
                                facts[&Node::Transfer(f - 1)].free
                            },
                        )
                    };
                    let send_start = t.max(next_free);
                    let resident = platform.send_to_partition(core, next_core, send_start, bytes);
                    platform.record_busy(core, send_start, resident);
                    resident
                };
                if j + 1 < 5 {
                    arrivals.insert(Node::Filter(i, j + 1, f), resident);
                } else {
                    transfer_arrivals.entry(f).or_default().push(resident);
                }
                facts.insert(
                    node,
                    Facts {
                        free: resident,
                        _done: resident,
                    },
                );
            }
            Node::Transfer(f) => {
                let core = placement.transfer;
                // Collect strips in pipeline order, mirroring SimRunner.
                let mut arr = transfer_arrivals.remove(&f).expect("all strips arrived");
                arr.sort();
                let own_free = start_of(node, &facts, &arrivals);
                let cycle_start = own_free.max(arr[0]);
                if tel.is_enabled() {
                    tel.observe(
                        names::STAGE_IDLE_MS,
                        &[("pipeline", "-"), ("stage", StageKind::Transfer.name())],
                        IDLE_MS_BUCKETS,
                        cycle_start.saturating_sub(own_free).as_secs_f64() * 1e3,
                    );
                }
                if governor.is_some() {
                    *idle_by_epoch
                        .entry(f / epoch_frames)
                        .or_default()
                        .entry(core.raw())
                        .or_insert(0.0) += cycle_start.saturating_sub(own_free).as_secs_f64();
                }
                let mut t = own_free;
                for (i, &a) in arr.iter().enumerate() {
                    let strip_bytes = cfg.width as u64 * bounds[i].1 as u64 * 4;
                    let s = a.max(t);
                    t = platform.fetch_from_partition(core, s, strip_bytes);
                }
                t = platform.compute(core, t, cost.assemble_cycles(full_px) as u64);
                t = platform.mem_stream(core, t, MemOp::Write, full_bytes);
                let t_out = platform.chip_to_host(core, t, full_bytes);
                platform.record_busy(core, cycle_start, t_out);
                if full_fidelity {
                    let strips: Vec<(scc_filters::StripInfo, Image)> = (0..p)
                        .map(|i| {
                            let info = scc_filters::StripInfo {
                                index: i as u32,
                                count: cfg.pipelines,
                                y0: bounds[i].0,
                                height: bounds[i].1,
                                full_height: cfg.height,
                            };
                            (
                                scc_filters::vswap::mirrored_info(info),
                                strip_images.remove(&(i, f)).expect("strip processed"),
                            )
                        })
                        .collect();
                    outputs.insert(f, Image::assemble(&strips));
                }
                facts.insert(
                    node,
                    Facts {
                        free: t_out,
                        _done: t_out,
                    },
                );
                finish = t_out;

                // ---- governed power plane: end-of-epoch observation ----
                // The epoch's last transfer is its close: every filter
                // node of its frames has already executed (they are all
                // transitive dependencies), so the idle bucket is full.
                if let Some(gov) = governor.as_mut() {
                    if (f + 1) % epoch_frames == 0 {
                        let e = f / epoch_frames;
                        let dur = (t_out - epoch_mark).as_secs_f64();
                        let bucket = idle_by_epoch.remove(&e).unwrap_or_default();
                        let mut by_core: Vec<(u8, f64)> = bucket.into_iter().collect();
                        by_core.sort_by_key(|(c, _)| *c);
                        let stations: Vec<crate::governor::StationSample> = if dur > 0.0 {
                            by_core
                                .into_iter()
                                .map(|(c, idle)| {
                                    crate::governor::StationSample::new(CoreId::new(c), idle / dur)
                                })
                                .collect()
                        } else {
                            Vec::new()
                        };
                        gov.observe_epoch(&stations);
                        // The decision from epoch e governs epoch e + 2.
                        epoch_states.push(gov.state().clone());
                        // Epoch e + 1's (already decided) state takes
                        // force at this boundary on the virtual timeline.
                        let e_next = ((f + 1) / epoch_frames) as usize;
                        let active = epoch_states
                            .get(e_next)
                            .unwrap_or_else(|| epoch_states.last().expect("just pushed"))
                            .clone();
                        if active != dvfs_schedule.last().expect("seeded at zero").1 {
                            dvfs_schedule.push((t_out, active));
                        }
                        epoch_mark = t_out;
                    }
                }
            }
        }
        executed += 1;
        // Release dependents.
        if let Some(deps) = dependents.get(&node) {
            for &d in deps.clone().iter() {
                let c = pending.get_mut(&d).expect("known node");
                *c -= 1;
                if *c == 0 {
                    let at = match d {
                        // Filters need their arrival before start_of works.
                        Node::Filter(..) => start_of(d, &facts, &arrivals),
                        _ => start_of(d, &facts, &arrivals),
                    };
                    queue.schedule(at.max(queue.now()), d);
                }
            }
        }
    }
    assert_eq!(executed, all_nodes.len(), "deadlock: unexecuted nodes");

    // Book the heartbeat traffic every placed core emitted while alive —
    // real mesh + host-link messages, charged after the timeline so the
    // computed stage times match the frame-major executor's.
    if let Some(spec) = cfg.fault.as_ref().filter(|s| s.supervised()) {
        let plan = FaultPlan::new(FaultConfig {
            kills: kills.clone(),
            ..FaultConfig::default()
        });
        let booked = crate::supervise::book_heartbeats(
            &mut platform,
            &placement,
            &plan,
            SimTime::from_us(spec.heartbeat_period_us),
            finish,
        );
        tel.count(names::HEARTBEATS_TOTAL, &[], booked);
    }

    // Behind `RunConfig::verify`: the DES-side invariants — monotone
    // virtual clocks per stage, recovery-timeline legality, NoC flit
    // conservation. (Frame conservation is structural here: the executed
    // == all_nodes assertion above is exactly that ledger.)
    if cfg.verify {
        use crate::invariant::Violation;
        let mut violations: Vec<Violation> = Vec::new();
        let mut stages: Vec<(String, Vec<Node>)> = vec![
            ("render".into(), (0..frames).map(Node::Render).collect()),
            ("transfer".into(), (0..frames).map(Node::Transfer).collect()),
        ];
        for i in 0..p {
            for (j, kind) in StageKind::PIPELINE_FILTERS.iter().enumerate() {
                // A replicated stage keeps one virtual clock per replica:
                // frames f ≡ k (mod r) form an independent chain.
                let r = u64::from(plan.replicas_of(j));
                for k in 0..r {
                    stages.push((
                        format!("{} p{i} r{k}", kind.name()),
                        (k..frames)
                            .step_by(r as usize)
                            .map(|f| Node::Filter(i, j, f))
                            .collect(),
                    ));
                }
            }
        }
        for (label, nodes) in stages {
            let mut prev = SimTime::ZERO;
            for (f, n) in nodes.iter().enumerate() {
                let free = facts[n].free;
                if free < prev {
                    violations.push(Violation::new(
                        "monotone-clock",
                        format!(
                            "{label}: frame {f} freed at {}s, before frame {} at {}s",
                            free.as_secs_f64(),
                            f - 1,
                            prev.as_secs_f64()
                        ),
                    ));
                    break;
                }
                prev = free;
            }
        }
        for e in &recoveries {
            if !(e.killed_at_secs <= e.detected_at_secs && e.detected_at_secs <= e.resumed_at_secs)
            {
                violations.push(Violation::new(
                    "recovery-legality",
                    format!(
                        "recovery timeline disordered: killed {} detected {} resumed {}",
                        e.killed_at_secs, e.detected_at_secs, e.resumed_at_secs
                    ),
                ));
            }
        }
        if let Err(err) = platform.audit_noc() {
            violations.push(Violation::new("noc-conservation", err));
        }
        crate::invariant::enforce(cfg, &violations);
    }

    // Run-level rollups (nothing here can perturb the timeline: the
    // event queue has drained).
    if tel.is_enabled() {
        tel.count(names::FRAMES_TOTAL, &[], frames);
        tel.gauge(names::WALKTHROUGH_SECONDS, &[], finish.as_secs_f64());
        let energy = if dvfs_schedule.len() > 1 {
            platform.energy_joules_piecewise(&dvfs_schedule, finish)
        } else {
            platform.energy_joules(finish)
        };
        tel.gauge(names::ENERGY_JOULES, &[], energy);
        let stats = platform.stats();
        tel.count(names::NOC_MESSAGES_TOTAL, &[], stats.noc_messages);
        tel.count(names::NOC_BYTES_TOTAL, &[], stats.noc_bytes);
        if let Some(gov) = governor.as_ref() {
            tel.count(names::DVFS_EPOCHS_TOTAL, &[], gov.epochs() as u64);
            tel.count(names::DVFS_RAISES_TOTAL, &[], gov.raises() as u64);
            tel.count(names::DVFS_THROTTLES_TOTAL, &[], gov.throttles() as u64);
            tel.count(names::DVFS_CAP_BLOCKS_TOTAL, &[], gov.cap_blocks() as u64);
            let last = dvfs_schedule.last().expect("seeded at zero");
            for tile in scc_sim::TileId::all() {
                let freq = last.1.tile_freq(tile);
                if freq != scc_sim::FreqMHz::F533 {
                    let label = tile.raw().to_string();
                    tel.gauge(
                        names::DVFS_TILE_FREQ_MHZ,
                        &[("tile", &label)],
                        freq.mhz() as f64,
                    );
                }
            }
        }
    }

    let ordered = full_fidelity.then(|| {
        (0..frames)
            .map(|f| outputs.remove(&f).expect("frame assembled"))
            .collect()
    });
    DesReport {
        total_secs: finish.as_secs_f64(),
        frames: ordered,
        recoveries,
        telemetry: tel.snapshot(),
        dvfs_decisions: governor
            .as_ref()
            .map(|g| g.decisions().to_vec())
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::sim::SimRunner;
    use crate::spec::{Arrangement, Fidelity};
    use scc_render::CityConfig;

    fn scene() -> Arc<Scene> {
        Arc::new(Scene::city(CityConfig {
            side: 8,
            spacing: 8.0,
            seed: 3,
        }))
    }

    fn cfg(pipelines: u32, frames: u64) -> RunConfig {
        RunConfig::builder()
            .renderer(RendererMode::SingleRenderer)
            .arrangement(Arrangement::Ordered)
            .pipelines(pipelines)
            .size(120, 120)
            .frames(frames)
            .seed(5)
            .fidelity(Fidelity::TimingOnly)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn des_verifies_clean_with_and_without_kills() {
        use crate::spec::{FaultSpec, KillSpec};
        let mut c = cfg(2, 4);
        c.verify = true;
        run_des(&c, scene()); // would panic on a violation
        c.fault = Some(FaultSpec {
            kills: vec![KillSpec {
                pipeline: 1,
                stage: 3,
                at_ms: 1,
            }],
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        });
        let r = run_des(&c, scene());
        assert_eq!(r.recoveries.len(), 1);
    }

    #[test]
    fn des_completes_every_node() {
        let r = run_des(&cfg(2, 8), scene());
        assert!(r.total_secs > 0.0);
    }

    #[test]
    fn des_agrees_with_frame_major_runner() {
        // Two independent implementations of the same pipeline semantics
        // must agree closely (small differences come from resource-ledger
        // booking order).
        for p in [1u32, 3, 5] {
            let c = cfg(p, 20);
            let des = run_des(&c, scene()).total_secs;
            let fm = SimRunner::new(c, scene()).run().total_secs;
            let dev = (des - fm).abs() / fm;
            assert!(
                dev < 0.03,
                "{p} pipelines: DES {des:.3}s vs frame-major {fm:.3}s ({:.1}% apart)",
                dev * 100.0
            );
        }
    }

    #[test]
    fn des_full_fidelity_matches_reference_data_path() {
        let mut c = cfg(2, 3);
        c.width = 64;
        c.height = 64;
        c.fidelity = Fidelity::Full;
        let des = run_des(&c, scene());
        let reference = crate::reference::reference_frames(&c, scene());
        assert_eq!(des.frames.expect("full fidelity keeps frames"), reference);
    }

    #[test]
    fn des_kill_migrates_and_keeps_the_data_path_intact() {
        use crate::spec::{FaultSpec, KillSpec};
        let mut c = cfg(2, 4);
        c.width = 64;
        c.height = 64;
        c.fidelity = Fidelity::Full;
        c.fault = Some(FaultSpec {
            kills: vec![KillSpec {
                pipeline: 0,
                stage: 1,
                at_ms: 1,
            }],
            heartbeat_period_us: 2_000,
            phi_dead: 2.0,
            ..FaultSpec::default()
        });
        let des = run_des(&c, scene());
        assert_eq!(des.recoveries.len(), 1, "exactly one migration");
        let r = &des.recoveries[0];
        assert_eq!(r.pipeline, 0);
        assert_eq!(r.stage, StageKind::Blur);
        assert!(r.mttr_secs.is_finite() && r.mttr_secs > 0.0);
        assert!(r.killed_at_secs < r.detected_at_secs);
        assert!(r.detected_at_secs < r.resumed_at_secs);
        // The migrated run still delivers the reference film bit-for-bit.
        let mut clean = c.clone();
        clean.fault = None;
        let reference = crate::reference::reference_frames(&clean, scene());
        assert_eq!(des.frames.expect("full fidelity keeps frames"), reference);
    }

    #[test]
    fn des_auto_placement_verifies_clean_and_matches_reference() {
        // The scheduler plan (merged tail + replicated blur) through the
        // event-driven executor: every invariant holds and the film is
        // still the reference film, bit-for-bit.
        let mut c = cfg(2, 6);
        c.width = 64;
        c.height = 64;
        c.fidelity = Fidelity::Full;
        c.auto_place = true;
        c.verify = true;
        let des = run_des(&c, scene());
        let reference = crate::reference::reference_frames(&c, scene());
        assert_eq!(des.frames.expect("full fidelity keeps frames"), reference);
    }

    #[test]
    fn des_auto_placement_beats_fixed_throughput() {
        // Replicating the bottleneck must shorten the virtual walkthrough.
        let fixed = run_des(&cfg(2, 12), scene()).total_secs;
        let mut c = cfg(2, 12);
        c.auto_place = true;
        let auto = run_des(&c, scene()).total_secs;
        assert!(
            auto <= fixed * 1.01,
            "auto {auto:.3}s must not lose to fixed {fixed:.3}s"
        );
    }

    #[test]
    fn des_is_deterministic() {
        let a = run_des(&cfg(3, 10), scene()).total_secs;
        let b = run_des(&cfg(3, 10), scene()).total_secs;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "single-renderer")]
    fn rejects_other_modes() {
        let mut c = cfg(2, 2);
        c.renderer = RendererMode::McpcRenderer;
        run_des(&c, scene());
    }
}
